"""Tests for τ-sparsification and the SimHash LSH (Section 4.3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.objective import score
from repro.errors import ConfigurationError
from repro.sparsify.pipeline import sparsify_instance
from repro.sparsify.simhash import (
    SimHasher,
    bit_agreement_probability,
    candidate_pairs,
    candidate_probability,
    lsh_similar_pairs,
    tune_bands,
)
from repro.sparsify.threshold import sparsify_subset, threshold_sparsify

from tests.conftest import random_instance


# ---------------------------------------------------------------------------
# Threshold sparsification
# ---------------------------------------------------------------------------


class TestThresholdSparsify:
    def test_drops_below_threshold(self, figure1):
        sparse, stats = threshold_sparsify(figure1, 0.75)
        bikes = sparse.subsets[0]
        assert bikes.sim(0, 2) == pytest.approx(0.8)  # kept (>= tau)
        assert bikes.sim(0, 1) == 0.0  # 0.7 < 0.75 dropped
        assert stats.nnz_after < stats.nnz_before

    def test_keeps_self_similarity(self, figure1):
        sparse, _ = threshold_sparsify(figure1, 0.99)
        for q in sparse.subsets:
            for photo in q.members:
                assert q.sim(int(photo), int(photo)) == 1.0

    def test_tau_zero_is_lossless(self, figure1):
        sparse, stats = threshold_sparsify(figure1, 0.0)
        for sel in ([0], [0, 5], [1, 3], list(range(7))):
            assert score(sparse, sel) == pytest.approx(score(figure1, sel))
        assert stats.kept_fraction == pytest.approx(1.0)

    def test_tau_one_keeps_only_unit_entries(self, figure1):
        sparse, _ = threshold_sparsify(figure1, 1.0)
        bikes = sparse.subsets[0]
        assert bikes.sim(0, 1) == 0.0
        assert bikes.sim(0, 0) == 1.0

    def test_resparsifying_sparse_instance(self, figure1):
        once, _ = threshold_sparsify(figure1, 0.5)
        twice, _ = threshold_sparsify(once, 0.75)
        bikes = twice.subsets[0]
        assert bikes.sim(0, 1) == 0.0
        assert bikes.sim(0, 2) == pytest.approx(0.8)

    def test_rejects_bad_tau(self, figure1):
        with pytest.raises(ValueError):
            sparsify_subset(figure1.subsets[0], 1.5)

    def test_monotone_loss_in_tau(self, small_instance):
        """Higher τ can only lower the sparsified score of a selection."""
        sel = list(range(0, small_instance.n, 2))
        values = []
        for tau in (0.0, 0.3, 0.6, 0.9):
            sparse, _ = threshold_sparsify(small_instance, tau)
            values.append(score(sparse, sel))
        for earlier, later in zip(values, values[1:]):
            assert later <= earlier + 1e-9


# ---------------------------------------------------------------------------
# SimHash maths
# ---------------------------------------------------------------------------


class TestSimHashMaths:
    def test_bit_agreement_extremes(self):
        assert bit_agreement_probability(1.0) == pytest.approx(1.0)
        assert bit_agreement_probability(-1.0) == pytest.approx(0.0)
        assert bit_agreement_probability(0.0) == pytest.approx(0.5)

    @given(st.floats(-1.0, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_bit_agreement_monotone(self, s):
        assert bit_agreement_probability(s) <= bit_agreement_probability(min(1.0, s + 0.1)) + 1e-12

    def test_candidate_probability_increases_with_bands(self):
        p1 = candidate_probability(0.8, bands=1, rows=8)
        p4 = candidate_probability(0.8, bands=4, rows=8)
        assert p4 > p1

    def test_candidate_probability_decreases_with_rows(self):
        loose = candidate_probability(0.5, bands=4, rows=2)
        sharp = candidate_probability(0.5, bands=4, rows=16)
        assert sharp < loose

    def test_tune_bands_meets_recall_target(self):
        for tau in (0.5, 0.7, 0.9):
            bands, rows = tune_bands(tau, 64, 0.95)
            assert bands * rows <= 64
            assert candidate_probability(tau, bands, rows) >= 0.95

    def test_tune_bands_prefers_larger_rows(self):
        bands_hi, rows_hi = tune_bands(0.9, 64, 0.9)
        bands_lo, rows_lo = tune_bands(0.3, 64, 0.9)
        # High-similarity thresholds afford sharper (longer-row) bands.
        assert rows_hi >= rows_lo

    def test_tune_bands_validation(self):
        with pytest.raises(ConfigurationError):
            tune_bands(0.0, 64)
        with pytest.raises(ConfigurationError):
            tune_bands(0.5, 64, target_recall=1.0)
        with pytest.raises(ConfigurationError):
            tune_bands(0.5, 0)


class TestSimHasher:
    def test_signature_shape_and_dtype(self):
        hasher = SimHasher(dim=8, n_bits=32, rng=np.random.default_rng(0))
        sigs = hasher.signatures(np.random.default_rng(1).standard_normal((5, 8)))
        assert sigs.shape == (5, 32)
        assert sigs.dtype == bool

    def test_identical_vectors_share_signature(self):
        hasher = SimHasher(dim=4, n_bits=16, rng=np.random.default_rng(0))
        v = np.array([[1.0, 2.0, -1.0, 0.5]])
        sigs = hasher.signatures(np.vstack([v, v * 3.0]))  # same direction
        assert (sigs[0] == sigs[1]).all()

    def test_collision_rate_matches_theory(self):
        """Empirical per-bit agreement must track 1 - θ/π."""
        rng = np.random.default_rng(42)
        hasher = SimHasher(dim=16, n_bits=4096, rng=rng)
        a = rng.standard_normal(16)
        for target in (0.3, 0.7, 0.95):
            # Construct b at the target cosine with a.
            a_unit = a / np.linalg.norm(a)
            noise = rng.standard_normal(16)
            noise -= (noise @ a_unit) * a_unit
            noise /= np.linalg.norm(noise)
            b = target * a_unit + np.sqrt(1 - target**2) * noise
            sigs = hasher.signatures(np.vstack([a_unit, b]))
            agreement = float((sigs[0] == sigs[1]).mean())
            assert agreement == pytest.approx(bit_agreement_probability(target), abs=0.05)

    def test_dim_mismatch_rejected(self):
        hasher = SimHasher(dim=8, n_bits=16)
        with pytest.raises(ConfigurationError):
            hasher.signatures(np.zeros((3, 5)))


class TestCandidatePairs:
    def test_exact_duplicates_always_candidates(self):
        rng = np.random.default_rng(0)
        vectors = rng.standard_normal((6, 8))
        vectors[3] = vectors[0]  # duplicate direction
        hasher = SimHasher(8, 32, rng=np.random.default_rng(1))
        sigs = hasher.signatures(vectors)
        pairs = candidate_pairs(sigs, bands=4, rows=8)
        assert (0, 3) in pairs

    def test_band_overflow_rejected(self):
        sigs = np.zeros((3, 8), dtype=bool)
        with pytest.raises(ConfigurationError):
            candidate_pairs(sigs, bands=3, rows=4)

    def test_pairs_are_ordered(self):
        sigs = np.zeros((4, 8), dtype=bool)  # everything collides
        pairs = candidate_pairs(sigs, bands=1, rows=8)
        assert all(i < j for i, j in pairs)
        assert len(pairs) == 6


class TestLshSimilarPairs:
    def _clustered_vectors(self, rng, n_clusters=4, per_cluster=8, dim=24, noise=0.15):
        centers = rng.standard_normal((n_clusters, dim))
        centers /= np.linalg.norm(centers, axis=1, keepdims=True)
        rows = []
        for c in range(n_clusters):
            for _ in range(per_cluster):
                v = centers[c] + rng.normal(0, noise, dim)
                rows.append(v / np.linalg.norm(v))
        return np.asarray(rows)

    def test_perfect_precision(self):
        rng = np.random.default_rng(0)
        vectors = self._clustered_vectors(rng)
        result = lsh_similar_pairs(vectors, tau=0.8, rng=rng)
        unit = vectors / np.linalg.norm(vectors, axis=1, keepdims=True)
        for i, j in result.pairs:
            assert float(unit[i] @ unit[j]) >= 0.8

    def test_high_recall_on_clustered_data(self):
        rng = np.random.default_rng(1)
        vectors = self._clustered_vectors(rng)
        tau = 0.8
        result = lsh_similar_pairs(
            vectors, tau=tau, n_bits=96, target_recall=0.98, rng=np.random.default_rng(2)
        )
        unit = vectors / np.linalg.norm(vectors, axis=1, keepdims=True)
        sims = unit @ unit.T
        truth = {
            (i, j)
            for i in range(len(vectors))
            for j in range(i + 1, len(vectors))
            if sims[i, j] >= tau
        }
        found = set(result.pairs)
        assert truth, "test setup must contain similar pairs"
        recall = len(found & truth) / len(truth)
        assert recall >= 0.9

    def test_checks_fewer_pairs_than_brute_force(self):
        rng = np.random.default_rng(3)
        vectors = self._clustered_vectors(rng, n_clusters=8, per_cluster=10)
        result = lsh_similar_pairs(vectors, tau=0.85, rng=np.random.default_rng(4))
        assert result.candidate_fraction < 0.8

    def test_diagnostics(self):
        rng = np.random.default_rng(5)
        vectors = self._clustered_vectors(rng)
        result = lsh_similar_pairs(vectors, tau=0.9, rng=rng)
        assert result.n_vectors == len(vectors)
        assert result.bands * result.rows <= 64
        assert len(result.similarities) == len(result.pairs)


# ---------------------------------------------------------------------------
# Instance pipeline
# ---------------------------------------------------------------------------


class TestSparsifyInstance:
    def test_exact_mode_matches_threshold(self, small_instance):
        via_pipeline, report = sparsify_instance(small_instance, 0.5, method="exact")
        via_threshold, _ = threshold_sparsify(small_instance, 0.5)
        assert via_pipeline.similarity_nnz() == via_threshold.similarity_nnz()
        sel = list(range(0, small_instance.n, 2))
        assert score(via_pipeline, sel) == pytest.approx(score(via_threshold, sel))
        assert report.pairs_checked == report.pairs_possible

    def test_lsh_mode_requires_embeddings(self, figure1):
        with pytest.raises(ConfigurationError):
            sparsify_instance(figure1, 0.5, method="lsh")

    def test_lsh_never_invents_similarity(self, small_instance):
        sparse, _ = sparsify_instance(
            small_instance, 0.5, method="lsh", rng=np.random.default_rng(0)
        )
        for q_sparse, q_dense in zip(sparse.subsets, small_instance.subsets):
            for i in range(len(q_sparse)):
                idx, vals = q_sparse.similarity.neighbors(i)
                for j, v in zip(idx, vals):
                    assert v == pytest.approx(q_dense.similarity.pair(i, int(j)))

    def test_lsh_subset_of_exact(self, small_instance):
        exact, _ = sparsify_instance(small_instance, 0.5, method="exact")
        lsh, _ = sparsify_instance(
            small_instance, 0.5, method="lsh", rng=np.random.default_rng(0)
        )
        assert lsh.similarity_nnz() <= exact.similarity_nnz()

    def test_report_fields(self, small_instance):
        _, report = sparsify_instance(small_instance, 0.6, method="exact")
        assert report.tau == 0.6
        assert report.method == "exact"
        assert 0.0 <= report.kept_fraction <= 1.0
        assert 0.0 <= report.checked_fraction <= 1.0

    def test_invalid_inputs(self, small_instance):
        with pytest.raises(ConfigurationError):
            sparsify_instance(small_instance, -0.1)
        with pytest.raises(ConfigurationError):
            sparsify_instance(small_instance, 0.5, method="nope")

    def test_quality_loss_small_at_moderate_tau(self, small_instance):
        """Figure 5e's shape: moderate sparsification barely hurts greedy."""
        from repro.core.greedy import main_algorithm

        dense_run = main_algorithm(small_instance)
        sparse, _ = sparsify_instance(small_instance, 0.3, method="exact")
        sparse_run = main_algorithm(sparse)
        true_value = score(small_instance, sparse_run.selection)
        assert true_value >= 0.8 * dense_run.value
