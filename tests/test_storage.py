"""Tests for the tiered store, retention policies, and page workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.instance import Photo
from repro.errors import InfeasibleError, ValidationError
from repro.storage.archive import (
    COLD_DEFAULT,
    HOT_DEFAULT,
    PageLoadModel,
    TieredStore,
    TierSpec,
)
from repro.storage.policy import (
    RetentionPolicy,
    brand_contract_policy,
    derive_retained,
    metadata_flag_policy,
    recent_photos_policy,
)
from repro.storage.workload import replay_page_workload

from tests.conftest import random_instance


class TestTierSpec:
    def test_read_time_includes_latency_and_transfer(self):
        tier = TierSpec("t", latency_ms=10.0, bandwidth_mb_per_s=100.0)
        # 1 MB at 100 MB/s = 10 ms transfer + 10 ms latency.
        assert tier.read_time_ms(1e6) == pytest.approx(20.0)

    def test_defaults_hot_faster_than_cold(self):
        size = 5e5
        assert HOT_DEFAULT.read_time_ms(size) < COLD_DEFAULT.read_time_ms(size)


class TestTieredStore:
    def _store(self, capacity=3e6):
        costs = {0: 1e6, 1: 2e6, 2: 5e5}
        return TieredStore(costs, hot_capacity_bytes=capacity)

    def test_promote_and_read(self):
        store = self._store()
        store.promote([0, 2])
        assert store.hot_set == frozenset({0, 2})
        assert store.hot_bytes == pytest.approx(1.5e6)
        hot_time = store.read(0)
        cold_time = store.read(1)
        assert hot_time < cold_time
        assert store.stats.reads == 2
        assert store.stats.hot_hits == 1
        assert store.stats.hit_rate == pytest.approx(0.5)

    def test_byte_hit_rate(self):
        store = self._store()
        store.promote([0])
        store.read(0)  # 1 MB hot
        store.read(1)  # 2 MB cold
        assert store.stats.byte_hit_rate == pytest.approx(1.0 / 3.0)

    def test_promotion_capacity_enforced(self):
        store = self._store(capacity=1e6)
        with pytest.raises(InfeasibleError):
            store.promote([0, 1])

    def test_promote_replaces(self):
        store = self._store()
        store.promote([0])
        store.promote([2])
        assert store.hot_set == frozenset({2})

    def test_unknown_photo(self):
        store = self._store()
        with pytest.raises(ValidationError):
            store.promote([7])
        with pytest.raises(ValidationError):
            store.read(7)

    def test_invalid_construction(self):
        with pytest.raises(ValidationError):
            TieredStore({0: 1.0}, hot_capacity_bytes=0)
        with pytest.raises(ValidationError):
            TieredStore({0: -1.0}, hot_capacity_bytes=1.0)

    def test_reset_stats(self):
        store = self._store()
        store.promote([0])
        store.read(0)
        store.reset_stats()
        assert store.stats.reads == 0
        assert store.stats.mean_read_ms == 0.0


class TestPageLoadModel:
    def test_empty_page(self):
        store = TieredStore({0: 1e6}, hot_capacity_bytes=1e6)
        assert PageLoadModel(store).load_page([]) == 0.0

    def test_parallelism_speeds_pages(self):
        costs = {i: 1e6 for i in range(6)}
        serial_store = TieredStore(costs, hot_capacity_bytes=6e6)
        serial_store.promote(range(6))
        parallel_store = TieredStore(costs, hot_capacity_bytes=6e6)
        parallel_store.promote(range(6))
        serial = PageLoadModel(serial_store, parallelism=1).load_page(range(6))
        parallel = PageLoadModel(parallel_store, parallelism=6).load_page(range(6))
        assert parallel < serial

    def test_meets_deadline(self):
        store = TieredStore({0: 1e5}, hot_capacity_bytes=1e6)
        store.promote([0])
        model = PageLoadModel(store)
        assert model.meets_deadline([0], deadline_ms=100.0)

    def test_parallelism_guard(self):
        store = TieredStore({0: 1e5}, hot_capacity_bytes=1e6)
        with pytest.raises(ValidationError):
            PageLoadModel(store, parallelism=0).load_page([0])

    def test_cold_reads_blow_deadline(self):
        """The Section 5.3 story: archive-resident photos break the 100 ms
        page budget, cached ones meet it."""
        costs = {i: 8e5 for i in range(8)}
        store = TieredStore(costs, hot_capacity_bytes=8e6)
        store.promote([])
        cold_time = PageLoadModel(store).load_page(range(8))
        store.promote(range(8))
        hot_time = PageLoadModel(store).load_page(range(8))
        assert cold_time > 100.0 > hot_time


class TestRetentionPolicies:
    def _photos(self):
        return [
            Photo(0, 1.0, metadata={"brand": "Nike", "passport": False}),
            Photo(1, 1.0, metadata={"brand": "acme", "passport": True}),
            Photo(2, 1.0, metadata={"brand": "ACME"}),
            Photo(3, 1.0, metadata={"exif": {"timestamp": "2024-06-01T10:00:00"}}),
            Photo(4, 1.0, metadata={"exif": {"timestamp": "2020-01-01T10:00:00"}}),
        ]

    def test_brand_contract_case_insensitive(self):
        policy = brand_contract_policy(["Acme"])
        retained = derive_retained(self._photos(), [policy])
        assert retained == [1, 2]

    def test_metadata_flag(self):
        retained = derive_retained(self._photos(), [metadata_flag_policy("passport")])
        assert retained == [1]

    def test_recent_photos(self):
        policy = recent_photos_policy("2023-01-01")
        assert derive_retained(self._photos(), [policy]) == [3]

    def test_union_of_policies(self):
        retained = derive_retained(
            self._photos(),
            [brand_contract_policy(["nike"]), metadata_flag_policy("passport")],
        )
        assert retained == [0, 1]

    def test_conflict_raises(self):
        policies = [
            metadata_flag_policy("passport"),
            metadata_flag_policy("passport", action="dispose"),
        ]
        with pytest.raises(ValidationError, match="conflicting"):
            derive_retained(self._photos(), policies)

    def test_dispose_alone_pins_nothing(self):
        policies = [metadata_flag_policy("passport", action="dispose")]
        assert derive_retained(self._photos(), policies) == []

    def test_invalid_action(self):
        with pytest.raises(ValidationError):
            RetentionPolicy("x", lambda p: True, action="shred")


class TestWorkloadReplay:
    def test_full_selection_gives_full_hit_rate(self):
        inst = random_instance(seed=0, n_photos=15, budget_fraction=1.0)
        result = replay_page_workload(
            inst, list(range(inst.n)), n_visits=50, rng=np.random.default_rng(0)
        )
        assert result.hit_rate == pytest.approx(1.0)
        assert result.byte_hit_rate == pytest.approx(1.0)

    def test_better_selection_loads_faster(self):
        """A PHOcus selection should beat an empty cache operationally."""
        from repro.core.solver import solve

        inst = random_instance(seed=1, n_photos=20, n_subsets=5, budget_fraction=0.5)
        phocus = solve(inst, "phocus").selection
        good = replay_page_workload(inst, phocus, n_visits=100, rng=np.random.default_rng(2))
        empty = replay_page_workload(inst, [], n_visits=100, rng=np.random.default_rng(2))
        assert good.mean_page_load_ms < empty.mean_page_load_ms
        assert good.hit_rate > empty.hit_rate

    def test_result_fields(self):
        inst = random_instance(seed=3, n_photos=10)
        result = replay_page_workload(inst, [0, 1], n_visits=20, rng=np.random.default_rng(1))
        assert result.visits == 20
        assert 0.0 <= result.deadline_met_fraction <= 1.0
        assert result.p95_page_load_ms >= result.mean_page_load_ms * 0.1

    def test_visits_guard(self):
        inst = random_instance(seed=3, n_photos=10)
        with pytest.raises(ValidationError):
            replay_page_workload(inst, [0], n_visits=0)
