"""Statistical-shape tests of the dataset generators.

The paper's inputs have characteristic distributions — Zipf query/label
popularity, heavy subset-size tails, lognormal photo sizes — and the
reproduction's claims rest on the generators matching those shapes, not
just the counts.  These tests fit the distributions and assert the
parameters land where the generators promise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.ecommerce import DOMAINS, generate_ecommerce_dataset, generate_query_log
from repro.datasets.public import generate_public_dataset


class TestZipfQueryLog:
    def test_log_log_slope_near_minus_one(self):
        """The generator draws frequencies from rank^-1.05; the empirical
        log-log slope of counts vs rank must sit near -1."""
        rng = np.random.default_rng(0)
        log = generate_query_log(DOMAINS["Fashion"], 60, 500_000, rng)
        counts = np.array([c for _, c in log], dtype=np.float64)
        ranks = np.arange(1, len(counts) + 1, dtype=np.float64)
        # Fit on the head (the tail is multinomial-noise dominated).
        head = slice(0, 30)
        slope, _ = np.polyfit(np.log(ranks[head]), np.log(counts[head]), 1)
        assert -1.4 < slope < -0.7

    def test_head_heaviness(self):
        rng = np.random.default_rng(1)
        log = generate_query_log(DOMAINS["Electronics"], 50, 200_000, rng)
        counts = np.array([c for _, c in log], dtype=np.float64)
        top10 = counts[:10].sum() / counts.sum()
        assert top10 > 0.5  # the head carries most of the traffic


class TestPublicLabelPopularity:
    def test_subset_sizes_heavy_tailed(self):
        ds = generate_public_dataset(400, 60, seed=2)
        sizes = np.array(sorted((len(s.members) for s in ds.specs), reverse=True),
                         dtype=np.float64)
        # The biggest label subset dwarfs the median one.
        assert sizes[0] > 3 * np.median(sizes)

    def test_weights_track_membership(self):
        """Popular labels (heavier weight) own more photos on average."""
        ds = generate_public_dataset(400, 60, seed=3)
        weights = np.array([s.weight for s in ds.specs])
        sizes = np.array([len(s.members) for s in ds.specs], dtype=np.float64)
        corr = np.corrcoef(weights, sizes)[0, 1]
        assert corr > 0.5


class TestCostDistribution:
    def test_public_costs_lognormal_scale(self):
        ds = generate_public_dataset(500, 40, seed=4)
        costs = np.array([p.cost for p in ds.photos])
        # Centred near 1 MB with the configured sigma.
        log_costs = np.log(costs)
        assert abs(log_costs.mean() - np.log(1.0e6)) < 0.1
        assert 0.3 < log_costs.std() < 0.6

    def test_ec_costs_smaller_and_tighter(self):
        ds = generate_ecommerce_dataset("Fashion", 200, n_queries=20, seed=5)
        costs = np.array([p.cost for p in ds.photos])
        assert np.median(costs) < 1.0e6  # product shots, not full frames
        assert costs.min() > 1e4


class TestRelevanceConcentration:
    def test_ec_relevance_follows_retrieval_rank(self):
        """Within a query subset, raw relevance must decrease (weakly) in
        retrieval order — BM25 rank is the paper's relevance signal."""
        ds = generate_ecommerce_dataset("Electronics", 150, n_queries=15, seed=6)
        # Raw relevance = score * quality-term; correlation with position
        # should be clearly negative even after the quality modulation.
        negatives = 0
        for spec in ds.specs:
            rel = np.asarray(spec.relevance, dtype=np.float64)
            if len(rel) < 5:
                continue
            positions = np.arange(len(rel))
            corr = np.corrcoef(positions, rel)[0, 1]
            if corr < 0:
                negatives += 1
        assert negatives >= len([s for s in ds.specs if len(s.members) >= 5]) * 0.7
