"""Unit tests for repro.obs: registry, exposition, traces, probes."""

from __future__ import annotations

import re
import threading

import pytest

from repro.errors import ConfigurationError
from repro.obs import probes, trace
from repro.obs.middleware import AccessLog, observe_request, route_label
from repro.obs.prom import CONTENT_TYPE, render, render_registry
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    DROPPED_SERIES_METRIC,
    OVERFLOW_LABEL_VALUE,
    HistogramValue,
    MetricsRegistry,
)


@pytest.fixture(autouse=True)
def _disarmed():
    """Every test starts and ends with probes disarmed (process-global)."""
    probes.disarm()
    yield
    probes.disarm()


# ---------------------------------------------------------------------------
# Registry semantics
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_counter_inc_and_snapshot(self):
        reg = MetricsRegistry()
        c = reg.counter("t_total", "help")
        c.inc()
        c.inc(2.5)
        assert reg.get_sample("t_total") == 3.5

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.counter("t_total", "h").inc(-1)

    def test_gauge_goes_both_ways(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth", "h")
        g.set(10)
        g.dec(3)
        g.inc(1)
        assert reg.get_sample("depth") == 8.0

    def test_histogram_buckets_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "h", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        value = reg.get_sample("lat")
        assert isinstance(value, HistogramValue)
        assert value.count == 5
        assert value.sum == pytest.approx(56.05)
        # cumulative: <=0.1 -> 1, <=1.0 -> 3, <=10.0 -> 4, +Inf -> 5
        assert [n for _, n in value.cumulative()] == [1, 3, 4, 5]

    def test_observation_on_bucket_boundary_counts_in_bucket(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "h", buckets=(1.0, 2.0))
        h.observe(1.0)  # le="1.0" includes the bound itself
        assert [n for _, n in reg.get_sample("lat").cumulative()] == [1, 1, 1]

    def test_default_buckets_log_scale(self):
        assert DEFAULT_BUCKETS[0] == pytest.approx(0.001)
        ratios = [b / a for a, b in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:])]
        assert all(r == pytest.approx(2.0) for r in ratios)

    def test_labelled_series_independent(self):
        reg = MetricsRegistry()
        c = reg.counter("reqs_total", "h", ("tenant",))
        c.labels(tenant="a").inc()
        c.labels(tenant="a").inc()
        c.labels(tenant="b").inc()
        assert reg.get_sample("reqs_total", {"tenant": "a"}) == 2.0
        assert reg.get_sample("reqs_total", {"tenant": "b"}) == 1.0

    def test_wrong_labelnames_rejected(self):
        reg = MetricsRegistry()
        c = reg.counter("reqs_total", "h", ("tenant",))
        with pytest.raises(ConfigurationError):
            c.labels(user="a")
        with pytest.raises(ConfigurationError):
            c.inc()  # labelled family has no solo series

    def test_reregistration_returns_same_family(self):
        reg = MetricsRegistry()
        assert reg.counter("x_total", "h") is reg.counter("x_total", "h")

    def test_type_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "h")
        with pytest.raises(ConfigurationError):
            reg.gauge("x_total", "h")
        with pytest.raises(ConfigurationError):
            reg.counter("x_total", "h", ("tenant",))  # label-set clash too

    def test_reset_zeroes_but_keeps_registration(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", "h")
        c.inc(5)
        reg.reset()
        assert reg.get_sample("x_total") == 0.0
        assert reg.counter("x_total", "h") is c

    def test_sum_by_label(self):
        reg = MetricsRegistry()
        c = reg.counter("f_total", "h", ("kind", "zone"))
        c.labels(kind="a", zone="1").inc(2)
        c.labels(kind="a", zone="2").inc(3)
        c.labels(kind="b", zone="1").inc()
        assert reg.sum_by_label("f_total", "kind") == {"a": 5.0, "b": 1.0}


class TestCardinalityCap:
    def test_overflow_series_absorbs_excess(self):
        reg = MetricsRegistry(max_series=4)
        c = reg.counter("t_total", "h", ("tenant",))
        for i in range(10):
            c.labels(tenant=f"t{i}").inc()
        snap = {f.name: f for f in reg.snapshot()}
        series = snap["t_total"].series
        # 4 real + 1 overflow sink
        assert len(series) == 5
        overflow = [
            s for s in series if s.labels == (("tenant", OVERFLOW_LABEL_VALUE),)
        ]
        assert len(overflow) == 1
        assert overflow[0].value == 6.0  # the 6 dropped tenants' increments
        # total preserved across the collapse
        assert sum(s.value for s in series) == 10.0

    def test_drops_counted_in_self_metric(self):
        reg = MetricsRegistry(max_series=2)
        c = reg.counter("t_total", "h", ("tenant",))
        for i in range(6):
            c.labels(tenant=f"t{i}").inc()
        assert reg.get_sample(DROPPED_SERIES_METRIC) == 4.0

    def test_existing_series_unaffected_by_cap(self):
        reg = MetricsRegistry(max_series=2)
        c = reg.counter("t_total", "h", ("tenant",))
        c.labels(tenant="keep").inc()
        for i in range(5):
            c.labels(tenant=f"new{i}").inc()
        c.labels(tenant="keep").inc()  # established series keeps working
        assert reg.get_sample("t_total", {"tenant": "keep"}) == 2.0

    def test_per_family_override(self):
        reg = MetricsRegistry(max_series=2)
        wide = reg.counter("wide_total", "h", ("k",), max_series=100)
        for i in range(50):
            wide.labels(k=str(i)).inc()
        assert reg.get_sample(DROPPED_SERIES_METRIC) == 0.0


class TestThreadSafety:
    def test_concurrent_increments_lose_nothing(self):
        reg = MetricsRegistry()
        c = reg.counter("n_total", "h", ("worker",))
        h = reg.histogram("lat", "h", buckets=(0.5,))
        n_threads, per_thread = 8, 2000

        def work(i):
            bound = c.labels(worker=str(i % 2))
            for _ in range(per_thread):
                bound.inc()
                h.observe(0.1)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = sum(
            s.value
            for f in reg.snapshot()
            if f.name == "n_total"
            for s in f.series
        )
        assert total == n_threads * per_thread
        hv = reg.get_sample("lat")
        assert hv.count == n_threads * per_thread
        assert hv.sum == pytest.approx(0.1 * n_threads * per_thread)


# ---------------------------------------------------------------------------
# Prometheus exposition
# ---------------------------------------------------------------------------

# One exposition line: name{labels} value  (labels optional).
_LINE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"  # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\})?"  # labels
    r" (-?\d+(\.\d+)?([eE][+-]?\d+)?|[+-]Inf|NaN)$"  # value
)
_HELP_RE = re.compile(r"^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$")
_TYPE_RE = re.compile(r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$")


def check_exposition(text: str) -> int:
    """Minimal 0.0.4 line-format checker; returns the sample-line count."""
    assert text.endswith("\n")
    samples = 0
    for line in text.splitlines():
        if line.startswith("# HELP"):
            assert _HELP_RE.match(line), line
        elif line.startswith("# TYPE"):
            assert _TYPE_RE.match(line), line
        else:
            assert _LINE_RE.match(line), line
            samples += 1
    return samples


class TestProm:
    def test_golden_exposition(self):
        reg = MetricsRegistry()
        reqs = reg.counter("t_requests_total", "requests served", ("method", "route"))
        reqs.labels(method="GET", route="/health").inc(3)
        reqs.labels(method="POST", route="/solve").inc()
        reg.gauge("t_depth", "queue depth").set(7)
        lat = reg.histogram("t_seconds", "latency", buckets=(0.1, 1.0))
        lat.observe(0.05)
        lat.observe(0.5)
        lat.observe(5.0)
        expected = (
            "# HELP phocus_obs_series_dropped_total label combinations "
            "collapsed into __overflow__ by the cardinality cap\n"
            "# TYPE phocus_obs_series_dropped_total counter\n"
            "phocus_obs_series_dropped_total 0\n"
            "# HELP t_depth queue depth\n"
            "# TYPE t_depth gauge\n"
            "t_depth 7\n"
            "# HELP t_requests_total requests served\n"
            "# TYPE t_requests_total counter\n"
            't_requests_total{method="GET",route="/health"} 3\n'
            't_requests_total{method="POST",route="/solve"} 1\n'
            "# HELP t_seconds latency\n"
            "# TYPE t_seconds histogram\n"
            't_seconds_bucket{le="0.1"} 1\n'
            't_seconds_bucket{le="1"} 2\n'
            't_seconds_bucket{le="+Inf"} 3\n'
            "t_seconds_sum 5.55\n"
            "t_seconds_count 3\n"
        )
        assert render_registry(reg) == expected
        assert check_exposition(expected) == 9

    def test_label_value_escaping(self):
        reg = MetricsRegistry()
        c = reg.counter("esc_total", "h", ("path",))
        c.labels(path='a"b\\c\nd').inc()
        text = render_registry(reg)
        assert 'path="a\\"b\\\\c\\nd"' in text
        check_exposition(text)

    def test_render_deterministic(self):
        reg = MetricsRegistry()
        c = reg.counter("z_total", "h", ("k",))
        for k in ("b", "a", "c"):
            c.labels(k=k).inc()
        reg.counter("a_total", "h").inc()
        assert render_registry(reg) == render(reg.snapshot())
        lines = [
            l for l in render_registry(reg).splitlines() if not l.startswith("#")
        ]
        assert lines == sorted(lines)

    def test_content_type_pins_format_version(self):
        assert CONTENT_TYPE == "text/plain; version=0.0.4; charset=utf-8"

    def test_full_instruments_catalog_renders_validly(self):
        instruments = probes.Instruments()
        instruments.solver_runs.labels(mode="UC", backend="kernel").inc()
        instruments.jobs_wait_seconds.observe(0.2)
        instruments.http_requests.labels(
            method="GET", route="/metrics", status="200"
        ).inc()
        text = render_registry(instruments.registry)
        assert check_exposition(text) > 50  # the catalog is large


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------


class TestTrace:
    def test_disarmed_span_is_noop(self):
        assert trace.active_tracer() is None
        with trace.span("x") as sp:
            sp.annotate(a=1)
        assert trace.recent_spans() == []

    def test_nesting_parent_child(self):
        tracer = trace.install(trace.Tracer())
        try:
            with trace.span("outer") as outer:
                with trace.span("inner"):
                    pass
            records = tracer.recent()
            inner_rec, outer_rec = records[-2], records[-1]
            assert inner_rec.name == "inner"
            assert inner_rec.parent_id == outer.span_id
            assert outer_rec.parent_id is None
            assert 0 <= inner_rec.duration_s <= outer_rec.duration_s
        finally:
            trace.uninstall()

    def test_annotations_and_error_capture(self):
        tracer = trace.install(trace.Tracer())
        try:
            with pytest.raises(ValueError):
                with trace.span("boom") as sp:
                    sp.annotate(n=3, tag="x")
                    raise ValueError("nope")
            record = tracer.recent()[-1]
            assert record.error == "ValueError"
            assert dict(record.annotations) == {"n": 3, "tag": "x"}
            assert record.to_dict()["duration_ms"] >= 0
        finally:
            trace.uninstall()

    def test_ring_evicts_oldest(self):
        tracer = trace.install(trace.Tracer(capacity=3))
        try:
            for i in range(6):
                with trace.span(f"s{i}"):
                    pass
            names = [r.name for r in tracer.recent()]
            assert names == ["s3", "s4", "s5"]
            assert [r.name for r in tracer.recent(limit=2)] == ["s4", "s5"]
        finally:
            trace.uninstall()


# ---------------------------------------------------------------------------
# Probes (arm/disarm) and middleware
# ---------------------------------------------------------------------------


class TestProbes:
    def test_disarmed_by_default(self):
        assert probes.active() is None
        assert not probes.is_armed()

    def test_arm_installs_instruments_and_tracer(self):
        instruments = probes.arm()
        assert probes.active() is instruments
        assert trace.active_tracer() is not None
        probes.disarm()
        assert probes.active() is None
        assert trace.active_tracer() is None

    def test_rearm_no_args_keeps_registry(self):
        first = probes.arm()
        first.jobs_rejected.inc()
        second = probes.arm()
        assert second is first
        assert second.registry.get_sample("phocus_jobs_rejected_total") == 1.0

    def test_rearm_explicit_registry_rebuilds(self):
        first = probes.arm()
        second = probes.arm(MetricsRegistry())
        assert second is not first

    def test_armed_context_always_disarms(self):
        with pytest.raises(RuntimeError):
            with probes.armed():
                assert probes.is_armed()
                raise RuntimeError
        assert not probes.is_armed()

    def test_failure_counts_shape(self):
        with probes.armed() as instruments:
            instruments.jobs_failures.labels(kind="timeout").inc(2)
            instruments.jobs_retries.inc()
            counts = instruments.failure_counts()
        assert counts == {
            "by_kind": {"timeout": 2},
            "retries": 1,
            "timeouts": 0,
            "rejected": 0,
        }


class TestMiddleware:
    def test_route_label_bounds_cardinality(self):
        assert route_label("/health") == "/health"
        assert route_label("/jobs/abc123") == "/jobs/<id>"
        assert route_label("/jobs/") == "/jobs"
        assert route_label("/etc/passwd") == "<other>"
        assert route_label("/metrics/") == "/metrics"

    def test_observe_request_records_both(self):
        import io

        stream = io.StringIO()
        log = AccessLog(stream)
        with probes.armed() as instruments:
            observe_request(instruments, log, "GET", "/jobs/42", 200, 0.012)
            assert (
                instruments.registry.get_sample(
                    "phocus_http_requests_total",
                    {"method": "GET", "route": "/jobs/<id>", "status": "200"},
                )
                == 1.0
            )
            hv = instruments.registry.get_sample(
                "phocus_http_request_seconds", {"route": "/jobs/<id>"}
            )
            assert hv.count == 1
        import json

        line = json.loads(stream.getvalue())
        assert line["method"] == "GET"
        assert line["path"] == "/jobs/42"  # the log keeps the raw path
        assert line["status"] == 200
        assert line["duration_ms"] == pytest.approx(12.0)

    def test_access_log_never_raises_on_closed_stream(self):
        import io

        stream = io.StringIO()
        log = AccessLog(stream)
        stream.close()
        log.log("GET", "/health", 200, 0.001)  # must not raise
