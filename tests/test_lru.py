"""Unit tests for the generic byte-capacity LRU (repro.lru)."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.lru import ByteBudgetLRU


def test_put_get_and_recency_eviction():
    evicted = []
    lru = ByteBudgetLRU(100, on_evict=lambda k, v: evicted.append(k))
    assert lru.put("a", "A", 40)
    assert lru.put("b", "B", 40)
    assert lru.get("a") == "A"  # touches a: b is now the LRU victim
    assert lru.put("c", "C", 40)
    assert evicted == ["b"]
    assert "b" not in lru
    assert lru.used_bytes == 80
    assert lru.evictions == 1


def test_peek_does_not_touch_recency():
    lru = ByteBudgetLRU(100)
    lru.put("a", "A", 40)
    lru.put("b", "B", 40)
    assert lru.peek("a") == "A"
    lru.put("c", "C", 40)  # a stays LRU despite the peek
    assert "a" not in lru and "b" in lru and "c" in lru


def test_oversize_item_is_refused():
    evicted = []
    lru = ByteBudgetLRU(100, on_evict=lambda k, v: evicted.append(k))
    lru.put("a", "A", 60)
    assert not lru.put("big", "X", 101)
    assert "big" not in lru
    assert "a" in lru  # nothing was evicted for a doomed admit
    assert evicted == []


def test_replace_existing_key_fires_on_evict_for_old_value():
    evicted = []
    lru = ByteBudgetLRU(100, on_evict=lambda k, v: evicted.append((k, v)))
    lru.put("a", "old", 30)
    lru.put("a", "new", 50)
    assert evicted == [("a", "old")]
    assert lru.get("a") == "new"
    assert lru.used_bytes == 50


def test_pinned_items_never_evicted():
    lru = ByteBudgetLRU(100)
    lru.put("pin", "P", 60, pin=True)
    lru.put("a", "A", 40)
    lru.put("b", "B", 40)  # must evict a, not the pinned entry
    assert "pin" in lru and "b" in lru and "a" not in lru
    # Only pinned entries remain and the newcomer cannot fit: refuse it.
    assert not lru.put("huge", "H", 50)
    assert "huge" not in lru


def test_pop_removes_without_on_evict():
    evicted = []
    lru = ByteBudgetLRU(100, on_evict=lambda k, v: evicted.append(k))
    lru.put("a", "A", 40)
    assert lru.pop("a") == "A"
    assert evicted == []
    assert lru.used_bytes == 0
    assert lru.pop("a") is None


def test_clear_evicts_everything_including_pinned():
    evicted = []
    lru = ByteBudgetLRU(100, on_evict=lambda k, v: evicted.append(k))
    lru.put("a", "A", 30)
    lru.put("p", "P", 30, pin=True)
    lru.clear()
    assert sorted(evicted) == ["a", "p"]
    assert len(lru) == 0 and lru.used_bytes == 0


def test_victim_of_hook_overrides_lru_order():
    # Evict the *largest* evictable entry instead of the least recent.
    def biggest(evictable):
        keys = list(evictable)
        if not keys:
            return None
        sizes = lru.sizes()
        return max(keys, key=lambda k: sizes[k])

    lru = ByteBudgetLRU(100, victim_of=biggest)
    lru.put("small", "s", 10)
    lru.put("large", "l", 80)
    lru.get("small")
    lru.get("large")  # plain LRU would now evict "small"; the hook flips it
    lru.put("c", "C", 30)
    assert "large" not in lru and "small" in lru


def test_keys_are_lru_first_and_sizes_tracked():
    lru = ByteBudgetLRU(100)
    lru.put("a", "A", 10)
    lru.put("b", "B", 20)
    lru.get("a")
    assert lru.keys() == ["b", "a"]
    assert lru.sizes() == {"a": 10, "b": 20}


def test_invalid_parameters():
    with pytest.raises(ValidationError):
        ByteBudgetLRU(0)
    lru = ByteBudgetLRU(10)
    with pytest.raises(ValidationError):
        lru.put("a", "A", -1)
