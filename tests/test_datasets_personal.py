"""Tests for the rendered personal photo-collection generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.solver import solve
from repro.datasets.personal import generate_personal_dataset
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def dataset():
    return generate_personal_dataset(n_events=4, photos_per_event=(4, 7), seed=3)


class TestStructure:
    def test_photo_counts(self, dataset):
        # 4 events x 4-7 shots + 2 documents.
        assert 18 <= dataset.n_photos <= 30
        assert dataset.source == "personal"

    def test_albums_exist(self, dataset):
        ids = {s.subset_id for s in dataset.specs}
        assert sum(1 for i in ids if i.startswith("album:")) >= 5
        assert "album:favourites" in ids
        assert "album:documents" in ids

    def test_exif_buckets_are_derived(self, dataset):
        ids = {s.subset_id for s in dataset.specs}
        assert any(i.startswith("day:") for i in ids)
        assert any(i.startswith("place:") for i in ids)

    def test_event_album_matches_event_members(self, dataset):
        event0 = dataset.extras["events"][0]
        album = next(s for s in dataset.specs if s.subset_id == f"album:{event0}")
        for member in album.members:
            assert event0 in dataset.photos[member].metadata["labels"]

    def test_documents_are_pinned(self, dataset):
        assert len(dataset.retained) == 2
        for p in dataset.retained:
            assert dataset.photos[p].metadata["must_keep"]

    def test_every_photo_rendered_with_quality_and_cost(self, dataset):
        for photo in dataset.photos:
            assert photo.cost > 0
            assert 0.0 <= photo.metadata["quality"] <= 1.0

    def test_embeddings_unit_norm(self, dataset):
        norms = np.linalg.norm(dataset.embeddings, axis=1)
        assert np.allclose(norms, 1.0, atol=1e-6)

    def test_event_clusters_in_embedding_space(self, dataset):
        emb = dataset.embeddings
        events = {}
        for photo in dataset.photos:
            ei = photo.metadata.get("event")
            if ei is not None:
                events.setdefault(ei, []).append(photo.photo_id)
        within, across = [], []
        ids0 = events[0]
        ids1 = events[1]
        within.append(float(np.mean(emb[ids0] @ emb[ids0].T)))
        across.append(float(np.mean(emb[ids0] @ emb[ids1].T)))
        assert np.mean(within) > np.mean(across)

    def test_deterministic_by_seed(self):
        a = generate_personal_dataset(n_events=2, seed=9)
        b = generate_personal_dataset(n_events=2, seed=9)
        assert [p.cost for p in a.photos] == [p.cost for p in b.photos]
        assert np.allclose(a.embeddings, b.embeddings)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            generate_personal_dataset(n_events=0)


class TestSolvability:
    def test_cleanup_solve(self, dataset):
        instance = dataset.instance(dataset.total_cost() * 0.4)
        solution = solve(instance, "phocus")
        assert set(dataset.retained).issubset(set(solution.selection))
        assert solution.cost <= instance.budget

    def test_multimodal_similarity_integration(self, dataset):
        """The personal dataset carries EXIF, so the [44]-style multimodal
        similarity plugs straight in."""
        from repro.similarity.multimodal import MultimodalSimilarity

        sim = MultimodalSimilarity.from_photos(dataset.photos)
        inst = dataset.instance(dataset.total_cost() * 0.4, similarity_fn=sim)
        sol = solve(inst, "phocus")
        assert inst.feasible(sol.selection)
        assert sol.value > 0

    def test_favourites_survive_preferentially(self, dataset):
        """The weight-3 favourites album should keep most of its photos."""
        instance = dataset.instance(dataset.total_cost() * 0.4)
        solution = solve(instance, "phocus")
        favourites = next(
            q for q in instance.subsets if q.subset_id == "album:favourites"
        )
        kept = sum(1 for p in favourites.members if int(p) in set(solution.selection))
        assert kept >= len(favourites) * 0.3
