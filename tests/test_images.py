"""Tests for the synthetic photo substrate (scenes, features, embeddings,
EXIF, quality, file sizes)."""

from __future__ import annotations

from datetime import datetime, timezone

import numpy as np
import pytest

from repro.errors import ConfigurationError, ValidationError
from repro.images.embedder import PhotoEmbedder
from repro.images.exif import (
    ExifRecord,
    geo_bucket,
    synthesize_event_exif,
    time_bucket,
)
from repro.images.features import (
    color_histogram,
    feature_dim,
    feature_vector,
    gradient_orientation_histogram,
    to_grayscale,
)
from repro.images.filesize import detail_level, file_size_bytes
from repro.images.quality import contrast, exposure, quality_score, sharpness
from repro.images.synthetic import (
    ConceptPrototype,
    Shape,
    random_prototype,
    render_cluster,
    render_photo,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def proto(rng):
    return random_prototype("concept", rng)


class TestSynthetic:
    def test_render_shape_and_range(self, proto, rng):
        image = render_photo(proto, rng, height=24, width=20)
        assert image.shape == (24, 20, 3)
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_render_deterministic_given_rng_state(self, proto):
        a = render_photo(proto, np.random.default_rng(5))
        b = render_photo(proto, np.random.default_rng(5))
        assert np.array_equal(a, b)

    def test_jitter_produces_variants(self, proto):
        rng = np.random.default_rng(1)
        a = render_photo(proto, rng)
        b = render_photo(proto, rng)
        assert not np.array_equal(a, b)

    def test_blur_smooths(self, proto, rng):
        crisp = render_photo(proto, np.random.default_rng(2), blur=False, noise_scale=0.0)
        soft = render_photo(proto, np.random.default_rng(2), blur=True, noise_scale=0.0)
        gy, gx = np.gradient(to_grayscale(crisp))
        gy2, gx2 = np.gradient(to_grayscale(soft))
        assert np.hypot(gx2, gy2).mean() < np.hypot(gx, gy).mean()

    def test_minimum_size_guard(self, proto, rng):
        with pytest.raises(ValidationError):
            render_photo(proto, rng, height=2, width=2)

    def test_unknown_shape_kind(self):
        with pytest.raises(ValidationError):
            Shape(kind="triangle", cx=0.5, cy=0.5, size=0.1, color=(1, 0, 0))

    def test_render_cluster_count(self, proto, rng):
        photos = render_cluster(proto, 5, rng)
        assert len(photos) == 5
        assert all(p.shape == photos[0].shape for p in photos)


class TestFeatures:
    def test_grayscale_shape(self, proto, rng):
        image = render_photo(proto, rng)
        gray = to_grayscale(image)
        assert gray.shape == image.shape[:2]

    def test_grayscale_rejects_2d(self):
        with pytest.raises(ValidationError):
            to_grayscale(np.zeros((4, 4)))

    def test_color_histogram_normalised(self, proto, rng):
        hist = color_histogram(render_photo(proto, rng), bins=8)
        assert hist.shape == (24,)
        assert hist.sum() == pytest.approx(1.0)
        assert np.all(hist >= 0)

    def test_color_histogram_bins_guard(self, proto, rng):
        with pytest.raises(ValidationError):
            color_histogram(render_photo(proto, rng), bins=1)

    def test_hog_unit_norm(self, proto, rng):
        desc = gradient_orientation_histogram(render_photo(proto, rng))
        assert desc.shape == (4 * 4 * 8,)
        assert np.linalg.norm(desc) == pytest.approx(1.0)

    def test_hog_flat_image_is_zero(self):
        flat = np.full((16, 16, 3), 0.5)
        desc = gradient_orientation_histogram(flat)
        assert np.allclose(desc, 0.0)

    def test_hog_cell_guard(self):
        with pytest.raises(ValidationError):
            gradient_orientation_histogram(np.zeros((2, 2, 3)), cells=(4, 4))

    def test_feature_vector_dim(self, proto, rng):
        vec = feature_vector(render_photo(proto, rng))
        assert vec.shape == (feature_dim(),)
        assert np.linalg.norm(vec) == pytest.approx(1.0)


class TestEmbedder:
    def test_output_is_unit_vector(self, proto, rng):
        embedder = PhotoEmbedder(out_dim=32)
        vec = embedder.embed(render_photo(proto, rng))
        assert vec.shape == (32,)
        assert np.linalg.norm(vec) == pytest.approx(1.0)

    def test_same_seed_same_embedder(self, proto):
        image = render_photo(proto, np.random.default_rng(3))
        a = PhotoEmbedder(out_dim=16, seed=9).embed(image)
        b = PhotoEmbedder(out_dim=16, seed=9).embed(image)
        assert np.allclose(a, b)

    def test_cluster_geometry_preserved(self, rng):
        """Photos of one concept must embed closer than cross-concept."""
        embedder = PhotoEmbedder(out_dim=32)
        proto_a = random_prototype("a", np.random.default_rng(10))
        proto_b = random_prototype("b", np.random.default_rng(20))
        batch_a = embedder.embed_batch(render_cluster(proto_a, 6, np.random.default_rng(1)))
        batch_b = embedder.embed_batch(render_cluster(proto_b, 6, np.random.default_rng(2)))
        within = float(np.mean(batch_a @ batch_a.T))
        across = float(np.mean(batch_a @ batch_b.T))
        assert within > across

    def test_embed_batch_empty(self):
        assert PhotoEmbedder(out_dim=8).embed_batch([]).shape == (0, 8)

    def test_out_dim_guard(self):
        with pytest.raises(ConfigurationError):
            PhotoEmbedder(out_dim=1)


class TestExif:
    def test_event_coherence(self, rng):
        records = synthesize_event_exif(10, rng)
        assert len(records) == 10
        days = {time_bucket(r) for r in records}
        assert len(days) <= 2  # one event, possibly crossing midnight
        cameras = [r.camera for r in records]
        # The dominant body appears in most shots.
        dominant = max(set(cameras), key=cameras.count)
        assert cameras.count(dominant) >= 5

    def test_geo_bucket_groups_event(self, rng):
        records = synthesize_event_exif(10, rng, spread_km=0.5)
        buckets = {geo_bucket(r, cell_degrees=1.0) for r in records}
        assert len(buckets) <= 2

    def test_as_dict_roundtrip_fields(self, rng):
        record = synthesize_event_exif(1, rng)[0]
        doc = record.as_dict()
        assert set(doc) == {
            "timestamp", "latitude", "longitude", "camera", "focal_length_mm", "iso"
        }
        assert datetime.fromisoformat(doc["timestamp"]).tzinfo is not None

    def test_explicit_base_time(self, rng):
        base = datetime(2023, 5, 17, 8, 0, tzinfo=timezone.utc)
        records = synthesize_event_exif(3, rng, base_time=base)
        assert all(r.timestamp >= base for r in records)


class TestQuality:
    def test_blur_lowers_sharpness(self, proto):
        crisp = render_photo(proto, np.random.default_rng(4), blur=False, noise_scale=0.0)
        soft = render_photo(proto, np.random.default_rng(4), blur=True, noise_scale=0.0)
        assert sharpness(soft) < sharpness(crisp)

    def test_exposure_prefers_midgray(self):
        assert exposure(np.full((8, 8, 3), 0.5)) == pytest.approx(1.0)
        assert exposure(np.zeros((8, 8, 3))) == pytest.approx(0.0)
        assert exposure(np.ones((8, 8, 3))) == pytest.approx(0.0)

    def test_contrast_flat_is_zero(self):
        assert contrast(np.full((8, 8, 3), 0.3)) == pytest.approx(0.0)

    def test_quality_in_unit_interval(self, proto, rng):
        q = quality_score(render_photo(proto, rng))
        assert 0.0 <= q <= 1.0

    def test_quality_weights_guard(self, proto, rng):
        with pytest.raises(ValueError):
            quality_score(
                render_photo(proto, rng),
                w_sharpness=0, w_exposure=0, w_contrast=0,
            )


class TestFileSize:
    def test_flat_image_smaller_than_busy(self, rng):
        flat = np.full((16, 16, 3), 0.5)
        busy = rng.uniform(0, 1, size=(16, 16, 3))
        assert file_size_bytes(flat) < file_size_bytes(busy)

    def test_detail_level_range(self, rng):
        busy = rng.uniform(0, 1, size=(16, 16, 3))
        assert 0.0 <= detail_level(busy) <= 1.0
        assert detail_level(np.full((16, 16, 3), 0.2)) == pytest.approx(0.0)

    def test_size_scales_with_pixels(self, proto):
        small = render_photo(proto, np.random.default_rng(6), height=16, width=16)
        large = render_photo(proto, np.random.default_rng(6), height=32, width=32)
        assert file_size_bytes(large) > file_size_bytes(small)

    def test_realistic_magnitude(self, proto, rng):
        size = file_size_bytes(render_photo(proto, rng))
        assert 5e4 < size < 8e6  # between 50 KB and 8 MB
