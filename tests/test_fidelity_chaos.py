"""Chaos tests for the multi-fidelity pipeline (``fidelity.*`` sites).

The solver contract under crashes: catalog construction, the exclusive
drain (including its upgrade moves), and the frontier sweep are all
*pure* — they mutate nothing durable — so a process killed at any
``fidelity.*`` site leaves no partial state behind, and a post-crash
retry reproduces the clean run bit for bit (the solver is deterministic
at a fixed archive seed).
"""

from __future__ import annotations

import os

import pytest

from repro import faults
from repro.faults.plan import FaultPlan, ProcessKilled
from repro.fidelity import (
    VariantCatalog,
    budget_frontier,
    exclusive_lazy_greedy,
    fidelity_main,
)
from repro.scale import build_streamed_instance, synthetic_archive

CHAOS_SEED = int(os.environ.get("PHOCUS_CHAOS_SEED", "0"))


@pytest.fixture(autouse=True)
def always_disarmed():
    yield
    faults.disarm()


def _archive(n=120, *, frac=0.15, seed=5):
    costs, emb = synthetic_archive(n, dim=8, noise=0.7, seed=seed)
    total = float(costs.sum())
    instance, _ = build_streamed_instance(
        costs, emb, total * frac, tau=0.5, rng=seed
    )
    return instance, VariantCatalog.default(instance.costs)


def test_kill_during_catalog_build_then_retry_is_identical():
    instance, clean = _archive()
    plan = FaultPlan(seed=CHAOS_SEED).on("fidelity.catalog", "kill")
    with faults.armed(plan):
        with pytest.raises(ProcessKilled):
            VariantCatalog.default(instance.costs)
        assert plan.fired("fidelity.catalog") == 1
        # Fault exhausted: the in-context retry builds the same catalog.
        retry = VariantCatalog.default(instance.costs)
    assert retry.to_dict() == clean.to_dict()


def test_kill_at_upgrade_consideration_then_retry_is_bit_identical():
    instance, catalog = _archive()
    clean = exclusive_lazy_greedy(instance, catalog)
    # The clean run must actually exercise the upgrade path, otherwise
    # this test would pass vacuously with the site never reached.
    assert clean.upgrades

    plan = FaultPlan(seed=CHAOS_SEED).on("fidelity.swap", "kill")
    with faults.armed(plan):
        with pytest.raises(ProcessKilled):
            exclusive_lazy_greedy(instance, catalog)
        assert plan.fired("fidelity.swap") == 1
    retry = exclusive_lazy_greedy(instance, catalog)
    assert retry.chosen == clean.chosen
    assert retry.value == clean.value
    assert retry.cost == clean.cost
    assert retry.evaluations == clean.evaluations
    assert retry.upgrades == clean.upgrades


def test_transient_swap_fault_raises_cleanly_and_solver_stays_usable():
    instance, catalog = _archive()
    clean = fidelity_main(instance, catalog)
    plan = FaultPlan(seed=CHAOS_SEED).on("fidelity.swap", "raise")
    with faults.armed(plan):
        with pytest.raises(OSError):
            fidelity_main(instance, catalog)
        # Same process, fault exhausted: the next solve succeeds whole.
        retry = fidelity_main(instance, catalog)
    assert retry.chosen == clean.chosen
    assert retry.value == clean.value


def test_kill_mid_frontier_sweep_then_retry_is_identical():
    instance, catalog = _archive(frac=1.0)
    total = float(instance.costs.sum())
    budgets = [total * 0.1, total * 0.25]

    def _stable(doc):
        drop = ("fidelity_seconds", "discard_seconds")
        return [
            {k: v for k, v in point.items() if k not in drop}
            for point in doc["points"]
        ]

    clean = budget_frontier(instance, catalog, budgets)
    plan = FaultPlan(seed=CHAOS_SEED).on("fidelity.frontier", "kill")
    with faults.armed(plan):
        with pytest.raises(ProcessKilled):
            budget_frontier(instance, catalog, budgets)
        assert plan.fired("fidelity.frontier") == 1
    retry = budget_frontier(instance, catalog, budgets)
    assert _stable(retry) == _stable(clean)
    assert retry["checks"] == clean["checks"]
