"""Tests for :mod:`repro.live` and the CSR growth API it is built on.

Three contracts anchor the subsystem:

* :meth:`SparseSimilarity.append_rows` is **bit-identical** to a
  from-scratch ``from_pairs`` rebuild over the union of old and new
  pairs (canonical lexsort order is input-independent);
* :meth:`LiveArchive.ingest` is **bit-identical** to a from-scratch
  fused streamed build over the concatenated archive at matched
  ``(seed, n_bits)`` — candidate generation over the delta loses
  nothing the full SimHash banding would have found;
* :func:`warm_resolve` reproduces the stored solution **bit for bit**
  on an empty delta, and on any delta certifies a ``regret_bound``
  with ``value >= (1 - regret_bound) * cold_value`` (the measured-regret
  guarantee, property-tested over random deltas).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.greedy import main_algorithm
from repro.core.instance import PARInstance, Photo, PredefinedSubset, SparseSimilarity
from repro.core.objective import score
from repro.core.parallel import SharedInstance
from repro.core.serialize import instance_from_dict, instance_to_dict
from repro.errors import ValidationError
from repro.live import LiveArchive, cold_resolve, replay_solution, warm_resolve
from repro.scale import build_streamed_instance, synthetic_archive


def _sim_equal(a: SparseSimilarity, b: SparseSimilarity) -> bool:
    ai, ac, av = a.csr()
    bi, bc, bv = b.csr()
    return (
        len(a) == len(b)
        and np.array_equal(ai, bi)
        and np.array_equal(ac, bc)
        and np.array_equal(av, bv)
        and av.dtype == bv.dtype
    )


def _random_pairs(rng, n: int, density: float = 0.15):
    """Unique undirected off-diagonal pairs with values in [0, 1]."""
    iu, ju = np.triu_indices(n, k=1)
    mask = rng.random(iu.size) < density
    ii, jj = iu[mask], ju[mask]
    return ii, jj, rng.random(ii.size)


# --------------------------------------------------------------- append_rows


@pytest.mark.parametrize("dtype", [np.float64, np.float32])
@pytest.mark.parametrize("trial", range(10))
def test_append_rows_matches_from_pairs_rebuild(trial, dtype):
    rng = np.random.default_rng(1000 * trial + (0 if dtype is np.float64 else 1))
    n = int(rng.integers(1, 40))
    k = int(rng.integers(0, 20))
    total = n + k
    ii, jj, vv = _random_pairs(rng, total)
    old_mask = (ii < n) & (jj < n)
    base = SparseSimilarity.from_pairs(
        n, ii[old_mask], jj[old_mask], vv[old_mask], dtype=dtype
    )
    delta = ~old_mask
    grown = base.append_rows(k, ii[delta], jj[delta], vv[delta])
    rebuilt = SparseSimilarity.from_pairs(total, ii, jj, vv, dtype=dtype)
    assert _sim_equal(grown, rebuilt)


def test_append_rows_zero_delta_returns_self():
    rng = np.random.default_rng(7)
    ii, jj, vv = _random_pairs(rng, 12)
    sim = SparseSimilarity.from_pairs(12, ii, jj, vv)
    assert sim.append_rows(0) is sim


def test_append_rows_rejects_old_old_pairs():
    rng = np.random.default_rng(8)
    sim = SparseSimilarity.from_pairs(6, *_random_pairs(rng, 6, density=0.4))
    with pytest.raises(ValidationError, match="appended range"):
        sim.append_rows(2, np.array([0]), np.array([1]), np.array([0.5]))


def test_append_rows_rejects_out_of_range_and_diagonal():
    rng = np.random.default_rng(9)
    sim = SparseSimilarity.from_pairs(5, *_random_pairs(rng, 5, density=0.4))
    with pytest.raises(ValidationError):
        sim.append_rows(1, np.array([2]), np.array([9]), np.array([0.5]))
    with pytest.raises(ValidationError):
        sim.append_rows(1, np.array([5]), np.array([5]), np.array([0.5]))


def _instance_with_grown_sim(seed: int = 3):
    """A PAR instance whose similarity was grown through append_rows."""
    rng = np.random.default_rng(seed)
    n, k = 14, 6
    total = n + k
    ii, jj, vv = _random_pairs(rng, total, density=0.3)
    old = (ii < n) & (jj < n)
    sim = SparseSimilarity.from_pairs(n, ii[old], jj[old], vv[old]).append_rows(
        k, ii[~old], jj[~old], vv[~old]
    )
    costs = rng.uniform(0.5, 2.0, size=total)
    photos = [Photo(photo_id=i, cost=float(costs[i])) for i in range(total)]
    subset = PredefinedSubset(
        subset_id="archive",
        weight=1.0,
        members=list(range(total)),
        relevance=np.full(total, 1.0 / total),
        similarity=sim,
        normalize=False,
    )
    return PARInstance(photos, [subset], float(costs.sum()) * 0.4, [])


def test_append_rows_survives_serialize_round_trip():
    instance = _instance_with_grown_sim()
    round_tripped = instance_from_dict(instance_to_dict(instance))
    assert _sim_equal(
        instance.subsets[0].similarity, round_tripped.subsets[0].similarity
    )
    run = main_algorithm(instance)
    assert main_algorithm(round_tripped).selection == run.selection


def test_append_rows_survives_shm_pack():
    instance = _instance_with_grown_sim(seed=11)
    run = main_algorithm(instance)
    with SharedInstance(instance) as shared:
        view = shared.materialize()
        assert _sim_equal(
            instance.subsets[0].similarity, view.subsets[0].similarity
        )
        replay = main_algorithm(view)
    assert replay.selection == run.selection
    assert replay.value == run.value


# ------------------------------------------------------------------- ingest


def test_ingest_bit_identical_to_fresh_fused_build():
    costs, embeddings = synthetic_archive(400, dim=8, seed=5)
    budget = float(costs.sum()) * 0.2
    archive, _ = LiveArchive.create(
        costs[:360], embeddings[:360], budget, tau=0.6, seed=5, n_bits=16
    )
    grown, report = archive.ingest(costs[360:], embeddings[360:])
    assert report.n_before == 360 and report.n_added == 40

    fresh, _ = build_streamed_instance(
        costs, embeddings, budget, tau=0.6, n_bits=16, rng=5
    )
    assert _sim_equal(
        grown.instance.subsets[0].similarity, fresh.subsets[0].similarity
    )
    assert np.array_equal(
        grown.instance.subsets[0].relevance, fresh.subsets[0].relevance
    )
    assert np.array_equal(grown.instance.costs, fresh.costs)
    # The original archive is untouched (the caller swaps only after the
    # durable commit).
    assert archive.n == 360


def test_consecutive_ingests_bit_identical_to_fresh_fused_build():
    """Two deltas in a row exercise the merged sorted-key cache.

    The first ingest on an archive searches the build-time key sort; the
    grown archive carries a *merged* cache forward, so the second ingest
    proves the linear interleave finds exactly the buckets a fresh
    argsort would.
    """
    costs, embeddings = synthetic_archive(420, dim=8, seed=12)
    budget = float(costs.sum()) * 0.2
    archive, _ = LiveArchive.create(
        costs[:360], embeddings[:360], budget, tau=0.6, seed=12, n_bits=16
    )
    once, _ = archive.ingest(costs[360:390], embeddings[360:390])
    twice, _ = once.ingest(costs[390:], embeddings[390:])

    # The carried cache is a real argsort of the carried keys.
    sorted_keys, key_order = twice._sorted_key_state()
    assert np.array_equal(
        sorted_keys, np.take_along_axis(twice.band_keys, key_order, axis=1)
    )
    assert np.array_equal(np.sort(twice.band_keys, axis=1), sorted_keys)

    fresh, _ = build_streamed_instance(
        costs, embeddings, budget, tau=0.6, n_bits=16, rng=12
    )
    assert _sim_equal(
        twice.instance.subsets[0].similarity, fresh.subsets[0].similarity
    )
    assert np.array_equal(
        twice.instance.subsets[0].relevance, fresh.subsets[0].relevance
    )
    assert np.array_equal(twice.instance.costs, fresh.costs)


def test_ingest_bit_identical_after_doc_round_trip():
    costs, embeddings = synthetic_archive(300, dim=8, seed=9)
    budget = float(costs.sum()) * 0.2
    archive, _ = LiveArchive.create(
        costs[:280], embeddings[:280], budget, tau=0.6, seed=9, n_bits=16
    )
    reloaded = LiveArchive.from_doc(archive.to_doc())
    grown_a, _ = archive.ingest(costs[280:], embeddings[280:])
    grown_b, _ = reloaded.ingest(costs[280:], embeddings[280:])
    assert _sim_equal(
        grown_a.instance.subsets[0].similarity,
        grown_b.instance.subsets[0].similarity,
    )
    assert np.array_equal(
        grown_a.instance.subsets[0].relevance,
        grown_b.instance.subsets[0].relevance,
    )


def test_live_doc_solvable_by_generic_serialize_path():
    """The live sidecar must not disturb plain instance consumers."""
    costs, embeddings = synthetic_archive(200, dim=8, seed=2)
    archive, _ = LiveArchive.create(
        costs, embeddings, float(costs.sum()) * 0.3, tau=0.6, seed=2
    )
    doc = archive.to_doc()
    assert "live" in doc
    plain = instance_from_dict(doc)
    assert plain.n == 200
    assert main_algorithm(plain).selection == main_algorithm(
        archive.instance
    ).selection


# -------------------------------------------------------------- warm resolve


def test_empty_delta_warm_resolve_is_bit_identical():
    costs, embeddings = synthetic_archive(300, dim=8, seed=4)
    archive, _ = LiveArchive.create(
        costs, embeddings, float(costs.sum()) * 0.2, tau=0.6, seed=4
    )
    stored = cold_resolve(archive.instance)
    warm = warm_resolve(archive.instance, stored.selection)
    assert warm.selection == stored.selection
    assert warm.value == stored.value
    assert warm.evicted == [] and warm.added == []


@pytest.mark.parametrize("k", [1, 8, 64])
def test_warm_resolve_regret_bound_property(k):
    """Measured-regret guarantee over random deltas of size k.

    ``online_bound`` upper-bounds the instance optimum, so the certified
    ``regret_bound`` must cover the gap to a cold full re-solve:
    ``warm.value >= (1 - warm.regret_bound) * cold.value``.
    """
    for seed in (0, 1, 2):
        costs, embeddings = synthetic_archive(400 + k, dim=8, seed=20 + seed)
        n = 400
        budget = float(costs[:n].sum()) * 0.2
        archive, _ = LiveArchive.create(
            costs[:n], embeddings[:n], budget, tau=0.6, seed=seed
        )
        stored = cold_resolve(archive.instance)
        grown, _ = archive.ingest(costs[n:], embeddings[n:])

        warm = warm_resolve(grown.instance, stored.selection)
        cold = cold_resolve(grown.instance)

        assert 0.0 <= warm.regret_bound < 1.0
        assert warm.value >= (1.0 - warm.regret_bound) * cold.value - 1e-12
        # The warm result is a real feasible solution of the grown instance.
        assert warm.cost <= grown.instance.budget * (1 + 1e-9)
        assert warm.value == pytest.approx(
            score(grown.instance, warm.selection), abs=1e-9
        )


def test_warm_resolve_prepends_missing_retained():
    costs, embeddings = synthetic_archive(200, dim=8, seed=6)
    archive, _ = LiveArchive.create(
        costs,
        embeddings,
        float(costs.sum()) * 0.3,
        tau=0.6,
        seed=6,
        retained=[0, 5],
    )
    warm = warm_resolve(archive.instance, [])
    assert set(warm.selection) >= {0, 5}
    assert warm.cost <= archive.instance.budget * (1 + 1e-9)


def test_warm_resolve_evicts_when_budget_shrinks():
    costs, embeddings = synthetic_archive(200, dim=8, seed=13)
    budget = float(costs.sum()) * 0.3
    archive, _ = LiveArchive.create(costs, embeddings, budget, tau=0.6, seed=13)
    stored = cold_resolve(archive.instance)
    shrunk = archive.instance.with_budget(budget * 0.5)
    warm = warm_resolve(shrunk, stored.selection)
    assert warm.cost <= shrunk.budget * (1 + 1e-9)
    assert warm.evicted  # something had to go


def test_replay_solution_recomputes_value_and_certificate():
    costs, embeddings = synthetic_archive(200, dim=8, seed=8)
    archive, _ = LiveArchive.create(
        costs, embeddings, float(costs.sum()) * 0.25, tau=0.6, seed=8
    )
    run = main_algorithm(archive.instance)
    landed = replay_solution(
        archive.instance,
        list(run.selection) + [10**9, run.selection[0]],  # junk + duplicate
        mode="phocus",
    )
    assert landed.selection == list(run.selection)
    assert landed.value == pytest.approx(run.value, abs=1e-9)
    assert landed.upper_bound >= landed.value - 1e-12


def test_live_archive_rejects_dense_instance_docs():
    from tests.conftest import random_instance

    doc = instance_to_dict(random_instance(1))
    with pytest.raises(ValidationError):
        LiveArchive.from_doc(doc)
