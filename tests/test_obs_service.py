"""Service-level observability tests: /metrics, /stats failures, access log."""

from __future__ import annotations

import io
import json
import time
import urllib.error
import urllib.request

import pytest

from repro.core.serialize import instance_to_dict
from repro.obs import probes
from repro.obs.prom import CONTENT_TYPE
from repro.system.service import RAW_BODY, RAW_CONTENT_TYPE, PhocusService, handle_request

from tests.conftest import random_instance
from tests.test_obs import check_exposition


# NOTE: no module-wide autouse disarm fixture here — a function-scoped
# disarm would run *after* the class-scoped service fixture below arms
# the probes, cutting the live service off from its own instruments.
# Each test class manages the process-global probe state explicitly.


class TestMetricsDispatch:
    @pytest.fixture(autouse=True)
    def _disarmed(self):
        probes.disarm()
        yield
        probes.disarm()

    def test_metrics_disabled_is_404(self):
        status, payload = handle_request("GET", "/metrics", None, None)
        assert status == 404
        assert "disabled" in payload["error"]

    def test_metrics_returns_raw_exposition(self):
        instruments = probes.arm()
        status, payload = handle_request(
            "GET", "/metrics", None, None, instruments=instruments
        )
        assert status == 200
        assert payload[RAW_CONTENT_TYPE] == CONTENT_TYPE
        check_exposition(payload[RAW_BODY])

    def test_post_metrics_is_405(self):
        status, payload = handle_request("POST", "/metrics", None, None)
        assert status == 405
        assert payload["allow"] == ["GET"]


class TestMetricsOverHttp:
    @pytest.fixture(scope="class")
    def service(self):
        probes.disarm()
        with PhocusService(workers=2) as svc:
            yield svc
        probes.disarm()

    def _get_raw(self, service, path):
        resp = urllib.request.urlopen(f"http://{service.address}{path}")
        return resp.status, resp.headers.get("Content-Type"), resp.read().decode()

    def test_scrape_after_job_has_all_layers(self, service):
        base = f"http://{service.address}"
        instance = random_instance(3)
        req = urllib.request.Request(
            f"{base}/jobs",
            data=json.dumps(
                {"instance": instance_to_dict(instance), "tenant": "obs-test"}
            ).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        job_id = json.loads(urllib.request.urlopen(req).read())["job_id"]
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            doc = json.loads(
                urllib.request.urlopen(f"{base}/jobs/{job_id}").read()
            )
            if doc["state"] in ("SUCCEEDED", "FAILED", "CANCELLED"):
                break
            time.sleep(0.02)
        assert doc["state"] == "SUCCEEDED", doc

        status, content_type, body = self._get_raw(service, "/metrics")
        assert status == 200
        assert content_type == CONTENT_TYPE
        check_exposition(body)
        for series in (
            "phocus_solver_runs_total",
            "phocus_solver_gain_evaluations_total",
            "phocus_jobs_submitted_total",
            'phocus_jobs_completed_total{tenant="obs-test",state="SUCCEEDED"} 1',
            "phocus_jobs_queue_depth",
            "phocus_http_requests_total",
            "phocus_http_request_seconds_bucket",
        ):
            assert series in body, f"missing {series}"

    def test_stats_exposes_failure_counts(self, service):
        doc = json.loads(
            urllib.request.urlopen(f"http://{service.address}/stats").read()
        )
        assert doc["failures"] == {
            "by_kind": {},
            "retries": 0,
            "timeouts": 0,
            "rejected": 0,
        }

    def test_http_route_label_not_raw_path(self, service):
        # the earlier job polling used /jobs/<real id>; the label must be
        # the pattern, never the id
        _, _, body = self._get_raw(service, "/metrics")
        assert 'route="/jobs/<id>"' in body
        for line in body.splitlines():
            if line.startswith("phocus_http_requests_total{") and '/jobs/' in line:
                assert 'route="/jobs/<id>"' in line, line


class TestMetricsDisabledService:
    @pytest.fixture(autouse=True)
    def _disarmed(self):
        probes.disarm()
        yield
        probes.disarm()

    def test_no_metrics_route_404s(self):
        with PhocusService(workers=0, metrics=False) as svc:
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                urllib.request.urlopen(f"http://{svc.address}/metrics")
            assert exc_info.value.code == 404
        assert not probes.is_armed()  # metrics=False never arms


class TestJobFailureMetrics:
    @pytest.fixture(autouse=True)
    def _disarmed(self):
        probes.disarm()
        yield
        probes.disarm()

    def test_timeout_and_failure_kind_counted(self):
        with PhocusService(workers=1) as svc:
            base = f"http://{svc.address}"
            # Big enough that the solve cannot finish inside the timeout
            # machinery's first cancellation-poll window.
            instance = random_instance(5, n_photos=400, n_subsets=40)
            req = urllib.request.Request(
                f"{base}/jobs",
                data=json.dumps(
                    {
                        "instance": instance_to_dict(instance),
                        "tenant": "slow",
                        "timeout_seconds": 1e-9,
                        "max_attempts": 1,
                    }
                ).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            job_id = json.loads(urllib.request.urlopen(req).read())["job_id"]
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                doc = json.loads(
                    urllib.request.urlopen(f"{base}/jobs/{job_id}").read()
                )
                if doc["state"] in ("SUCCEEDED", "FAILED", "CANCELLED"):
                    break
                time.sleep(0.02)
            assert doc["state"] == "FAILED"
            assert doc["error_kind"] == "timeout"

            stats = json.loads(urllib.request.urlopen(f"{base}/stats").read())
            assert stats["failures"]["timeouts"] == 1
            assert stats["failures"]["by_kind"] == {"timeout": 1}

            body = urllib.request.urlopen(f"{base}/metrics").read().decode()
            assert 'phocus_jobs_failures_total{kind="timeout"} 1' in body
            assert (
                'phocus_jobs_completed_total{tenant="slow",state="FAILED"} 1'
                in body
            )


class TestAccessLog:
    @pytest.fixture(autouse=True)
    def _disarmed(self):
        probes.disarm()
        yield
        probes.disarm()

    def test_structured_line_per_request(self):
        stream = io.StringIO()
        with PhocusService(workers=0, access_log=True) as svc:
            # swap the default stderr stream for an inspectable one
            svc._server.phocus_access_log._stream = stream
            urllib.request.urlopen(f"http://{svc.address}/health").read()
        lines = [l for l in stream.getvalue().splitlines() if l]
        assert len(lines) == 1
        entry = json.loads(lines[0])
        assert entry["method"] == "GET"
        assert entry["path"] == "/health"
        assert entry["status"] == 200
        assert entry["duration_ms"] >= 0
        assert "ts" in entry

    def test_off_by_default(self):
        with PhocusService(workers=0) as svc:
            assert svc._server.phocus_access_log is None
            urllib.request.urlopen(f"http://{svc.address}/health").read()
