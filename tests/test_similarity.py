"""Tests for similarity metrics and contextual similarity derivation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import ConfigurationError, ValidationError
from repro.similarity.contextual import (
    ContextualSimilarity,
    context_reweighted_embeddings,
    contextual_similarity_matrix,
)
from repro.similarity.metrics import (
    cosine_similarity,
    cosine_similarity_matrix,
    distances_to_similarities,
    euclidean_distance_matrix,
    unit_normalize,
)

_vectors = hnp.arrays(
    np.float64,
    st.tuples(st.integers(2, 6), st.integers(2, 5)),
    elements=st.floats(-5, 5, allow_nan=False),
)


class TestMetrics:
    def test_unit_normalize(self):
        out = unit_normalize(np.array([[3.0, 4.0], [0.0, 0.0]]))
        assert out[0] == pytest.approx([0.6, 0.8])
        assert out[1] == pytest.approx([0.0, 0.0])  # zero row preserved

    def test_unit_normalize_rejects_1d(self):
        with pytest.raises(ValidationError):
            unit_normalize(np.array([1.0, 2.0]))

    def test_cosine_similarity_values(self):
        assert cosine_similarity([1, 0], [1, 0]) == pytest.approx(1.0)
        assert cosine_similarity([1, 0], [0, 1]) == pytest.approx(0.0)
        assert cosine_similarity([1, 0], [-1, 0]) == 0.0  # clipped
        assert cosine_similarity([0, 0], [1, 0]) == 0.0

    @given(_vectors)
    @settings(max_examples=40, deadline=None)
    def test_cosine_matrix_is_valid_sim(self, vectors):
        matrix = cosine_similarity_matrix(vectors)
        assert matrix.shape == (len(vectors), len(vectors))
        assert np.all(matrix >= 0) and np.all(matrix <= 1)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 1.0)

    def test_euclidean_distance_matrix(self):
        vectors = np.array([[0.0, 0.0], [3.0, 4.0]])
        dist = euclidean_distance_matrix(vectors)
        assert dist[0, 1] == pytest.approx(5.0)
        assert dist[0, 0] == 0.0

    @given(_vectors)
    @settings(max_examples=40, deadline=None)
    def test_euclidean_matches_numpy(self, vectors):
        dist = euclidean_distance_matrix(vectors)
        for i in range(len(vectors)):
            for j in range(len(vectors)):
                expected = np.linalg.norm(vectors[i] - vectors[j])
                assert dist[i, j] == pytest.approx(expected, abs=1e-6)

    def test_distances_to_similarities(self):
        dist = np.array([[0.0, 2.0], [2.0, 0.0]])
        sims = distances_to_similarities(dist)
        assert sims[0, 1] == pytest.approx(0.0)  # the max distance maps to 0
        assert sims[0, 0] == 1.0

    def test_distances_custom_max(self):
        dist = np.array([[0.0, 1.0], [1.0, 0.0]])
        sims = distances_to_similarities(dist, max_distance=4.0)
        assert sims[0, 1] == pytest.approx(0.75)

    def test_all_zero_distances_give_all_ones(self):
        sims = distances_to_similarities(np.zeros((3, 3)))
        assert np.all(sims == 1.0)

    def test_negative_distances_rejected(self):
        with pytest.raises(ValidationError):
            distances_to_similarities(np.array([[0.0, -1.0], [-1.0, 0.0]]))


class TestContextReweighting:
    def test_strength_zero_is_identity(self):
        rng = np.random.default_rng(0)
        emb = rng.standard_normal((5, 4))
        out = context_reweighted_embeddings(emb, strength=0.0)
        assert np.allclose(out, emb)

    def test_single_member_unchanged(self):
        emb = np.array([[1.0, 2.0, 3.0]])
        assert np.allclose(context_reweighted_embeddings(emb), emb)

    def test_emphasises_varying_dimensions(self):
        # Dim 0 identical across members, dim 1 varies -> dim 1 amplified.
        emb = np.array([[1.0, 0.0], [1.0, 1.0], [1.0, 2.0]])
        out = context_reweighted_embeddings(emb, strength=1.0)
        # Constant dimension is damped to (near) zero weight.
        assert abs(out[0, 0]) < abs(emb[0, 0])
        assert abs(out[2, 1]) > abs(emb[2, 1])

    def test_invalid_strength(self):
        with pytest.raises(ConfigurationError):
            context_reweighted_embeddings(np.ones((2, 2)), strength=2.0)

    def test_rejects_1d(self):
        with pytest.raises(ConfigurationError):
            context_reweighted_embeddings(np.ones(3))


class TestContextualSimilarityMatrix:
    @pytest.mark.parametrize(
        "mode", ["cosine", "centroid-reweight", "max-distance", "reweight+normalise"]
    )
    def test_all_modes_produce_valid_sim(self, mode):
        rng = np.random.default_rng(1)
        emb = rng.standard_normal((6, 5))
        matrix = contextual_similarity_matrix(emb, mode)
        assert np.all(matrix >= 0) and np.all(matrix <= 1)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 1.0)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            contextual_similarity_matrix(np.ones((2, 2)), "bogus")

    def test_context_dependence(self):
        """The paper's novelty: the same photo pair scores differently in
        different contexts.  We embed pair (a, b) in a tight context (where
        their difference is the dominant variation) and in a diverse context
        (where it is negligible) and expect different similarities."""
        rng = np.random.default_rng(2)
        a = np.array([1.0, 0.0, 0.0, 0.0])
        b = np.array([0.96, 0.28, 0.0, 0.0])  # slight variation of a
        tight_context = np.vstack([a, b, a + [0, 0.1, 0, 0], b - [0, 0.05, 0, 0]])
        diverse_context = np.vstack([a, b] + [rng.standard_normal(4) for _ in range(4)])
        sim_tight = contextual_similarity_matrix(tight_context, "reweight+normalise")[0, 1]
        sim_diverse = contextual_similarity_matrix(diverse_context, "reweight+normalise")[0, 1]
        # In the diverse context a and b are nearly interchangeable; in the
        # tight context their variation is discriminating.
        assert sim_diverse > sim_tight

    def test_max_distance_mode_zeroes_farthest_pair(self):
        emb = np.array([[1.0, 0.0], [0.0, 1.0], [0.7, 0.7]])
        matrix = contextual_similarity_matrix(emb, "max-distance")
        # The orthogonal pair is the farthest -> similarity exactly 0.
        assert matrix[0, 1] == pytest.approx(0.0)
        assert matrix[0, 2] > 0.0


class TestContextualSimilarityCallable:
    def test_usable_as_builder_fn(self):
        from repro.core.instance import PARInstance, Photo, SubsetSpec

        rng = np.random.default_rng(3)
        emb = rng.standard_normal((4, 5))
        photos = [Photo(photo_id=i, cost=1.0) for i in range(4)]
        specs = [SubsetSpec("q", 1.0, [0, 1, 2, 3], [1, 1, 1, 1])]
        inst = PARInstance.build(
            photos, specs, 4.0, embeddings=emb,
            similarity_fn=ContextualSimilarity("max-distance"),
        )
        q = inst.subsets[0]
        assert q.sim(0, 0) == 1.0

    def test_invalid_mode_at_construction(self):
        with pytest.raises(ConfigurationError):
            ContextualSimilarity("nope")
