"""Tests for the live-curation serving path: manager, scheduler, routes.

The manager's contract: every ingestion is exactly one atomic store
version bump, the warm cache is invalidated on commit, and ``by_ref``
solves keep working against live documents.  The scheduler's contract:
bursts coalesce into one warm re-solve, accumulated regret escalates to
a full re-solve (inline or via the job manager), and a stale job result
is discarded by the version guard instead of clobbering a newer ingest.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.jobs import JobManager
from repro.live import LiveManager, RecurationScheduler
from repro.scale import synthetic_archive
from repro.system.service import PhocusService, handle_request
from repro.tenants import Tenants


@pytest.fixture
def tenants(tmp_path):
    t = Tenants(str(tmp_path), sweep=False)
    yield t
    t.close()


def _create(manager, tenants_or_none=None, *, n=300, seed=3, **kw):
    costs, emb = synthetic_archive(n, dim=8, seed=seed)
    return manager.create(
        "acme", "a1", costs, emb, float(costs.sum()) * 0.25, tau=0.6,
        seed=seed, **kw
    )


def _delta(k=10, seed=90):
    return synthetic_archive(k, dim=8, seed=seed)


# ------------------------------------------------------------------- manager


def test_manager_ingest_bumps_exactly_one_version(tenants):
    manager = LiveManager(tenants)
    created = _create(manager)
    assert created["version"] == 1
    assert created["regret_bound"] is not None

    dc, de = _delta()
    out = manager.ingest("acme", "a1", dc, de)
    assert out["version"] == 2
    assert out["delta"]["n_added"] == 10
    assert out["solution"]["kind"] == "warm"
    assert out["recurated_at"] is not None
    assert tenants.store.meta("acme", "a1").version == 2


def test_manager_deferred_ingest_tracks_pending(tenants):
    manager = LiveManager(tenants)
    _create(manager)
    dc, de = _delta(5)
    out = manager.ingest("acme", "a1", dc, de, resolve="none")
    assert out["pending_deltas"] == 1
    status = manager.status("acme", "a1")
    assert status.pending_deltas == 1 and status.pending_photos == 5
    # The stored (stale) solution keeps serving.
    assert status.solution is not None

    with pytest.raises(ValidationError):
        manager.ingest("acme", "a1", dc, de, resolve="bogus")


def test_manager_survives_resident_eviction(tenants):
    """State round-trips through the store when the LRU drops an entry."""
    manager = LiveManager(tenants, max_resident=1)
    _create(manager)
    dc, de = _delta(4)
    manager.ingest("acme", "a1", dc, de, resolve="none")

    # Loading another instance evicts a1 from the resident set.
    costs, emb = synthetic_archive(100, dim=8, seed=55)
    manager.create("acme", "other", costs, emb, float(costs.sum()) * 0.3, tau=0.6)
    assert ("acme", "a1") not in manager.resident_keys()

    status = manager.status("acme", "a1")  # reloads from the stored doc
    assert status.pending_deltas == 1 and status.pending_photos == 4
    out = manager.recurate("acme", "a1", kind="warm")
    assert out is not None
    assert manager.status("acme", "a1").pending_deltas == 0


def test_manager_commit_invalidates_warm_cache(tenants):
    manager = LiveManager(tenants)
    _create(manager)
    ref = {"tenant": "acme", "instance_id": "a1"}
    with tenants.lease_for_solve(ref) as (instance, _hit):
        n_before = instance.n
    dc, de = _delta(7)
    manager.ingest("acme", "a1", dc, de)
    with tenants.lease_for_solve(ref) as (instance, hit):
        assert not hit  # the old packing was invalidated
        assert instance.n == n_before + 7


def test_manager_commit_solution_version_guard(tenants):
    manager = LiveManager(tenants)
    created = _create(manager)
    selection = created["solution"]["selection"]
    # A concurrent ingest moves the version; the stale commit is refused.
    dc, de = _delta(3)
    manager.ingest("acme", "a1", dc, de)
    assert (
        manager.commit_solution(
            "acme", "a1", selection, expect_version=created["version"]
        )
        is None
    )
    current = manager.status("acme", "a1").version
    assert (
        manager.commit_solution(
            "acme", "a1", selection, expect_version=current
        )
        == current + 1
    )
    assert manager.status("acme", "a1").accumulated_regret == 0.0


def test_manager_rejects_non_live_instances(tenants):
    from repro.core.serialize import instance_to_dict
    from tests.conftest import random_instance

    tenants.put_instance("acme", "plain", instance_to_dict(random_instance(1)))
    manager = LiveManager(tenants)
    with pytest.raises(ValidationError, match="not live"):
        manager.status("acme", "plain")


def test_by_ref_solve_works_on_live_documents(tenants):
    manager = LiveManager(tenants)
    _create(manager)
    status, doc = handle_request(
        "POST",
        "/solve",
        json.dumps(
            {"by_ref": {"tenant": "acme", "instance_id": "a1"}}
        ).encode(),
        tenants=tenants,
    )
    assert status == 200
    assert doc["selection"]


# ----------------------------------------------------------------- scheduler


def test_scheduler_coalesces_burst_into_one_warm_resolve(tenants):
    manager = LiveManager(tenants)
    _create(manager)
    sched = RecurationScheduler(
        manager, debounce_seconds=0.0, regret_threshold=10.0
    )
    sched.track("acme", "a1")
    for i in range(3):
        dc, de = _delta(2, seed=70 + i)
        manager.ingest("acme", "a1", dc, de, resolve="none")
    assert manager.status("acme", "a1").pending_deltas == 3

    actions = sched.sweep_once()
    assert actions["warm"] == 1  # one re-solve for the whole burst
    status = manager.status("acme", "a1")
    assert status.pending_deltas == 0
    assert status.solution["kind"] == "warm"


def test_scheduler_debounce_waits_for_quiet(tenants):
    manager = LiveManager(tenants)
    _create(manager)
    sched = RecurationScheduler(
        manager, debounce_seconds=30.0, regret_threshold=10.0
    )
    sched.track("acme", "a1")
    dc, de = _delta(2)
    manager.ingest("acme", "a1", dc, de, resolve="none")
    actions = sched.sweep_once()  # burst still hot: nothing happens
    assert actions["warm"] == 0
    assert manager.status("acme", "a1").pending_deltas == 1


def test_scheduler_regret_threshold_escalates_to_full_inline(tenants):
    manager = LiveManager(tenants)
    _create(manager)
    dc, de = _delta(6)
    manager.ingest("acme", "a1", dc, de)  # warm: accumulates regret
    sched = RecurationScheduler(manager, regret_threshold=0.0)
    sched.track("acme", "a1")
    actions = sched.sweep_once()
    assert actions["full"] == 1
    status = manager.status("acme", "a1")
    assert status.accumulated_regret == 0.0
    assert status.solution["kind"] == "cold"


def test_scheduler_full_resolve_rides_the_job_manager(tenants):
    manager = LiveManager(tenants)
    _create(manager)
    dc, de = _delta(6)
    manager.ingest("acme", "a1", dc, de)

    # The job manager resolves by_ref exactly like the service does.
    import contextlib

    @contextlib.contextmanager
    def resolver(by_ref):
        with tenants.lease_for_solve(by_ref) as (instance, _hit):
            yield instance

    jobs = JobManager(workers=1, by_ref_resolver=resolver)
    try:
        sched = RecurationScheduler(manager, jobs=jobs, regret_threshold=0.0)
        sched.track("acme", "a1")
        before = manager.status("acme", "a1").version
        actions = sched.sweep_once()
        assert actions["full"] == 1  # submitted, not yet landed
        deadline = time.monotonic() + 30.0
        committed = 0
        while time.monotonic() < deadline:
            committed = sched.sweep_once()["committed"]
            if committed:
                break
            time.sleep(0.05)
        assert committed == 1
        status = manager.status("acme", "a1")
        assert status.version == before + 1
        assert status.accumulated_regret == 0.0
        assert status.solution["kind"] == "cold"
    finally:
        jobs.shutdown()


def test_scheduler_thread_start_stop(tenants):
    manager = LiveManager(tenants)
    _create(manager)
    sched = RecurationScheduler(
        manager, interval=0.02, debounce_seconds=0.0, regret_threshold=10.0
    )
    dc, de = _delta(2)
    manager.ingest("acme", "a1", dc, de, resolve="none")
    sched.start()
    try:
        deadline = time.monotonic() + 20.0
        while time.monotonic() < deadline:
            if manager.status("acme", "a1").pending_deltas == 0:
                break
            time.sleep(0.02)
        assert manager.status("acme", "a1").pending_deltas == 0
        assert sched.sweeps > 0
    finally:
        sched.stop()


# -------------------------------------------------------------- HTTP routes


def _live_request(svc, method, path, payload=None):
    body = json.dumps(payload).encode() if payload is not None else None
    return handle_request(
        method, path, body, tenants=svc.tenants, live=svc.live,
        sweeper=svc.sweeper,
    )


def test_live_routes_end_to_end(tmp_path):
    svc = PhocusService(workers=0, metrics=False, tenants_root=str(tmp_path))
    try:
        costs, emb = synthetic_archive(250, dim=8, seed=3)
        status, doc = _live_request(
            svc,
            "POST",
            "/tenants/acme/instances/a1/live",
            {
                "costs": costs.tolist(),
                "embeddings": emb.tolist(),
                "budget": float(costs.sum()) * 0.25,
                "tau": 0.6,
                "seed": 3,
            },
        )
        assert status == 201
        assert doc["version"] == 1
        assert doc["regret_bound"] is not None and doc["recurated_at"]

        dc, de = _delta(8)
        status, doc = _live_request(
            svc,
            "POST",
            "/tenants/acme/instances/a1/photos",
            {"costs": dc.tolist(), "embeddings": de.tolist()},
        )
        assert status == 200
        assert doc["version"] == 2 and doc["delta"]["n_added"] == 8
        assert doc["solution"]["kind"] == "warm"
        assert "recurated_at" in doc and "regret_bound" in doc

        status, doc = _live_request(
            svc, "GET", "/tenants/acme/instances/a1/live"
        )
        assert status == 200
        assert doc["n_photos"] == 258 and doc["version"] == 2
        assert doc["solution"]["selection"]

        status, doc = _live_request(
            svc,
            "POST",
            "/tenants/acme/instances/a1/recurate",
            {"kind": "full"},
        )
        assert status == 200
        assert doc["solution"]["kind"] == "cold"
    finally:
        svc.stop()


def test_live_routes_error_paths(tmp_path):
    svc = PhocusService(workers=0, metrics=False, tenants_root=str(tmp_path))
    try:
        # Wrong method / unknown sub-resource.
        status, _ = _live_request(
            svc, "DELETE", "/tenants/acme/instances/a1/photos"
        )
        assert status == 405
        status, _ = _live_request(
            svc, "POST", "/tenants/acme/instances/a1/bogus", {}
        )
        assert status == 404
        # Ingest into a nonexistent instance.
        dc, de = _delta(2)
        status, doc = _live_request(
            svc,
            "POST",
            "/tenants/acme/instances/missing/photos",
            {"costs": dc.tolist(), "embeddings": de.tolist()},
        )
        assert status == 404
        # Malformed arrays.
        status, doc = _live_request(
            svc,
            "POST",
            "/tenants/acme/instances/a1/photos",
            {"costs": [1.0], "embeddings": "nope"},
        )
        assert status == 422
        # Missing budget/tau on create.
        status, doc = _live_request(
            svc,
            "POST",
            "/tenants/acme/instances/a1/live",
            {"costs": dc.tolist(), "embeddings": de.tolist()},
        )
        assert status == 422 and "budget" in doc["error"]
    finally:
        svc.stop()


def test_live_routes_503_without_live_manager(tmp_path):
    tenants = Tenants(str(tmp_path), sweep=False)
    try:
        status, doc = handle_request(
            "GET",
            "/tenants/acme/instances/a1/live",
            None,
            tenants=tenants,
            live=None,
        )
        assert status == 503
        assert "live curation" in doc["error"]
    finally:
        tenants.close()


def test_service_recuration_sweep_over_http(tmp_path):
    """A deferred upload gets curated by the service's own sweeper."""
    svc = PhocusService(
        workers=0,
        metrics=False,
        tenants_root=str(tmp_path),
        recuration=True,
        recuration_interval=0.02,
        recuration_debounce=0.0,
        recuration_regret=10.0,
    )
    try:
        costs, emb = synthetic_archive(200, dim=8, seed=4)
        status, _ = _live_request(
            svc,
            "POST",
            "/tenants/acme/instances/a1/live",
            {
                "costs": costs.tolist(),
                "embeddings": emb.tolist(),
                "budget": float(costs.sum()) * 0.25,
                "tau": 0.6,
            },
        )
        assert status == 201
        dc, de = _delta(4)
        status, doc = _live_request(
            svc,
            "POST",
            "/tenants/acme/instances/a1/photos",
            {
                "costs": dc.tolist(),
                "embeddings": de.tolist(),
                "resolve": "none",
            },
        )
        assert status == 200 and doc["pending_deltas"] == 1
        deadline = time.monotonic() + 20.0
        pending = 1
        while time.monotonic() < deadline:
            _, doc = _live_request(
                svc, "GET", "/tenants/acme/instances/a1/live"
            )
            pending = doc["pending_deltas"]
            if pending == 0:
                break
            time.sleep(0.02)
        assert pending == 0
        assert doc["solution"]["kind"] == "warm"
    finally:
        svc.stop()


def test_cli_live_round_trip(tmp_path, capsys):
    from repro.system.cli import main

    svc = PhocusService(
        workers=0, metrics=False, tenants_root=str(tmp_path)
    ).start()
    server = f"http://{svc.address}"
    try:
        assert main(
            [
                "live", "--server", server, "create", "--tenant", "acme",
                "--id", "a1", "--photos", "200", "--dim", "8", "--tau",
                "0.6", "--seed", "3",
            ]
        ) == 0
        assert main(
            [
                "live", "--server", server, "ingest", "--tenant", "acme",
                "--id", "a1", "--photos", "6", "--dim", "8", "--seed", "77",
            ]
        ) == 0
        assert main(
            [
                "live", "--server", server, "status", "--tenant", "acme",
                "--id", "a1",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "created live acme/a1" in out
        assert "ingested 6 photos" in out
        assert '"n_photos": 206' in out
    finally:
        svc.stop()
