"""Shared fixtures and instance factories for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# Deterministic property tests: same examples every run, so suite results
# are reproducible and CI-stable.
settings.register_profile(
    "repro",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")

from repro.core.instance import (
    DenseSimilarity,
    PARInstance,
    Photo,
    PredefinedSubset,
)
from repro.core.paper_example import figure1_instance


def random_instance(
    seed: int = 0,
    *,
    n_photos: int = 12,
    n_subsets: int = 4,
    budget_fraction: float = 0.4,
    retained: int = 0,
    embedding_dim: int = 8,
) -> PARInstance:
    """A small random-but-valid PAR instance (shared test workhorse).

    Similarities come from random unit embeddings so they are symmetric,
    in [0, 1], and contextually sliced per subset; costs are uniform in
    [0.5, 2.0]; weights and raw relevance are positive random values.
    """
    rng = np.random.default_rng(seed)
    costs = rng.uniform(0.5, 2.0, size=n_photos)
    photos = [Photo(photo_id=i, cost=float(costs[i])) for i in range(n_photos)]
    emb = rng.standard_normal((n_photos, embedding_dim))
    emb /= np.linalg.norm(emb, axis=1, keepdims=True)

    subsets = []
    for qi in range(n_subsets):
        size = int(rng.integers(2, max(3, n_photos // 2) + 1))
        members = sorted(int(p) for p in rng.choice(n_photos, size=size, replace=False))
        sub_emb = emb[members]
        sim = np.clip(sub_emb @ sub_emb.T, 0.0, 1.0)
        sim = (sim + sim.T) / 2.0
        np.fill_diagonal(sim, 1.0)
        subsets.append(
            PredefinedSubset(
                subset_id=f"q{qi}",
                weight=float(rng.uniform(0.5, 5.0)),
                members=members,
                relevance=rng.uniform(0.1, 1.0, size=size),
                similarity=DenseSimilarity(sim),
            )
        )
    retained_ids = sorted(int(p) for p in rng.choice(n_photos, size=retained, replace=False)) if retained else []
    budget = float(costs.sum() * budget_fraction)
    if retained_ids:
        budget = max(budget, float(costs[retained_ids].sum()) * 1.05)
    return PARInstance(photos, subsets, budget, retained_ids, embeddings=emb)


@pytest.fixture
def figure1():
    """The paper's Figure 1 example with the default 4 Mb budget."""
    return figure1_instance(4.0)


@pytest.fixture
def small_instance():
    """Deterministic small random instance."""
    return random_instance(seed=42)


@pytest.fixture
def retained_instance():
    """Instance with a non-empty retention set S0."""
    return random_instance(seed=7, retained=2)
