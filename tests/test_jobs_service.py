"""Tests for the job endpoints of the HTTP service, and the `phocus jobs` CLI."""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.core.serialize import instance_to_dict
from repro.core.solver import solve
from repro.jobs import JobManager
from repro.system.cli import main
from repro.system.service import PhocusService, handle_request

from tests.conftest import random_instance


def _body(payload) -> bytes:
    return json.dumps(payload).encode("utf-8")


@pytest.fixture
def manager():
    with JobManager(workers=2, queue_depth=8) as m:
        yield m


@pytest.fixture
def parked_manager():
    """A manager that accepts jobs but never executes them."""
    with JobManager(workers=0, queue_depth=2, autostart=False) as m:
        yield m


class TestMethodNotAllowed:
    @pytest.mark.parametrize(
        "method,path,allow",
        [
            ("GET", "/solve", ["POST"]),
            ("GET", "/score", ["POST"]),
            ("POST", "/health", ["GET"]),
            ("POST", "/algorithms", ["GET"]),
            ("DELETE", "/jobs", ["GET", "POST"]),
            ("POST", "/jobs/abc", ["DELETE", "GET"]),
            ("POST", "/stats", ["GET"]),
        ],
    )
    def test_wrong_method_is_405_with_allow(self, method, path, allow):
        status, payload = handle_request(method, path, None)
        assert status == 405
        assert payload["allow"] == allow
        assert "error" in payload

    def test_unknown_path_is_still_404(self):
        status, payload = handle_request("GET", "/nope", None)
        assert status == 404


class TestJobsDispatcher:
    def test_jobs_routes_without_manager_are_503(self):
        assert handle_request("POST", "/jobs", _body({}))[0] == 503
        assert handle_request("GET", "/jobs", None)[0] == 503
        assert handle_request("GET", "/stats", None)[0] == 503

    def test_submit_and_poll_round_trip(self, manager, figure1):
        status, payload = handle_request(
            "POST", "/jobs", _body({"instance": instance_to_dict(figure1)}), manager
        )
        assert status == 202
        job_id = payload["job_id"]
        assert payload["state"] == "QUEUED"

        final = manager.wait(job_id, timeout=30)
        assert final["state"] == "SUCCEEDED"
        status, doc = handle_request("GET", f"/jobs/{job_id}", None, manager)
        assert status == 200
        local = solve(figure1, "phocus")
        assert doc["result"]["selection"] == local.selection
        assert doc["result"]["value"] == pytest.approx(local.value)

    def test_submit_requires_instance(self, manager):
        status, payload = handle_request("POST", "/jobs", _body({}), manager)
        assert status == 422
        assert "instance" in payload["error"]

    def test_submit_malformed_parameters_are_422(self, manager, figure1):
        status, payload = handle_request(
            "POST",
            "/jobs",
            _body({"instance": instance_to_dict(figure1), "tau": "lots"}),
            manager,
        )
        assert status == 422

    def test_unknown_job_is_404(self, manager):
        assert handle_request("GET", "/jobs/missing", None, manager)[0] == 404
        assert handle_request("DELETE", "/jobs/missing", None, manager)[0] == 404

    def test_queue_full_is_429_with_depth(self, parked_manager, figure1):
        body = _body({"instance": instance_to_dict(figure1)})
        assert handle_request("POST", "/jobs", body, parked_manager)[0] == 202
        assert handle_request("POST", "/jobs", body, parked_manager)[0] == 202
        status, payload = handle_request("POST", "/jobs", body, parked_manager)
        assert status == 429
        assert payload["queue_depth"] == 2
        assert payload["queue_limit"] == 2
        assert "error" in payload

    def test_cancel_queued_job(self, parked_manager, figure1):
        _, payload = handle_request(
            "POST", "/jobs", _body({"instance": instance_to_dict(figure1)}), parked_manager
        )
        job_id = payload["job_id"]
        status, doc = handle_request("DELETE", f"/jobs/{job_id}", None, parked_manager)
        assert status == 200
        assert doc["cancelled"] is True
        assert doc["state"] == "CANCELLED"

    def test_list_filters(self, parked_manager, figure1):
        body = _body({"instance": instance_to_dict(figure1), "tenant": "alice"})
        handle_request("POST", "/jobs", body, parked_manager)
        status, doc = handle_request("GET", "/jobs?tenant=alice", None, parked_manager)
        assert status == 200
        assert len(doc["jobs"]) == 1
        status, doc = handle_request("GET", "/jobs?tenant=bob", None, parked_manager)
        assert doc["jobs"] == []
        status, doc = handle_request("GET", "/jobs?state=QUEUED", None, parked_manager)
        assert len(doc["jobs"]) == 1
        status, doc = handle_request("GET", "/jobs?state=bogus", None, parked_manager)
        assert status == 400

    def test_stats_shape(self, manager):
        status, doc = handle_request("GET", "/stats", None, manager)
        assert status == 200
        # "failures" appears only while observability probes are armed
        # (tests/test_obs_service.py covers it).
        assert set(doc) - {"failures"} == {
            "queue", "jobs", "workers", "solve_latency_seconds", "draining"
        }
        assert doc["draining"] is False
        assert doc["queue"]["oldest_wait_seconds"] == 0.0
        assert doc["workers"]["total"] == 2


class TestLiveJobsServer:
    @pytest.fixture(scope="class")
    def service(self):
        with PhocusService(workers=2) as svc:
            yield svc

    def _request(self, service, method, path, payload=None):
        req = urllib.request.Request(
            f"http://{service.address}{path}",
            data=_body(payload) if payload is not None else None,
            headers={"Content-Type": "application/json"},
            method=method,
        )
        with urllib.request.urlopen(req) as resp:
            return resp.status, json.loads(resp.read())

    def test_async_job_matches_sync_solve(self, service, figure1):
        doc = instance_to_dict(figure1)
        status, submitted = self._request(service, "POST", "/jobs", {"instance": doc})
        assert status == 202
        job_id = submitted["job_id"]
        deadline = time.monotonic() + 30
        while True:
            status, job = self._request(service, "GET", f"/jobs/{job_id}")
            if job["state"] in ("SUCCEEDED", "FAILED", "CANCELLED"):
                break
            assert time.monotonic() < deadline, "job did not finish in time"
            time.sleep(0.02)
        assert job["state"] == "SUCCEEDED"
        _, sync = self._request(service, "POST", "/solve", {"instance": doc})
        assert job["result"]["selection"] == sync["selection"]
        assert job["result"]["value"] == pytest.approx(sync["value"])

    def test_405_sets_allow_header(self, service):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"http://{service.address}/solve")
        assert excinfo.value.code == 405
        assert excinfo.value.headers["Allow"] == "POST"
        assert json.loads(excinfo.value.read())["allow"] == ["POST"]

    def test_stats_over_http(self, service):
        status, doc = self._request(service, "GET", "/stats")
        assert status == 200
        assert doc["workers"]["total"] == 2


class TestJobsCli:
    def test_submit_wait_status_result_cancel(self, tmp_path, capsys, figure1):
        instance_file = tmp_path / "instance.json"
        instance_file.write_text(json.dumps(instance_to_dict(figure1)))
        with PhocusService(workers=2) as svc:
            base = f"http://{svc.address}"
            rc = main(
                [
                    "jobs", "--server", base, "submit",
                    "--instance-file", str(instance_file),
                    "--tenant", "cli-tenant", "--wait", "--poll-interval", "0.02",
                ]
            )
            assert rc == 0
            out = capsys.readouterr().out
            assert "submitted job" in out
            assert "SUCCEEDED" in out
            job_id = out.split("submitted job ")[1].split()[0]

            assert main(["jobs", "--server", base, "status", "--id", job_id]) == 0
            assert json.loads(capsys.readouterr().out)["state"] == "SUCCEEDED"

            assert main(["jobs", "--server", base, "result", "--id", job_id]) == 0
            result = json.loads(capsys.readouterr().out)
            assert result["selection"] == solve(figure1, "phocus").selection

            assert main(["jobs", "--server", base, "list", "--tenant", "cli-tenant"]) == 0
            assert job_id in capsys.readouterr().out

            assert main(["jobs", "--server", base, "cancel", "--id", job_id]) == 0
            assert "not cancellable" in capsys.readouterr().out

            assert main(["jobs", "--server", base, "stats"]) == 0
            assert json.loads(capsys.readouterr().out)["jobs"]["SUCCEEDED"] >= 1

    def test_result_of_unknown_job_fails(self, capsys):
        with PhocusService(workers=0) as svc:
            rc = main(
                ["jobs", "--server", f"http://{svc.address}", "result", "--id", "nope"]
            )
        assert rc == 1
        assert "error" in capsys.readouterr().err
