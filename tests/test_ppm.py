"""Tests for the PPM/PGM image export."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.images.ppm import contact_sheet, read_ppm, write_ppm
from repro.images.synthetic import random_prototype, render_cluster


class TestWriteRead:
    def test_color_round_trip(self, tmp_path):
        rng = np.random.default_rng(0)
        image = rng.uniform(0, 1, size=(10, 14, 3))
        path = write_ppm(image, tmp_path / "img.ppm")
        loaded = read_ppm(path)
        assert loaded.shape == (10, 14, 3)
        assert np.allclose(loaded, image, atol=1 / 255)

    def test_gray_round_trip(self, tmp_path):
        image = np.linspace(0, 1, 48).reshape(6, 8)
        path = write_ppm(image, tmp_path / "img.pgm")
        loaded = read_ppm(path)
        assert loaded.shape == (6, 8)
        assert np.allclose(loaded, image, atol=1 / 255)

    def test_header_format(self, tmp_path):
        image = np.zeros((4, 5, 3))
        path = write_ppm(image, tmp_path / "img.ppm")
        header = path.read_bytes()[:20]
        assert header.startswith(b"P6\n5 4\n255\n")

    def test_values_clipped(self, tmp_path):
        image = np.array([[[2.0, -1.0, 0.5]]])
        loaded = read_ppm(write_ppm(image, tmp_path / "c.ppm"))
        assert loaded[0, 0, 0] == 1.0
        assert loaded[0, 0, 1] == 0.0

    def test_creates_parent_dirs(self, tmp_path):
        path = write_ppm(np.zeros((2, 2, 3)), tmp_path / "a" / "b" / "c.ppm")
        assert path.exists()

    def test_rejects_bad_shapes(self, tmp_path):
        with pytest.raises(ValidationError):
            write_ppm(np.zeros((2, 2, 4)), tmp_path / "x.ppm")

    def test_read_rejects_non_ppm(self, tmp_path):
        bad = tmp_path / "bad.ppm"
        bad.write_bytes(b"JPEG????")
        with pytest.raises(ValidationError):
            read_ppm(bad)


class TestContactSheet:
    def test_tiles_rendered_cluster(self, tmp_path):
        rng = np.random.default_rng(1)
        photos = render_cluster(random_prototype("c", rng), 6, rng, height=16, width=16)
        sheet = contact_sheet(photos, columns=3, padding=2)
        # 2 rows x 3 cols of 16px tiles with 2px padding.
        assert sheet.shape == (2 * 18 + 2, 3 * 18 + 2, 3)
        write_ppm(sheet, tmp_path / "sheet.ppm")  # and it is writable

    def test_single_image(self):
        sheet = contact_sheet([np.zeros((4, 4, 3))], columns=8)
        assert sheet.shape[0] > 4 and sheet.shape[1] > 4

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            contact_sheet([])

    def test_rejects_mixed_shapes(self):
        with pytest.raises(ValidationError):
            contact_sheet([np.zeros((4, 4, 3)), np.zeros((5, 5, 3))])

    def test_background_value(self):
        sheet = contact_sheet([np.zeros((2, 2, 3))], padding=1, background=0.5)
        assert sheet[0, 0, 0] == 0.5
