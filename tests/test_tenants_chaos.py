"""Chaos tests for the tenant store and warm cache (satellite: fault sites).

Every scenario arms a deterministic :class:`FaultPlan` against the
``tenantstore.*`` / ``tenantcache.evict`` injection sites and asserts the
recovery contract: a crashed write never tears a stored instance, a
corrupt blob is quarantined rather than served, a failed segment reclaim
is retried until it succeeds, and a worker killed mid-solve never
strands an unlinked shared-memory segment.
"""

from __future__ import annotations

import contextlib
import glob
import os
import threading
import time

import pytest

from repro import faults
from repro.core.serialize import instance_to_dict
from repro.core.solver import solve
from repro.errors import InstanceNotFound
from repro.faults.plan import FaultPlan, ProcessKilled
from repro.jobs import JobManager
from repro.jobs.spec import JobSpec
from repro.tenants import Tenants
from repro.tenants.store import TenantStore

from tests.conftest import random_instance

CHAOS_SEED = int(os.environ.get("PHOCUS_CHAOS_SEED", "0"))


@pytest.fixture(autouse=True)
def always_disarmed():
    yield
    faults.disarm()


@contextlib.contextmanager
def quiet_process_kills():
    previous = threading.excepthook

    def _hook(args):
        if not issubclass(args.exc_type, ProcessKilled):
            previous(args)

    threading.excepthook = _hook
    try:
        yield
    finally:
        threading.excepthook = previous


def _wait_for(predicate, timeout=30.0):
    end = time.monotonic() + timeout
    while time.monotonic() < end:
        if predicate():
            return True
        time.sleep(0.02)
    return False


def _doc(seed=0, **kw):
    return instance_to_dict(random_instance(seed, **kw))


def _shm_segments(prefix):
    return glob.glob(f"/dev/shm/{prefix}-*")


# ----------------------------------------------------------------- store chaos


def test_killed_replace_leaves_previous_version_intact(tmp_path):
    store = TenantStore(str(tmp_path))
    store.put("acme", "p", _doc(1))

    plan = FaultPlan(seed=CHAOS_SEED).on("tenantstore.replace", "kill")
    with faults.armed(plan):
        with pytest.raises(ProcessKilled):
            store.put("acme", "p", _doc(2))

    # The crash hit after the temp write but before the atomic rename:
    # the published file is still version 1, the index never moved, and
    # the temp file was cleaned up.
    assert store.meta("acme", "p").version == 1
    assert store.get("acme", "p")["version"] == 1
    assert glob.glob(str(tmp_path / "acme" / "*.tmp*")) == []

    # A reopened store (crash recovery) agrees.
    reopened = TenantStore(str(tmp_path))
    assert reopened.meta("acme", "p").version == 1
    # And the next put proceeds normally.
    assert store.put("acme", "p", _doc(2)).version == 2


def test_killed_first_write_leaves_no_trace(tmp_path):
    store = TenantStore(str(tmp_path))
    plan = FaultPlan(seed=CHAOS_SEED).on("tenantstore.write", "kill")
    with faults.armed(plan):
        with pytest.raises(ProcessKilled):
            store.put("acme", "p", _doc(1))
    with pytest.raises(InstanceNotFound):
        store.meta("acme", "p")
    assert os.listdir(tmp_path / "acme") == []  # no blob, no temp file


def test_corrupted_write_is_quarantined_on_read(tmp_path):
    store = TenantStore(str(tmp_path))
    plan = FaultPlan(seed=CHAOS_SEED).on("tenantstore.write", "corrupt")
    with faults.armed(plan):
        meta = store.put("acme", "p", _doc(1))  # write "succeeds"...
        assert meta.version == 1
        with pytest.raises(InstanceNotFound):  # ...but the bytes are bad
            store.get("acme", "p")
    assert (tmp_path / "acme" / "p.inst.quarantine").exists()
    assert store.quarantined_count == 1
    # The id is free again; a clean re-upload starts a fresh lineage.
    assert store.put("acme", "p", _doc(1)).version == 1
    assert store.get("acme", "p")["version"] == 1


def test_dropped_fsync_is_silent_without_a_crash(tmp_path):
    store = TenantStore(str(tmp_path))
    plan = FaultPlan(seed=CHAOS_SEED).on("tenantstore.fsync", "drop")
    with faults.armed(plan):
        store.put("acme", "p", _doc(1))
        assert plan.fired("tenantstore.fsync") == 1
    # No crash followed the dropped fsync, so the data is still there.
    assert store.get("acme", "p")["version"] == 1


def test_transient_load_error_quarantines(tmp_path):
    store = TenantStore(str(tmp_path))
    store.put("acme", "p", _doc(1))
    plan = FaultPlan(seed=CHAOS_SEED).on("tenantstore.load", "raise")
    with faults.armed(plan):
        with pytest.raises(InstanceNotFound):
            store.get("acme", "p")
    # An unreadable blob is treated exactly like a corrupt one: moved
    # aside, never served, never silently retried.
    assert (tmp_path / "acme" / "p.inst.quarantine").exists()


# ----------------------------------------------------------------- cache chaos


def test_failed_evict_parks_zombie_then_reclaims(tmp_path):
    prefix = f"phtest-{os.getpid()}-chaos-evict"
    tenants = Tenants(str(tmp_path), name_prefix=prefix, sweep=False)
    tenants.put_instance("acme", "p", _doc(1, n_photos=30))
    ref = {"tenant": "acme", "instance_id": "p"}
    with tenants.lease_for_solve(ref):
        pass
    assert len(_shm_segments(prefix)) == 1

    plan = FaultPlan(seed=CHAOS_SEED).on("tenantcache.evict", "raise")
    with faults.armed(plan):
        tenants.cache.invalidate("acme")
        # The reclaim failed: the segment survives on a zombie list
        # rather than leaking untracked.
        assert tenants.cache.stats()["zombie_segments"] == 1
        assert len(_shm_segments(prefix)) == 1

    # First operation after the fault clears retries the reclaim.
    with tenants.lease_for_solve(ref):
        pass
    assert tenants.cache.stats()["zombie_segments"] == 0
    tenants.close()
    assert _shm_segments(prefix) == []


def test_close_retries_zombie_reclaim(tmp_path):
    prefix = f"phtest-{os.getpid()}-chaos-close"
    tenants = Tenants(str(tmp_path), name_prefix=prefix, sweep=False)
    tenants.put_instance("acme", "p", _doc(1, n_photos=30))
    with tenants.lease_for_solve({"tenant": "acme", "instance_id": "p"}):
        pass

    plan = FaultPlan(seed=CHAOS_SEED).on("tenantcache.evict", "raise")
    with faults.armed(plan):
        tenants.cache.invalidate("acme")
        assert tenants.cache.stats()["zombie_segments"] == 1
    tenants.close()  # close() reaps the zombie now that faults cleared
    assert tenants.cache.stats()["zombie_segments"] == 0
    assert _shm_segments(prefix) == []


# ------------------------------------------------------------ killed worker


def test_killed_worker_mid_solve_strands_no_segment(tmp_path):
    """A worker dying inside a by_ref solve must release its cache lease
    on the way down (context-manager unwind happens even for
    BaseException), so shutdown can still unlink every segment."""
    prefix = f"phtest-{os.getpid()}-chaos-kill"
    tenants = Tenants(str(tmp_path), name_prefix=prefix, sweep=False)
    tenants.put_instance(
        "acme", "p", _doc(40 + CHAOS_SEED, n_photos=60, budget_fraction=0.5)
    )
    resolver = _Resolver(tenants)

    plan = FaultPlan(seed=CHAOS_SEED).on(
        "solver.iteration", "kill", nth=5 + (CHAOS_SEED % 5)
    )
    with quiet_process_kills(), faults.armed(plan):
        jobs = JobManager(workers=1, by_ref_resolver=resolver)
        jobs.submit(
            JobSpec(
                job_id="chaos-by-ref",
                by_ref={"tenant": "acme", "instance_id": "p", "version": 1},
                max_attempts=1,
            )
        )
        assert _wait_for(lambda: plan.fired("solver.iteration") > 0)
        time.sleep(0.2)  # let the killed thread unwind its lease
        assert resolver.open_leases == 0
        jobs.shutdown()

    # The packing is still cached (the lease released cleanly) and a
    # fresh solve after the chaos matches an undisturbed one.
    with tenants.lease_for_solve({"tenant": "acme", "instance_id": "p"}) as (
        view,
        hit,
    ):
        assert hit  # the crash did not evict or corrupt the packing
        survivor = solve(view)
    assert survivor.selection == solve(
        random_instance(40 + CHAOS_SEED, n_photos=60, budget_fraction=0.5)
    ).selection

    tenants.close()
    assert _shm_segments(prefix) == []
    assert tenants.cache.stats()["zombie_segments"] == 0


class _Resolver:
    """A by_ref resolver that counts open leases (balance must hit 0)."""

    def __init__(self, tenants: Tenants) -> None:
        self._tenants = tenants
        self.open_leases = 0

    @contextlib.contextmanager
    def __call__(self, by_ref):
        with self._tenants.lease_for_solve(by_ref) as (instance, _hit):
            self.open_leases += 1
            try:
                yield instance
            finally:
                self.open_leases -= 1


# --------------------------------------------------------------- dead sweeper


def test_startup_sweep_reclaims_crashed_process_segments(tmp_path):
    prefix = f"phtest-{os.getpid()}-chaos-sweep"
    leaked = f"/dev/shm/{prefix}-99999999-3"
    with open(leaked, "wb") as fh:
        fh.write(b"\0" * 128)
    try:
        tenants = Tenants(str(tmp_path), name_prefix=prefix, sweep=True)
        assert tenants.cache.swept == [os.path.basename(leaked)]
        assert not os.path.exists(leaked)
        tenants.close()
    finally:
        with contextlib.suppress(FileNotFoundError):
            os.unlink(leaked)
