"""Cross-backend regression tests: every algorithm × sparse similarity.

The sparse similarity backend is the production path (PHOcus always
sparsifies at scale), so each solver/extension must behave identically on
sparse and dense representations of the same thresholded instance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bounds import online_bound
from repro.core.bruteforce import branch_and_bound
from repro.core.greedy import CB, UC, lazy_greedy, naive_greedy
from repro.core.objective import score
from repro.extensions.compression import expand_with_compression
from repro.extensions.incremental import maintain
from repro.extensions.local_search import swap_local_search
from repro.extensions.streaming import stream_solve
from repro.sparsify.threshold import threshold_sparsify

from tests.conftest import random_instance


def _dense_thresholded(inst, tau):
    """Dense instance with the same τ-thresholded values as the sparse one."""
    from repro.core.instance import DenseSimilarity

    new_subsets = []
    for q in inst.subsets:
        m = len(q)
        matrix = np.zeros((m, m))
        for i in range(m):
            matrix[i] = q.similarity.row(i)
        matrix[matrix < tau] = 0.0
        np.fill_diagonal(matrix, 1.0)
        new_subsets.append(q.with_similarity(DenseSimilarity(matrix, validate=False)))
    return inst.with_subsets(new_subsets)


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("mode", [UC, CB])
def test_lazy_equals_naive_on_sparse(seed, mode):
    inst = random_instance(seed=seed, n_photos=14, n_subsets=5)
    sparse, _ = threshold_sparsify(inst, 0.4)
    assert lazy_greedy(sparse, mode).value == pytest.approx(
        naive_greedy(sparse, mode).value
    )


@pytest.mark.parametrize("seed", range(4))
def test_sparse_and_dense_thresholded_scores_agree(seed):
    inst = random_instance(seed=seed, n_photos=12, n_subsets=4)
    tau = 0.45
    sparse, _ = threshold_sparsify(inst, tau)
    dense = _dense_thresholded(inst, tau)
    rng = np.random.default_rng(seed)
    for _ in range(5):
        size = int(rng.integers(0, inst.n + 1))
        sel = sorted(int(p) for p in rng.choice(inst.n, size=size, replace=False))
        assert score(sparse, sel) == pytest.approx(score(dense, sel))


@pytest.mark.parametrize("seed", range(3))
def test_exact_solver_agrees_across_backends(seed):
    inst = random_instance(seed=seed, n_photos=10, n_subsets=4)
    sparse, _ = threshold_sparsify(inst, 0.5)
    dense = _dense_thresholded(inst, 0.5)
    assert branch_and_bound(sparse).value == pytest.approx(
        branch_and_bound(dense).value
    )


def test_online_bound_dominates_optimum_on_sparse():
    for seed in range(4):
        inst = random_instance(seed=seed, n_photos=10, n_subsets=4)
        sparse, _ = threshold_sparsify(inst, 0.5)
        opt = branch_and_bound(sparse).value
        assert online_bound(sparse, []) >= opt - 1e-9


def test_compression_over_sparse_backend():
    inst = random_instance(seed=2, n_photos=10, n_subsets=3)
    sparse, _ = threshold_sparsify(inst, 0.3)
    expanded, _ = expand_with_compression(sparse, [(0.8, 0.4)])
    for sel in ([0], [0, 3, 5], list(range(10))):
        assert score(expanded, sel) == pytest.approx(score(sparse, sel))


def test_maintenance_over_sparse_backend():
    inst = random_instance(seed=3, n_photos=14, n_subsets=4)
    sparse, _ = threshold_sparsify(inst, 0.4)
    result = maintain(sparse, list(range(0, 14, 2)))
    assert sparse.feasible(result.selection)
    assert result.value == pytest.approx(score(sparse, result.selection))


def test_local_search_over_sparse_backend():
    inst = random_instance(seed=4, n_photos=12, n_subsets=4)
    sparse, _ = threshold_sparsify(inst, 0.4)
    start = lazy_greedy(sparse, CB).selection
    result = swap_local_search(sparse, start)
    assert result.value >= result.start_value - 1e-9
    assert sparse.feasible(result.selection)


def test_streaming_over_sparse_backend():
    inst = random_instance(seed=5, n_photos=16, n_subsets=4)
    sparse, _ = threshold_sparsify(inst, 0.4)
    sel, val = stream_solve(sparse)
    assert sparse.feasible(sel)
    assert val == pytest.approx(score(sparse, sel))
