"""Deterministic fault-injection harness + chaos recovery tests.

The chaos scenarios are parameterised by ``PHOCUS_CHAOS_SEED`` (CI runs a
small fixed set of seeds) but every run is fully deterministic given the
seed: the fault plan fires on exact probe hit counts, so "kill the worker
mid-solve" happens at the same greedy iteration every time.
"""

import contextlib
import json
import os
import threading
import time

import pytest

from repro import faults
from repro.core.checkpoint import FileCheckpointSink, MemoryCheckpointSink
from repro.core.greedy import CB, lazy_greedy
from repro.core.serialize import instance_to_dict
from repro.datasets.io import load_dataset, save_dataset
from repro.datasets.public import generate_public_dataset
from repro.faults.plan import KNOWN_SITES, FaultPlan, ProcessKilled
from repro.jobs import JobManager, JournalJobStore
from tests.conftest import random_instance

CHAOS_SEED = int(os.environ.get("PHOCUS_CHAOS_SEED", "0"))


@contextlib.contextmanager
def quiet_process_kills():
    """Silence the default unhandled-thread-exception traceback for the
    deliberate ProcessKilled deaths these tests cause."""
    previous = threading.excepthook

    def _hook(args):
        if not issubclass(args.exc_type, ProcessKilled):
            previous(args)

    threading.excepthook = _hook
    try:
        yield
    finally:
        threading.excepthook = previous


@pytest.fixture(autouse=True)
def always_disarmed():
    yield
    faults.disarm()


# ----------------------------------------------------------- plan mechanics


def test_disarmed_probes_are_noops():
    assert faults.active() is None
    faults.check("solver.iteration")  # must not raise
    assert faults.should_drop("journal.fsync") is False
    assert faults.mangle("journal.write", b"abc") == b"abc"


def test_check_fires_on_exact_nth_hit():
    plan = FaultPlan().on("solver.iteration", "raise", nth=3)
    with faults.armed(plan):
        faults.check("solver.iteration")
        faults.check("solver.iteration")
        with pytest.raises(OSError, match="injected fault"):
            faults.check("solver.iteration")
        faults.check("solver.iteration")  # times=1: fires exactly once
    assert plan.hits("solver.iteration") == 4
    assert plan.fired("solver.iteration") == 1
    assert plan.log == [("solver.iteration", "raise", 3)]


def test_check_custom_exception_and_unlimited_times():
    plan = FaultPlan().on("journal.write", "raise", nth=2, times=None, exc=IOError)
    with faults.armed(plan):
        faults.check("journal.write")
        for _ in range(3):
            with pytest.raises(IOError):
                faults.check("journal.write")


def test_kill_action_is_base_exception():
    plan = FaultPlan().on("solver.iteration", "kill")
    with faults.armed(plan):
        with pytest.raises(ProcessKilled):
            faults.check("solver.iteration")
    assert not issubclass(ProcessKilled, Exception)


def test_drop_fires_once_then_stops():
    plan = FaultPlan().on("journal.fsync", "drop", nth=2)
    with faults.armed(plan):
        assert faults.should_drop("journal.fsync") is False
        assert faults.should_drop("journal.fsync") is True
        assert faults.should_drop("journal.fsync") is False


def test_corrupt_is_seed_deterministic():
    flipped = []
    for _ in range(2):
        plan = FaultPlan(seed=99).on("dataset.write", "corrupt")
        with faults.armed(plan):
            flipped.append(faults.mangle("dataset.write", b"hello world"))
    assert flipped[0] == flipped[1]
    assert flipped[0] != b"hello world"
    # exactly one bit differs
    diff = [a ^ b for a, b in zip(flipped[0], b"hello world")]
    assert sum(bin(d).count("1") for d in diff) == 1


def test_unknown_action_rejected():
    with pytest.raises(ValueError):
        FaultPlan().on("solver.iteration", "explode")


def test_known_sites_documented():
    assert "solver.iteration" in KNOWN_SITES
    assert all("." in site for site in KNOWN_SITES)


# ------------------------------------------------- crash-safe file writes


def test_save_dataset_crash_leaves_previous_file_intact(tmp_path):
    dataset = generate_public_dataset(12, 4, seed=CHAOS_SEED)
    target = tmp_path / "data.json"
    save_dataset(dataset, target)
    before = target.read_bytes()

    plan = FaultPlan().on("dataset.replace", "kill")
    with faults.armed(plan), pytest.raises(ProcessKilled):
        save_dataset(dataset, target)
    assert target.read_bytes() == before  # old file untouched
    assert not (tmp_path / "data.json.tmp").exists()  # no torn temp left

    save_dataset(dataset, target)  # healthy retry succeeds
    assert load_dataset(target).name == dataset.name


def test_checkpoint_sink_crash_keeps_last_valid_checkpoint(tmp_path):
    instance = random_instance(seed=CHAOS_SEED, n_photos=30, n_subsets=6, budget_fraction=0.5)
    sink = FileCheckpointSink(tmp_path / "solve.ckpt")
    plan = FaultPlan().on("checkpoint.replace", "raise", nth=3, times=None)
    with faults.armed(plan), pytest.raises(OSError):
        lazy_greedy(instance, CB, checkpoint_every=1, checkpoint_sink=sink)
    surviving = sink.load()  # the 2nd checkpoint, intact
    assert surviving is not None
    resumed = lazy_greedy(instance, CB, resume_from=surviving)
    assert resumed.selection == lazy_greedy(instance, CB).selection


# --------------------------------------------------------- chaos: the kill


def _wait_for(predicate, timeout=30.0, poll=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll)
    return False


def test_killed_worker_resumes_to_identical_solution(tmp_path):
    """The tentpole chaos scenario: a worker dies mid-solve at a seeded
    injection point; a fresh manager on the same journal resumes the job
    from its last checkpoint and finishes with *exactly* the selection
    and objective of an uninterrupted run — in strictly fewer picks."""
    instance = random_instance(
        seed=100 + CHAOS_SEED, n_photos=50, n_subsets=8, budget_fraction=0.5
    )
    doc = instance_to_dict(instance)
    journal = str(tmp_path / "journal.jsonl")

    with JobManager(workers=1, journal_path=str(tmp_path / "ref.jsonl")) as ref_mgr:
        ref_id = ref_mgr.submit_solve(doc, job_id="ref", algorithm="phocus")
        ref_mgr.wait(ref_id, timeout=60)
        reference = ref_mgr.result(ref_id)
    assert reference is not None

    kill_at = 30 + (CHAOS_SEED % 7)
    plan = FaultPlan(seed=CHAOS_SEED).on("solver.iteration", "kill", nth=kill_at)
    with quiet_process_kills():
        with faults.armed(plan):
            crashed = JobManager(
                workers=1, journal_path=journal, default_checkpoint_every=1
            )
            job_id = crashed.submit_solve(doc, job_id="chaos", algorithm="phocus")
            assert _wait_for(lambda: plan.fired("solver.iteration") > 0)
            time.sleep(0.2)  # let the killed thread unwind
            status = crashed.status(job_id)
            assert status["state"] == "RUNNING"  # died without a terminal write
            assert status["checkpoint_progress"]["picks"] >= 1
            assert "checkpoint" not in status  # blob never leaves the journal
            crashed._store.close()  # emulate process death: no clean shutdown

    recovered = JobManager(workers=1, journal_path=journal, default_checkpoint_every=1)
    try:
        final = recovered.wait(job_id, timeout=60)
        result = recovered.result(job_id)
        stats = recovered.stats()
    finally:
        recovered.shutdown()

    assert final["state"] == "SUCCEEDED"
    assert stats["journal"]["replayed"] == 1
    assert result["selection"] == reference["selection"]
    assert result["value"] == reference["value"]
    resumed_from = result["extras"]["resumed_from_picks"]
    assert resumed_from >= 1  # strictly fewer picks than from scratch
    assert result["extras"]["picks"] - resumed_from < reference["extras"]["picks"]


def test_corrupt_checkpoint_falls_back_to_scratch(tmp_path):
    """A flipped bit in the stored checkpoint must never wedge the job —
    recovery solves from scratch and still matches the reference."""
    instance = random_instance(seed=7, n_photos=40, n_subsets=6, budget_fraction=0.5)
    doc = instance_to_dict(instance)
    journal = str(tmp_path / "journal.jsonl")

    with JobManager(workers=1) as ref_mgr:
        ref_id = ref_mgr.submit_solve(doc, job_id="ref", algorithm="phocus")
        ref_mgr.wait(ref_id, timeout=60)
        reference = ref_mgr.result(ref_id)

    plan = FaultPlan(seed=3).on("solver.iteration", "kill", nth=35)
    with quiet_process_kills(), faults.armed(plan):
        crashed = JobManager(workers=1, journal_path=journal, default_checkpoint_every=1)
        job_id = crashed.submit_solve(doc, job_id="chaos", algorithm="phocus")
        assert _wait_for(lambda: plan.fired("solver.iteration") > 0)
        time.sleep(0.2)
        crashed._store.close()

    # Corrupt the stored checkpoint blob of the RUNNING snapshot.
    lines = []
    with open(journal, "r", encoding="utf-8") as fh:
        for line in fh:
            record = json.loads(line.split(" ", 1)[1])
            if record.get("checkpoint"):
                blob = record["checkpoint"]
                record["checkpoint"] = blob[:-8] + ("A" * 8 if blob[-8:] != "A" * 8 else "B" * 8)
            # re-encode without a CRC prefix: legacy lines stay readable
            lines.append(json.dumps(record))
    with open(journal, "w", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + "\n")

    recovered = JobManager(workers=1, journal_path=journal, default_checkpoint_every=1)
    try:
        final = recovered.wait(job_id, timeout=60)
        result = recovered.result(job_id)
    finally:
        recovered.shutdown()
    assert final["state"] == "SUCCEEDED"
    assert result["selection"] == reference["selection"]
    assert result["value"] == reference["value"]
    assert "resumed_from_picks" not in result["extras"]  # scratch fallback


# ------------------------------------------- chaos: torn journal append


def test_torn_final_append_replays_job_exactly_once(tmp_path):
    """Crash between the journal append and its fsync: the SUCCEEDED line
    is torn, so replay sees the job RUNNING and re-runs it exactly once —
    one record, one extra execution, terminal state SUCCEEDED."""
    journal = str(tmp_path / "journal.jsonl")
    runs = []

    def counting_solve(spec):
        runs.append(spec.job_id)
        return {"selection": [0], "value": 1.0}

    instance_doc = instance_to_dict(random_instance(seed=1, n_photos=8))
    with JobManager(workers=1, journal_path=journal, solve_fn=counting_solve) as m1:
        job_id = m1.submit_solve(instance_doc, job_id="torn")
        m1.wait(job_id, timeout=30)
    assert runs == ["torn"]

    # Tear the tail: drop the second half of the final (SUCCEEDED) line,
    # exactly what an append that never reached fsync looks like.
    with open(journal, "rb") as fh:
        data = fh.read()
    body, last = data.rstrip(b"\n").rsplit(b"\n", 1)
    with open(journal, "wb") as fh:
        fh.write(body + b"\n" + last[: len(last) // 2])

    m2 = JobManager(workers=1, journal_path=journal, solve_fn=counting_solve)
    try:
        final = m2.wait(job_id, timeout=30)
        stats = m2.stats()
        records = m2.jobs()
    finally:
        m2.shutdown()
    assert final["state"] == "SUCCEEDED"
    assert runs == ["torn", "torn"]  # replayed exactly once
    assert len(records) == 1  # no duplicate job records
    assert stats["journal"]["quarantined"] == 1


def test_dropped_fsync_still_replays_from_page_cache(tmp_path):
    """An fsync dropped by the fault plan models data sitting in the OS
    page cache: a process crash (not power loss) still finds the line on
    replay, so recovery must be unaffected."""
    journal = str(tmp_path / "journal.jsonl")
    plan = FaultPlan().on("journal.fsync", "drop", times=None)
    with faults.armed(plan):
        store = JournalJobStore(journal)
        with JobManager(store=store, workers=1, solve_fn=lambda s: {"ok": True}) as m1:
            job_id = m1.submit_solve(
                instance_to_dict(random_instance(seed=2, n_photos=8)), job_id="drop"
            )
            m1.wait(job_id, timeout=30)
    assert plan.fired("journal.fsync") >= 1

    m2 = JobManager(workers=1, journal_path=journal)
    try:
        assert m2.status("drop")["state"] == "SUCCEEDED"
    finally:
        m2.shutdown()
