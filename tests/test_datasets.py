"""Tests for the dataset generators, registry, and serialisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.base import Dataset
from repro.datasets.ecommerce import (
    DOMAINS,
    generate_ecommerce_dataset,
    generate_query_log,
)
from repro.datasets.io import load_dataset, save_dataset
from repro.datasets.public import generate_public_dataset
from repro.datasets.registry import TABLE2, dataset_names, load
from repro.errors import ConfigurationError, ValidationError


class TestPublicGenerator:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_public_dataset(120, 20, name="P-test", seed=1)

    def test_counts(self, dataset):
        assert dataset.n_photos == 120
        assert 1 <= dataset.n_subsets <= 20
        assert dataset.embeddings.shape == (120, 64)

    def test_every_subset_nonempty_with_positive_weight(self, dataset):
        for spec in dataset.specs:
            assert len(spec.members) >= 1
            assert spec.weight > 0
            assert all(r > 0 for r in spec.relevance)

    def test_members_in_range(self, dataset):
        for spec in dataset.specs:
            assert all(0 <= m < dataset.n_photos for m in spec.members)

    def test_embeddings_unit_norm(self, dataset):
        norms = np.linalg.norm(dataset.embeddings, axis=1)
        assert np.allclose(norms, 1.0, atol=1e-6)

    def test_deterministic_by_seed(self):
        a = generate_public_dataset(50, 10, seed=7)
        b = generate_public_dataset(50, 10, seed=7)
        assert np.allclose(a.embeddings, b.embeddings)
        assert [p.cost for p in a.photos] == [p.cost for p in b.photos]
        assert [s.subset_id for s in a.specs] == [s.subset_id for s in b.specs]

    def test_different_seed_differs(self):
        a = generate_public_dataset(50, 10, seed=1)
        b = generate_public_dataset(50, 10, seed=2)
        assert not np.allclose(a.embeddings, b.embeddings)

    def test_cluster_structure_in_embeddings(self, dataset):
        """Within-cluster cosine similarity must exceed across-cluster."""
        clusters = {}
        for photo in dataset.photos:
            clusters.setdefault(photo.metadata["cluster"], []).append(photo.photo_id)
        big = [ids for ids in clusters.values() if len(ids) >= 3][:5]
        emb = dataset.embeddings
        within, across = [], []
        for ids in big:
            block = emb[ids]
            within.append(float(np.mean(block @ block.T)))
            other = emb[[i for i in range(dataset.n_photos) if i not in ids][:20]]
            across.append(float(np.mean(block @ other.T)))
        assert np.mean(within) > np.mean(across)

    def test_render_mode(self):
        ds = generate_public_dataset(30, 6, seed=3, image_mode="render")
        assert ds.n_photos == 30
        assert all(p.cost > 0 for p in ds.photos)
        assert all(0 <= p.metadata["quality"] <= 1 for p in ds.photos)

    def test_retained_fraction(self):
        ds = generate_public_dataset(60, 10, seed=4, retained_fraction=0.1)
        assert len(ds.retained) == 6

    def test_instance_build(self):
        ds = generate_public_dataset(60, 10, seed=5)
        inst = ds.instance(ds.total_cost() * 0.2)
        assert inst.n == 60
        assert inst.budget == pytest.approx(ds.total_cost() * 0.2)

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            generate_public_dataset(1, 1)
        with pytest.raises(ConfigurationError):
            generate_public_dataset(10, 2, image_mode="webcam")


class TestQueryLog:
    def test_zipf_head_dominates(self):
        rng = np.random.default_rng(0)
        log = generate_query_log(DOMAINS["Fashion"], 40, 100_000, rng)
        counts = [c for _, c in log]
        assert counts == sorted(counts, reverse=True)
        assert counts[0] > counts[-1]

    def test_distinct_queries(self):
        rng = np.random.default_rng(1)
        log = generate_query_log(DOMAINS["Electronics"], 30, 10_000, rng)
        queries = [q for q, _ in log]
        assert len(queries) == len(set(queries))

    def test_vocabulary_exhaustion_raises(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ConfigurationError):
            generate_query_log(DOMAINS["Fashion"], 100_000, 1000, rng)


class TestEcommerceGenerator:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_ecommerce_dataset("Fashion", 120, n_queries=25, seed=2)

    def test_counts(self, dataset):
        # 1-4 photos per product.
        assert 120 <= dataset.n_photos <= 480
        assert 1 <= dataset.n_subsets <= 25

    def test_subsets_come_from_query_log(self, dataset):
        kept = dict(dataset.extras["query_log"])
        for spec in dataset.specs:
            assert spec.subset_id in kept

    def test_weights_are_query_frequencies(self, dataset):
        kept = dict(dataset.extras["query_log"])
        total = sum(c for _, c in dataset.extras["query_log"])
        # Weight proportional to frequency among all log events; ordering preserved.
        weights = [s.weight for s in dataset.specs]
        counts = [kept[s.subset_id] for s in dataset.specs]
        order_w = np.argsort(weights)
        order_c = np.argsort(counts)
        assert list(order_w) == list(order_c)

    def test_retrieved_photos_match_query_terms(self, dataset):
        """Every member of a query subset must textually match the query."""
        from repro.search.tokenizer import tokenize

        spec = dataset.specs[0]
        q_terms = set(tokenize(spec.subset_id))
        for member in spec.members[:10]:
            title_terms = set(tokenize(dataset.photos[member].label))
            assert q_terms & title_terms

    def test_retention_is_capped_and_contracted(self, dataset):
        assert len(dataset.retained) <= max(1, dataset.n_photos // 50)
        contract = set(dataset.extras["contract_brands"])
        for p in dataset.retained:
            assert dataset.photos[p].metadata["brand"] in contract

    def test_unknown_domain(self):
        with pytest.raises(ConfigurationError):
            generate_ecommerce_dataset("Groceries", 10)

    def test_deterministic_by_seed(self):
        a = generate_ecommerce_dataset("Electronics", 40, n_queries=10, seed=3)
        b = generate_ecommerce_dataset("Electronics", 40, n_queries=10, seed=3)
        assert [p.label for p in a.photos] == [p.label for p in b.photos]
        assert np.allclose(a.embeddings, b.embeddings)

    def test_instance_solvable(self, dataset):
        from repro.core.solver import solve

        inst = dataset.instance(dataset.total_cost() * 0.1)
        sol = solve(inst, "phocus")
        assert sol.value > 0


class TestDatasetContainer:
    def test_describe(self):
        ds = generate_public_dataset(40, 8, seed=1)
        desc = ds.describe()
        assert desc["photos"] == 40
        assert desc["source"] == "public"
        assert desc["total_mb"] > 0

    def test_embedding_count_validated(self):
        ds = generate_public_dataset(40, 8, seed=1)
        with pytest.raises(ValidationError):
            Dataset(
                name="bad",
                photos=ds.photos,
                specs=ds.specs,
                embeddings=ds.embeddings[:10],
            )

    def test_instance_for_fraction(self):
        ds = generate_public_dataset(40, 8, seed=1)
        inst = ds.instance_for_fraction(0.5)
        assert inst.budget == pytest.approx(ds.total_cost() * 0.5)
        with pytest.raises(ValidationError):
            ds.instance_for_fraction(0.0)


class TestRegistry:
    def test_table2_matches_paper(self):
        assert TABLE2["P-1K"].n_photos == 1000
        assert TABLE2["P-1K"].n_subsets == 193
        assert TABLE2["P-100K"].n_subsets == 33721
        assert TABLE2["EC-Fashion"].n_photos == 18745
        assert TABLE2["EC-Electronics"].n_photos == 22783
        assert TABLE2["EC-Home & Garden"].n_photos == 19235
        for name in ("EC-Fashion", "EC-Electronics", "EC-Home & Garden"):
            assert TABLE2[name].n_subsets == 250

    def test_names_in_order(self):
        assert dataset_names()[0] == "P-1K"
        assert len(dataset_names()) == 8

    def test_scaled(self):
        cfg = TABLE2["P-10K"].scaled(0.01)
        assert cfg.n_photos == 100
        assert cfg.n_subsets == 40
        with pytest.raises(ConfigurationError):
            TABLE2["P-10K"].scaled(0)

    def test_load_public(self):
        ds = load("P-1K", scale=0.1, seed=0)
        assert ds.name == "P-1K"
        assert ds.n_photos == 100

    def test_load_ecommerce(self):
        ds = load("EC-Fashion", scale=0.02, seed=0)
        assert ds.source == "ecommerce"
        assert ds.n_photos > 0

    def test_load_unknown(self):
        with pytest.raises(ConfigurationError):
            load("P-2K")


class TestIO:
    def test_roundtrip(self, tmp_path):
        original = generate_public_dataset(30, 6, seed=9)
        path = tmp_path / "ds.json"
        save_dataset(original, path)
        loaded = load_dataset(path)
        assert loaded.name == original.name
        assert loaded.n_photos == original.n_photos
        assert np.allclose(loaded.embeddings, original.embeddings)
        assert [p.cost for p in loaded.photos] == pytest.approx(
            [p.cost for p in original.photos]
        )
        assert [s.subset_id for s in loaded.specs] == [s.subset_id for s in original.specs]
        assert loaded.retained == original.retained

    def test_roundtrip_produces_identical_instances(self, tmp_path):
        from repro.core.objective import score
        from repro.core.solver import solve

        original = generate_public_dataset(30, 6, seed=9)
        path = tmp_path / "ds.json"
        save_dataset(original, path)
        loaded = load_dataset(path)
        budget = original.total_cost() * 0.3
        sol_a = solve(original.instance(budget), "phocus")
        sol_b = solve(loaded.instance(budget), "phocus")
        assert sol_a.selection == sol_b.selection
        assert sol_a.value == pytest.approx(sol_b.value)

    def test_version_check(self, tmp_path):
        import json

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 99}))
        with pytest.raises(ValidationError):
            load_dataset(path)

    def test_creates_parent_dirs(self, tmp_path):
        ds = generate_public_dataset(20, 4, seed=1)
        path = tmp_path / "deep" / "nested" / "ds.json"
        save_dataset(ds, path)
        assert path.exists()
