"""Tests for the access-driven cache policies (LRU/LFU)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.objective import score
from repro.core.solver import solve
from repro.errors import ValidationError
from repro.storage.caching import ByteCapacityCache, replay_accesses

from tests.conftest import random_instance


class TestByteCapacityCache:
    def _sizes(self):
        return {0: 1.0, 1: 1.0, 2: 1.0, 3: 2.0}

    def test_miss_then_hit(self):
        cache = ByteCapacityCache(3.0, self._sizes(), policy="lru")
        assert cache.access(0) is False
        assert cache.access(0) is True

    def test_lru_evicts_oldest(self):
        cache = ByteCapacityCache(2.0, self._sizes(), policy="lru")
        cache.access(0)
        cache.access(1)
        cache.access(0)       # refresh 0 -> 1 is now oldest
        cache.access(2)       # evicts 1
        assert set(cache.resident) == {0, 2}

    def test_lfu_evicts_least_frequent(self):
        cache = ByteCapacityCache(2.0, self._sizes(), policy="lfu")
        cache.access(0)
        cache.access(0)
        cache.access(1)       # freq: 0->2, 1->1
        cache.access(2)       # evicts 1 (lowest frequency)
        assert set(cache.resident) == {0, 2}

    def test_oversized_item_never_admitted(self):
        cache = ByteCapacityCache(1.5, self._sizes(), policy="lru")
        assert cache.access(3) is False
        assert cache.resident == []

    def test_pinned_items_resident_and_protected(self):
        cache = ByteCapacityCache(2.0, self._sizes(), policy="lru", pinned=[0])
        assert cache.access(0) is True  # pinned = pre-admitted
        cache.access(1)
        cache.access(2)  # must evict 1, never 0
        assert 0 in cache.resident

    def test_pinned_exceeding_capacity(self):
        with pytest.raises(ValidationError):
            ByteCapacityCache(1.0, self._sizes(), pinned=[0, 1])

    def test_admission_fails_when_only_pinned_remain(self):
        cache = ByteCapacityCache(2.0, self._sizes(), policy="lru", pinned=[0, 1])
        assert cache.access(2) is False
        assert set(cache.resident) == {0, 1}

    def test_used_bytes_tracks_residents(self):
        cache = ByteCapacityCache(3.0, self._sizes())
        cache.access(0)
        cache.access(3)
        assert cache.used_bytes == pytest.approx(3.0)

    def test_unknown_photo(self):
        cache = ByteCapacityCache(2.0, self._sizes())
        with pytest.raises(ValidationError):
            cache.access(99)

    def test_invalid_construction(self):
        with pytest.raises(ValidationError):
            ByteCapacityCache(0.0, self._sizes())
        with pytest.raises(ValidationError):
            ByteCapacityCache(2.0, self._sizes(), policy="fifo")


class TestReplayAccesses:
    def test_result_fields(self, small_instance):
        result = replay_accesses(
            small_instance, policy="lru", n_visits=100,
            rng=np.random.default_rng(0),
        )
        assert result.accesses > 0
        assert 0.0 <= result.hit_rate <= 1.0
        assert result.final_bytes <= small_instance.budget * (1 + 1e-9)

    def test_deterministic_with_seed(self, small_instance):
        a = replay_accesses(small_instance, n_visits=50, rng=np.random.default_rng(4))
        b = replay_accesses(small_instance, n_visits=50, rng=np.random.default_rng(4))
        assert a.hit_rate == b.hit_rate
        assert a.final_resident == b.final_resident

    def test_lru_and_lfu_both_run(self, small_instance):
        for policy in ("lru", "lfu"):
            result = replay_accesses(
                small_instance, policy=policy, n_visits=60,
                rng=np.random.default_rng(1),
            )
            assert result.policy == policy

    def test_redundancy_blindness_vs_phocus(self):
        """The Section 2 claim: an access-driven cache ends up holding a
        photo set whose PAR objective trails the PHOcus selection, because
        recency/frequency never account for similarity redundancy."""
        losses = 0
        for seed in range(5):
            inst = random_instance(seed=seed, n_photos=24, n_subsets=8,
                                   budget_fraction=0.3)
            phocus_value = solve(inst, "phocus").value
            cache = replay_accesses(
                inst, policy="lru", n_visits=400, rng=np.random.default_rng(seed)
            )
            cache_value = score(inst, cache.final_resident)
            if cache_value < phocus_value - 1e-9:
                losses += 1
        assert losses >= 4
