"""Tests for the instance-diagnostics module."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.instance import DenseSimilarity, PARInstance, Photo, PredefinedSubset
from repro.system.analysis import analyze_instance

from tests.conftest import random_instance


def _instance_with_orphan():
    photos = [Photo(photo_id=i, cost=1.0) for i in range(3)]
    q = PredefinedSubset("q", 1.0, [0, 1], [1, 1], DenseSimilarity(np.eye(2)))
    return PARInstance(photos, [q], budget=2.0)


class TestAnalyzeInstance:
    def test_basic_counts(self, figure1):
        diag = analyze_instance(figure1)
        assert diag.n_photos == 7
        assert diag.n_subsets == 4
        assert diag.budget_fraction == pytest.approx(4.0 / 8.1, rel=1e-3)
        assert diag.mean_subset_size == pytest.approx((3 + 3 + 1 + 2) / 4)
        assert diag.max_subset_size == 3

    def test_orphans_detected(self):
        diag = analyze_instance(_instance_with_orphan())
        assert diag.orphan_photos == [2]
        assert any("no subset" in w for w in diag.warnings)

    def test_singletons_detected(self, figure1):
        diag = analyze_instance(figure1)
        assert diag.singleton_subsets == ["Bookshelf"]

    def test_overlap_degree(self, figure1):
        # Memberships: 9 pairs over 7 photos.
        diag = analyze_instance(figure1)
        assert diag.mean_overlap_degree == pytest.approx(9 / 7)

    def test_generous_budget_warning(self, figure1):
        diag = analyze_instance(figure1.with_budget(1e9))
        assert any("whole corpus" in w for w in diag.warnings)

    def test_heavy_retention_warning(self):
        inst = random_instance(seed=7, retained=2)
        tight = inst.with_budget(inst.cost_of(inst.retained) * 1.2)
        diag = analyze_instance(tight)
        assert any("half the budget" in w for w in diag.warnings)

    def test_no_photo_fits_warning(self, figure1):
        diag = analyze_instance(figure1.with_budget(0.1e6))
        assert any("no single photo fits" in w.lower() for w in diag.warnings)

    def test_sparse_instance_density(self, figure1):
        from repro.sparsify.threshold import threshold_sparsify

        dense_density = analyze_instance(figure1).similarity_density
        sparse, _ = threshold_sparsify(figure1, 0.75)
        sparse_density = analyze_instance(sparse).similarity_density
        assert sparse_density < dense_density

    def test_summary_lines_render(self, figure1):
        lines = analyze_instance(figure1).summary_lines()
        text = "\n".join(lines)
        assert "photos" in text
        assert "budget" in text
        assert "singleton subsets" in text


class TestCliInspect:
    def test_inspect_command(self, capsys):
        from repro.system.cli import main

        code = main(["inspect", "--dataset", "P-1K", "--scale", "0.05"])
        assert code == 0
        out = capsys.readouterr().out
        assert "instance diagnostics" in out
        assert "pre-defined subsets" in out
