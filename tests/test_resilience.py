"""Unit tests for :mod:`repro.resilience` — deadlines, admission, brownout, drain.

The solver-facing contract matters most: an expired deadline must stop
the greedy loop *cooperatively*, carry a resumable checkpoint out with
the exception, and a resume from that checkpoint must be bit-identical
to an undisturbed solve.
"""

from __future__ import annotations

import errno
import threading
import time

import numpy as np
import pytest

from repro import faults
from repro.core.checkpoint import checkpoint_progress
from repro.core.greedy import main_algorithm
from repro.core.solver import classify_failure
from repro.errors import (
    DeadlineExceeded,
    ServiceOverloaded,
    StorageExhausted,
    ValidationError,
)
from repro.faults.plan import FaultPlan
from repro.ioutil import raise_if_no_space
from repro.resilience import (
    AdmissionController,
    BrownoutPolicy,
    Deadline,
    DrainController,
    Resilience,
    SolutionCache,
    deadline_scope,
    solve_cache_key,
)
from repro.resilience import deadline as deadline_mod

from tests.conftest import random_instance


@pytest.fixture(autouse=True)
def always_disarmed():
    yield
    faults.disarm()


# ------------------------------------------------------------------- deadline


class TestDeadline:
    def test_unexpired_and_remaining(self):
        dl = Deadline(60.0)
        assert not dl.expired()
        assert 0 < dl.remaining() <= 60.0

    def test_expires_by_clock(self):
        dl = Deadline(0.005)
        time.sleep(0.02)
        assert dl.expired()
        assert dl.reason() == "deadline"

    def test_interrupt_only_deadline_never_times_out(self):
        dl = Deadline(None)
        assert not dl.expired()
        assert dl.remaining() is None
        dl.expire_now("drain")
        assert dl.expired()
        assert dl.reason() == "drain"

    def test_expire_now_from_another_thread(self):
        dl = Deadline(3600.0)
        t = threading.Thread(target=dl.expire_now, args=("drain",))
        t.start()
        t.join()
        assert dl.expired() and dl.reason() == "drain"

    def test_scope_is_thread_local(self):
        dl = Deadline(60.0)
        seen = {}
        with deadline_scope(dl):
            assert deadline_mod.current() is dl

            def _peek():
                seen["other"] = deadline_mod.current()

            t = threading.Thread(target=_peek)
            t.start()
            t.join()
        assert seen["other"] is None
        assert deadline_mod.current() is None

    def test_nested_scopes_chain_to_parent(self):
        outer = Deadline(3600.0)
        inner = Deadline(3600.0)
        with deadline_scope(outer):
            with deadline_scope(inner):
                assert deadline_mod.current() is inner
                assert not inner.expired()
                outer.expire_now("drain")
                # whichever scope expires first wins, even from the parent
                assert inner.expired()
                assert inner.reason() == "drain"
            assert deadline_mod.current() is outer

    def test_none_scope_is_noop(self):
        with deadline_scope(None):
            assert deadline_mod.current() is None

    def test_check_raises_with_checkpoint(self):
        dl = Deadline(0.0001)
        time.sleep(0.005)
        with deadline_scope(dl):
            with pytest.raises(DeadlineExceeded) as exc_info:
                deadline_mod.check(checkpoint={"progress": {"picks": 3}})
        assert exc_info.value.checkpoint == {"progress": {"picks": 3}}
        assert exc_info.value.progress() == {"picks": 3}

    def test_clock_skew_fault_site(self):
        faults.arm(FaultPlan().on("resilience.clock_skew", "drop"))
        dl = Deadline(3600.0)
        assert dl.expired()
        assert dl.reason() == "clock_skew"

    def test_to_exception_carries_timing(self):
        dl = Deadline(0.001)
        time.sleep(0.005)
        exc = dl.to_exception()
        assert isinstance(exc, DeadlineExceeded)
        assert exc.deadline_seconds == 0.001
        assert exc.elapsed_seconds >= 0.001


# ------------------------------------------------------- deadlines in solvers


class TestSolverDeadline:
    def test_expired_deadline_stops_solve_with_checkpoint(self):
        instance = random_instance(seed=3)
        with deadline_scope(Deadline(0.000001)):
            with pytest.raises(DeadlineExceeded) as exc_info:
                main_algorithm(instance)
        doc = exc_info.value.checkpoint
        assert doc is not None and doc["kind"] == "main_algorithm"
        assert checkpoint_progress(doc) is not None

    def test_drain_interrupt_resumes_bit_identically(self):
        instance = random_instance(seed=3)
        reference = main_algorithm(instance)

        # Interrupt after a few picks via the checkpoint sink, then resume
        # from the carried checkpoint: the final run must be bit-identical.
        dl = Deadline(None)
        picks = {"n": 0}

        def sink(doc):
            picks["n"] += 1
            if picks["n"] >= 3:
                dl.expire_now("drain")

        with deadline_scope(dl):
            with pytest.raises(DeadlineExceeded) as exc_info:
                main_algorithm(instance, checkpoint_every=1, checkpoint_sink=sink)
        resumed = main_algorithm(
            instance, resume_from=exc_info.value.checkpoint
        )
        assert resumed.selection == reference.selection
        assert resumed.value == reference.value
        assert resumed.cost == reference.cost

    def test_no_deadline_means_no_overhead_path(self):
        # Sanity: solves without a scope behave exactly as before.
        instance = random_instance(seed=4)
        run = main_algorithm(instance)
        assert run.selection


# ------------------------------------------------------------------ admission


class TestAdmission:
    def test_capacity_shed(self):
        ctrl = AdmissionController(1)
        with ctrl.admit("a"):
            with pytest.raises(ServiceOverloaded) as exc_info:
                with ctrl.admit("b"):
                    pass
        assert exc_info.value.reason == "capacity"
        assert exc_info.value.retry_after > 0

    def test_tenant_fairness_only_under_contention(self):
        ctrl = AdmissionController(4, tenant_fair_share=0.5)
        # A lone tenant may use every slot.
        from contextlib import ExitStack

        with ExitStack() as stack:
            for _ in range(4):
                stack.enter_context(ctrl.admit("hog"))
        # Under contention the hog is capped at its fair share (2 of 4).
        with ExitStack() as stack:
            stack.enter_context(ctrl.admit("hog"))
            stack.enter_context(ctrl.admit("other"))
            stack.enter_context(ctrl.admit("hog"))
            with pytest.raises(ServiceOverloaded) as exc_info:
                stack.enter_context(ctrl.admit("hog"))
            assert exc_info.value.reason == "tenant_fairness"
            # The other tenant still gets in.
            stack.enter_context(ctrl.admit("other"))

    def test_deadline_unmeetable_shed(self):
        ctrl = AdmissionController(4)
        for _ in range(3):
            ctrl.observe_service_time(1.0)
        with pytest.raises(ServiceOverloaded) as exc_info:
            with ctrl.admit("a", deadline=Deadline(0.01)):
                pass
        assert exc_info.value.reason == "deadline_unmeetable"

    def test_pressure_and_overloaded(self):
        ctrl = AdmissionController(2, target_wait_seconds=1.0)
        assert ctrl.pressure() == 0.0
        ctrl.observe_wait(2.0)
        assert ctrl.pressure() >= 1.0
        assert ctrl.overloaded()

    def test_check_queue_sheds_before_hard_bound(self):
        ctrl = AdmissionController(2, shed_queue_fraction=0.5)
        ctrl.check_queue("a", depth=3, limit=10)  # below watermark: fine
        with pytest.raises(ServiceOverloaded) as exc_info:
            ctrl.check_queue("a", depth=5, limit=10)
        assert exc_info.value.reason == "queue_full_soon"

    def test_check_queue_predicted_wait(self):
        ctrl = AdmissionController(1, target_wait_seconds=0.5)
        ctrl.observe_service_time(1.0)
        with pytest.raises(ServiceOverloaded):
            ctrl.check_queue("a", depth=5, limit=0)  # unbounded queue

    def test_service_time_ewma_fed_by_admit(self):
        ctrl = AdmissionController(2)
        with ctrl.admit("a"):
            time.sleep(0.01)
        snap = ctrl.snapshot()
        assert snap["service_ewma_seconds"] > 0
        assert snap["admitted"] == 1
        assert snap["inflight"] == 0

    def test_retry_after_scales_with_pressure(self):
        ctrl = AdmissionController(1, retry_after_seconds=2.0, target_wait_seconds=1.0)
        base = ctrl.snapshot()["retry_after_seconds"]
        ctrl.observe_wait(10.0)  # pressure 10x
        assert ctrl.snapshot()["retry_after_seconds"] > base
        ctrl.observe_wait(10_000.0)
        assert ctrl.snapshot()["retry_after_seconds"] <= 30.0  # capped


# ------------------------------------------------------------------- brownout


class TestBrownout:
    def test_tier_selection(self):
        policy = BrownoutPolicy(degrade_at=0.5, cache_at=0.9)
        assert policy.tier(0.4, True) == "full"
        assert policy.tier(0.6, False) == "full"  # not opted in
        assert policy.tier(0.6, True) == "sparsified"
        assert policy.tier(0.95, True) == "cached"

    def test_sparsified_payload_strips_certificate(self):
        policy = BrownoutPolicy(tau=0.3)
        cheap = policy.sparsified_payload({"certificate": True, "seed": 7})
        assert cheap["tau"] == 0.3
        assert "certificate" not in cheap
        assert cheap["seed"] == 7

    def test_labels(self):
        policy = BrownoutPolicy()
        doc = policy.label_sparsified({"value": 1.0}, pressure=0.8)
        assert doc["degraded"]["mode"] == "sparsified"
        replay = policy.label_cached({"value": 1.0}, age_seconds=2.0, pressure=1.0)
        assert replay["degraded"]["mode"] == "cached"
        assert replay["degraded"]["age_seconds"] == 2.0
        assert policy.snapshot()["degraded_responses"] == 2

    def test_cache_roundtrip_and_ttl(self):
        cache = SolutionCache(capacity_bytes=1 << 20, ttl_seconds=0.05)
        key = solve_cache_key("t", "i", 1, None, {"algorithm": "phocus"})
        cache.put(key, {"value": 2.5})
        response, age = cache.get(key)
        assert response == {"value": 2.5} and age >= 0
        time.sleep(0.06)
        assert cache.get(key) is None  # TTL expired

    def test_cache_refuses_degraded_responses(self):
        cache = SolutionCache()
        key = solve_cache_key("t", "i", 1, None, {})
        cache.put(key, {"value": 1.0, "degraded": {"mode": "cached"}})
        assert cache.get(key) is None

    def test_cache_key_distinguishes_solve_identity(self):
        base = ("t", "i", 1, None)
        k1 = solve_cache_key(*base, {"algorithm": "phocus", "seed": 1})
        k2 = solve_cache_key(*base, {"algorithm": "phocus", "seed": 2})
        k3 = solve_cache_key("t", "i", 2, None, {"algorithm": "phocus", "seed": 1})
        assert len({k1, k2, k3}) == 3


# ---------------------------------------------------------------------- drain


class TestDrain:
    def test_forward_only_state_machine(self):
        drain = DrainController(grace_seconds=1.0)
        assert drain.accepting() and not drain.draining()
        assert drain.begin() is True
        assert drain.begin() is False  # idempotent
        assert drain.draining() and drain.state == DrainController.DRAINING
        drain.finish()
        assert drain.state == DrainController.DRAINED
        assert drain.draining()
        snap = drain.snapshot()
        assert snap["state"] == "drained" and "drain_seconds" in snap

    def test_wait_unblocks_on_begin(self):
        drain = DrainController()
        assert drain.wait(timeout=0.01) is False
        drain.begin()
        assert drain.wait(timeout=0.01) is True


# ------------------------------------------------------------------ the bundle


class TestResilienceBundle:
    def test_defaults(self):
        res = Resilience()
        assert res.admission is None and res.brownout is None
        assert res.drain.accepting()
        assert res.ready() and res.pressure() == 0.0
        assert res.request_deadline(None) is None

    def test_request_deadline_fallback(self):
        res = Resilience(default_deadline_ms=250)
        assert res.request_deadline(None).seconds == 0.25
        assert res.request_deadline(100.0).seconds == 0.1

    def test_not_ready_while_draining_or_overloaded(self):
        res = Resilience(admission=AdmissionController(1, target_wait_seconds=1.0))
        assert res.ready()
        res.admission.observe_wait(5.0)
        assert not res.ready()
        res2 = Resilience()
        res2.drain.begin()
        assert not res2.ready()

    def test_snapshot_shape(self):
        res = Resilience(
            admission=AdmissionController(2),
            brownout=BrownoutPolicy(),
            default_deadline_ms=500,
        )
        snap = res.snapshot()
        assert set(snap) == {"drain", "admission", "brownout", "default_deadline_ms"}


# ------------------------------------------------- failure classification etc.


class TestErrorsAndClassification:
    def test_deadline_exceeded_is_permanent(self):
        # Retrying for a client that already gave up burns capacity.
        assert classify_failure(DeadlineExceeded("late")) == "permanent"

    def test_storage_exhausted_is_transient(self):
        # Space can be reclaimed; a retried job can plausibly succeed.
        assert classify_failure(StorageExhausted("disk full")) == "transient"

    def test_raise_if_no_space_converts_enospc(self):
        exc = OSError(errno.ENOSPC, "No space left on device")
        with pytest.raises(StorageExhausted) as exc_info:
            raise_if_no_space(exc, "/some/journal.jsonl")
        assert exc_info.value.errno_value == errno.ENOSPC
        assert exc_info.value.path == "/some/journal.jsonl"
        assert exc_info.value.kind == "storage_exhausted"

    def test_raise_if_no_space_ignores_other_errnos(self):
        raise_if_no_space(OSError(errno.EACCES, "denied"), "/p")  # no raise

    def test_injected_faults_without_errno_stay_unconverted(self):
        raise_if_no_space(OSError("synthetic"), "/p")  # errno None: no raise
