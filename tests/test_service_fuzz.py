"""Fuzzing the service dispatcher: malformed input must never crash it.

The service boundary promises: bad requests yield 4xx with an ``error``
field; only genuine internal faults may yield 500.  Hypothesis throws
arbitrary JSON documents and byte strings at every endpoint and checks
the contract — a 500 on user-supplied input is a bug.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.system.service import handle_request

json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(-10**6, 10**6)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=10), children, max_size=4),
    max_leaves=12,
)


@settings(max_examples=80, deadline=None)
@given(doc=json_values)
def test_solve_never_500s_on_arbitrary_json(doc):
    body = json.dumps(doc).encode("utf-8")
    status, payload = handle_request("POST", "/solve", body)
    assert status in (200, 400, 422), f"unexpected status {status}: {payload}"
    if status != 200:
        assert "error" in payload


@settings(max_examples=80, deadline=None)
@given(doc=json_values)
def test_score_never_500s_on_arbitrary_json(doc):
    body = json.dumps(doc).encode("utf-8")
    status, payload = handle_request("POST", "/score", body)
    assert status in (200, 400, 422), f"unexpected status {status}: {payload}"


@settings(max_examples=60, deadline=None)
@given(raw=st.binary(max_size=200))
def test_raw_bytes_never_500(raw):
    status, payload = handle_request("POST", "/solve", raw)
    assert status in (200, 400, 422)


@settings(max_examples=40, deadline=None)
@given(path=st.text(max_size=30), method=st.sampled_from(["GET", "POST", "PUT"]))
def test_unknown_routes_are_404(path, method):
    if (method, "/" + path) in (
        ("GET", "/health"), ("GET", "/algorithms"),
        ("POST", "/solve"), ("POST", "/score"),
    ):
        return
    status, _ = handle_request(method, "/" + path, b"{}")
    assert status == 404


@settings(max_examples=40, deadline=None)
@given(doc=json_values)
def test_instance_field_fuzzing(doc):
    """A structurally plausible envelope with a fuzzed instance field."""
    body = json.dumps({"instance": doc, "algorithm": "phocus"}).encode("utf-8")
    status, payload = handle_request("POST", "/solve", body)
    assert status in (200, 400, 422)
    if status != 200:
        assert "error" in payload
