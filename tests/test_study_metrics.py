"""Tests for the selection-agreement metrics."""

from __future__ import annotations

import pytest

from repro.core.bruteforce import branch_and_bound
from repro.core.solver import solve
from repro.study.metrics import (
    agreement_report,
    byte_weighted_overlap,
    jaccard,
    precision_recall,
    quality_ratio,
)

from tests.conftest import random_instance


class TestJaccard:
    def test_identical(self):
        assert jaccard([1, 2, 3], [3, 2, 1]) == 1.0

    def test_disjoint(self):
        assert jaccard([1, 2], [3, 4]) == 0.0

    def test_partial(self):
        assert jaccard([1, 2, 3], [2, 3, 4]) == pytest.approx(0.5)

    def test_both_empty(self):
        assert jaccard([], []) == 1.0


class TestPrecisionRecall:
    def test_perfect(self):
        assert precision_recall([1, 2], [1, 2]) == (1.0, 1.0)

    def test_subset_selection(self):
        precision, recall = precision_recall([1], [1, 2])
        assert precision == 1.0
        assert recall == 0.5

    def test_superset_selection(self):
        precision, recall = precision_recall([1, 2, 3, 4], [1, 2])
        assert precision == 0.5
        assert recall == 1.0

    def test_empty_conventions(self):
        assert precision_recall([], [1]) == (1.0, 0.0)
        assert precision_recall([1], []) == (0.0, 1.0)


class TestByteWeighted:
    def test_weighting_by_cost(self, figure1):
        # Gold = {p1 (1.2 Mb), p2 (0.7 Mb)}; selection recovers only p1.
        overlap = byte_weighted_overlap(figure1, [0], [0, 1])
        assert overlap == pytest.approx(1.2 / 1.9)

    def test_empty_gold(self, figure1):
        assert byte_weighted_overlap(figure1, [0], []) == 1.0


class TestQualityRatio:
    def test_gold_ratio_is_one(self, figure1):
        gold = branch_and_bound(figure1).selection
        assert quality_ratio(figure1, gold, gold) == pytest.approx(1.0)

    def test_phocus_near_gold(self, figure1):
        gold = branch_and_bound(figure1).selection
        sel = solve(figure1, "phocus").selection
        assert quality_ratio(figure1, sel, gold) == pytest.approx(1.0)

    def test_empty_selection_scores_zero_ratio(self, figure1):
        gold = branch_and_bound(figure1).selection
        assert quality_ratio(figure1, [], gold) == 0.0

    def test_zero_gold(self, figure1):
        assert quality_ratio(figure1, [0], []) == 1.0


class TestAgreementReport:
    def test_all_keys_present(self, small_instance):
        gold = branch_and_bound(small_instance).selection
        sel = solve(small_instance, "phocus").selection
        report = agreement_report(small_instance, sel, gold)
        assert set(report) == {
            "jaccard", "precision", "recall",
            "byte_weighted_overlap", "quality_ratio",
        }
        for value in report.values():
            assert value >= 0.0

    def test_equal_quality_despite_different_photos(self):
        """The metric design point: substitutable near-duplicates can give
        low Jaccard but quality_ratio ≈ 1 — which is why the paper judges
        by preference, not set overlap."""
        inst = random_instance(seed=5, n_photos=16, n_subsets=4)
        gold = branch_and_bound(inst).selection
        sel = solve(inst, "phocus").selection
        report = agreement_report(inst, sel, gold)
        assert report["quality_ratio"] >= 0.85
