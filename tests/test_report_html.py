"""Tests for the static HTML archive report."""

from __future__ import annotations

import pytest

from repro.system.phocus import PHOcus, PhocusConfig
from repro.system.report_html import render_report_html, write_report_html


@pytest.fixture(scope="module")
def report_and_instance():
    from repro.core.paper_example import figure1_instance

    instance = figure1_instance(4.0)
    report = PHOcus(PhocusConfig(certificate=True)).run(instance)
    return report, instance


class TestRenderReportHtml:
    def test_is_complete_html(self, report_and_instance):
        report, instance = report_and_instance
        page = render_report_html(report, instance)
        assert page.startswith("<!doctype html>")
        assert page.endswith("</html>")
        assert "PHOcus archive report" in page

    def test_headline_numbers_present(self, report_and_instance):
        report, instance = report_and_instance
        page = render_report_html(report, instance)
        assert f"{report.solution.value:.3f}" in page
        assert "photos retained" in page
        assert "budget used" in page

    def test_certificate_rendered(self, report_and_instance):
        report, instance = report_and_instance
        page = render_report_html(report, instance)
        assert "certified" in page
        assert "online bound" in page

    def test_subset_rows_and_bars(self, report_and_instance):
        report, instance = report_and_instance
        page = render_report_html(report, instance)
        for subset_id in ("Bikes", "Cats", "Bookshelf", "Books"):
            assert subset_id in page
        assert page.count('class="bar"') == 4

    def test_retained_photo_table(self, report_and_instance):
        report, instance = report_and_instance
        page = render_report_html(report, instance)
        for p in report.solution.selection:
            assert f"<td>{p}</td>" in page

    def test_without_instance_detail(self, report_and_instance):
        report, _ = report_and_instance
        page = render_report_html(report)
        assert "Retained photos" not in page
        assert "Coverage by pre-defined subset" in page

    def test_escapes_labels(self):
        import numpy as np

        from repro.core.instance import (
            DenseSimilarity, PARInstance, Photo, PredefinedSubset,
        )

        photos = [Photo(0, 1.0, label="<script>alert(1)</script>")]
        q = PredefinedSubset(
            "<b>evil</b>", 1.0, [0], [1.0], DenseSimilarity(np.ones((1, 1)))
        )
        inst = PARInstance(photos, [q], budget=2.0)
        report = PHOcus(PhocusConfig(certificate=False)).run(inst)
        page = render_report_html(report, inst)
        assert "<script>" not in page
        assert "&lt;script&gt;" in page
        assert "<b>evil</b>" not in page

    def test_sparsified_report_mentions_tau(self, report_and_instance):
        from repro.core.paper_example import figure1_instance

        instance = figure1_instance(4.0)
        report = PHOcus(PhocusConfig(tau=0.6, certificate=False)).run(instance)
        page = render_report_html(report, instance)
        assert "τ-sparsification" in page
        assert "Theorem 4.8" in page


class TestWriteReportHtml:
    def test_writes_file(self, tmp_path, report_and_instance):
        report, instance = report_and_instance
        path = write_report_html(report, tmp_path / "deep" / "report.html", instance)
        assert path.exists()
        assert path.read_text(encoding="utf-8").startswith("<!doctype html>")
