"""Cross-module integration tests: the full pipelines end to end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.objective import max_score, score
from repro.core.solver import solve
from repro.datasets.public import generate_public_dataset
from repro.datasets.ecommerce import generate_ecommerce_dataset
from repro.sparsify.pipeline import sparsify_instance
from repro.storage.policy import brand_contract_policy, derive_retained
from repro.storage.workload import replay_page_workload
from repro.study.manual import simulated_analyst
from repro.system.phocus import PHOcus, PhocusConfig


@pytest.fixture(scope="module")
def public_dataset():
    return generate_public_dataset(150, 25, name="int-P", seed=11)


@pytest.fixture(scope="module")
def ec_dataset():
    return generate_ecommerce_dataset("Electronics", 80, n_queries=20, seed=11)


class TestPublicPipeline:
    def test_phocus_beats_all_baselines(self, public_dataset):
        """The Figure 5a ordering on a generated instance."""
        inst = public_dataset.instance(public_dataset.total_cost() * 0.15)
        values = {
            alg: solve(inst, alg, rng=np.random.default_rng(0)).value
            for alg in ("phocus", "greedy-ncs", "greedy-nr", "rand-a")
        }
        assert values["phocus"] >= values["greedy-ncs"] - 1e-9
        assert values["phocus"] > values["greedy-nr"]
        assert values["phocus"] > values["rand-a"]

    def test_quality_monotone_in_budget(self, public_dataset):
        fractions = (0.05, 0.15, 0.4, 1.0)
        values = []
        for f in fractions:
            inst = public_dataset.instance(public_dataset.total_cost() * f)
            values.append(solve(inst, "phocus").value)
        for earlier, later in zip(values, values[1:]):
            assert later >= earlier - 1e-9
        # Full budget reaches the ceiling.
        inst_full = public_dataset.instance(public_dataset.total_cost())
        assert values[-1] == pytest.approx(max_score(inst_full))

    def test_sparsified_pipeline_close_to_dense(self, public_dataset):
        inst = public_dataset.instance(public_dataset.total_cost() * 0.2)
        dense = PHOcus(PhocusConfig(certificate=False)).run(inst)
        sparse = PHOcus(PhocusConfig(tau=0.5, certificate=False, seed=0)).run(inst)
        assert sparse.solution.value >= 0.9 * dense.solution.value
        assert sparse.sparsify.kept_fraction < 1.0

    def test_lsh_pipeline_end_to_end(self, public_dataset):
        inst = public_dataset.instance(public_dataset.total_cost() * 0.2)
        report = PHOcus(
            PhocusConfig(tau=0.6, sparsify_method="lsh", certificate=True, seed=2)
        ).run(inst)
        assert inst.feasible(report.solution.selection)
        assert report.solution.ratio_certificate > 0.3
        assert report.sparsify.checked_fraction <= 1.0


class TestEcommercePipeline:
    def test_contract_photos_survive_archival(self, ec_dataset):
        inst = ec_dataset.instance(ec_dataset.total_cost() * 0.1)
        report = PHOcus(PhocusConfig(certificate=False)).run(inst)
        assert set(ec_dataset.retained).issubset(set(report.solution.selection))

    def test_policy_engine_matches_generator_contracts(self, ec_dataset):
        policy = brand_contract_policy(ec_dataset.extras["contract_brands"])
        pinned = derive_retained(ec_dataset.photos, [policy])
        # Generator pins a (capped) subset of the contract-brand photos.
        assert set(ec_dataset.retained).issubset(set(pinned))

    def test_selection_improves_operational_metrics(self, ec_dataset):
        inst = ec_dataset.instance(ec_dataset.total_cost() * 0.15)
        phocus_sel = solve(inst, "phocus").selection
        rand_sel = solve(inst, "rand-a", rng=np.random.default_rng(3)).selection
        phocus_ops = replay_page_workload(
            inst, phocus_sel, n_visits=200, rng=np.random.default_rng(5)
        )
        rand_ops = replay_page_workload(
            inst, rand_sel, n_visits=200, rng=np.random.default_rng(5)
        )
        assert phocus_ops.hit_rate >= rand_ops.hit_rate

    def test_analyst_vs_phocus_study_shape(self, ec_dataset):
        """Figure 5g/5h shape: PHOcus at least as good, vastly faster."""
        inst = ec_dataset.instance(ec_dataset.total_cost() * 0.15)
        manual = simulated_analyst(inst, rng=np.random.default_rng(0))
        auto = solve(inst, "phocus")
        assert auto.value >= score(inst, manual.selection) * 0.95
        # The simulated manual hours dwarf the actual solver seconds.
        assert manual.seconds > auto.elapsed_seconds * 100


class TestServiceRoundTrip:
    def test_dataset_to_service_to_report(self, public_dataset):
        """The full deployment loop: generate → serialise → HTTP solve →
        verify locally → render the analyst report."""
        import json
        import urllib.request

        from repro.core.serialize import instance_to_dict
        from repro.system.report_html import render_report_html
        from repro.system.service import PhocusService

        inst = public_dataset.instance(public_dataset.total_cost() * 0.2)
        with PhocusService() as service:
            req = urllib.request.Request(
                f"http://{service.address}/solve",
                data=json.dumps(
                    {"instance": instance_to_dict(inst), "tau": 0.5,
                     "seed": 0, "certificate": True}
                ).encode("utf-8"),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with urllib.request.urlopen(req) as resp:
                remote = json.loads(resp.read())
        assert inst.feasible(remote["selection"])
        assert remote["value"] == pytest.approx(score(inst, remote["selection"]))
        # The remote result feeds straight into the analyst report.
        report = PHOcus(PhocusConfig(certificate=False)).run(inst)
        page = render_report_html(report, inst)
        assert "Coverage by pre-defined subset" in page


class TestWeightAdjustmentWorkflow:
    def test_boost_changes_archival_outcome(self, ec_dataset):
        """An analyst boosting a neglected page gets it covered."""
        inst = ec_dataset.instance(ec_dataset.total_cost() * 0.05)
        base = PHOcus(PhocusConfig(certificate=False)).run(inst)
        # Find the least-covered page and boost it hard.
        worst_page, worst_value = base.worst_covered_subsets[0]
        boosted = inst.with_adjusted_weights({worst_page: 50.0})
        after = PHOcus(PhocusConfig(certificate=False)).run(boosted)
        weight = next(
            q.weight for q in inst.subsets if q.subset_id == worst_page
        )
        base_cov = base.subset_scores[worst_page] / weight
        after_cov = after.subset_scores[worst_page] / (weight * 50.0)
        assert after_cov >= base_cov - 1e-9


class TestRestrictionWorkflow:
    def test_subsample_solve_round_trip(self, public_dataset):
        """The user-study protocol: restrict to 40 photos, solve, verify."""
        inst = public_dataset.instance(public_dataset.total_cost())
        rng = np.random.default_rng(4)
        ids = sorted(int(p) for p in rng.choice(inst.n, size=40, replace=False))
        sub = inst.restricted(ids, budget=1.0)
        sub = sub.with_budget(sub.total_cost() * 0.3)
        sol = solve(sub, "phocus")
        assert sub.feasible(sol.selection)
        assert 0 < sol.value <= max_score(sub) + 1e-9
