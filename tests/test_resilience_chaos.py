"""Chaos tests for graceful drain: interrupt, requeue, crash, resume.

The drain contract under fire: a drained job goes back to QUEUED with
its latest checkpoint and a fresh manager on the same journal resumes
it *bit-identically*; a worker killed mid-drain (during the requeue
journal write) loses nothing the journal had not already persisted; and
a drain never strands a tenant-cache lease or a shared-memory segment.
"""

from __future__ import annotations

import contextlib
import glob
import os
import threading
import time

import pytest

from repro import faults
from repro.core.serialize import instance_to_dict
from repro.errors import ServiceOverloaded
from repro.faults.plan import FaultPlan, ProcessKilled
from repro.jobs import JobManager, JobState, execute_solve_payload
from repro.jobs.spec import JobSpec
from repro.tenants import Tenants

from tests.conftest import random_instance

CHAOS_SEED = int(os.environ.get("PHOCUS_CHAOS_SEED", "0"))


@pytest.fixture(autouse=True)
def always_disarmed():
    yield
    faults.disarm()


@contextlib.contextmanager
def quiet_process_kills():
    previous = threading.excepthook

    def _hook(args):
        if not issubclass(args.exc_type, ProcessKilled):
            previous(args)

    threading.excepthook = _hook
    try:
        yield
    finally:
        threading.excepthook = previous


def _doc(seed=0, **kw):
    return instance_to_dict(random_instance(seed, **kw))


def _shm_segments(prefix):
    return glob.glob(f"/dev/shm/{prefix}-*")


def _gated_solve(started: threading.Event, release: threading.Event):
    """A checkpointing solve that parks after its first checkpoint.

    The park happens *inside* the solver loop (in the checkpoint sink),
    so a drain interrupts a genuinely mid-solve job: the deadline handle
    trips while the job holds a real partial selection, and the requeued
    checkpoint must reproduce the rest of the solve exactly.
    """

    def run(spec, *, checkpoint_sink=None, resume_from=None):
        def sink(cp):
            if checkpoint_sink is not None:
                checkpoint_sink(cp)
            if not started.is_set():
                started.set()
                release.wait(15)

        return execute_solve_payload(
            spec.solve_payload(), checkpoint_sink=sink, resume_from=resume_from
        )

    return run


def _reference_result(doc):
    return execute_solve_payload({"instance": doc, "algorithm": "phocus"})


# ------------------------------------------------------------- drain + resume


def test_drain_mid_solve_requeues_and_resumes_bit_identically(tmp_path):
    journal = str(tmp_path / "jobs.jsonl")
    doc = _doc(7 + CHAOS_SEED, n_photos=40, budget_fraction=0.5)
    started, release = threading.Event(), threading.Event()

    jobs = JobManager(
        workers=1, journal_path=journal, solve_fn=_gated_solve(started, release)
    )
    job_id = jobs.submit(
        JobSpec(job_id="drain-me", instance=doc, checkpoint_every=1)
    )
    assert started.wait(10)

    # Un-park the solver shortly after the drain has tripped its deadline;
    # the next cooperative check raises and the job requeues.
    threading.Timer(0.3, release.set).start()
    summary = jobs.drain(grace_seconds=10.0)
    assert summary == {"interrupted": 1, "forced_requeue": 0}

    # The journal now holds the job QUEUED with a mid-solve checkpoint.
    with JobManager(workers=0, journal_path=journal, autostart=False) as parked:
        doc_after = parked.status(job_id)
        assert doc_after["state"] == JobState.QUEUED.value
        assert doc_after["checkpoint_progress"]["picks"] >= 1

    # A fresh manager resumes from that checkpoint and the final answer
    # is exactly the undisturbed solve — not merely close.
    with JobManager(workers=1, journal_path=journal) as fresh:
        assert fresh.wait(job_id, timeout=30)["state"] == JobState.SUCCEEDED.value
        resumed = fresh.result(job_id)
    reference = _reference_result(doc)
    assert resumed["selection"] == reference["selection"]
    assert resumed["value"] == reference["value"]
    assert resumed["cost"] == reference["cost"]


def test_drain_is_idempotent_and_sheds_new_submissions(tmp_path):
    doc = _doc(1)
    started, release = threading.Event(), threading.Event()
    jobs = JobManager(
        workers=1,
        journal_path=str(tmp_path / "j.jsonl"),
        solve_fn=_gated_solve(started, release),
    )
    jobs.submit(JobSpec(job_id="running", instance=doc, checkpoint_every=1))
    assert started.wait(10)

    # Submissions arriving *during* the drain shed with a structured
    # overload error, not a silent enqueue (and not a crash).
    def late_submit():
        time.sleep(0.1)
        with pytest.raises(ServiceOverloaded) as info:
            jobs.submit(JobSpec(job_id="late", instance=doc))
        shed_reasons.append(info.value.reason)

    shed_reasons = []
    prober = threading.Thread(target=late_submit)
    prober.start()
    threading.Timer(0.4, release.set).start()
    first = jobs.drain(grace_seconds=10.0)
    prober.join(10)
    assert shed_reasons == ["draining"]
    assert first == {"interrupted": 1, "forced_requeue": 0}
    # A second drain is a no-op, not an error.
    assert jobs.drain(grace_seconds=1.0)["interrupted"] == 0


# --------------------------------------------------------- killed mid-drain


def test_worker_killed_mid_drain_journal_still_resumes(tmp_path):
    """Kill the worker thread during the drain's requeue journal write.

    The drain must still converge (force-requeueing the straggler from
    the main thread once the fault has burned out), and a fresh manager
    on the same journal must replay the job — from whichever snapshot
    survived — to the bit-identical final answer.
    """
    journal = str(tmp_path / "jobs.jsonl")
    doc = _doc(11 + CHAOS_SEED, n_photos=40, budget_fraction=0.5)
    started, release = threading.Event(), threading.Event()

    jobs = JobManager(
        workers=1, journal_path=journal, solve_fn=_gated_solve(started, release)
    )
    job_id = jobs.submit(
        JobSpec(job_id="kill-mid-drain", instance=doc, checkpoint_every=1)
    )
    assert started.wait(10)

    # Armed now, the next journal append — the drain's RUNNING → QUEUED
    # requeue, written on the worker thread — dies mid-write.
    plan = FaultPlan(seed=CHAOS_SEED).on("journal.write", "kill")
    with quiet_process_kills(), faults.armed(plan):
        threading.Timer(0.3, release.set).start()
        summary = jobs.drain(grace_seconds=2.0)
    assert plan.fired("journal.write") == 1
    assert summary["interrupted"] == 1

    # Whatever the crash left behind — the requeue line, a torn line the
    # replay quarantines, or only the earlier RUNNING snapshot with its
    # checkpoint — a fresh manager finishes the job identically.
    with JobManager(workers=1, journal_path=journal) as fresh:
        assert fresh.wait(job_id, timeout=30)["state"] == JobState.SUCCEEDED.value
        resumed = fresh.result(job_id)
    reference = _reference_result(doc)
    assert resumed["selection"] == reference["selection"]
    assert resumed["value"] == reference["value"]


# --------------------------------------------------------------- lease drain


class _GatedResolver:
    """Lease-counting by_ref resolver that parks each solve mid-lease."""

    def __init__(self, tenants, started, release):
        self._tenants = tenants
        self._started = started
        self._release = release
        self.open_leases = 0

    @contextlib.contextmanager
    def __call__(self, by_ref):
        with self._tenants.lease_for_solve(by_ref) as (instance, _hit):
            self.open_leases += 1
            try:
                self._started.set()
                self._release.wait(15)
                yield instance
            finally:
                self.open_leases -= 1


def test_drain_releases_tenant_leases_and_segments(tmp_path):
    prefix = f"phtest-{os.getpid()}-chaos-drain"
    tenants = Tenants(str(tmp_path / "tenants"), name_prefix=prefix, sweep=False)
    tenants.put_instance(
        "acme", "p", _doc(3 + CHAOS_SEED, n_photos=40, budget_fraction=0.5)
    )
    started, release = threading.Event(), threading.Event()
    resolver = _GatedResolver(tenants, started, release)

    jobs = JobManager(
        workers=1,
        journal_path=str(tmp_path / "jobs.jsonl"),
        by_ref_resolver=resolver,
    )
    jobs.submit(
        JobSpec(
            job_id="lease-drain",
            by_ref={"tenant": "acme", "instance_id": "p", "version": 1},
            checkpoint_every=1,
        )
    )
    assert started.wait(10)
    assert resolver.open_leases == 1

    threading.Timer(0.3, release.set).start()
    summary = jobs.drain(grace_seconds=10.0)
    assert summary["interrupted"] == 1

    # The interrupted solve unwound its cache lease on the way out, so
    # closing the tenant store unlinks every shared-memory segment.
    assert resolver.open_leases == 0
    tenants.close()
    assert _shm_segments(prefix) == []
    assert tenants.cache.stats()["zombie_segments"] == 0


def test_forced_requeue_of_noncooperative_solve(tmp_path):
    """A solve stuck past the grace window is abandoned, not waited on:
    drain force-requeues it from the journal's last checkpoint and a
    fresh manager still completes it correctly."""
    journal = str(tmp_path / "jobs.jsonl")
    doc = _doc(5 + CHAOS_SEED, n_photos=40, budget_fraction=0.5)
    started, release = threading.Event(), threading.Event()

    jobs = JobManager(
        workers=1, journal_path=journal, solve_fn=_gated_solve(started, release)
    )
    job_id = jobs.submit(
        JobSpec(job_id="stuck", instance=doc, checkpoint_every=1)
    )
    assert started.wait(10)

    # Never release within the grace window: the solve ignores its
    # tripped deadline (models a stuck C call).
    summary = jobs.drain(grace_seconds=0.5)
    assert summary == {"interrupted": 1, "forced_requeue": 1}
    release.set()  # let the abandoned thread unwind

    with JobManager(workers=1, journal_path=journal) as fresh:
        assert fresh.wait(job_id, timeout=30)["state"] == JobState.SUCCEEDED.value
        resumed = fresh.result(job_id)
    reference = _reference_result(doc)
    assert resumed["selection"] == reference["selection"]
    assert resumed["value"] == reference["value"]
