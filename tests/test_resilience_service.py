"""Service-level resilience tests: 503 shedding, 504 deadlines, 507 disk-full,
brownout labeling, readiness, and the ``Retry-After`` header."""

from __future__ import annotations

import errno
import json
import urllib.error
import urllib.request

import pytest

from repro import faults
from repro.core.serialize import instance_to_dict
from repro.faults.plan import FaultPlan
from repro.jobs import JobManager
from repro.resilience import (
    AdmissionController,
    BrownoutPolicy,
    Resilience,
)
from repro.system.service import PhocusService, handle_request

from tests.conftest import random_instance


def _body(payload) -> bytes:
    return json.dumps(payload).encode("utf-8")


@pytest.fixture(autouse=True)
def always_disarmed():
    yield
    faults.disarm()


@pytest.fixture
def instance_doc():
    return instance_to_dict(random_instance(seed=0))


def _resilience(**kw) -> Resilience:
    kw.setdefault("admission", AdmissionController(2, retry_after_seconds=2.0))
    return Resilience(**kw)


class TestReadiness:
    def test_ready_without_bundle(self):
        status, doc = handle_request("GET", "/readyz", None)
        assert status == 200 and doc["status"] == "ready"

    def test_unready_while_draining(self):
        res = _resilience()
        res.drain.begin()
        status, doc = handle_request("GET", "/readyz", None, resilience=res)
        assert status == 503
        assert doc["status"] == "unready" and doc["draining"] is True

    def test_unready_while_overloaded(self):
        res = Resilience(
            admission=AdmissionController(1, target_wait_seconds=1.0)
        )
        res.admission.observe_wait(10.0)
        status, doc = handle_request("GET", "/readyz", None, resilience=res)
        assert status == 503 and doc["overloaded"] is True

    def test_healthz_stays_alive_during_drain(self):
        res = _resilience()
        res.drain.begin()
        status, doc = handle_request("GET", "/healthz", None, resilience=res)
        assert status == 200  # liveness never gates on drain


class TestShedding:
    def test_solve_shed_at_capacity(self, instance_doc):
        res = _resilience()
        with res.admission.admit("x"), res.admission.admit("y"):
            status, doc = handle_request(
                "POST", "/solve", _body({"instance": instance_doc}), resilience=res
            )
        assert status == 503
        assert doc["reason"] == "capacity"
        assert doc["retry_after"] > 0

    def test_draining_sheds_posts_but_not_gets(self, instance_doc):
        res = _resilience()
        res.drain.begin()
        status, doc = handle_request(
            "POST", "/solve", _body({"instance": instance_doc}), resilience=res
        )
        assert status == 503 and doc["reason"] == "draining"
        status, _ = handle_request("GET", "/version", None, resilience=res)
        assert status == 200

    def test_job_submission_shed_before_hard_bound(self, instance_doc):
        res = Resilience(
            admission=AdmissionController(2, shed_queue_fraction=0.5)
        )
        with JobManager(workers=0, queue_depth=4, autostart=False) as jobs:
            for _ in range(2):  # fill to the 0.5 watermark of 4
                handle_request(
                    "POST", "/jobs", _body({"instance": instance_doc}), jobs
                )
            status, doc = handle_request(
                "POST",
                "/jobs",
                _body({"instance": instance_doc}),
                jobs,
                resilience=res,
            )
        assert status == 503 and doc["reason"] == "queue_full_soon"

    def test_queue_full_429_carries_retry_after(self, instance_doc):
        with JobManager(workers=0, queue_depth=1, autostart=False) as jobs:
            handle_request("POST", "/jobs", _body({"instance": instance_doc}), jobs)
            status, doc = handle_request(
                "POST", "/jobs", _body({"instance": instance_doc}), jobs
            )
        assert status == 429
        assert doc["retry_after"] > 0

    def test_deadline_unmeetable_shed(self, instance_doc):
        res = _resilience()
        for _ in range(3):
            res.admission.observe_service_time(5.0)
        status, doc = handle_request(
            "POST",
            "/solve",
            _body({"instance": instance_doc, "deadline_ms": 1.0}),
            resilience=res,
        )
        assert status == 503 and doc["reason"] == "deadline_unmeetable"


class TestDeadline504:
    def test_expired_deadline_is_504_with_progress(self, instance_doc):
        faults.arm(FaultPlan().on("resilience.slow_solve", "drop", times=None))
        status, doc = handle_request(
            "POST",
            "/solve",
            _body({"instance": instance_doc, "deadline_ms": 5.0}),
        )
        assert status == 504
        assert doc["reason"] == "deadline"
        assert doc["progress"] is not None  # checkpoint travelled out

    def test_deadline_applies_without_bundle(self, instance_doc):
        # deadline_ms in the body works even on a service with no bundle.
        faults.arm(FaultPlan().on("resilience.slow_solve", "drop", times=None))
        status, doc = handle_request(
            "POST",
            "/solve",
            _body({"instance": instance_doc, "deadline_ms": 5.0}),
        )
        assert status == 504

    def test_generous_deadline_solves_normally(self, instance_doc):
        status, doc = handle_request(
            "POST",
            "/solve",
            _body({"instance": instance_doc, "deadline_ms": 600000}),
        )
        assert status == 200 and "degraded" not in doc

    def test_invalid_deadline_is_422(self, instance_doc):
        status, doc = handle_request(
            "POST",
            "/solve",
            _body({"instance": instance_doc, "deadline_ms": -5}),
        )
        assert status == 422

    def test_job_deadline_from_body(self, instance_doc):
        with JobManager(workers=0, queue_depth=4, autostart=False) as jobs:
            status, doc = handle_request(
                "POST",
                "/jobs",
                _body({"instance": instance_doc, "deadline_ms": 60000}),
                jobs,
            )
            assert status == 202
            status, doc = handle_request(
                "GET", f"/jobs/{doc['job_id']}", None, jobs
            )
            assert doc["spec"]["deadline_ms"] == 60000


class TestStorageExhausted507:
    def test_journal_enospc_is_structured_507(self, tmp_path, instance_doc):
        faults.arm(
            FaultPlan().on(
                "journal.write",
                "raise",
                exc=lambda: OSError(errno.ENOSPC, "No space left on device"),
            )
        )
        with JobManager(
            workers=0, queue_depth=4, autostart=False,
            journal_path=str(tmp_path / "j.jsonl"),
        ) as jobs:
            status, doc = handle_request(
                "POST", "/jobs", _body({"instance": instance_doc}), jobs
            )
        assert status == 507
        assert doc["kind"] == "storage_exhausted"
        assert doc["errno"] == errno.ENOSPC

    def test_injected_non_enospc_faults_stay_500(self, tmp_path, instance_doc):
        faults.arm(
            FaultPlan().on("journal.write", "raise", exc=lambda: OSError("boom"))
        )
        with JobManager(
            workers=0, queue_depth=4, autostart=False,
            journal_path=str(tmp_path / "j.jsonl"),
        ) as jobs:
            status, doc = handle_request(
                "POST", "/jobs", _body({"instance": instance_doc}), jobs
            )
        assert status == 500  # no errno: not a disk-full signal


class TestBrownoutService:
    @pytest.fixture
    def stack(self, tmp_path, instance_doc):
        res = Resilience(
            admission=AdmissionController(2, target_wait_seconds=1.0),
            brownout=BrownoutPolicy(
                tau=0.3, degrade_at=0.0001, cache_at=0.9
            ),
        )
        svc = PhocusService(
            workers=0, tenants_root=str(tmp_path / "tenants"), resilience=res
        )
        handle_request(
            "PUT",
            "/tenants/acme/instances/i1",
            _body({"instance": instance_doc}),
            tenants=svc.tenants,
        )
        yield svc, res
        svc.stop()
        svc.jobs.shutdown()
        svc.tenants.close()

    def _solve(self, svc, res, payload):
        return handle_request(
            "POST", "/solve", _body(payload), tenants=svc.tenants, resilience=res
        )

    def test_not_opted_in_never_degrades(self, stack):
        svc, res = stack
        res.admission.observe_wait(0.5)  # pressure > degrade_at
        status, doc = self._solve(
            svc, res, {"by_ref": {"tenant": "acme", "instance_id": "i1"}}
        )
        assert status == 200 and "degraded" not in doc

    def test_sparsified_tier_is_labeled(self, stack):
        svc, res = stack
        res.admission.observe_wait(0.5)
        status, doc = self._solve(
            svc,
            res,
            {"by_ref": {"tenant": "acme", "instance_id": "i1"}, "degraded_ok": True},
        )
        assert status == 200
        assert doc["degraded"]["mode"] == "sparsified"
        assert doc["degraded"]["tau"] == 0.3

    def test_cached_tier_replays_full_answer(self, stack):
        svc, res = stack
        ref = {"by_ref": {"tenant": "acme", "instance_id": "i1"}}
        status, full = self._solve(svc, res, dict(ref))  # full solve: cached
        assert status == 200 and "degraded" not in full
        res.admission.observe_wait(10.0)  # pressure >= cache_at
        status, doc = self._solve(svc, res, {**ref, "degraded_ok": True})
        assert status == 200
        assert doc["degraded"]["mode"] == "cached"
        assert doc["degraded"]["age_seconds"] >= 0
        assert doc["selection"] == full["selection"]
        assert doc["value"] == full["value"]

    def test_cache_miss_falls_back_to_sparsified(self, stack):
        svc, res = stack
        res.admission.observe_wait(10.0)  # straight to the cached tier
        status, doc = self._solve(
            svc,
            res,
            {"by_ref": {"tenant": "acme", "instance_id": "i1"}, "degraded_ok": True},
        )
        assert status == 200
        assert doc["degraded"]["mode"] == "sparsified"  # nothing cached yet

    def test_stats_exposes_resilience_snapshot(self, stack):
        svc, res = stack
        status, doc = handle_request(
            "GET", "/stats", None, svc.jobs, resilience=res
        )
        assert status == 200
        assert "admission" in doc["resilience"]
        assert "brownout" in doc["resilience"]
        assert doc["resilience"]["drain"]["state"] == "accepting"


class TestLiveHttpHeaders:
    """The pieces only visible over a real socket: headers both ways."""

    @pytest.fixture(scope="class")
    def service(self):
        res = Resilience(
            admission=AdmissionController(2, retry_after_seconds=2.0)
        )
        with PhocusService(workers=2, resilience=res) as svc:
            yield svc

    def _request(self, service, method, path, payload=None, headers=None):
        url = f"http://{service.address}{path}"
        data = _body(payload) if payload is not None else None
        req = urllib.request.Request(
            url, data=data, method=method, headers=headers or {}
        )
        try:
            with urllib.request.urlopen(req, timeout=30) as resp:
                return resp.status, dict(resp.headers), json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, dict(exc.headers), json.loads(exc.read())

    def test_shed_sends_retry_after_header(self, service, instance_doc):
        admission = service.resilience.admission
        with admission.admit("x"), admission.admit("y"):
            status, headers, doc = self._request(
                service, "POST", "/solve", {"instance": instance_doc}
            )
        assert status == 503
        assert int(headers["Retry-After"]) >= 1
        assert doc["reason"] == "capacity"

    def test_deadline_header_reaches_the_solver(self, service, instance_doc):
        # The previous test's admit() contexts wrapped a whole HTTP round
        # trip, seeding the service-time EWMA with its duration; on a slow
        # or loaded runner that predicted time exceeds the 5 ms deadline
        # and the request sheds as deadline_unmeetable before the solver
        # ever sees the header.  Clear the estimator so this test always
        # exercises the in-solver expiry path it is about.
        service.resilience.admission._service_ewma.value = 0.0
        faults.arm(FaultPlan().on("resilience.slow_solve", "drop", times=None))
        status, headers, doc = self._request(
            service,
            "POST",
            "/solve",
            {"instance": instance_doc},
            headers={"X-Phocus-Deadline-Ms": "5"},
        )
        faults.disarm()
        assert status == 504 and doc["reason"] == "deadline"

    def test_deadline_header_lands_in_job_spec(self, service, instance_doc):
        status, headers, doc = self._request(
            service,
            "POST",
            "/jobs",
            {"instance": instance_doc},
            headers={"X-Phocus-Deadline-Ms": "60000"},
        )
        assert status == 202
        status, _, doc = self._request(service, "GET", f"/jobs/{doc['job_id']}")
        assert doc["spec"]["deadline_ms"] == 60000.0

    def test_readyz_round_trip(self, service):
        status, _, doc = self._request(service, "GET", "/readyz")
        assert status == 200 and doc["status"] == "ready"
