"""Tests for the swap local-search post-optimiser."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bruteforce import branch_and_bound
from repro.core.instance import DenseSimilarity, PARInstance, Photo, PredefinedSubset
from repro.core.objective import score
from repro.core.solver import solve
from repro.errors import ValidationError
from repro.extensions.local_search import swap_local_search

from tests.conftest import random_instance


class TestSwapLocalSearch:
    def test_never_decreases_value(self):
        for seed in range(6):
            inst = random_instance(seed=seed, n_photos=14, n_subsets=5)
            start = solve(inst, "phocus").selection
            result = swap_local_search(inst, start)
            assert result.value >= result.start_value - 1e-9
            assert result.value == pytest.approx(score(inst, result.selection))

    def test_stays_feasible(self):
        for seed in range(4):
            inst = random_instance(seed=seed, n_photos=14, n_subsets=5)
            result = swap_local_search(inst, solve(inst, "phocus").selection)
            assert inst.feasible(result.selection)

    def test_keeps_retained(self):
        inst = random_instance(seed=7, retained=2)
        result = swap_local_search(inst, solve(inst, "phocus").selection)
        assert inst.retained.issubset(set(result.selection))

    def test_rejects_infeasible_start(self, figure1):
        with pytest.raises(ValidationError):
            swap_local_search(figure1, list(range(7)))

    def test_improves_a_deliberately_bad_start(self):
        """Starting from a random selection, local search must find swaps."""
        improved = 0
        for seed in range(5):
            inst = random_instance(seed=seed, n_photos=16, n_subsets=5)
            start = solve(inst, "rand-a", rng=np.random.default_rng(seed)).selection
            result = swap_local_search(inst, start, max_passes=10)
            if result.swaps > 0:
                improved += 1
                assert result.value > result.start_value
        assert improved >= 3

    def test_fixes_a_constructed_greedy_trap(self):
        """A knapsack trap where a 1-swap strictly improves greedy."""
        # One big photo worth slightly more than either small one, but the
        # two small ones together beat it; budget fits big OR both smalls.
        sim = DenseSimilarity(np.eye(3))
        q = PredefinedSubset("q", 1.0, [0, 1, 2], [0.4, 0.3, 0.3], sim)
        photos = [
            Photo(photo_id=0, cost=2.0),
            Photo(photo_id=1, cost=1.0),
            Photo(photo_id=2, cost=1.0),
        ]
        inst = PARInstance(photos, [q], budget=2.0)
        # Start from the trap: {p0} (value 0.4).  Optimum {p1, p2} = 0.6.
        result = swap_local_search(inst, [0], max_passes=10)
        # A single 1-for-1 swap reaches {p1} or {p2} then a second pass
        # cannot add (swap is 1-in); verify at least the first improvement
        # fired, and that value ends at least at a 1-swap local optimum.
        assert result.value >= 0.4 - 1e-9
        exact = branch_and_bound(inst).value
        assert exact == pytest.approx(0.6)

    def test_converges_at_local_optimum(self):
        inst = random_instance(seed=2, n_photos=12, n_subsets=4)
        first = swap_local_search(inst, solve(inst, "phocus").selection, max_passes=10)
        second = swap_local_search(inst, first.selection, max_passes=10)
        assert second.swaps == 0
        assert second.value == pytest.approx(first.value)

    def test_improvement_property(self):
        inst = random_instance(seed=3, n_photos=12, n_subsets=4)
        result = swap_local_search(inst, solve(inst, "phocus").selection)
        assert result.improvement >= -1e-12
        assert result.passes >= 1

    def test_cannot_exceed_exact_optimum(self):
        for seed in range(4):
            inst = random_instance(seed=seed, n_photos=11, n_subsets=4)
            result = swap_local_search(inst, solve(inst, "phocus").selection,
                                       max_passes=10)
            assert result.value <= branch_and_bound(inst).value + 1e-9
