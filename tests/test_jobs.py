"""Tests for the background job orchestration subsystem (repro.jobs)."""

from __future__ import annotations

import threading
import time
from collections import defaultdict

import pytest

from repro.core.serialize import instance_to_dict
from repro.core.solver import PERMANENT, TRANSIENT, classify_failure, solve
from repro.errors import (
    ConfigurationError,
    TransientSolveError,
    ValidationError,
)
from repro.jobs import (
    FairPriorityQueue,
    JobManager,
    JobRecord,
    JobSpec,
    JobState,
    JournalJobStore,
    QueueFull,
    execute_solve_payload,
)

from tests.conftest import random_instance


def _spec(job_id="j1", tenant="default", **kwargs) -> JobSpec:
    kwargs.setdefault("instance", {"format": 1})
    return JobSpec(job_id=job_id, tenant=tenant, **kwargs)


def _real_spec(seed=0, **kwargs) -> JobSpec:
    return _spec(instance=instance_to_dict(random_instance(seed=seed)), **kwargs)


# --------------------------------------------------------------------- spec


class TestSpec:
    def test_happy_transitions(self):
        record = JobRecord(spec=_spec())
        record.transition(JobState.RUNNING)
        record.transition(JobState.SUCCEEDED)
        assert record.terminal

    def test_retry_requeue_transition(self):
        record = JobRecord(spec=_spec())
        record.transition(JobState.RUNNING)
        record.transition(JobState.QUEUED)  # transient retry path
        assert record.state is JobState.QUEUED

    def test_illegal_transition_raises(self):
        record = JobRecord(spec=_spec())
        with pytest.raises(ConfigurationError):
            record.transition(JobState.SUCCEEDED)  # QUEUED → SUCCEEDED
        record.transition(JobState.RUNNING)
        record.transition(JobState.FAILED)
        with pytest.raises(ConfigurationError):
            record.transition(JobState.RUNNING)  # terminal states are final

    def test_record_round_trip(self):
        record = JobRecord(spec=_spec(tenant="alice", priority=3, max_attempts=5))
        record.transition(JobState.RUNNING)
        record.attempt = 2
        record.error = "boom"
        record.error_kind = "transient"
        clone = JobRecord.from_dict(record.to_dict())
        assert clone.job_id == record.job_id
        assert clone.state is JobState.RUNNING
        assert clone.attempt == 2
        assert clone.spec.priority == 3
        assert clone.spec.max_attempts == 5

    def test_spec_validation(self):
        with pytest.raises(ValidationError):
            _spec(job_id="")
        with pytest.raises(ValidationError):
            _spec(max_attempts=0)
        with pytest.raises(ValidationError):
            _spec(timeout_seconds=-1.0)

    def test_public_dict_omits_instance(self):
        doc = JobRecord(spec=_real_spec()).public_dict()
        assert "instance" not in doc["spec"]
        assert doc["job_id"]

    def test_checkpoint_every_validated_and_serialised(self):
        with pytest.raises(ValidationError):
            _spec(checkpoint_every=0)
        spec = _spec(checkpoint_every=5)
        assert JobSpec.from_dict(spec.to_dict()).checkpoint_every == 5
        assert spec.solve_payload()["checkpoint_every"] == 5
        assert "checkpoint_every" not in _spec().solve_payload()

    def test_checkpoint_blob_round_trips_but_stays_private(self):
        record = JobRecord(spec=_spec())
        record.checkpoint = "QkxPQg=="
        record.checkpoint_progress = {"phase": "UC", "picks": 4}
        clone = JobRecord.from_dict(record.to_dict())
        assert clone.checkpoint == "QkxPQg=="
        assert clone.checkpoint_progress == {"phase": "UC", "picks": 4}
        public = record.public_dict()
        assert "checkpoint" not in public  # the blob never leaves the journal
        assert public["checkpoint_progress"] == {"phase": "UC", "picks": 4}


# -------------------------------------------------------------------- queue


class TestQueue:
    def test_round_robin_across_tenants(self):
        q = FairPriorityQueue()
        for tenant in ("a", "a", "a", "b", "b", "c"):
            q.put(f"{tenant}-{len(q)}", tenant=tenant)
        order = [q.get(timeout=0.1) for _ in range(6)]
        tenants = [item.split("-")[0] for item in order]
        # First cycle serves every waiting tenant once.
        assert tenants[:3] == ["a", "b", "c"]
        assert tenants == ["a", "b", "c", "a", "b", "a"]

    def test_priority_within_tenant(self):
        q = FairPriorityQueue()
        q.put("low", tenant="a", priority=0)
        q.put("high", tenant="a", priority=9)
        assert q.get(timeout=0.1) == "high"
        assert q.get(timeout=0.1) == "low"

    def test_fifo_within_priority(self):
        q = FairPriorityQueue()
        q.put("first", tenant="a")
        q.put("second", tenant="a")
        assert [q.get(timeout=0.1), q.get(timeout=0.1)] == ["first", "second"]

    def test_bounded_depth_signals_backpressure(self):
        q = FairPriorityQueue(maxsize=2)
        q.put(1, tenant="a")
        q.put(2, tenant="b")
        with pytest.raises(QueueFull) as excinfo:
            q.put(3, tenant="c")
        assert excinfo.value.depth == 2
        assert excinfo.value.maxsize == 2
        q.put(3, tenant="c", force=True)  # internal re-queues bypass the bound
        assert len(q) == 3

    def test_get_timeout_returns_none(self):
        assert FairPriorityQueue().get(timeout=0.01) is None

    def test_remove(self):
        q = FairPriorityQueue()
        q.put("x", tenant="a")
        q.put("y", tenant="a")
        assert q.remove(lambda item: item == "x") == "x"
        assert q.remove(lambda item: item == "zzz") is None
        assert len(q) == 1
        assert q.get(timeout=0.1) == "y"


# -------------------------------------------------------------------- store


class TestJournalStore:
    def test_last_snapshot_wins_on_replay(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        store = JournalJobStore(path)
        record = JobRecord(spec=_spec())
        store.save(record)
        record.transition(JobState.RUNNING)
        store.save(record)
        store.close()

        reopened = JournalJobStore(path)
        assert reopened.replayed_count == 1
        assert reopened.load_all()["j1"].state is JobState.RUNNING
        reopened.close()

    def test_torn_tail_line_is_ignored(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        store = JournalJobStore(path)
        store.save(JobRecord(spec=_spec(job_id="good")))
        store.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"spec": {"job_id": "torn", "inst')  # crash mid-write

        reopened = JournalJobStore(path)
        assert set(reopened.load_all()) == {"good"}
        reopened.close()

    def test_compact_rewrites_one_line_per_job(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        store = JournalJobStore(path)
        record = JobRecord(spec=_spec())
        for state in (JobState.RUNNING, JobState.SUCCEEDED):
            store.save(record)
            if not record.terminal:
                record.transition(state)
        store.save(record)
        store.compact()
        store.close()
        with open(path, "r", encoding="utf-8") as fh:
            lines = [ln for ln in fh if ln.strip()]
        assert len(lines) == 1
        assert store.compaction_count == 1

    def test_corrupt_mid_file_line_is_quarantined(self, tmp_path):
        """Corruption *anywhere* — not just the tail — is skipped, counted,
        and the rest of the journal still replays."""
        path = str(tmp_path / "journal.jsonl")
        store = JournalJobStore(path)
        for job_id in ("first", "second", "third"):
            store.save(JobRecord(spec=_spec(job_id=job_id)))
        store.close()

        with open(path, "rb") as fh:
            lines = fh.read().splitlines(keepends=True)
        middle = bytearray(lines[1])
        middle[len(middle) // 2] ^= 0x01  # bit flip in the middle line
        lines[1] = bytes(middle)
        with open(path, "wb") as fh:
            fh.writelines(lines)

        reopened = JournalJobStore(path)
        assert set(reopened.load_all()) == {"first", "third"}
        assert reopened.quarantined_count == 1
        reopened.close()

    def test_legacy_plain_json_lines_still_replay(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        import json as _json

        with open(path, "w", encoding="utf-8") as fh:
            fh.write(_json.dumps(JobRecord(spec=_spec(job_id="old")).to_dict()) + "\n")
        store = JournalJobStore(path)
        assert set(store.load_all()) == {"old"}
        assert store.quarantined_count == 0
        store.close()

    def test_fsync_policy_validation(self, tmp_path):
        with pytest.raises(ConfigurationError):
            JournalJobStore(str(tmp_path / "j.jsonl"), fsync_policy="sometimes")
        with pytest.raises(ConfigurationError):
            JournalJobStore(str(tmp_path / "j.jsonl"), fsync_every=0)
        with pytest.raises(ConfigurationError):
            JournalJobStore(str(tmp_path / "j.jsonl"), compact_bytes=0)

    @pytest.mark.parametrize("policy", ["always", "batch", "never"])
    def test_fsync_policies_all_persist(self, tmp_path, policy):
        path = str(tmp_path / "journal.jsonl")
        store = JournalJobStore(path, fsync_policy=policy, fsync_every=2)
        for i in range(5):
            store.save(JobRecord(spec=_spec(job_id=f"j{i}")))
        store.close()
        reopened = JournalJobStore(path)
        assert reopened.replayed_count == 5
        reopened.close()

    def test_size_bounded_auto_compaction(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        store = JournalJobStore(path, compact_bytes=2048)
        record = JobRecord(spec=_real_spec(job_id="churn"))
        for _ in range(40):  # many superseded snapshots of one job
            store.save(record)
        assert store.compaction_count >= 1
        import os as _os

        # after compaction the file holds just the live snapshot
        assert _os.path.getsize(path) < 40 * 200
        store.close()
        reopened = JournalJobStore(path)
        assert set(reopened.load_all()) == {"churn"}
        reopened.close()


# ----------------------------------------------------- failure classification


class TestClassifyFailure:
    def test_explicit_transient(self):
        assert classify_failure(TransientSolveError("blip")) == TRANSIENT

    def test_repro_errors_are_permanent(self):
        assert classify_failure(ValidationError("bad input")) == PERMANENT
        assert classify_failure(ConfigurationError("bad algo")) == PERMANENT

    def test_environmental_faults_are_transient(self):
        assert classify_failure(OSError("disk hiccup")) == TRANSIENT
        assert classify_failure(MemoryError()) == TRANSIENT
        assert classify_failure(TimeoutError()) == TRANSIENT

    def test_unknown_exceptions_are_permanent(self):
        assert classify_failure(RuntimeError("bug")) == PERMANENT


# ---------------------------------------------------------- manager fault paths


class TestManagerFaults:
    def test_transient_failure_retries_then_succeeds(self):
        spec = _real_spec(job_id="flaky", max_attempts=3)
        calls = defaultdict(int)

        def solve_fn(s):
            calls[s.job_id] += 1
            if calls[s.job_id] == 1:
                raise TransientSolveError("injected crash")
            return execute_solve_payload(s.solve_payload())

        with JobManager(workers=1, solve_fn=solve_fn, retry_base_delay=0.01) as m:
            m.submit(spec)
            status = m.wait("flaky", timeout=20)
        assert status["state"] == "SUCCEEDED"
        assert status["attempt"] == 2
        assert calls["flaky"] == 2

    def test_transient_failure_exhausts_retries(self):
        spec = _real_spec(job_id="doomed", max_attempts=3)
        calls = defaultdict(int)

        def solve_fn(s):
            calls[s.job_id] += 1
            raise TransientSolveError("always down")

        with JobManager(workers=1, solve_fn=solve_fn, retry_base_delay=0.01) as m:
            m.submit(spec)
            status = m.wait("doomed", timeout=20)
        assert status["state"] == "FAILED"
        assert status["error_kind"] == "transient_exhausted"
        assert status["attempt"] == 3
        assert calls["doomed"] == 3

    def test_permanent_failure_fails_without_retry(self):
        calls = defaultdict(int)

        def solve_fn(s):
            calls[s.job_id] += 1
            raise ValidationError("deterministic bad input")

        with JobManager(workers=1, solve_fn=solve_fn) as m:
            m.submit(_real_spec(job_id="perm", max_attempts=5))
            status = m.wait("perm", timeout=20)
        assert status["state"] == "FAILED"
        assert status["error_kind"] == "permanent"
        assert status["attempt"] == 1
        assert calls["perm"] == 1

    def test_timeout_fails_with_timeout_reason(self):
        def solve_fn(s):
            time.sleep(10)

        with JobManager(workers=1, solve_fn=solve_fn) as m:
            m.submit(_real_spec(job_id="slow", timeout_seconds=0.2))
            start = time.monotonic()
            status = m.wait("slow", timeout=20)
            waited = time.monotonic() - start
        assert status["state"] == "FAILED"
        assert status["error_kind"] == "timeout"
        assert "timeout" in status["error"]
        assert waited < 5  # failed at the deadline, not after the 10s sleep

    def test_cancel_queued_job_never_runs(self):
        calls = defaultdict(int)

        def solve_fn(s):
            calls[s.job_id] += 1
            return execute_solve_payload(s.solve_payload())

        manager = JobManager(workers=1, solve_fn=solve_fn, autostart=False)
        try:
            manager.submit(_real_spec(job_id="parked"))
            assert manager.cancel("parked") is True
            assert manager.status("parked")["state"] == "CANCELLED"
            manager.start()
            time.sleep(0.2)
            assert calls["parked"] == 0
            assert manager.status("parked")["state"] == "CANCELLED"
            assert manager.cancel("parked") is False  # already terminal
        finally:
            manager.shutdown()

    def test_cancel_running_job(self):
        started = threading.Event()

        def solve_fn(s):
            started.set()
            time.sleep(10)

        with JobManager(workers=1, solve_fn=solve_fn) as m:
            m.submit(_real_spec(job_id="live"))
            assert started.wait(timeout=5)
            assert m.status("live")["state"] == "RUNNING"
            assert m.cancel("live") is True
            status = m.wait("live", timeout=5)
        assert status["state"] == "CANCELLED"
        assert status["error_kind"] == "cancelled"

    def test_cancel_unknown_job_raises(self):
        with JobManager(workers=0, autostart=False) as m:
            with pytest.raises(KeyError):
                m.cancel("nope")

    def test_queue_full_submit_leaves_no_record(self):
        with JobManager(workers=0, queue_depth=1, autostart=False) as m:
            m.submit(_real_spec(job_id="fits"))
            with pytest.raises(QueueFull):
                m.submit(_real_spec(job_id="rejected"))
            assert m.status("rejected") is None
            assert m.stats()["queue"]["depth"] == 1


# ------------------------------------------------------------ acceptance test


class TestAcceptance:
    """The ISSUE acceptance scenario: a multi-tenant fleet with injected
    faults, fairness, and crash-restart journal replay."""

    N_JOBS = 21
    TENANTS = ("alice", "bob", "carol")

    def _specs(self):
        specs, instances = [], {}
        for i in range(self.N_JOBS):
            job_id = f"job-{i:02d}"
            instance = random_instance(seed=i, n_photos=8, n_subsets=3)
            instances[job_id] = instance
            specs.append(
                JobSpec(
                    job_id=job_id,
                    tenant=self.TENANTS[i % len(self.TENANTS)],
                    instance=instance_to_dict(instance),
                    timeout_seconds=0.3 if job_id == "job-07" else None,
                    max_attempts=3,
                )
            )
        return specs, instances

    def test_fleet_with_faults_fairness_and_replay(self, tmp_path):
        journal = str(tmp_path / "jobs.jsonl")
        specs, instances = self._specs()
        flaky_id, timeout_id = "job-03", "job-07"
        executions = defaultdict(int)
        exec_lock = threading.Lock()

        def solve_fn(spec):
            with exec_lock:
                executions[spec.job_id] += 1
                attempt_no = executions[spec.job_id]
            if spec.job_id == flaky_id and attempt_no == 1:
                raise TransientSolveError("injected transient crash")
            if spec.job_id == timeout_id:
                time.sleep(10)  # guaranteed to blow the 0.3s per-job timeout
            return execute_solve_payload(spec.solve_payload())

        # Phase 1: a manager journals all submissions, then is "killed"
        # before executing anything (workers=0 — no execution threads).
        first = JobManager(workers=0, journal_path=journal, autostart=False)
        for spec in specs:
            first.submit(spec)
        assert all(doc["state"] == "QUEUED" for doc in first.jobs())
        first.shutdown(wait=False)

        # Phase 2: a re-created manager replays the journal and runs the
        # fleet on 4 workers, hitting the injected faults along the way.
        second = JobManager(
            workers=4,
            journal_path=journal,
            solve_fn=solve_fn,
            retry_base_delay=0.01,
        )
        try:
            finals = {s.job_id: second.wait(s.job_id, timeout=60) for s in specs}

            # Every non-timeout job SUCCEEDED with results identical to a
            # direct solve() call.
            for spec in specs:
                if spec.job_id == timeout_id:
                    assert finals[spec.job_id]["state"] == "FAILED"
                    assert finals[spec.job_id]["error_kind"] == "timeout"
                    continue
                assert finals[spec.job_id]["state"] == "SUCCEEDED", finals[spec.job_id]
                result = second.result(spec.job_id)
                direct = solve(instances[spec.job_id], "phocus")
                assert result["selection"] == direct.selection
                assert result["value"] == pytest.approx(direct.value)

            # The injected transient failure was retried exactly once.
            assert finals[flaky_id]["attempt"] == 2
            assert executions[flaky_id] == 2

            # Fairness: the first dispatch cycle serves every tenant's
            # first job before any tenant's second job runs.
            dispatch_order = sorted(
                (doc["dequeue_seq"], doc["tenant"]) for doc in second.jobs()
            )
            first_cycle = {tenant for _, tenant in dispatch_order[: len(self.TENANTS)]}
            assert first_cycle == set(self.TENANTS)
        finally:
            second.shutdown()

        # Phase 3: another restart replays nothing new — finished jobs are
        # history, not work, so no job ever runs twice.
        third = JobManager(workers=4, journal_path=journal, solve_fn=solve_fn)
        try:
            for spec in specs:
                state = third.status(spec.job_id)["state"]
                assert state == ("FAILED" if spec.job_id == timeout_id else "SUCCEEDED")
            assert third.stats()["queue"]["depth"] == 0
        finally:
            third.shutdown()
        for job_id, count in executions.items():
            expected = 2 if job_id == flaky_id else 1
            assert count == expected, f"{job_id} executed {count}x"

    def test_replay_resumes_unfinished_jobs_exactly_once(self, tmp_path):
        journal = str(tmp_path / "jobs.jsonl")
        executions = defaultdict(int)
        exec_lock = threading.Lock()

        def solve_fn(spec):
            with exec_lock:
                executions[spec.job_id] += 1
            return execute_solve_payload(spec.solve_payload())

        # Finish some jobs, then stage more without running them.
        first = JobManager(workers=2, journal_path=journal, solve_fn=solve_fn)
        done_ids = [first.submit(_real_spec(seed=i, job_id=f"done-{i}")) for i in range(3)]
        for job_id in done_ids:
            assert first.wait(job_id, timeout=30)["state"] == "SUCCEEDED"
        first._pool.stop(wait=True)  # "crash": workers die, journal remains
        staged_ids = [
            first.submit(_real_spec(seed=10 + i, job_id=f"staged-{i}")) for i in range(3)
        ]
        first.shutdown(wait=False)

        second = JobManager(workers=2, journal_path=journal, solve_fn=solve_fn)
        try:
            for job_id in staged_ids:
                assert second.wait(job_id, timeout=30)["state"] == "SUCCEEDED"
            for job_id in done_ids:  # untouched history
                assert second.status(job_id)["state"] == "SUCCEEDED"
        finally:
            second.shutdown()
        assert all(executions[j] == 1 for j in done_ids + staged_ids), executions


# ------------------------------------------------------------------- stats


class TestStats:
    def test_stats_shape_and_latency_percentiles(self):
        with JobManager(workers=2) as m:
            ids = [
                m.submit_solve(instance_to_dict(random_instance(seed=i)), tenant="t")
                for i in range(4)
            ]
            for job_id in ids:
                m.wait(job_id, timeout=30)
            stats = m.stats()
        assert stats["jobs"]["SUCCEEDED"] == 4
        assert stats["queue"]["depth"] == 0
        assert stats["workers"]["total"] == 2
        lat = stats["solve_latency_seconds"]
        assert lat["count"] == 4
        assert 0 <= lat["p50"] <= lat["p90"] <= lat["p99"]


# ------------------------------------------------------------------- sweeps


class TestBudgetSweeps:
    def test_spec_round_trip_and_validation(self):
        spec = _real_spec(budgets=[1.5, 3.0], parallel_workers=2)
        assert spec.budgets == (1.5, 3.0)
        restored = JobSpec.from_dict(spec.to_dict())
        assert restored.budgets == spec.budgets
        assert restored.parallel_workers == 2
        payload = spec.solve_payload()
        assert payload["budgets"] == [1.5, 3.0]
        assert payload["parallel_workers"] == 2
        with pytest.raises(ValidationError):
            _real_spec(budgets=[])
        with pytest.raises(ValidationError):
            _real_spec(budgets=[2.0, -1.0])
        with pytest.raises(ValidationError):
            _real_spec(parallel_workers=0)

    def test_sweep_matches_single_solves(self):
        instance = random_instance(seed=3)
        budgets = [instance.budget * f for f in (0.4, 0.7, 1.0)]
        doc = execute_solve_payload(
            _real_spec(seed=3, budgets=budgets).solve_payload()
        )
        assert doc["sweep"] is True
        assert doc["budgets"] == budgets
        assert len(doc["solutions"]) == len(budgets)
        for budget, member in zip(budgets, doc["solutions"]):
            single = execute_solve_payload(
                {"instance": instance_to_dict(instance.with_budget(budget))}
            )
            assert member["selection"] == single["selection"]
            assert member["value"] == single["value"]
        values = [m["value"] for m in doc["solutions"]]
        assert values == sorted(values)  # larger budget never hurts

    def test_parallel_sweep_identical_to_serial(self):
        budgets = [2.0, 3.0, 4.0]
        serial = execute_solve_payload(
            _real_spec(seed=5, budgets=budgets).solve_payload()
        )
        parallel = execute_solve_payload(
            _real_spec(seed=5, budgets=budgets, parallel_workers=2).solve_payload()
        )
        assert parallel["parallel_workers"] == 2
        for s, p in zip(serial["solutions"], parallel["solutions"]):
            assert p["selection"] == s["selection"]
            assert p["value"] == s["value"]

    def test_sweep_with_sparsify_and_certificate(self):
        instance = random_instance(seed=7)
        budgets = [instance.budget * 0.5, instance.budget]
        doc = execute_solve_payload(
            _real_spec(seed=7, budgets=budgets, tau=0.3, certificate=True)
            .solve_payload()
        )
        assert doc["sparsify"] is not None
        assert 0.0 < doc["sparsify"]["kept_fraction"] <= 1.0
        from repro.core.objective import score

        for member in doc["solutions"]:
            # True-value scoring: sweep members report the objective of their
            # selection on the original (unsparsified) instance, not the
            # sparsified solver instance.
            assert member["value"] == score(instance, member["selection"])
            cert = member["ratio_certificate"]
            assert cert is not None and 0.0 < cert <= 1.0

    def test_sweep_through_job_manager(self):
        budgets = [2.5, 4.0]
        spec = _real_spec(job_id="sweep1", budgets=budgets, parallel_workers=1)
        with JobManager(workers=1) as m:
            m.submit(spec)
            status = m.wait("sweep1", timeout=30)
        assert status["state"] == "SUCCEEDED"
        result = status["result"]
        assert result["sweep"] is True
        assert [s["budget"] for s in result["solutions"]] == budgets
