"""Chaos tests for the live ingestion pipeline (``live.*`` fault sites).

The crash-atomicity contract: a delta ingestion performs exactly one
durable mutation — the tenant store's atomic versioned ``put`` — so a
process killed *anywhere* in the pipeline (at the ingestion entry, just
before the re-solve, or inside the store write/rename itself) leaves
the stored instance either at the complete old version or the complete
new one, never torn, and a retry of the same delta lands bit-identical
state.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import faults
from repro.faults.plan import FaultPlan, ProcessKilled
from repro.live import LiveManager, RecurationScheduler
from repro.live.archive import LiveArchive
from repro.scale import synthetic_archive
from repro.tenants import Tenants

CHAOS_SEED = int(os.environ.get("PHOCUS_CHAOS_SEED", "0"))


@pytest.fixture(autouse=True)
def always_disarmed():
    yield
    faults.disarm()


@pytest.fixture
def tenants(tmp_path):
    t = Tenants(str(tmp_path), sweep=False)
    yield t
    t.close()


def _fresh(tenants, *, n=200, seed=3):
    manager = LiveManager(tenants)
    costs, emb = synthetic_archive(n, dim=8, seed=seed)
    created = manager.create(
        "acme", "a1", costs, emb, float(costs.sum()) * 0.25, tau=0.6, seed=seed
    )
    return manager, created


def _delta(k=6, seed=91):
    return synthetic_archive(k, dim=8, seed=seed)


def _stored_state(tenants):
    """(version, n_photos, selection) of the durable instance."""
    envelope = tenants.store.get("acme", "a1")
    doc = envelope["instance"]
    curation = doc["live"]["curation"]
    solution = curation.get("solution") or {}
    return (
        envelope["version"],
        len(doc["photos"]),
        solution.get("selection"),
    )


KILL_SITES = [
    "live.append",       # before any state is touched
    "live.resolve",      # archive grown in memory, nothing durable yet
    "tenantstore.write", # inside the store's temp-file write
    "tenantstore.replace",  # after the write, before the atomic rename
]


@pytest.mark.parametrize("site", KILL_SITES)
def test_kill_mid_ingestion_never_tears_the_store(tenants, site):
    manager, created = _fresh(tenants)
    before = _stored_state(tenants)
    assert before[0] == created["version"]

    dc, de = _delta()
    plan = FaultPlan(seed=CHAOS_SEED).on(site, "kill")
    with faults.armed(plan):
        with pytest.raises(ProcessKilled):
            manager.ingest("acme", "a1", dc, de)
        assert plan.fired(site) == 1

    # Old version, old photo count, old solution — completely intact.
    assert _stored_state(tenants) == before
    # And a reopened store (full crash recovery) agrees.
    reopened = Tenants(str(tenants.store.root), sweep=False)
    try:
        assert _stored_state(reopened) == before
    finally:
        reopened.close()

    # The retry (new manager = post-crash process) lands the delta whole.
    retry = LiveManager(tenants)
    out = retry.ingest("acme", "a1", dc, de)
    assert out["version"] == before[0] + 1
    after = _stored_state(tenants)
    assert after[1] == before[1] + len(dc)
    assert after[2] == out["solution"]["selection"]


def test_killed_ingestion_retry_is_bit_identical(tenants):
    """The delta is deterministic: crash + retry == never crashed."""
    manager, _ = _fresh(tenants, seed=7)
    dc, de = _delta(5, seed=44)

    plan = FaultPlan(seed=CHAOS_SEED).on("tenantstore.replace", "kill")
    with faults.armed(plan):
        with pytest.raises(ProcessKilled):
            manager.ingest("acme", "a1", dc, de)
    crashed_then_retried = LiveManager(tenants).ingest("acme", "a1", dc, de)

    # A parallel universe where the crash never happened.
    other = Tenants(str(tenants.store.root) + "-clean", sweep=False)
    try:
        clean_manager = LiveManager(other)
        costs, emb = synthetic_archive(200, dim=8, seed=7)
        clean_manager.create(
            "acme", "a1", costs, emb, float(costs.sum()) * 0.25, tau=0.6, seed=7
        )
        clean = clean_manager.ingest("acme", "a1", dc, de)
    finally:
        other.close()

    def _without_timing(doc):
        return {k: v for k, v in doc.items() if k != "seconds"}

    assert _without_timing(crashed_then_retried["solution"]) == _without_timing(
        clean["solution"]
    )
    assert _without_timing(crashed_then_retried["delta"]) == _without_timing(
        clean["delta"]
    )


def test_corrupt_store_write_is_quarantined_not_served(tenants):
    manager, _ = _fresh(tenants)
    dc, de = _delta()
    plan = FaultPlan(seed=CHAOS_SEED).on("tenantstore.write", "corrupt")
    with faults.armed(plan):
        manager.ingest("acme", "a1", dc, de)  # the write "succeeds"...
    # ...but a fresh process finds the corruption instead of serving it.
    from repro.errors import InstanceNotFound

    reopened = Tenants(str(tenants.store.root), sweep=False)
    try:
        with pytest.raises(InstanceNotFound):
            LiveManager(reopened).status("acme", "a1")
    finally:
        reopened.close()


def test_killed_sweep_leaves_manager_state_intact(tenants):
    manager, _ = _fresh(tenants)
    dc, de = _delta(3)
    manager.ingest("acme", "a1", dc, de, resolve="none")
    before = _stored_state(tenants)

    sched = RecurationScheduler(
        manager, debounce_seconds=0.0, regret_threshold=10.0
    )
    sched.track("acme", "a1")
    plan = FaultPlan(seed=CHAOS_SEED).on("live.sweep", "kill")
    with faults.armed(plan):
        with pytest.raises(ProcessKilled):
            sched.sweep_once()
    assert _stored_state(tenants) == before

    # The next sweep (fault cleared) performs the deferred curation.
    actions = sched.sweep_once()
    assert actions["warm"] == 1
    assert manager.status("acme", "a1").pending_deltas == 0


def test_kill_during_recurate_keeps_stale_solution_serving(tenants):
    manager, created = _fresh(tenants)
    dc, de = _delta(4)
    manager.ingest("acme", "a1", dc, de, resolve="none")
    before = _stored_state(tenants)

    plan = FaultPlan(seed=CHAOS_SEED).on("live.resolve", "kill")
    with faults.armed(plan):
        with pytest.raises(ProcessKilled):
            manager.recurate("acme", "a1", kind="full")
    assert _stored_state(tenants) == before
    # The stale-but-valid solution is still what status reports.
    status = LiveManager(tenants).status("acme", "a1")
    assert status.solution["selection"] == before[2]
    assert status.pending_deltas == 1


def test_transient_append_fault_raises_cleanly(tenants):
    """A non-fatal raise at the ingestion entry surfaces as an error and
    leaves the pipeline reusable (no lock leak, no partial state)."""
    manager, _ = _fresh(tenants)
    dc, de = _delta()
    plan = FaultPlan(seed=CHAOS_SEED).on("live.append", "raise")
    with faults.armed(plan):
        with pytest.raises(OSError):
            manager.ingest("acme", "a1", dc, de)
        # Same manager, same process: the key lock was released and the
        # next attempt (fault exhausted) succeeds.
        out = manager.ingest("acme", "a1", dc, de)
    assert out["version"] == 2
