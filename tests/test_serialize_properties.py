"""Property tests of the JSON wire format: round trips are lossless."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.objective import score
from repro.core.serialize import instance_from_json, instance_to_json
from repro.sparsify.threshold import threshold_sparsify

from tests.core.test_greedy_properties import par_instances


@settings(max_examples=30, deadline=None)
@given(inst=par_instances())
def test_round_trip_preserves_scores(inst):
    clone = instance_from_json(instance_to_json(inst))
    rng = np.random.default_rng(0)
    for _ in range(4):
        size = int(rng.integers(0, inst.n + 1))
        sel = sorted(int(p) for p in rng.choice(inst.n, size=size, replace=False))
        assert score(clone, sel) == pytest.approx(score(inst, sel))


@settings(max_examples=30, deadline=None)
@given(inst=par_instances())
def test_round_trip_preserves_structure(inst):
    clone = instance_from_json(instance_to_json(inst))
    assert clone.n == inst.n
    assert clone.budget == pytest.approx(inst.budget)
    assert clone.retained == inst.retained
    assert [q.subset_id for q in clone.subsets] == [q.subset_id for q in inst.subsets]
    for q_old, q_new in zip(inst.subsets, clone.subsets):
        assert q_new.weight == pytest.approx(q_old.weight)
        assert list(q_new.members) == list(q_old.members)


@settings(max_examples=20, deadline=None)
@given(inst=par_instances(), tau=st.floats(0.0, 1.0))
def test_sparse_round_trip_preserves_scores(inst, tau):
    sparse, _ = threshold_sparsify(inst, tau)
    clone = instance_from_json(instance_to_json(sparse))
    assert clone.is_sparse()
    sel = list(range(0, inst.n, 2))
    assert score(clone, sel) == pytest.approx(score(sparse, sel))


@settings(max_examples=20, deadline=None)
@given(inst=par_instances())
def test_double_round_trip_is_stable(inst):
    once = instance_to_json(inst)
    twice = instance_to_json(instance_from_json(once))
    assert once == twice
