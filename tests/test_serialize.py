"""Tests for the instance/solution JSON wire format."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.serialize import (
    instance_from_dict,
    instance_from_json,
    instance_to_dict,
    instance_to_json,
    solution_to_dict,
)
from repro.core.solver import solve
from repro.errors import ValidationError
from repro.sparsify.threshold import threshold_sparsify

from tests.conftest import random_instance


class TestInstanceRoundTrip:
    def test_dense_round_trip(self, figure1):
        clone = instance_from_json(instance_to_json(figure1))
        assert clone.n == figure1.n
        assert clone.budget == figure1.budget
        assert [q.subset_id for q in clone.subsets] == [
            q.subset_id for q in figure1.subsets
        ]
        for q_old, q_new in zip(figure1.subsets, clone.subsets):
            assert q_new.relevance == pytest.approx(q_old.relevance)
            assert np.allclose(q_new.similarity.matrix, q_old.similarity.matrix)

    def test_sparse_round_trip(self, figure1):
        sparse, _ = threshold_sparsify(figure1, 0.6)
        clone = instance_from_json(instance_to_json(sparse))
        assert clone.is_sparse()
        assert clone.similarity_nnz() == sparse.similarity_nnz()
        for q_old, q_new in zip(sparse.subsets, clone.subsets):
            for photo in q_old.members:
                for other in q_old.members:
                    assert q_new.sim(int(photo), int(other)) == pytest.approx(
                        q_old.sim(int(photo), int(other))
                    )

    def test_round_trip_preserves_solver_output(self, small_instance):
        clone = instance_from_json(instance_to_json(small_instance))
        a = solve(small_instance, "phocus")
        b = solve(clone, "phocus")
        assert a.selection == b.selection
        assert a.value == pytest.approx(b.value)

    def test_retained_and_embeddings_preserved(self):
        inst = random_instance(seed=7, retained=2)
        clone = instance_from_json(instance_to_json(inst))
        assert clone.retained == inst.retained
        assert np.allclose(clone.embeddings, inst.embeddings)

    def test_none_embeddings(self, figure1):
        clone = instance_from_json(instance_to_json(figure1))
        assert clone.embeddings is None

    def test_json_is_plain_text(self, figure1):
        text = instance_to_json(figure1)
        doc = json.loads(text)
        assert doc["format"] == 1
        assert len(doc["photos"]) == 7

    def test_rejects_bad_format_version(self, figure1):
        doc = instance_to_dict(figure1)
        doc["format"] = 99
        with pytest.raises(ValidationError):
            instance_from_dict(doc)

    def test_rejects_invalid_json(self):
        with pytest.raises(ValidationError):
            instance_from_json("{not json")
        with pytest.raises(ValidationError):
            instance_from_json("[1, 2]")

    def test_rejects_unknown_similarity_kind(self, figure1):
        doc = instance_to_dict(figure1)
        doc["subsets"][0]["similarity"]["kind"] = "holographic"
        with pytest.raises(ValidationError):
            instance_from_dict(doc)


class TestSolutionSerialisation:
    def test_fields(self, figure1):
        solution = solve(figure1, "phocus", certificate=True)
        doc = solution_to_dict(solution)
        assert doc["algorithm"] == "phocus"
        assert doc["selection"] == solution.selection
        assert doc["value"] == pytest.approx(solution.value)
        assert 0 < doc["ratio_certificate"] <= 1.0
        json.dumps(doc)  # must be JSON-clean

    def test_numpy_extras_are_converted(self, figure1):
        solution = solve(figure1, "phocus")
        solution.extras["array"] = np.array([1, 2])
        solution.extras["np_int"] = np.int64(5)
        doc = solution_to_dict(solution)
        assert doc["extras"]["array"] == [1, 2]
        assert doc["extras"]["np_int"] == 5
        json.dumps(doc)
