"""Service-level tests for the multi-tenant archive store.

Dispatcher tests exercise :func:`handle_request` directly (pure, fast);
the live-server tests run a real :class:`PhocusService` over
``ThreadingHTTPServer`` — including the satellite concurrency scenario
(parallel uploads + by_ref solves + deletes) and the guarantee that a
stopped service leaves no shared-memory segment behind.
"""

from __future__ import annotations

import glob
import json
import os
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.serialize import instance_to_dict
from repro.core.solver import solve
from repro.obs import probes
from repro.system.service import PhocusService, handle_request
from repro.tenants import TenantQuota, Tenants
from repro.tenants import cache as cache_mod

from tests.conftest import random_instance


def _body(payload) -> bytes:
    return json.dumps(payload).encode("utf-8")


def _shm_segments(prefix):
    return glob.glob(f"/dev/shm/{prefix}-*")


@pytest.fixture()
def tenants(tmp_path):
    t = Tenants(
        str(tmp_path / "tenants"),
        name_prefix=f"phtest-{os.getpid()}-svc",
        sweep=False,
    )
    yield t
    t.close()
    assert _shm_segments(f"phtest-{os.getpid()}-svc") == []


# ----------------------------------------------------------------- dispatcher


class TestHealthRoutes:
    def test_healthz_is_bare_liveness(self):
        status, payload = handle_request("GET", "/healthz", None)
        assert (status, payload) == (200, {"status": "ok"})

    def test_version_route(self):
        from repro import __version__

        status, payload = handle_request("GET", "/version", None)
        assert (status, payload) == (200, {"version": __version__})

    def test_healthz_rejects_post(self):
        status, payload = handle_request("POST", "/healthz", b"{}")
        assert status == 405
        assert payload["allow"] == ["GET"]


class TestTenantRoutes:
    def test_503_without_tenant_store(self):
        status, payload = handle_request("GET", "/tenants/acme/stats", None)
        assert status == 503
        assert "no tenant store" in payload["error"]

    def test_put_get_delete_lifecycle(self, tenants, small_instance):
        doc = instance_to_dict(small_instance)
        status, payload = handle_request(
            "PUT",
            "/tenants/acme/instances/p",
            _body({"instance": doc}),
            tenants=tenants,
        )
        assert status == 201
        assert payload["stored"]["version"] == 1

        status, payload = handle_request(
            "PUT",
            "/tenants/acme/instances/p",
            _body({"instance": doc}),
            tenants=tenants,
        )
        assert status == 200  # overwrite, not create
        assert payload["stored"]["version"] == 2

        status, payload = handle_request(
            "GET", "/tenants/acme/instances/p", None, tenants=tenants
        )
        assert status == 200
        assert payload["instance"] == doc
        assert payload["version"] == 2

        status, payload = handle_request(
            "GET", "/tenants/acme/instances", None, tenants=tenants
        )
        assert status == 200
        assert [m["instance_id"] for m in payload["instances"]] == ["p"]

        status, payload = handle_request(
            "GET", "/tenants/acme/stats", None, tenants=tenants
        )
        assert status == 200
        assert payload["store"]["instances"] == 1

        status, payload = handle_request(
            "DELETE", "/tenants/acme/instances/p", None, tenants=tenants
        )
        assert status == 200
        assert payload["deleted"]["version"] == 2

        status, payload = handle_request(
            "GET", "/tenants/acme/instances/p", None, tenants=tenants
        )
        assert status == 404

    def test_put_garbage_is_422_and_nothing_stored(self, tenants):
        status, payload = handle_request(
            "PUT",
            "/tenants/acme/instances/p",
            _body({"instance": {"format": 1, "nonsense": True}}),
            tenants=tenants,
        )
        assert status == 422
        assert tenants.list_instances("acme") == []

    def test_bad_identifier_is_422(self, tenants):
        status, payload = handle_request(
            "GET", "/tenants/.evil/instances", None, tenants=tenants
        )
        # Path validation happens inside store calls via validate_id on
        # by_ref; plain listings of a nonexistent tenant are just empty.
        assert status == 200
        status, payload = handle_request(
            "POST", "/solve",
            _body({"by_ref": {"tenant": "../up", "instance_id": "p"}}),
            tenants=tenants,
        )
        assert status == 422

    def test_unknown_tenant_subroute_is_404(self, tenants):
        status, _ = handle_request("GET", "/tenants/acme", None, tenants=tenants)
        assert status == 404
        status, _ = handle_request(
            "GET", "/tenants/acme/instances/p/extra", None, tenants=tenants
        )
        assert status == 404

    def test_stats_rejects_write_methods(self, tenants):
        status, payload = handle_request(
            "DELETE", "/tenants/acme/stats", None, tenants=tenants
        )
        assert status == 405

    def test_quota_exceeded_maps_to_413_with_structure(self, tmp_path):
        tenants = Tenants(
            str(tmp_path),
            quota=TenantQuota(max_instances=1),
            name_prefix=f"phtest-{os.getpid()}-q413",
            sweep=False,
        )
        doc = instance_to_dict(random_instance(1, n_photos=10))
        status, _ = handle_request(
            "PUT", "/tenants/acme/instances/a", _body({"instance": doc}),
            tenants=tenants,
        )
        assert status == 201
        status, payload = handle_request(
            "PUT", "/tenants/acme/instances/b", _body({"instance": doc}),
            tenants=tenants,
        )
        assert status == 413
        assert payload["tenant"] == "acme"
        assert payload["kind"] == "instances"
        assert payload["used"] == 2 and payload["limit"] == 1
        tenants.close()

    def test_rate_limit_maps_to_429_with_retry_after(self, tmp_path):
        tenants = Tenants(
            str(tmp_path),
            quota=TenantQuota(rate_per_second=0.001, burst=1),
            name_prefix=f"phtest-{os.getpid()}-q429",
            sweep=False,
        )
        doc = instance_to_dict(random_instance(1, n_photos=10))
        status, _ = handle_request(
            "PUT", "/tenants/acme/instances/a", _body({"instance": doc}),
            tenants=tenants,
        )
        assert status == 201
        status, payload = handle_request(
            "PUT", "/tenants/acme/instances/a", _body({"instance": doc}),
            tenants=tenants,
        )
        assert status == 429
        assert payload["tenant"] == "acme"
        assert payload["retry_after"] > 0
        # Other tenants keep their own bucket.
        status, _ = handle_request(
            "PUT", "/tenants/globex/instances/a", _body({"instance": doc}),
            tenants=tenants,
        )
        assert status == 201
        tenants.close()


class TestSolveByRef:
    def _upload(self, tenants, instance, tenant="acme", instance_id="p"):
        doc = instance_to_dict(instance)
        status, _ = handle_request(
            "PUT",
            f"/tenants/{tenant}/instances/{instance_id}",
            _body({"instance": doc}),
            tenants=tenants,
        )
        assert status in (200, 201)
        return doc

    def test_by_ref_solve_bit_identical_to_inline(self, tenants):
        inst = random_instance(17, n_photos=80)
        doc = self._upload(tenants, inst)

        status, inline = handle_request(
            "POST", "/solve", _body({"instance": doc, "seed": 3}),
            tenants=tenants,
        )
        assert status == 200
        status, by_ref = handle_request(
            "POST", "/solve",
            _body({"by_ref": {"tenant": "acme", "instance_id": "p"}, "seed": 3}),
            tenants=tenants,
        )
        assert status == 200
        assert by_ref["selection"] == inline["selection"]
        assert by_ref["value"] == inline["value"]
        assert by_ref["cost"] == inline["cost"]
        assert by_ref["warm_cache_hit"] is False
        assert "warm_cache_hit" not in inline

    def test_second_solve_is_warm_and_never_repacks(self, tenants, monkeypatch):
        inst = random_instance(17, n_photos=80)
        self._upload(tenants, inst)

        packs = []
        real = cache_mod.SharedInstance

        def counting_shared(instance, **kwargs):
            packs.append(1)
            return real(instance, **kwargs)

        monkeypatch.setattr(cache_mod, "SharedInstance", counting_shared)

        body = _body({"by_ref": {"tenant": "acme", "instance_id": "p"}})
        status, cold = handle_request("POST", "/solve", body, tenants=tenants)
        assert status == 200 and cold["warm_cache_hit"] is False
        status, warm = handle_request("POST", "/solve", body, tenants=tenants)
        assert status == 200 and warm["warm_cache_hit"] is True
        assert warm["selection"] == cold["selection"]
        assert len(packs) == 1  # the warm solve neither deserialised nor packed
        assert tenants.cache.stats()["hits"] == 1
        assert tenants.cache.stats()["misses"] == 1

    def test_by_ref_budget_override(self, tenants):
        inst = random_instance(17, n_photos=80)
        self._upload(tenants, inst)
        tight = inst.budget * 0.4
        status, payload = handle_request(
            "POST", "/solve",
            _body({
                "by_ref": {"tenant": "acme", "instance_id": "p"},
                "budget": tight,
            }),
            tenants=tenants,
        )
        assert status == 200
        assert payload["cost"] <= tight
        assert payload["selection"] == solve(inst.with_budget(tight)).selection

    def test_by_ref_without_store_is_422(self):
        status, payload = handle_request(
            "POST", "/solve",
            _body({"by_ref": {"tenant": "acme", "instance_id": "p"}}),
        )
        assert status == 422
        assert "no tenant store" in payload["error"]

    def test_by_ref_plus_inline_is_422(self, tenants, small_instance):
        doc = self._upload(tenants, small_instance)
        status, payload = handle_request(
            "POST", "/solve",
            _body({
                "instance": doc,
                "by_ref": {"tenant": "acme", "instance_id": "p"},
            }),
            tenants=tenants,
        )
        assert status == 422
        assert "not both" in payload["error"]

    def test_by_ref_missing_instance_is_404(self, tenants):
        status, payload = handle_request(
            "POST", "/solve",
            _body({"by_ref": {"tenant": "acme", "instance_id": "ghost"}}),
            tenants=tenants,
        )
        assert status == 404

    def test_score_by_ref_matches_inline(self, tenants):
        inst = random_instance(17, n_photos=60)
        doc = self._upload(tenants, inst)
        selection = solve(inst).selection
        status, inline = handle_request(
            "POST", "/score",
            _body({"instance": doc, "selection": selection}),
            tenants=tenants,
        )
        assert status == 200
        status, by_ref = handle_request(
            "POST", "/score",
            _body({
                "by_ref": {"tenant": "acme", "instance_id": "p"},
                "selection": selection,
            }),
            tenants=tenants,
        )
        assert status == 200
        assert by_ref == inline


# ---------------------------------------------------------------- live server


def _request(service, method, path, payload=None, timeout=30):
    req = urllib.request.Request(
        f"http://{service.address}{path}",
        data=(None if payload is None else _body(payload)),
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8"))


def _wait_job(service, job_id, deadline=60.0):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        status, doc = _request(service, "GET", f"/jobs/{job_id}")
        assert status == 200
        if doc["state"] in ("SUCCEEDED", "FAILED", "CANCELLED", "TIMED_OUT"):
            return doc
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not finish within {deadline}s")


class TestLiveTenantService:
    def test_jobs_by_ref_and_metrics_exposition(self, tmp_path):
        prefix = f"phtest-{os.getpid()}-live"
        inst = random_instance(23, n_photos=80)
        probes.disarm()
        try:
            tenants = Tenants(str(tmp_path / "t"), name_prefix=prefix, sweep=False)
            with PhocusService(workers=2, tenants=tenants) as service:
                status, _ = _request(
                    service, "PUT", "/tenants/acme/instances/p",
                    {"instance": instance_to_dict(inst)},
                )
                assert status == 201

                # Background job solving by reference.
                status, payload = _request(
                    service, "POST", "/jobs",
                    {"by_ref": {"tenant": "acme", "instance_id": "p"}},
                )
                assert status == 202
                doc = _wait_job(service, payload["job_id"])
                assert doc["state"] == "SUCCEEDED"
                assert doc["result"]["selection"] == solve(inst).selection

                # Synchronous warm solve over the same cached packing.
                status, payload = _request(
                    service, "POST", "/solve",
                    {"by_ref": {"tenant": "acme", "instance_id": "p"}},
                )
                assert status == 200
                assert payload["warm_cache_hit"] is True

                # The tenant metric families made it into the exposition.
                with urllib.request.urlopen(
                    f"http://{service.address}/metrics", timeout=30
                ) as resp:
                    text = resp.read().decode("utf-8")
                assert 'phocus_tenants_cache_hits_total{tenant="acme"}' in text
                assert 'phocus_tenants_store_bytes{tenant="acme"}' in text
                assert "phocus_tenants_cache_bytes" in text
            tenants.close()
            assert _shm_segments(prefix) == []
        finally:
            probes.disarm()

    def test_concurrent_mixed_methods_no_races_no_leaks(self, tmp_path):
        prefix = f"phtest-{os.getpid()}-conc"
        tenants = Tenants(str(tmp_path / "t"), name_prefix=prefix, sweep=False)
        shared_inst = random_instance(5, n_photos=60)
        expected = solve(shared_inst).selection
        errors = []
        n_threads = 8
        barrier = threading.Barrier(n_threads)

        with PhocusService(workers=2, metrics=False, tenants=tenants) as service:
            status, _ = _request(
                service, "PUT", "/tenants/shared/instances/hot",
                {"instance": instance_to_dict(shared_inst)},
            )
            assert status == 201

            def worker(idx):
                try:
                    barrier.wait(timeout=30)
                    tenant = f"t{idx}"
                    own = instance_to_dict(random_instance(idx, n_photos=40))
                    for round_no in range(3):
                        # Private lifecycle: upload, solve, delete, 404.
                        status, _ = _request(
                            service, "PUT",
                            f"/tenants/{tenant}/instances/mine",
                            {"instance": own},
                        )
                        assert status == 201  # each round deletes: fresh create
                        status, doc = _request(
                            service, "POST", "/solve",
                            {"by_ref": {"tenant": tenant, "instance_id": "mine"}},
                        )
                        assert status == 200, doc
                        # Shared hot instance: everyone hammers one key.
                        status, doc = _request(
                            service, "POST", "/solve",
                            {"by_ref": {"tenant": "shared", "instance_id": "hot"}},
                        )
                        assert status == 200, doc
                        assert doc["selection"] == expected
                        status, _ = _request(
                            service, "DELETE",
                            f"/tenants/{tenant}/instances/mine",
                        )
                        assert status == 200
                        status, _ = _request(
                            service, "POST", "/solve",
                            {"by_ref": {"tenant": tenant, "instance_id": "mine"}},
                        )
                        assert status == 404
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    errors.append((idx, exc))

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert not any(t.is_alive() for t in threads)

        assert errors == []
        stats = tenants.cache.stats()
        assert stats["hits"] > 0  # the hot key actually went warm
        assert stats["zombie_segments"] == 0
        tenants.close()
        assert _shm_segments(prefix) == []  # no leaked shared memory
