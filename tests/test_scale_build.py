"""Tests for repro.scale: the fused streamed builder (tentpole).

The core contract under test is *bit-identity*: at a matched seed and an
explicit signature width, the fused build (embeddings → banded SimHash →
τ-verified cosines → CSR) must reproduce the unfused
:func:`repro.sparsify.simhash.lsh_similar_pairs` pipeline exactly — the
same candidate pairs, the same kept entries, the same CSR byte layout,
and therefore bit-identical greedy picks on both coverage backends.
Chunk sizes are a memory knob, never a results knob.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.greedy import main_algorithm
from repro.core.instance import PARInstance, Photo, PredefinedSubset, SparseSimilarity
from repro.core.parallel import SharedInstance
from repro.core.serialize import instance_from_json, instance_to_json
from repro.errors import ConfigurationError, ValidationError
from repro.obs import probes
from repro.scale import (
    ScaleBuildReport,
    build_streamed_instance,
    save_streamed_instance,
    synthetic_archive,
)
from repro.sparsify.simhash import (
    SimHasher,
    candidate_pairs,
    lsh_similar_pairs,
    recommended_bits,
    tune_bands,
)

N = 400
DIM = 8
TAU = 0.6
N_BITS = 64
SEED = 42


@pytest.fixture(scope="module")
def archive():
    return synthetic_archive(N, dim=DIM, seed=3)


@pytest.fixture(scope="module")
def fused(archive):
    costs, emb = archive
    return build_streamed_instance(
        costs, emb, float(costs.sum()) * 0.3, tau=TAU, n_bits=N_BITS, rng=SEED
    )


def _unfused_instance(costs, emb, budget, *, dtype=np.float64):
    """The unfused reference: lsh_similar_pairs → from_pairs → PARInstance."""
    n = emb.shape[0]
    result = lsh_similar_pairs(emb, TAU, n_bits=N_BITS, rng=np.random.default_rng(SEED))
    ii = np.array([p[0] for p in result.pairs], dtype=np.int64)
    jj = np.array([p[1] for p in result.pairs], dtype=np.int64)
    sparse = SparseSimilarity.from_pairs(n, ii, jj, result.similarities, dtype=dtype)
    subset = PredefinedSubset(
        "archive",
        1.0,
        np.arange(n, dtype=np.int64),
        np.full(n, 1.0 / n),
        sparse,
        normalize=False,
    )
    photos = [Photo(photo_id=i, cost=float(c)) for i, c in enumerate(costs)]
    return PARInstance(photos, [subset], budget), result


# ------------------------------------------------------------- bit identity


class TestFusedEqualsUnfused:
    def test_candidate_sets_identical(self, archive, fused):
        _, emb = archive
        hasher = SimHasher(DIM, N_BITS, np.random.default_rng(SEED))
        bands, rows = tune_bands(TAU, N_BITS, 0.95)
        reference = candidate_pairs(hasher.signatures(emb), bands, rows)
        _, report = fused
        assert report.candidate_pairs == len(reference)
        assert (report.bands, report.rows) == (bands, rows)

    def test_csr_arrays_bit_identical(self, archive, fused):
        costs, emb = archive
        inst, report = fused
        ref_inst, ref = _unfused_instance(costs, emb, inst.budget)
        assert report.kept_pairs == len(ref.pairs)
        assert report.candidate_pairs == ref.candidates_checked
        fi, fc, fv = inst.subsets[0].similarity.csr()
        ri, rc, rv = ref_inst.subsets[0].similarity.csr()
        assert np.array_equal(fi, ri)
        assert np.array_equal(fc, rc)
        assert np.array_equal(fv, rv)  # bit-exact, not allclose

    @pytest.mark.parametrize("backend", ["kernel", "reference"])
    def test_solve_picks_bit_identical(self, archive, fused, backend, monkeypatch):
        costs, emb = archive
        inst, _ = fused
        ref_inst, _ = _unfused_instance(costs, emb, inst.budget)
        monkeypatch.setenv("PHOCUS_COVERAGE_BACKEND", backend)
        a = main_algorithm(inst)
        b = main_algorithm(ref_inst)
        assert a.picks == b.picks
        assert a.selection == b.selection
        assert a.value == b.value

    def test_chunk_sizes_never_change_results(self, archive, fused):
        costs, emb = archive
        inst, report = fused
        small, small_report = build_streamed_instance(
            costs,
            emb,
            inst.budget,
            tau=TAU,
            n_bits=N_BITS,
            rng=SEED,
            chunk_pairs=777,
            signature_chunk=123,
        )
        assert small_report.candidate_pairs == report.candidate_pairs
        assert small_report.kept_pairs == report.kept_pairs
        for a, b in zip(inst.subsets[0].similarity.csr(), small.subsets[0].similarity.csr()):
            assert np.array_equal(a, b)

    def test_auto_bits_still_matches_unfused_at_same_width(self, archive):
        # "auto" only picks the width; at that same width the pipelines
        # must still agree bit for bit.
        costs, emb = archive
        budget = float(costs.sum()) * 0.3
        inst, report = build_streamed_instance(
            costs, emb, budget, tau=TAU, n_bits="auto", rng=SEED
        )
        assert report.n_bits == recommended_bits(N, TAU, 0.95)
        result = lsh_similar_pairs(
            emb, TAU, n_bits=report.n_bits, rng=np.random.default_rng(SEED)
        )
        assert report.kept_pairs == len(result.pairs)
        assert report.candidate_pairs == result.candidates_checked


# ------------------------------------------------------------------- dtype


class TestDtype:
    def test_float32_values_are_rounded_float64(self, archive, fused):
        costs, emb = archive
        inst, _ = fused
        inst32, report32 = build_streamed_instance(
            costs, emb, inst.budget, tau=TAU, n_bits=N_BITS, rng=SEED, dtype=np.float32
        )
        assert report32.dtype == "float32"
        sim32 = inst32.subsets[0].similarity
        assert sim32.dtype == np.float32
        _, _, v64 = inst.subsets[0].similarity.csr()
        _, _, v32 = sim32.csr()
        assert v32.dtype == np.float32
        np.testing.assert_allclose(v32, v64, rtol=6e-8)

    def test_float32_roundtrips_through_serialize(self, archive, fused):
        costs, emb = archive
        inst, _ = fused
        inst32, _ = build_streamed_instance(
            costs, emb, inst.budget, tau=TAU, n_bits=N_BITS, rng=SEED, dtype=np.float32
        )
        back = instance_from_json(instance_to_json(inst32))
        sim = back.subsets[0].similarity
        assert sim.dtype == np.float32
        for a, b in zip(sim.csr(), inst32.subsets[0].similarity.csr()):
            assert np.array_equal(a, b)

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_dtype_survives_shared_memory_pack(self, archive, fused, dtype):
        costs, emb = archive
        inst, _ = fused
        built, _ = build_streamed_instance(
            costs, emb, inst.budget, tau=TAU, n_bits=N_BITS, rng=SEED, dtype=dtype
        )
        with SharedInstance(built) as shared:
            view = shared.materialize()
            sim = view.subsets[0].similarity
            assert sim.dtype == np.dtype(dtype)
            for a, b in zip(sim.csr(), built.subsets[0].similarity.csr()):
                assert np.array_equal(a, b)
            assert main_algorithm(view).value == main_algorithm(built).value

    def test_unsupported_dtype_rejected(self, archive):
        costs, emb = archive
        with pytest.raises(ValidationError):
            build_streamed_instance(
                costs, emb, 1e9, tau=TAU, n_bits=N_BITS, rng=SEED, dtype=np.float16
            )


# ------------------------------------------------------------------ report


class TestReport:
    def test_counts_consistent(self, fused):
        inst, report = fused
        assert isinstance(report, ScaleBuildReport)
        assert report.n_photos == N and report.dim == DIM
        # Symmetric off-diagonal pairs plus the unit diagonal.
        assert report.nnz == 2 * report.kept_pairs + N
        assert inst.subsets[0].similarity.nnz() == report.nnz
        assert 0 < report.kept_pairs <= report.candidate_pairs
        assert report.verified_pairs == report.candidate_pairs
        assert 0.0 < report.candidate_fraction < 1.0
        assert set(report.phase_seconds) == {
            "signatures", "candidates", "verify", "assemble",
        }
        assert report.build_seconds > 0

    def test_to_dict_is_jsonable(self, fused):
        import json

        _, report = fused
        doc = json.loads(json.dumps(report.to_dict()))
        assert doc["n_photos"] == N
        assert doc["nnz"] == report.nnz

    def test_obs_counters_fire_when_armed(self, archive):
        costs, emb = archive
        with probes.armed() as instruments:
            _, report = build_streamed_instance(
                costs, emb, float(costs.sum()) * 0.3, tau=TAU, n_bits=N_BITS, rng=SEED
            )
            by_name = {
                fam.name: fam for fam in instruments.registry.snapshot()
            }
            cand = by_name["phocus_scalebuild_candidate_pairs_total"]
            assert cand.series[0].value == report.candidate_pairs
            kept = by_name["phocus_scalebuild_kept_pairs_total"]
            assert kept.series[0].value == report.kept_pairs
            chunks = by_name["phocus_scalebuild_chunks_total"]
            stages = {dict(s.labels)["stage"] for s in chunks.series}
            assert {"signatures", "candidates", "verify"} <= stages


# ------------------------------------------------------- validation & sizing


class TestValidationAndSizing:
    def test_recommended_bits_tracks_archive_size(self):
        small = recommended_bits(1_000, TAU)
        large = recommended_bits(1_000_000, TAU)
        assert large > small
        for n in (1_000, 1_000_000):
            n_bits = recommended_bits(n, TAU)
            bands, rows = tune_bands(TAU, n_bits, 0.95)
            assert bands * rows == n_bits
            assert rows >= max(4, int(np.ceil(np.log2(n))))

    def test_bad_inputs_rejected(self, archive):
        costs, emb = archive
        with pytest.raises(ConfigurationError):
            build_streamed_instance(costs[:-1], emb, 1e9, tau=TAU)
        with pytest.raises(ConfigurationError):
            build_streamed_instance(costs, emb, 1e9, tau=0.0)
        with pytest.raises(ConfigurationError):
            build_streamed_instance(costs, emb, 1e9, tau=TAU, chunk_pairs=0)
        with pytest.raises(ConfigurationError):
            build_streamed_instance(costs, emb[0], 1e9, tau=TAU)

    def test_embeddings_detached_by_default(self, archive, fused):
        costs, emb = archive
        inst, _ = fused
        assert inst.embeddings is None
        kept, _ = build_streamed_instance(
            costs, emb, inst.budget, tau=TAU, n_bits=N_BITS, rng=SEED,
            keep_embeddings=True,
        )
        assert kept.embeddings is not None and kept.embeddings.shape == (N, DIM)

    def test_retained_and_relevance_flow_through(self, archive):
        costs, emb = archive
        rel = np.arange(1, N + 1, dtype=np.float64)
        inst, _ = build_streamed_instance(
            costs, emb, float(costs.sum()), tau=TAU, n_bits=N_BITS, rng=SEED,
            relevance=rel, retained=[0, 7],
        )
        assert inst.retained == frozenset({0, 7})
        np.testing.assert_allclose(inst.subsets[0].relevance.sum(), 1.0)
        assert inst.subsets[0].relevance[7] > inst.subsets[0].relevance[0]


# ---------------------------------------------------------- persistence etc.


class TestSaveAndDataset:
    def test_save_roundtrips(self, fused, tmp_path):
        inst, _ = fused
        path = tmp_path / "archive.json"
        nbytes = save_streamed_instance(inst, path)
        assert path.stat().st_size == nbytes
        back = instance_from_json(path.read_text())
        for a, b in zip(
            back.subsets[0].similarity.csr(), inst.subsets[0].similarity.csr()
        ):
            assert np.array_equal(a, b)
        assert main_algorithm(back).picks == main_algorithm(inst).picks

    def test_dataset_streamed_instance_is_cosine_only(self):
        from repro.datasets.registry import load

        dataset = load("P-1K", scale=0.2, seed=0)
        inst, report = dataset.streamed_instance(
            dataset.total_cost() * 0.2, tau=0.5, rng=1
        )
        assert inst.n == dataset.n_photos
        assert len(inst.subsets) == 1
        assert inst.subsets[0].similarity.is_sparse
        assert report.n_photos == dataset.n_photos
        # Photo records (labels, metadata) carry over unchanged.
        assert [p.label for p in inst.photos] == [p.label for p in dataset.photos]
        with pytest.raises(ValidationError):
            dataset.streamed_instance(1e9, tau=0.5, contextual_mode="reweight+normalise")

    def test_synthetic_archive_deterministic_and_chunk_invariant(self):
        c1, e1 = synthetic_archive(1000, dim=4, seed=9)
        c2, e2 = synthetic_archive(1000, dim=4, seed=9)
        assert np.array_equal(c1, c2) and np.array_equal(e1, e2)
        assert c1.shape == (1000,) and e1.shape == (1000, 4)
        assert (c1 > 0).all()
