"""Tests for the plain-text bar-chart renderer."""

from __future__ import annotations

import pytest

from repro.bench.ascii_chart import grouped_bar_chart, quality_grid_chart
from repro.bench.harness import run_quality_grid
from repro.datasets.public import generate_public_dataset


class TestGroupedBarChart:
    def test_basic_render(self):
        text = grouped_bar_chart(
            ["small", "large"],
            {"A": [1.0, 2.0], "B": [0.5, 1.5]},
            width=10,
            title="demo",
        )
        assert text.startswith("demo")
        assert "small:" in text and "large:" in text
        assert text.count("|") == 8  # two bars per group, two delimiters each

    def test_bar_lengths_scale_with_values(self):
        text = grouped_bar_chart(["g"], {"big": [10.0], "tiny": [1.0]}, width=20)
        lines = text.splitlines()
        big_line = next(l for l in lines if "big" in l)
        tiny_line = next(l for l in lines if "tiny" in l)
        assert big_line.count("█") > tiny_line.count("█")

    def test_full_scale_bar_fills_width(self):
        text = grouped_bar_chart(["g"], {"max": [5.0]}, width=12)
        assert "█" * 12 in text

    def test_zero_values(self):
        text = grouped_bar_chart(["g"], {"zero": [0.0]}, width=10)
        assert "█" not in text.splitlines()[-1]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            grouped_bar_chart(["a", "b"], {"s": [1.0]})

    def test_value_format(self):
        text = grouped_bar_chart(["g"], {"s": [0.123456]}, value_format="{:.4f}")
        assert "0.1235" in text


class TestQualityGridChart:
    def test_renders_grid(self):
        dataset = generate_public_dataset(40, 8, seed=2)
        grid = run_quality_grid(
            dataset,
            [dataset.total_cost_mb() * 0.2],
            ["rand-a", "phocus"],
        )
        text = quality_grid_chart(grid)
        assert "PHOcus" in text
        assert "RAND" in text
        assert "MB" in text
