"""Smoke tests: every shipped example must run cleanly end to end.

Examples are documentation that executes; a broken example is a broken
promise to the first user.  Each runs in a subprocess (its own
interpreter, like a user would) with a generous timeout.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_all_examples_are_covered():
    """This module must not silently miss a newly added example."""
    assert len(EXAMPLES) >= 7


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs_cleanly(example):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / example)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{example} failed:\n--- stdout ---\n{result.stdout[-2000:]}"
        f"\n--- stderr ---\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{example} produced no output"
