"""The ``fidelity`` policy through the service, jobs, and the CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.serialize import instance_to_dict
from repro.fidelity import VariantCatalog, fidelity_main
from repro.fidelity.policy import execute_fidelity_payload
from repro.jobs import JobManager
from repro.scale import build_streamed_instance, synthetic_archive
from repro.system.cli import main
from repro.system.service import handle_request


def _body(payload) -> bytes:
    return json.dumps(payload).encode("utf-8")


@pytest.fixture(scope="module")
def archive():
    costs, emb = synthetic_archive(80, dim=8, noise=0.7, seed=11)
    total = float(costs.sum())
    instance, _ = build_streamed_instance(
        costs, emb, total * 0.2, tau=0.5, rng=11
    )
    return instance


@pytest.fixture(scope="module")
def archive_doc(archive):
    return instance_to_dict(archive)


class TestSolveEndpoint:
    def test_solve_with_fidelity_policy(self, archive, archive_doc):
        status, doc = handle_request(
            "POST",
            "/solve",
            _body({"instance": archive_doc, "fidelity": {}}),
        )
        assert status == 200
        assert doc["algorithm"] == "fidelity"
        local = fidelity_main(archive, VariantCatalog.default(archive.costs))
        assert doc["value"] == pytest.approx(local.value)
        assert doc["selection"] == sorted(int(p) for p in local.chosen)
        assert doc["quality"]["kept"] == len(local.chosen)
        # One record per chosen photo, slot-local variant indices.
        assert len(doc["chosen"]) == len(local.chosen)
        assert all(rec["variant"] >= 0 for rec in doc["chosen"])

    def test_solve_fidelity_with_explicit_levels(self, archive, archive_doc):
        status, doc = handle_request(
            "POST",
            "/solve",
            _body(
                {
                    "instance": archive_doc,
                    "fidelity": {"levels": [[0.85, 0.45]], "mode": "cb"},
                }
            ),
        )
        assert status == 200
        assert doc["mode"] == "CB"
        assert {rec["tier"] for rec in doc["chosen"]} <= {
            "original",
            "c0.85x0.45",
        }

    def test_solve_fidelity_unknown_key_is_422(self, archive_doc):
        status, doc = handle_request(
            "POST",
            "/solve",
            _body({"instance": archive_doc, "fidelity": {"nope": 1}}),
        )
        assert status == 422
        assert "unknown fidelity policy keys" in doc["error"]

    def test_solve_fidelity_bad_mode_is_422(self, archive_doc):
        status, doc = handle_request(
            "POST",
            "/solve",
            _body({"instance": archive_doc, "fidelity": {"mode": "zz"}}),
        )
        assert status == 422

    def test_solve_rejects_top_level_budgets_with_fidelity(self, archive_doc):
        status, doc = handle_request(
            "POST",
            "/solve",
            _body(
                {
                    "instance": archive_doc,
                    "budgets": [1.0],
                    "fidelity": {},
                }
            ),
        )
        assert status == 422

    def test_solve_fidelity_budget_sweep(self, archive, archive_doc):
        total = float(archive.costs.sum())
        status, doc = handle_request(
            "POST",
            "/solve",
            _body(
                {
                    "instance": archive_doc,
                    "fidelity": {"budgets": [total * 0.1, total * 0.3]},
                }
            ),
        )
        assert status == 200
        assert doc["algorithm"] == "fidelity-frontier"
        assert len(doc["points"]) == 2


class TestScoreEndpoint:
    def test_score_chosen_assignment(self, archive, archive_doc):
        run = fidelity_main(archive, VariantCatalog.default(archive.costs))
        catalog = VariantCatalog.default(archive.costs)
        records = [
            {"photo": int(p), "variant": int(v - catalog.indptr[p])}
            for p, v in run.chosen.items()
        ]
        status, doc = handle_request(
            "POST",
            "/score",
            _body({"instance": archive_doc, "fidelity": {"chosen": records}}),
        )
        assert status == 200
        assert doc["value"] == pytest.approx(run.value)
        assert doc["feasible"] is True
        assert doc["quality"]["kept"] == len(records)

    def test_score_without_selection_or_fidelity_is_422(self, archive_doc):
        status, doc = handle_request(
            "POST", "/score", _body({"instance": archive_doc})
        )
        assert status == 422
        assert "selection" in doc["error"]

    def test_score_duplicate_photo_is_422(self, archive_doc):
        status, doc = handle_request(
            "POST",
            "/score",
            _body(
                {
                    "instance": archive_doc,
                    "fidelity": {
                        "chosen": [
                            {"photo": 0, "variant": 0},
                            {"photo": 0, "variant": 1},
                        ]
                    },
                }
            ),
        )
        assert status == 422
        assert "at most one variant" in doc["error"]

    def test_score_bad_slot_is_422(self, archive_doc):
        status, doc = handle_request(
            "POST",
            "/score",
            _body(
                {
                    "instance": archive_doc,
                    "fidelity": {"chosen": [{"photo": 0, "variant": 9}]},
                }
            ),
        )
        assert status == 422
        assert "slot 9 does not exist" in doc["error"]


class TestFrontierEndpoint:
    def test_frontier_route(self, archive, archive_doc):
        total = float(archive.costs.sum())
        status, doc = handle_request(
            "POST",
            "/fidelity/frontier",
            _body({"instance": archive_doc, "budgets": [total * 0.1, total * 0.25]}),
        )
        assert status == 200
        assert doc["algorithm"] == "fidelity-frontier"
        assert len(doc["points"]) == 2
        assert "weakly_dominates_all" in doc["checks"]

    def test_frontier_needs_budgets(self, archive_doc):
        status, doc = handle_request(
            "POST", "/fidelity/frontier", _body({"instance": archive_doc})
        )
        assert status == 422
        assert "budgets" in doc["error"]

    def test_frontier_wrong_method_is_405(self):
        status, doc = handle_request("GET", "/fidelity/frontier", None)
        assert status == 405
        assert doc["allow"] == ["POST"]


class TestJobs:
    def test_fidelity_job_round_trip(self, archive, archive_doc):
        with JobManager(workers=1, queue_depth=4) as manager:
            status, payload = handle_request(
                "POST",
                "/jobs",
                _body({"instance": archive_doc, "fidelity": {}}),
                manager,
            )
            assert status == 202
            final = manager.wait(payload["job_id"], timeout=60)
        assert final["state"] == "SUCCEEDED"
        doc = final["result"]
        assert doc["algorithm"] == "fidelity"
        local = execute_fidelity_payload({}, instance=archive)
        assert doc["value"] == pytest.approx(local["value"])
        assert doc["chosen"] == local["chosen"]

    def test_malformed_fidelity_job_fails_validation(self, archive_doc):
        with JobManager(workers=1, queue_depth=4) as manager:
            status, payload = handle_request(
                "POST",
                "/jobs",
                _body({"instance": archive_doc, "fidelity": "nope"}),
                manager,
            )
        assert status == 422


class TestCli:
    def test_fidelity_single_solve(self, capsys):
        code = main(
            [
                "fidelity",
                "--dataset",
                "P-1K",
                "--scale",
                "0.05",
                "--budget-fraction",
                "0.2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "value" in out
        assert "mean fidelity" in out

    def test_fidelity_frontier_table(self, capsys):
        code = main(
            [
                "fidelity",
                "--dataset",
                "P-1K",
                "--scale",
                "0.05",
                "--budget-fractions",
                "0.1,0.3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "frontier" in out
        assert "discard" in out

    def test_fidelity_bad_levels(self, capsys):
        code = main(
            [
                "fidelity",
                "--dataset",
                "P-1K",
                "--scale",
                "0.05",
                "--levels",
                "bogus",
            ]
        )
        assert code == 2


class TestObservability:
    def test_fidelity_metric_families_are_exported(self, archive):
        from repro.obs import probes
        from repro.obs.middleware import route_label
        from repro.obs.prom import render_registry

        instruments = probes.arm()
        try:
            catalog = VariantCatalog.default(archive.costs)
            fidelity_main(archive, catalog)
            execute_fidelity_payload(
                {"budgets": [archive.budget, archive.budget * 2]},
                instance=archive,
            )
            text = render_registry(instruments.registry)
        finally:
            probes.disarm()
        for family in (
            "phocus_fidelity_solves_total",
            "phocus_fidelity_solve_seconds",
            "phocus_fidelity_variants_selected_total",
            "phocus_fidelity_frontier_points_total",
        ):
            assert family in text
        # The new endpoint keeps a bounded route label.
        assert route_label("/fidelity/frontier") == "/fidelity/frontier"
        assert route_label("/fidelity/unknown") == "<other>"
