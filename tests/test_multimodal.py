"""Tests for the multimodal (visual + EXIF) similarity of [44]."""

from __future__ import annotations

from datetime import datetime, timezone

import numpy as np
import pytest

from repro.core.instance import PARInstance, Photo, SubsetSpec
from repro.errors import ConfigurationError
from repro.similarity.multimodal import (
    MultimodalSimilarity,
    camera_affinity,
    place_affinity,
    time_affinity,
)


def _exif(ts="2023-06-10T10:00:00", lat=48.85, lon=2.35, camera="Canon EOS R6"):
    return {"timestamp": ts, "latitude": lat, "longitude": lon, "camera": camera}


class TestTimeAffinity:
    def test_same_moment_is_one(self):
        assert time_affinity(_exif(), _exif()) == pytest.approx(1.0)

    def test_half_life(self):
        a = _exif(ts="2023-06-10T10:00:00")
        b = _exif(ts="2023-06-10T16:00:00")  # 6 hours later
        assert time_affinity(a, b, half_life_hours=6.0) == pytest.approx(0.5)

    def test_missing_timestamp_is_zero(self):
        assert time_affinity({}, _exif()) == 0.0
        assert time_affinity(_exif(ts="not-a-date"), _exif()) == 0.0

    def test_datetime_objects_accepted(self):
        t = datetime(2023, 6, 10, 10, 0, tzinfo=timezone.utc)
        a = {"timestamp": t}
        b = {"timestamp": t}
        assert time_affinity(a, b) == pytest.approx(1.0)


class TestPlaceAffinity:
    def test_same_place_is_one(self):
        assert place_affinity(_exif(), _exif()) == pytest.approx(1.0)

    def test_half_life_distance(self):
        a = _exif(lat=0.0, lon=0.0)
        b = _exif(lat=5.0 / 111.0, lon=0.0)  # ~5 km north
        assert place_affinity(a, b, half_life_km=5.0) == pytest.approx(0.5, rel=1e-3)

    def test_missing_coordinates_zero(self):
        assert place_affinity({}, _exif()) == 0.0
        assert place_affinity({"latitude": "x", "longitude": 0}, _exif()) == 0.0


class TestCameraAffinity:
    def test_match(self):
        assert camera_affinity(_exif(), _exif()) == 1.0

    def test_mismatch(self):
        assert camera_affinity(_exif(camera="A"), _exif(camera="B")) == 0.0

    def test_unknown(self):
        assert camera_affinity({}, _exif()) == 0.0


class TestMultimodalSimilarity:
    def _photos_and_embeddings(self):
        rng = np.random.default_rng(0)
        exifs = [
            _exif(ts="2023-06-10T10:00:00"),
            _exif(ts="2023-06-10T10:05:00"),                      # same shoot
            _exif(ts="2023-09-01T18:00:00", lat=40.0, lon=-74.0,  # another event
                  camera="Pixel 6"),
        ]
        photos = [
            Photo(photo_id=i, cost=1.0, metadata={"exif": exifs[i]})
            for i in range(3)
        ]
        emb = rng.standard_normal((3, 8))
        emb /= np.linalg.norm(emb, axis=1, keepdims=True)
        return photos, emb

    def test_valid_sim_matrix(self):
        photos, emb = self._photos_and_embeddings()
        sim = MultimodalSimilarity.from_photos(photos)
        matrix = sim.matrix([0, 1, 2], emb)
        assert np.allclose(np.diag(matrix), 1.0)
        assert np.allclose(matrix, matrix.T)
        assert np.all(matrix >= 0) and np.all(matrix <= 1)

    def test_same_event_more_similar(self):
        """Shots minutes apart at the same place on the same camera must
        beat shots from a different month/city/camera, even with random
        visual embeddings."""
        photos, emb = self._photos_and_embeddings()
        sim = MultimodalSimilarity.from_photos(photos, w_visual=0.2)
        matrix = sim.matrix([0, 1, 2], emb)
        assert matrix[0, 1] > matrix[0, 2]
        assert matrix[0, 1] > matrix[1, 2]

    def test_pure_visual_reduces_to_cosine(self):
        from repro.similarity.metrics import cosine_similarity_matrix

        photos, emb = self._photos_and_embeddings()
        sim = MultimodalSimilarity.from_photos(
            photos, w_visual=1.0, w_time=0.0, w_place=0.0, w_camera=0.0
        )
        assert np.allclose(sim.matrix([0, 1, 2], emb),
                           cosine_similarity_matrix(emb), atol=1e-9)

    def test_missing_exif_contributes_zero(self):
        photos, emb = self._photos_and_embeddings()
        photos[2] = Photo(photo_id=2, cost=1.0)  # no EXIF at all
        sim = MultimodalSimilarity.from_photos(photos, w_visual=0.0, w_time=1.0)
        matrix = sim.matrix([0, 1, 2], emb)
        assert matrix[0, 2] == 0.0
        assert matrix[0, 1] > 0.0

    def test_weight_validation(self):
        with pytest.raises(ConfigurationError):
            MultimodalSimilarity(exif_of={}, w_visual=0, w_time=0, w_place=0, w_camera=0)
        with pytest.raises(ConfigurationError):
            MultimodalSimilarity(exif_of={}, w_visual=-1.0)

    def test_usable_in_instance_build(self):
        photos, emb = self._photos_and_embeddings()
        sim = MultimodalSimilarity.from_photos(photos)
        specs = [SubsetSpec("all", 1.0, [0, 1, 2], [1, 1, 1])]
        inst = PARInstance.build(photos, specs, 2.0, embeddings=emb, similarity_fn=sim)
        q = inst.subsets[0]
        assert q.sim(0, 1) > q.sim(0, 2)

    def test_from_photos_accepts_exif_records(self):
        from repro.images.exif import synthesize_event_exif

        rng = np.random.default_rng(1)
        records = synthesize_event_exif(2, rng)
        photos = [
            Photo(photo_id=i, cost=1.0, metadata={"exif": records[i]})
            for i in range(2)
        ]
        emb = rng.standard_normal((2, 4))
        sim = MultimodalSimilarity.from_photos(photos)
        matrix = sim.matrix([0, 1], emb)
        assert matrix[0, 1] > 0.0  # same event -> positive affinity
