"""Tests for the multi-tenant archive store (repro.tenants).

Covers the persistent store (CRUD, versioning, CRC quarantine, quotas),
the token-bucket rate limiter, the shared-memory warm cache (hit/miss,
leases vs eviction, leak-free unlinking, the startup sweep), and the
:class:`Tenants` facade the service wires in.
"""

from __future__ import annotations

import glob
import os
import threading

import pytest

from repro.core.serialize import instance_from_dict, instance_to_dict
from repro.core.solver import solve
from repro.errors import (
    InstanceNotFound,
    QuotaExceeded,
    RateLimited,
    ValidationError,
)
from repro.tenants import Tenants, TenantQuota, parse_ref, validate_id
from repro.tenants.cache import WarmCache, sweep_leaked_segments
from repro.tenants.quota import QuotaPolicy, TokenBucket
from repro.tenants.store import TenantStore

from tests.conftest import random_instance


def _doc(seed=0, **kw):
    return instance_to_dict(random_instance(seed, **kw))


def _shm_segments(prefix):
    return glob.glob(f"/dev/shm/{prefix}-*")


# ----------------------------------------------------------------- identifiers


def test_validate_id_accepts_sane_names():
    for good in ("acme", "a", "A-1_b.2", "x" * 64):
        assert validate_id(good, "id") == good


@pytest.mark.parametrize(
    "bad",
    ["", ".", "..", ".hidden", "a/b", "../x", "a b", "x" * 65, None, 7],
)
def test_validate_id_rejects_path_hazards(bad):
    with pytest.raises(ValidationError):
        validate_id(bad, "id")


def test_parse_ref_shapes():
    assert parse_ref({"tenant": "t", "instance_id": "i"}) == ("t", "i", None)
    assert parse_ref({"tenant": "t", "instance_id": "i", "version": 3}) == (
        "t",
        "i",
        3,
    )
    for bad in (
        None,
        [],
        {"tenant": "t"},
        {"tenant": "t", "instance_id": "i", "version": 0},
        {"tenant": "t", "instance_id": "i", "version": True},
        {"tenant": "t", "instance_id": "i", "extra": 1},
    ):
        with pytest.raises(ValidationError):
            parse_ref(bad)


# ----------------------------------------------------------------------- store


def test_store_put_get_roundtrip_and_versioning(tmp_path):
    store = TenantStore(str(tmp_path))
    doc = _doc(1)
    meta1 = store.put("acme", "p", doc)
    assert (meta1.version, meta1.tenant, meta1.instance_id) == (1, "acme", "p")
    envelope = store.get("acme", "p")
    assert envelope["instance"] == doc
    assert envelope["version"] == 1

    meta2 = store.put("acme", "p", _doc(2))
    assert meta2.version == 2
    assert meta2.created_at == meta1.created_at
    assert store.get("acme", "p")["version"] == 2


def test_store_index_survives_restart(tmp_path):
    store = TenantStore(str(tmp_path))
    store.put("acme", "a", _doc(1))
    store.put("acme", "b", _doc(2))
    store.put("globex", "a", _doc(3))
    store.put("acme", "a", _doc(4))  # bump to v2

    reopened = TenantStore(str(tmp_path))
    assert reopened.tenants() == ["acme", "globex"]
    assert [m.instance_id for m in reopened.list_instances("acme")] == ["a", "b"]
    assert reopened.meta("acme", "a").version == 2
    assert reopened.quarantined_count == 0


def test_store_missing_instance_raises_not_found(tmp_path):
    store = TenantStore(str(tmp_path))
    with pytest.raises(InstanceNotFound):
        store.get("acme", "nope")
    with pytest.raises(InstanceNotFound):
        store.delete("acme", "nope")


def test_store_corrupt_blob_is_quarantined_not_deleted(tmp_path):
    store = TenantStore(str(tmp_path))
    store.put("acme", "p", _doc(1))
    path = tmp_path / "acme" / "p.inst"
    blob = bytearray(path.read_bytes())
    blob[15] ^= 0xFF  # flip a payload bit: CRC must catch it
    path.write_bytes(bytes(blob))

    with pytest.raises(InstanceNotFound):
        store.get("acme", "p")
    assert not path.exists()
    assert (tmp_path / "acme" / "p.inst.quarantine").exists()
    assert store.quarantined_count == 1
    assert store.list_instances("acme") == []  # dropped from the index


def test_store_scan_quarantines_corrupt_files(tmp_path):
    store = TenantStore(str(tmp_path))
    store.put("acme", "good", _doc(1))
    (tmp_path / "acme" / "bad.inst").write_bytes(b"not an envelope at all\n")

    reopened = TenantStore(str(tmp_path))
    assert [m.instance_id for m in reopened.list_instances("acme")] == ["good"]
    assert reopened.quarantined_count == 1
    assert (tmp_path / "acme" / "bad.inst.quarantine").exists()


def test_store_delete_removes_file_and_index(tmp_path):
    store = TenantStore(str(tmp_path))
    store.put("acme", "p", _doc(1))
    meta = store.delete("acme", "p")
    assert meta.version == 1
    assert not (tmp_path / "acme" / "p.inst").exists()
    assert store.tenants() == []


def test_store_byte_quota_rejects_before_writing(tmp_path):
    small = _doc(1, n_photos=8)
    store = TenantStore(str(tmp_path))
    nbytes = store.put("probe", "p", small).nbytes

    quota = QuotaPolicy(TenantQuota(max_bytes=nbytes * 2 + 64))
    limited = TenantStore(str(tmp_path / "q"), quota_policy=quota)
    limited.put("acme", "a", small)
    limited.put("acme", "b", small)
    with pytest.raises(QuotaExceeded) as exc:
        limited.put("acme", "c", small)
    assert exc.value.kind == "bytes"
    assert not (tmp_path / "q" / "acme" / "c.inst").exists()
    # Overwriting an existing instance only counts the delta: still allowed.
    assert limited.put("acme", "a", small).version == 2
    # Other tenants are unaffected.
    limited.put("globex", "a", small)


def test_store_instance_count_quota(tmp_path):
    quota = QuotaPolicy(TenantQuota(max_instances=2))
    store = TenantStore(str(tmp_path), quota_policy=quota)
    store.put("acme", "a", _doc(1))
    store.put("acme", "b", _doc(2))
    with pytest.raises(QuotaExceeded) as exc:
        store.put("acme", "c", _doc(3))
    assert exc.value.kind == "instances"
    store.put("acme", "a", _doc(4))  # overwrite is not a new instance
    store.delete("acme", "b")
    store.put("acme", "c", _doc(3))  # freed slot is reusable


# ------------------------------------------------------------------ rate limit


def test_token_bucket_refills_continuously():
    clock = [0.0]
    bucket = TokenBucket(rate_per_second=2.0, burst=2, clock=lambda: clock[0])
    assert bucket.try_acquire() is None
    assert bucket.try_acquire() is None
    retry = bucket.try_acquire()
    assert retry == pytest.approx(0.5)
    clock[0] += 0.5  # one token refilled
    assert bucket.try_acquire() is None
    assert bucket.try_acquire() is not None


def test_quota_policy_rate_limits_per_tenant():
    clock = [0.0]
    policy = QuotaPolicy(
        TenantQuota(rate_per_second=1.0, burst=1), clock=lambda: clock[0]
    )
    policy.check_rate("acme")
    with pytest.raises(RateLimited) as exc:
        policy.check_rate("acme")
    assert exc.value.tenant == "acme"
    assert exc.value.retry_after > 0
    policy.check_rate("globex")  # separate bucket
    clock[0] += 1.0
    policy.check_rate("acme")  # refilled


# ------------------------------------------------------------------ warm cache


def test_warm_cache_hit_skips_loader_and_unlinks_on_close():
    prefix = f"phtest-{os.getpid()}-a"
    cache = WarmCache(64 * 1024 * 1024, name_prefix=prefix, sweep=False)
    inst = random_instance(3, n_photos=30)
    loads = []

    def loader():
        loads.append(1)
        return inst

    with cache.lease(("t", "i", 1), loader) as (view, hit):
        assert not hit
        assert _shm_segments(prefix)  # segment exists while resident
        first = solve(view)
    with cache.lease(("t", "i", 1), loader) as (view, hit):
        assert hit
        second = solve(view)
    assert len(loads) == 1  # warm lease never re-loaded
    assert first.selection == second.selection
    assert cache.stats()["hits"] == 1 and cache.stats()["misses"] == 1
    cache.close()
    assert _shm_segments(prefix) == []


def test_warm_cache_eviction_closes_segment():
    prefix = f"phtest-{os.getpid()}-b"
    inst = random_instance(3, n_photos=30)
    probe = WarmCache(64 * 1024 * 1024, name_prefix=prefix, sweep=False)
    with probe.lease(("t", "i", 1), lambda: inst) as (view, _):
        pass
    nbytes = probe.stats()["used_bytes"]
    probe.close()

    # Capacity for exactly one packed instance: the second admit evicts.
    cache = WarmCache(nbytes * 1.5, name_prefix=prefix, sweep=False)
    with cache.lease(("t", "a", 1), lambda: inst) as (view, _):
        pass
    with cache.lease(("t", "b", 1), lambda: inst) as (view, _):
        pass
    assert cache.stats()["entries"] == 1
    assert cache.stats()["evictions"] == 1
    assert len(_shm_segments(prefix)) == 1  # the evicted segment is gone
    cache.close()
    assert _shm_segments(prefix) == []


def test_warm_cache_eviction_deferred_while_leased():
    prefix = f"phtest-{os.getpid()}-c"
    inst = random_instance(3, n_photos=30)
    probe = WarmCache(64 * 1024 * 1024, name_prefix=prefix, sweep=False)
    with probe.lease(("t", "i", 1), lambda: inst) as (view, _):
        pass
    nbytes = probe.stats()["used_bytes"]
    probe.close()

    cache = WarmCache(nbytes * 1.5, name_prefix=prefix, sweep=False)
    with cache.lease(("t", "a", 1), lambda: inst) as (view_a, _):
        # Evict ("t","a",1) while its lease is held: the solve must still
        # read valid arrays, and the segment must survive until release.
        with cache.lease(("t", "b", 1), lambda: inst) as (view_b, _):
            pass
        assert ("t", "a", 1) not in cache._lru
        solution = solve(view_a)  # arrays still mapped
        assert solution.selection
    cache.close()
    assert _shm_segments(prefix) == []


def test_warm_cache_oversize_instance_served_transiently():
    prefix = f"phtest-{os.getpid()}-d"
    inst = random_instance(3, n_photos=30)
    cache = WarmCache(16, name_prefix=prefix, sweep=False)  # nothing fits
    with cache.lease(("t", "i", 1), lambda: inst) as (view, hit):
        assert not hit
        assert _shm_segments(prefix)  # transient segment while leased
        solve(view)
    assert _shm_segments(prefix) == []  # destroyed on release
    assert cache.stats()["entries"] == 0
    cache.close()


def test_warm_cache_disabled_packs_transiently():
    prefix = f"phtest-{os.getpid()}-e"
    inst = random_instance(3, n_photos=30)
    cache = WarmCache(0, name_prefix=prefix, sweep=False)
    for _ in range(2):
        with cache.lease(("t", "i", 1), lambda: inst) as (view, hit):
            assert not hit
    assert cache.stats()["capacity_bytes"] == 0
    assert _shm_segments(prefix) == []
    cache.close()


def test_warm_cache_invalidate_evicts_tenant_entries():
    prefix = f"phtest-{os.getpid()}-f"
    inst = random_instance(3, n_photos=30)
    cache = WarmCache(64 * 1024 * 1024, name_prefix=prefix, sweep=False)
    for key in (("t", "a", 1), ("t", "b", 1), ("u", "a", 1)):
        with cache.lease(key, lambda: inst):
            pass
    assert cache.invalidate("t", "a") == 1
    assert cache.invalidate("t") == 1  # remaining t entry
    assert cache.stats()["entries"] == 1  # u's survives
    assert len(_shm_segments(prefix)) == 1
    cache.close()
    assert _shm_segments(prefix) == []


def test_warm_cache_concurrent_misses_pack_once():
    prefix = f"phtest-{os.getpid()}-g"
    inst = random_instance(3, n_photos=30)
    cache = WarmCache(64 * 1024 * 1024, name_prefix=prefix, sweep=False)
    loads = []
    barrier = threading.Barrier(4)
    errors = []

    def loader():
        loads.append(1)
        return inst

    def worker():
        try:
            barrier.wait(timeout=10)
            with cache.lease(("t", "i", 1), loader) as (view, _):
                assert view.n == inst.n
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert errors == []
    assert len(loads) == 1  # one pack, three waiters reused it
    assert cache.stats()["hits"] == 3 and cache.stats()["misses"] == 1
    cache.close()
    assert _shm_segments(prefix) == []


def test_sweep_reclaims_dead_pid_segments_only():
    prefix = f"phtest-{os.getpid()}-h"
    # A "leaked" segment from a pid that cannot exist, plus one from us.
    dead = f"/dev/shm/{prefix}-99999999-0"
    ours = f"/dev/shm/{prefix}-{os.getpid()}-0"
    with open(dead, "wb") as fh:
        fh.write(b"x" * 64)
    with open(ours, "wb") as fh:
        fh.write(b"x" * 64)
    try:
        reclaimed = sweep_leaked_segments(prefix)
        assert reclaimed == [os.path.basename(dead)]
        assert not os.path.exists(dead)
        assert os.path.exists(ours)  # never touch live-pid segments
    finally:
        for path in (dead, ours):
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass


# --------------------------------------------------------------------- facade


def test_facade_by_ref_solve_matches_inline_and_hits_cache(tmp_path):
    tenants = Tenants(str(tmp_path), sweep=False)
    inst = random_instance(9, n_photos=80)
    tenants.put_instance("acme", "p", instance_to_dict(inst))

    direct = solve(inst)
    ref = {"tenant": "acme", "instance_id": "p"}
    with tenants.lease_for_solve(ref) as (view, hit1):
        first = solve(view)
    with tenants.lease_for_solve(ref) as (view, hit2):
        second = solve(view)
    assert (hit1, hit2) == (False, True)
    assert direct.selection == first.selection == second.selection
    assert direct.value == first.value == second.value
    tenants.close()


def test_facade_put_validates_before_writing(tmp_path):
    tenants = Tenants(str(tmp_path), sweep=False)
    with pytest.raises(ValidationError):
        tenants.put_instance("acme", "p", {"format": 1, "garbage": True})
    assert tenants.list_instances("acme") == []
    assert not (tmp_path / "acme").exists()
    tenants.close()


def test_facade_overwrite_invalidates_stale_packing(tmp_path):
    tenants = Tenants(str(tmp_path), sweep=False)
    inst_v1 = random_instance(1, n_photos=40)
    inst_v2 = random_instance(2, n_photos=40)
    tenants.put_instance("acme", "p", instance_to_dict(inst_v1))
    ref = {"tenant": "acme", "instance_id": "p"}
    with tenants.lease_for_solve(ref) as (view, _):
        v1_solution = solve(view)
    tenants.put_instance("acme", "p", instance_to_dict(inst_v2))
    assert tenants.cache.stats()["entries"] == 0  # stale packing evicted
    with tenants.lease_for_solve(ref) as (view, hit):
        assert not hit  # new version is a fresh key
        v2_solution = solve(view)
    assert v2_solution.selection == solve(inst_v2).selection
    assert v1_solution.selection == solve(inst_v1).selection
    tenants.close()


def test_facade_pinned_version_rejected_after_overwrite(tmp_path):
    tenants = Tenants(str(tmp_path), sweep=False)
    tenants.put_instance("acme", "p", _doc(1))
    tenants.put_instance("acme", "p", _doc(2))
    with pytest.raises(ValidationError):
        with tenants.lease_for_solve(
            {"tenant": "acme", "instance_id": "p", "version": 1}
        ):
            pass  # pragma: no cover - lease must not be entered
    tenants.close()


def test_facade_budget_override(tmp_path):
    tenants = Tenants(str(tmp_path), sweep=False)
    inst = random_instance(9, n_photos=60)
    tenants.put_instance("acme", "p", instance_to_dict(inst))
    tight = inst.budget * 0.5
    ref = {"tenant": "acme", "instance_id": "p"}
    with tenants.lease_for_solve(ref, budget=tight) as (view, _):
        assert view.budget == pytest.approx(tight)
        constrained = solve(view)
    assert constrained.cost <= tight
    assert constrained.selection == solve(inst.with_budget(tight)).selection
    tenants.close()


def test_facade_stats_shape(tmp_path):
    tenants = Tenants(
        str(tmp_path), quota=TenantQuota(max_bytes=1e9, rate_per_second=100.0),
        sweep=False,
    )
    tenants.put_instance("acme", "p", _doc(1))
    stats = tenants.stats("acme")
    assert stats["store"]["instances"] == 1
    assert stats["store"]["bytes"] > 0
    assert stats["quota"]["max_bytes"] == 1e9
    assert set(stats["cache"]) == {
        "entries",
        "used_bytes",
        "capacity_bytes",
        "hits",
        "misses",
        "evictions",
    }
    tenants.close()


def test_facade_roundtrip_document_identical(tmp_path):
    tenants = Tenants(str(tmp_path), sweep=False)
    doc = _doc(5)
    tenants.put_instance("acme", "p", doc)
    envelope = tenants.get_instance("acme", "p")
    assert envelope["instance"] == doc
    # And it deserialises to a solvable instance.
    assert solve(instance_from_dict(envelope["instance"])).selection
    tenants.close()
