"""Tests for the Generalised Facility Location formulation (Section 4.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.objective import score
from repro.gfl.facility import (
    FacilityLocationProblem,
    facility_to_par,
    greedy_facility_location,
)
from repro.gfl.graph import from_par, to_networkx
from repro.sparsify.threshold import threshold_sparsify

from tests.conftest import random_instance


class TestFromPar:
    def test_right_nodes_are_membership_pairs(self, figure1):
        gfl = from_par(figure1)
        # Figure 2: 9 membership pairs (3 + 3 + 1 + 2).
        assert gfl.n_right == 9
        assert gfl.n_left == 7

    def test_right_weights_match_w_times_r(self, figure1):
        gfl = from_par(figure1)
        weights = {node: w for node, w in zip(gfl.right_nodes, gfl.right_weights)}
        assert weights[("Bikes", 0)] == pytest.approx(9 * 0.5)
        assert weights[("Bookshelf", 5)] == pytest.approx(3 * 1.0)
        assert weights[("Books", 6)] == pytest.approx(1 * 0.3)

    @pytest.mark.parametrize("seed", range(6))
    def test_value_equals_par_score(self, seed):
        """The Example 4.7 equivalence: F(S) == G(S) for every selection."""
        inst = random_instance(seed=seed)
        gfl = from_par(inst)
        rng = np.random.default_rng(seed)
        for _ in range(8):
            size = int(rng.integers(0, inst.n + 1))
            sel = sorted(int(p) for p in rng.choice(inst.n, size=size, replace=False))
            assert gfl.value(sel) == pytest.approx(score(inst, sel))

    def test_value_equivalence_on_sparse_instances(self, small_instance):
        sparse, _ = threshold_sparsify(small_instance, 0.4)
        gfl = from_par(sparse)
        sel = list(range(0, small_instance.n, 3))
        assert gfl.value(sel) == pytest.approx(score(sparse, sel))

    def test_left_weights_are_costs(self, figure1):
        gfl = from_par(figure1)
        assert gfl.left_weights == pytest.approx(figure1.costs)
        assert gfl.selection_cost([0, 1]) == pytest.approx(1.9e6)

    def test_total_right_weight(self, figure1):
        gfl = from_par(figure1)
        assert gfl.total_right_weight == pytest.approx(9 + 1 + 3 + 1)


class TestGFLSparsify:
    def test_sparsified_matches_threshold_sparsify(self, figure1):
        """Dropping GFL edges below τ must equal τ-sparsifying the PAR
        instance: same scores everywhere."""
        tau = 0.75
        gfl_sparse = from_par(figure1).sparsified(tau)
        par_sparse, _ = threshold_sparsify(figure1, tau)
        for sel in ([0], [0, 5], [2, 3], list(range(7))):
            assert gfl_sparse.value(sel) == pytest.approx(score(par_sparse, sel))

    def test_loop_edges_survive(self, figure1):
        gfl = from_par(figure1).sparsified(1.0)
        # Selecting everything still fully covers every pair via loops.
        assert gfl.value(range(7)) == pytest.approx(gfl.total_right_weight)

    def test_neighbors_tau(self, figure1):
        gfl = from_par(figure1)
        # p1 (photo 0) with tau=0.75: covers (Bikes, p1) via loop and
        # (Bikes, p3) via the 0.8 edge; the 0.7 edge to (Bikes, p2) is below.
        neighbors = gfl.neighbors_tau([0], 0.75)
        nodes = {gfl.right_nodes[r] for r in neighbors}
        assert nodes == {("Bikes", 0), ("Bikes", 2)}


class TestToNetworkx:
    def test_bipartite_structure(self, figure1):
        graph = to_networkx(from_par(figure1))
        left = [n for n, d in graph.nodes(data=True) if d.get("bipartite") == 0]
        right = [n for n, d in graph.nodes(data=True) if d.get("bipartite") == 1]
        assert len(left) == 7
        assert len(right) == 9
        # All edges cross the partition.
        for u, v in graph.edges():
            assert {graph.nodes[u]["bipartite"], graph.nodes[v]["bipartite"]} == {0, 1}

    def test_edge_weights_match_sim(self, figure1):
        graph = to_networkx(from_par(figure1))
        w = graph.edges[("L", 0), ("R", "Bikes", 2)]["weight"]
        assert w == pytest.approx(0.8)


class TestFacilityLocation:
    def _problem(self, seed=0, n=10, k=3):
        rng = np.random.default_rng(seed)
        emb = rng.standard_normal((n, 6))
        emb /= np.linalg.norm(emb, axis=1, keepdims=True)
        sim = np.clip(emb @ emb.T, 0, 1)
        np.fill_diagonal(sim, 1.0)
        return FacilityLocationProblem(similarity=(sim + sim.T) / 2, k=k)

    def test_value_of_empty_and_full(self):
        problem = self._problem()
        assert problem.value([]) == 0.0
        assert problem.value(range(problem.n)) == pytest.approx(problem.n)

    def test_greedy_respects_k(self):
        problem = self._problem(k=3)
        chosen, value = greedy_facility_location(problem)
        assert len(chosen) <= 3
        assert value == pytest.approx(problem.value(chosen))

    def test_greedy_guarantee_against_enumeration(self):
        from itertools import combinations

        problem = self._problem(seed=1, n=8, k=2)
        opt = max(
            problem.value(c) for c in combinations(range(8), 2)
        )
        _, value = greedy_facility_location(problem)
        assert value >= (1 - 1 / np.e) * opt - 1e-9

    def test_validation(self):
        with pytest.raises(Exception):
            FacilityLocationProblem(similarity=np.ones((2, 3)), k=1)
        with pytest.raises(Exception):
            FacilityLocationProblem(similarity=np.eye(2), k=0)

    @pytest.mark.parametrize("seed", range(4))
    def test_embedding_into_par_preserves_values(self, seed):
        """facility_to_par: PAR's G equals FL's F for every selection."""
        problem = self._problem(seed=seed, n=7, k=3)
        par = facility_to_par(problem)
        rng = np.random.default_rng(seed)
        for _ in range(6):
            size = int(rng.integers(0, 8))
            sel = sorted(int(p) for p in rng.choice(7, size=size, replace=False))
            assert score(par, sel) == pytest.approx(problem.value(sel))

    def test_par_budget_is_k(self):
        problem = self._problem(k=4)
        par = facility_to_par(problem)
        assert par.budget == 4.0
        assert all(p.cost == 1.0 for p in par.photos)
