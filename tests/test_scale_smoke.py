"""Paper-scale smoke tests: the Table 2 sizes actually run.

The bench suite uses scaled datasets for speed; these tests generate one
public dataset at *full* Table 2 scale (P-1K: 1000 photos, 193 subsets)
and solve it end to end, proving nothing in the pipeline secretly depends
on small inputs.  Kept to the smallest paper-scale corpus so the whole
test suite stays fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bounds import performance_certificate
from repro.core.solver import solve
from repro.datasets.registry import load
from repro.sparsify.pipeline import sparsify_instance


@pytest.fixture(scope="module")
def p1k_full():
    return load("P-1K", scale=1.0, seed=0)


class TestPaperScaleP1K:
    def test_table2_counts_exact(self, p1k_full):
        assert p1k_full.n_photos == 1000
        # Zipf label assignment can leave a few of the 193 labels unused;
        # the generator guarantees at least 95% materialise.
        assert p1k_full.n_subsets >= 183
        assert p1k_full.n_subsets <= 193

    def test_full_scale_solve(self, p1k_full):
        inst = p1k_full.instance(p1k_full.total_cost() * 0.1)
        solution = solve(inst, "phocus")
        assert inst.feasible(solution.selection)
        assert solution.value > 0
        # CELF should handle 1000 photos in well under a minute.
        assert solution.elapsed_seconds < 60

    def test_full_scale_lsh_sparsify(self, p1k_full):
        inst = p1k_full.instance(p1k_full.total_cost() * 0.1)
        sparse, report = sparsify_instance(
            inst, 0.6, method="lsh", rng=np.random.default_rng(0)
        )
        assert report.nnz_after < report.nnz_before
        solution = solve(sparse, "phocus")
        assert inst.feasible(solution.selection)

    def test_full_scale_certificate(self, p1k_full):
        inst = p1k_full.instance(p1k_full.total_cost() * 0.1)
        solution = solve(inst, "phocus")
        _, ratio = performance_certificate(inst, solution.selection)
        assert ratio > (1 - 1 / np.e) / 2
