"""Tests for Algorithm 1 / Algorithm 2 (lazy greedy, CELF)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.greedy import CB, UC, lazy_greedy, main_algorithm, naive_greedy
from repro.core.objective import CoverageState, score
from repro.errors import ConfigurationError

from tests.conftest import random_instance


class TestFigure3Trace:
    """The paper's step-by-step demonstration (Section 4.4, Figure 3)."""

    def test_initial_gains_match_figure(self, figure1):
        state = CoverageState(figure1)
        assert state.gain(0) == pytest.approx(7.83)   # δ_p1
        assert state.gain(1) == pytest.approx(6.75)   # δ_p2
        assert state.gain(2) == pytest.approx(6.75)   # δ_p3
        assert state.gain(3) == pytest.approx(0.70)   # δ_p4
        assert state.gain(4) == pytest.approx(0.82)   # δ_p5
        assert state.gain(5) == pytest.approx(4.61)   # δ_p6

    def test_uc_picks_follow_figure3(self, figure1):
        run = lazy_greedy(figure1, UC)
        # Steps 1-3 of Figure 3: p1, then p6, then p2.
        assert [p for p, _ in run.picks[:3]] == [0, 5, 1]

    def test_recalculated_gains_match_figure3(self, figure1):
        # After p1: δ_p3 = 9 * 0.2 * (1 - 0.8) = 0.36, δ_p2 = 9 * 0.3 * 0.3 = 0.81.
        state = CoverageState(figure1, [0])
        assert state.gain(2) == pytest.approx(0.36)
        assert state.gain(1) == pytest.approx(0.81)


class TestLazyGreedy:
    def test_respects_budget(self, figure1):
        run = lazy_greedy(figure1, UC)
        assert run.cost <= figure1.budget + 1e-9

    def test_value_matches_reported_selection(self, figure1):
        run = lazy_greedy(figure1, CB)
        assert run.value == pytest.approx(score(figure1, run.selection))

    @pytest.mark.parametrize("mode", [UC, CB])
    def test_matches_naive_greedy(self, mode):
        for seed in range(6):
            inst = random_instance(seed=seed, n_photos=14, n_subsets=5)
            lazy = lazy_greedy(inst, mode)
            naive = naive_greedy(inst, mode)
            assert lazy.value == pytest.approx(naive.value), f"seed={seed}"
            assert sorted(lazy.selection) == sorted(naive.selection)

    def test_lazy_saves_evaluations(self):
        inst = random_instance(seed=3, n_photos=30, n_subsets=6, budget_fraction=0.5)
        lazy = lazy_greedy(inst, CB)
        naive = naive_greedy(inst, CB)
        assert lazy.evaluations < naive.evaluations

    def test_rejects_unknown_mode(self, figure1):
        with pytest.raises(ConfigurationError):
            lazy_greedy(figure1, "XX")
        with pytest.raises(ConfigurationError):
            naive_greedy(figure1, "XX")

    def test_includes_retained_set(self):
        inst = random_instance(seed=7, retained=2)
        run = lazy_greedy(inst, CB)
        assert inst.retained.issubset(set(run.selection))

    def test_budget_only_fits_retained(self):
        inst = random_instance(seed=7, retained=2)
        tight = inst.with_budget(inst.cost_of(inst.retained) + 1e-6)
        run = lazy_greedy(tight, CB)
        assert sorted(run.selection) == sorted(tight.retained)
        assert run.picks == []

    def test_large_budget_selects_everything(self, figure1):
        generous = figure1.with_budget(1e9)
        run = lazy_greedy(generous, UC)
        assert sorted(run.selection) == list(range(7))

    def test_warm_start_state(self, figure1):
        state = CoverageState(figure1, [0])
        run = lazy_greedy(figure1, UC, state=state)
        assert 0 in run.selection
        assert run.value == pytest.approx(score(figure1, run.selection))

    def test_marginal_gains_nonincreasing_in_uc_mode(self):
        """Submodularity: UC greedy's realised gains must be nonincreasing."""
        for seed in range(4):
            inst = random_instance(seed=seed, n_photos=16, n_subsets=5, budget_fraction=0.9)
            run = lazy_greedy(inst, UC)
            gains = [g for _, g in run.picks]
            for earlier, later in zip(gains, gains[1:]):
                assert later <= earlier + 1e-9

    def test_no_affordable_photo_is_skipped_while_space_remains(self):
        """Greedy halts only when nothing else fits the remaining budget."""
        for seed in range(4):
            inst = random_instance(seed=seed, n_photos=12)
            run = lazy_greedy(inst, CB)
            remaining = inst.budget - run.cost
            unselected = set(range(inst.n)) - set(run.selection)
            # Anything that still fits must have had zero marginal gain.
            state = CoverageState(inst, run.selection)
            for p in unselected:
                if inst.costs[p] <= remaining:
                    assert state.gain(p) == pytest.approx(0.0, abs=1e-9)


class TestMainAlgorithm:
    def test_returns_best_of_both_modes(self):
        for seed in range(6):
            inst = random_instance(seed=seed, n_photos=14, n_subsets=5)
            uc = lazy_greedy(inst, UC)
            cb = lazy_greedy(inst, CB)
            best = main_algorithm(inst)
            assert best.value == pytest.approx(max(uc.value, cb.value))

    def test_evaluations_are_summed(self, figure1):
        uc = lazy_greedy(figure1, UC)
        cb = lazy_greedy(figure1, CB)
        best = main_algorithm(figure1)
        assert best.evaluations == uc.evaluations + cb.evaluations

    def test_non_lazy_variant_matches(self, figure1):
        assert main_algorithm(figure1, lazy=False).value == pytest.approx(
            main_algorithm(figure1, lazy=True).value
        )

    def test_uniform_costs_match_classical_greedy_quality(self):
        """With equal costs the UC pass is the classical (1-1/e) greedy, so
        main_algorithm must reach at least the classical greedy's value."""
        from repro.core.instance import PARInstance, Photo

        inst = random_instance(seed=11, n_photos=12, n_subsets=4)
        photos = [Photo(photo_id=p.photo_id, cost=1.0) for p in inst.photos]
        uniform = PARInstance(photos, inst.subsets, budget=5.0, embeddings=inst.embeddings)
        best = main_algorithm(uniform)
        uc = lazy_greedy(uniform, UC)
        assert best.value >= uc.value - 1e-12

    @pytest.mark.parametrize("seed", range(5))
    def test_uniform_cost_one_minus_1_over_e_guarantee(self, seed):
        """Section 5.2: 'for the case where all costs are uniform, the
        well-known greedy algorithm of [37] is known to provide an optimal
        (1 − 1/e) worst-case approximation ... when costs are uniform
        Algorithm 1 is provably optimal.'  Verified against the exact
        optimum on random uniform-cost instances."""
        from repro.core.bruteforce import branch_and_bound
        from repro.core.instance import PARInstance, Photo

        inst = random_instance(seed=seed, n_photos=11, n_subsets=4)
        photos = [Photo(photo_id=p.photo_id, cost=1.0) for p in inst.photos]
        uniform = PARInstance(photos, inst.subsets, budget=4.0,
                              embeddings=inst.embeddings)
        opt = branch_and_bound(uniform).value
        got = main_algorithm(uniform).value
        assert got >= (1 - 1 / np.e) * opt - 1e-9

    @pytest.mark.parametrize("seed", range(5))
    def test_knapsack_guarantee_far_exceeded_in_practice(self, seed):
        """The a-priori (1−1/e)/2 bound of [30] holds with huge slack on
        heterogeneous-cost instances (Section 4.2's empirical point)."""
        from repro.core.bruteforce import branch_and_bound

        inst = random_instance(seed=seed + 20, n_photos=11, n_subsets=4)
        opt = branch_and_bound(inst).value
        got = main_algorithm(inst).value
        assert got >= (1 - 1 / np.e) / 2 * opt - 1e-9
        assert got >= 0.8 * opt  # practical slack, as the paper reports
