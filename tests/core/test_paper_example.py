"""Tests that pin the library to the paper's own worked numbers.

Figure 1 (the input), Figure 2 (its GFL formulation), Figure 3 (the
Algorithm 2 trace) and Example 5.2's qualitative behaviour are all
encoded here, making the reproduction's arithmetic auditable against the
published example.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.greedy import CB, UC, lazy_greedy
from repro.core.objective import CoverageState, max_score, score
from repro.core.paper_example import MB, figure1_instance
from repro.gfl.graph import from_par


class TestFigure1Input:
    def test_photo_sizes(self, figure1):
        sizes = [p.cost / MB for p in figure1.photos]
        assert sizes == pytest.approx([1.2, 0.7, 2.1, 0.9, 0.8, 1.1, 1.3])

    def test_subset_structure(self, figure1):
        by_id = {q.subset_id: q for q in figure1.subsets}
        assert list(by_id["Bikes"].members) == [0, 1, 2]
        assert by_id["Bikes"].weight == 9.0
        assert by_id["Cats"].weight == 1.0
        assert by_id["Bookshelf"].weight == 3.0
        assert by_id["Books"].weight == 1.0

    def test_relevance_values(self, figure1):
        by_id = {q.subset_id: q for q in figure1.subsets}
        assert by_id["Bikes"].relevance == pytest.approx([0.5, 0.3, 0.2])
        assert by_id["Cats"].relevance == pytest.approx([0.3, 0.4, 0.3])
        assert by_id["Books"].relevance == pytest.approx([0.7, 0.3])

    def test_similarity_values(self, figure1):
        by_id = {q.subset_id: q for q in figure1.subsets}
        assert by_id["Bikes"].sim(0, 1) == pytest.approx(0.7)
        assert by_id["Bikes"].sim(0, 2) == pytest.approx(0.8)
        assert by_id["Bikes"].sim(1, 2) == pytest.approx(0.5)
        assert by_id["Cats"].sim(3, 4) == pytest.approx(0.7)
        assert by_id["Cats"].sim(3, 5) == pytest.approx(0.4)
        assert by_id["Books"].sim(5, 6) == pytest.approx(0.7)
        # Cross-subset similarity is 0 by definition.
        assert by_id["Bikes"].sim(0, 5) == 0.0

    def test_total_weight_is_14(self, figure1):
        assert max_score(figure1) == pytest.approx(14.0)

    def test_budget_parameterisable(self):
        assert figure1_instance(2.0).budget == pytest.approx(2.0 * MB)


class TestFigure2GFL:
    """Figure 2 materialises the GFL bipartite graph of the example."""

    def test_left_node_weights_are_sizes(self, figure1):
        gfl = from_par(figure1)
        assert gfl.left_weights / MB == pytest.approx([1.2, 0.7, 2.1, 0.9, 0.8, 1.1, 1.3])

    def test_right_node_weights_match_figure(self, figure1):
        gfl = from_par(figure1)
        w = {node: weight for node, weight in zip(gfl.right_nodes, gfl.right_weights)}
        # Figure 2 annotates, e.g., (q1,p1)=9*0.5, (q3,p6)=3*1, (q2,p6)=1*0.3.
        assert w[("Bikes", 0)] == pytest.approx(4.5)
        assert w[("Bikes", 1)] == pytest.approx(2.7)
        assert w[("Bikes", 2)] == pytest.approx(1.8)
        assert w[("Bookshelf", 5)] == pytest.approx(3.0)
        assert w[("Cats", 5)] == pytest.approx(0.3)
        assert w[("Books", 6)] == pytest.approx(0.3)

    def test_edge_weights_match_figure(self, figure1):
        gfl = from_par(figure1)
        idx = {node: r for r, node in enumerate(gfl.right_nodes)}
        edges_q1p2 = dict(gfl.edges[idx[("Bikes", 1)]])
        assert edges_q1p2[0] == pytest.approx(0.7)   # p1 -> (q1, p2)
        assert edges_q1p2[2] == pytest.approx(0.5)   # p3 -> (q1, p2)
        assert edges_q1p2[1] == pytest.approx(1.0)   # the loop edge


class TestFigure3Trace:
    """The full Step 0-3 walk of Section 4.4."""

    def test_step1_initial_gains(self, figure1):
        state = CoverageState(figure1)
        expected = {0: 7.83, 1: 6.75, 2: 6.75, 3: 0.70, 4: 0.82, 5: 4.61, 6: 0.79}
        for p, value in expected.items():
            assert state.gain(p) == pytest.approx(value, abs=1e-9), f"δ_p{p+1}"

    def test_step2_recalculations(self, figure1):
        # After selecting p1: Figure 3 recalculates δ_p3 = 0.36, δ_p2 = 0.81,
        # and p6 keeps its 4.61 and is selected.
        state = CoverageState(figure1, [0])
        assert state.gain(2) == pytest.approx(0.36)
        assert state.gain(1) == pytest.approx(0.81)
        assert state.gain(5) == pytest.approx(4.61)

    def test_step3_p2_selected(self, figure1):
        # After p1 and p6, p2's 0.81 is the top refreshed gain.
        state = CoverageState(figure1, [0, 5])
        gains = {p: state.gain(p) for p in (1, 2, 3, 4, 6)}
        assert max(gains, key=gains.get) == 1
        assert gains[1] == pytest.approx(0.81)

    def test_uc_pick_sequence(self, figure1):
        run = lazy_greedy(figure1, UC)
        assert [p for p, _ in run.picks[:3]] == [0, 5, 1]

    def test_lazy_trace_step2_matches_figure3(self, figure1):
        """Figure 3's Step 2: p3 and p2 are tested but 'neither are
        selected since they do not have the highest δ after
        recalculation ... Therefore p6 is selected'."""
        run = lazy_greedy(figure1, UC, trace=True)
        step2 = [e for e in run.trace if e.step == 2]
        refreshed = {e.photo_id: e.gain for e in step2 if e.kind == "refresh"}
        assert refreshed[1] == pytest.approx(0.81)   # δ_p2 recalculated
        assert refreshed[2] == pytest.approx(0.36)   # δ_p3 recalculated
        select = [e for e in step2 if e.kind == "select"]
        assert len(select) == 1 and select[0].photo_id == 5  # p6 selected

    def test_lazy_trace_step3_matches_figure3(self, figure1):
        """Figure 3's Step 3: 'p5 is initially selected, but after
        recalculation it turns out that p2 is again the highest ...
        Step 3 ends with p2 being selected'."""
        run = lazy_greedy(figure1, UC, trace=True)
        step3 = [e for e in run.trace if e.step == 3]
        refreshed_ids = [e.photo_id for e in step3 if e.kind == "refresh"]
        assert 4 in refreshed_ids                       # p5 gets re-tested
        select = [e for e in step3 if e.kind == "select"]
        assert select[0].photo_id == 1                  # p2 wins the step

    def test_trace_off_by_default(self, figure1):
        assert lazy_greedy(figure1, UC).trace == []

    def test_final_solution_value(self, figure1):
        # With the 4 Mb budget the greedy continues past Figure 3's three
        # steps and adds p5, reaching the instance optimum 13.46.
        run = lazy_greedy(figure1, UC)
        assert sorted(run.selection) == [0, 1, 4, 5]
        assert run.value == pytest.approx(13.46)
        assert run.cost == pytest.approx(3.8 * MB)


class TestExample52Behaviour:
    """Example 5.2's qualitative claims, transplanted onto Figure 1."""

    def test_most_important_subset_served_first(self, figure1):
        run = lazy_greedy(figure1, UC)
        first = run.picks[0][0]
        bikes = figure1.subsets[0]
        assert first in bikes  # the weight-9 subset gets its photo first

    def test_shared_photo_covers_multiple_pages(self, figure1):
        # p6 serves Cats, Bookshelf AND Books at once — the "stored once,
        # used multiple times" effect the analysts value.
        assert score(figure1, [5]) == pytest.approx(0.7 + 3.0 + 0.91)
