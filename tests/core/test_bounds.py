"""Tests for the online bound and the Theorem 4.8 sparsification bound."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bounds import (
    online_bound,
    performance_certificate,
    sparsification_bound,
)
from repro.core.bruteforce import branch_and_bound
from repro.core.greedy import main_algorithm
from repro.core.objective import score
from repro.sparsify.threshold import threshold_sparsify

from tests.conftest import random_instance


class TestOnlineBound:
    @pytest.mark.parametrize("seed", range(8))
    def test_upper_bounds_optimum(self, seed):
        """The Leskovec online bound must dominate the true optimum for any
        evaluated solution — the property everything else rests on."""
        inst = random_instance(seed=seed, n_photos=11, n_subsets=4)
        opt = branch_and_bound(inst).value
        for sel in ([], main_algorithm(inst).selection, list(range(3))):
            assert online_bound(inst, sel) >= opt - 1e-9

    def test_tight_when_solution_is_optimal_and_saturated(self, figure1):
        opt = branch_and_bound(figure1)
        bound = online_bound(figure1, opt.selection)
        assert bound >= opt.value

    def test_bound_of_full_selection_is_value(self, figure1):
        full = list(range(7))
        assert online_bound(figure1, full) == pytest.approx(score(figure1, full))

    def test_certificate_returns_ratio_at_most_one(self, small_instance):
        run = main_algorithm(small_instance)
        value, ratio = performance_certificate(small_instance, run.selection)
        assert value == pytest.approx(run.value)
        assert 0.0 < ratio <= 1.0

    def test_certificate_exceeds_worst_case_in_practice(self):
        """Section 4.2's empirical point: the data-dependent ratio far
        exceeds the a-priori (1 - 1/e)/2 ≈ 0.316."""
        ratios = []
        for seed in range(5):
            inst = random_instance(seed=seed, n_photos=14, n_subsets=5)
            run = main_algorithm(inst)
            _, ratio = performance_certificate(inst, run.selection)
            ratios.append(ratio)
        assert min(ratios) > (1 - 1 / np.e) / 2

    def test_certificate_is_valid_lower_bound_on_true_ratio(self):
        for seed in range(6):
            inst = random_instance(seed=seed, n_photos=11, n_subsets=4)
            run = main_algorithm(inst)
            opt = branch_and_bound(inst).value
            _, ratio = performance_certificate(inst, run.selection)
            true_ratio = run.value / opt if opt > 0 else 1.0
            assert ratio <= true_ratio + 1e-9


class TestSparsificationBound:
    def test_alpha_and_factor_relationship(self, small_instance):
        bound = sparsification_bound(small_instance, 0.5)
        if bound.alpha > 0:
            assert bound.factor == pytest.approx(bound.alpha / (1 + bound.alpha))
        assert 0.0 <= bound.factor < 1.0

    def test_tau_zero_has_full_alpha_potential(self, small_instance):
        """At τ=0 every neighbour survives; with a reasonable budget the
        witness should cover a large weight fraction."""
        bound = sparsification_bound(small_instance, 0.0)
        assert bound.alpha > 0.3

    @pytest.mark.parametrize("tau", [0.3, 0.5, 0.8])
    def test_theorem_holds_empirically(self, tau):
        """F(O_τ) >= factor · OPT on exactly solvable instances."""
        for seed in range(4):
            inst = random_instance(seed=seed, n_photos=10, n_subsets=4)
            bound = sparsification_bound(inst, tau)
            opt_true = branch_and_bound(inst).value
            sparse, _ = threshold_sparsify(inst, tau)
            opt_sparse_sel = branch_and_bound(sparse).selection
            # Score the sparsified optimum ON THE SPARSIFIED objective (the
            # theorem's F(O_tau)); it must respect the bound factor.
            sparse_value = score(sparse, opt_sparse_sel)
            assert sparse_value >= bound.factor * opt_true - 1e-9

    def test_witness_is_affordable(self, small_instance):
        bound = sparsification_bound(small_instance, 0.5)
        assert small_instance.cost_of(bound.witness) <= small_instance.budget + 1e-9

    def test_rejects_bad_tau(self, small_instance):
        with pytest.raises(ValueError):
            sparsification_bound(small_instance, 1.5)

    def test_total_weight_matches_model(self, figure1):
        bound = sparsification_bound(figure1, 0.5)
        expected = sum(
            q.weight * float(q.relevance.sum()) for q in figure1.subsets
        )
        assert bound.total_weight == pytest.approx(expected)

    def test_alpha_nonincreasing_in_tau(self, small_instance):
        alphas = [
            sparsification_bound(small_instance, tau).alpha
            for tau in (0.0, 0.4, 0.8, 0.99)
        ]
        for earlier, later in zip(alphas, alphas[1:]):
            assert later <= earlier + 1e-9

    def test_custom_budget(self, small_instance):
        tight = sparsification_bound(small_instance, 0.5, budget=0.1)
        default = sparsification_bound(small_instance, 0.5)
        assert tight.alpha <= default.alpha + 1e-9
