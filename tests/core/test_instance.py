"""Unit tests for the PAR model (instance.py)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.instance import (
    DenseSimilarity,
    PARInstance,
    Photo,
    PredefinedSubset,
    SparseSimilarity,
    SubsetSpec,
    normalize_relevance,
)
from repro.errors import InfeasibleError, ValidationError

from tests.conftest import random_instance


# ---------------------------------------------------------------------------
# normalize_relevance
# ---------------------------------------------------------------------------


class TestNormalizeRelevance:
    def test_sums_to_one(self):
        rel = normalize_relevance([1.0, 3.0])
        assert rel == pytest.approx([0.25, 0.75])

    def test_already_normalized_is_unchanged(self):
        rel = normalize_relevance([0.2, 0.8])
        assert rel == pytest.approx([0.2, 0.8])

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            normalize_relevance([0.5, -0.1])

    def test_rejects_all_zero(self):
        with pytest.raises(ValidationError):
            normalize_relevance([0.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            normalize_relevance([])

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            normalize_relevance(np.ones((2, 2)))


# ---------------------------------------------------------------------------
# Photo
# ---------------------------------------------------------------------------


class TestPhoto:
    def test_valid(self):
        photo = Photo(photo_id=3, cost=1024.0, label="x", metadata={"a": 1})
        assert photo.cost == 1024.0
        assert photo.metadata["a"] == 1

    def test_negative_id(self):
        with pytest.raises(ValidationError):
            Photo(photo_id=-1, cost=1.0)

    @pytest.mark.parametrize("cost", [0.0, -5.0])
    def test_nonpositive_cost(self, cost):
        with pytest.raises(ValidationError):
            Photo(photo_id=0, cost=cost)


# ---------------------------------------------------------------------------
# DenseSimilarity
# ---------------------------------------------------------------------------


class TestDenseSimilarity:
    def test_valid_matrix(self):
        m = np.array([[1.0, 0.5], [0.5, 1.0]])
        sim = DenseSimilarity(m)
        assert len(sim) == 2
        assert sim.pair(0, 1) == pytest.approx(0.5)
        assert not sim.is_sparse

    def test_rejects_non_square(self):
        with pytest.raises(ValidationError):
            DenseSimilarity(np.ones((2, 3)))

    def test_rejects_out_of_range(self):
        m = np.array([[1.0, 1.5], [1.5, 1.0]])
        with pytest.raises(ValidationError):
            DenseSimilarity(m)

    def test_rejects_bad_diagonal(self):
        m = np.array([[0.9, 0.5], [0.5, 1.0]])
        with pytest.raises(ValidationError):
            DenseSimilarity(m)

    def test_rejects_asymmetric(self):
        m = np.array([[1.0, 0.2], [0.8, 1.0]])
        with pytest.raises(ValidationError):
            DenseSimilarity(m)

    def test_row_and_neighbors(self):
        m = np.array([[1.0, 0.0, 0.4], [0.0, 1.0, 0.7], [0.4, 0.7, 1.0]])
        sim = DenseSimilarity(m)
        assert sim.row(0) == pytest.approx([1.0, 0.0, 0.4])
        idx, vals = sim.neighbors(0)
        assert list(idx) == [0, 2]
        assert vals == pytest.approx([1.0, 0.4])

    def test_nnz_counts_nonzeros(self):
        m = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert DenseSimilarity(m).nnz() == 2

    def test_sparsified_keeps_diagonal(self):
        m = np.array([[1.0, 0.3], [0.3, 1.0]])
        sparse = DenseSimilarity(m).sparsified(0.5)
        assert isinstance(sparse, SparseSimilarity)
        assert sparse.pair(0, 0) == 1.0
        assert sparse.pair(0, 1) == 0.0

    def test_sparsified_keeps_entries_at_threshold(self):
        m = np.array([[1.0, 0.5], [0.5, 1.0]])
        sparse = DenseSimilarity(m).sparsified(0.5)
        assert sparse.pair(0, 1) == pytest.approx(0.5)


# ---------------------------------------------------------------------------
# SparseSimilarity
# ---------------------------------------------------------------------------


class TestSparseSimilarity:
    def _make(self):
        indices = [np.array([0, 1]), np.array([0, 1]), np.array([2])]
        values = [np.array([1.0, 0.6]), np.array([0.6, 1.0]), np.array([1.0])]
        return SparseSimilarity(3, indices, values)

    def test_basic(self):
        sim = self._make()
        assert len(sim) == 3
        assert sim.is_sparse
        assert sim.pair(0, 1) == pytest.approx(0.6)
        assert sim.pair(0, 2) == 0.0

    def test_self_entry_added_automatically(self):
        sim = SparseSimilarity(2, [np.array([]), np.array([])], [np.array([]), np.array([])])
        assert sim.pair(0, 0) == 1.0
        assert sim.pair(1, 1) == 1.0

    def test_self_entry_forced_to_one(self):
        sim = SparseSimilarity(1, [np.array([0])], [np.array([0.2])])
        assert sim.pair(0, 0) == 1.0

    def test_row_densifies(self):
        sim = self._make()
        assert sim.row(0) == pytest.approx([1.0, 0.6, 0.0])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValidationError):
            SparseSimilarity(2, [np.array([0])], [np.array([1.0]), np.array([1.0])])

    def test_rejects_out_of_range_index(self):
        with pytest.raises(ValidationError):
            SparseSimilarity(2, [np.array([5]), np.array([])], [np.array([0.5]), np.array([])])

    def test_rejects_out_of_range_value(self):
        with pytest.raises(ValidationError):
            SparseSimilarity(2, [np.array([1]), np.array([])], [np.array([1.5]), np.array([])])

    def test_rejects_duplicate_index(self):
        with pytest.raises(ValidationError):
            SparseSimilarity(
                2, [np.array([1, 1]), np.array([])], [np.array([0.5, 0.6]), np.array([])]
            )

    def test_nnz(self):
        assert self._make().nnz() == 5


# ---------------------------------------------------------------------------
# PredefinedSubset
# ---------------------------------------------------------------------------


def _subset(**kwargs):
    defaults = dict(
        subset_id="q",
        weight=2.0,
        members=[3, 5],
        relevance=[1.0, 3.0],
        similarity=DenseSimilarity(np.array([[1.0, 0.5], [0.5, 1.0]])),
    )
    defaults.update(kwargs)
    return PredefinedSubset(**defaults)


class TestPredefinedSubset:
    def test_relevance_normalized(self):
        q = _subset()
        assert q.relevance == pytest.approx([0.25, 0.75])

    def test_contains_and_local_index(self):
        q = _subset()
        assert 5 in q
        assert 4 not in q
        assert q.local_index(5) == 1
        with pytest.raises(ValidationError):
            q.local_index(4)

    def test_sim_by_photo_id(self):
        q = _subset()
        assert q.sim(3, 5) == pytest.approx(0.5)
        assert q.sim(3, 3) == 1.0
        assert q.sim(3, 99) == 0.0  # non-member => similarity 0 by definition

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ValidationError):
            _subset(weight=0.0)

    def test_rejects_duplicate_members(self):
        with pytest.raises(ValidationError):
            _subset(members=[3, 3])

    def test_rejects_empty_members(self):
        with pytest.raises(ValidationError):
            _subset(members=[], relevance=[], similarity=DenseSimilarity(np.zeros((0, 0))))

    def test_rejects_relevance_length_mismatch(self):
        with pytest.raises(ValidationError):
            _subset(relevance=[1.0])

    def test_rejects_similarity_size_mismatch(self):
        with pytest.raises(ValidationError):
            _subset(similarity=DenseSimilarity(np.eye(3)))

    def test_no_normalize_requires_sum_one(self):
        with pytest.raises(ValidationError):
            PredefinedSubset(
                "q", 1.0, [0, 1], [0.5, 0.9],
                DenseSimilarity(np.eye(2)), normalize=False,
            )

    def test_with_similarity_replaces_backend(self):
        q = _subset()
        q2 = q.with_similarity(DenseSimilarity(np.eye(2)))
        assert q2.sim(3, 5) == 0.0
        assert q.sim(3, 5) == pytest.approx(0.5)  # original untouched
        assert q2.weight == q.weight
        assert q2.relevance == pytest.approx(q.relevance)


# ---------------------------------------------------------------------------
# PARInstance
# ---------------------------------------------------------------------------


class TestPARInstance:
    def test_membership_index(self, figure1):
        # p6 (id 5) belongs to Cats, Bookshelf and Books.
        subsets = [figure1.subsets[qi].subset_id for qi, _ in figure1.membership[5]]
        assert subsets == ["Cats", "Bookshelf", "Books"]

    def test_photo_id_must_match_position(self):
        photos = [Photo(photo_id=1, cost=1.0)]
        with pytest.raises(ValidationError):
            PARInstance(photos, [_subset(members=[0, 1], similarity=DenseSimilarity(np.eye(2)))], 1.0)

    def test_rejects_empty_photo_list(self):
        with pytest.raises(ValidationError):
            PARInstance([], [], 1.0)

    def test_rejects_nonpositive_budget(self):
        photos = [Photo(photo_id=0, cost=1.0), Photo(photo_id=1, cost=1.0)]
        sim = DenseSimilarity(np.eye(2))
        q = PredefinedSubset("q", 1.0, [0, 1], [1, 1], sim)
        with pytest.raises(ValidationError):
            PARInstance(photos, [q], 0.0)

    def test_rejects_subset_with_unknown_photo(self):
        photos = [Photo(photo_id=0, cost=1.0)]
        sim = DenseSimilarity(np.eye(2))
        q = PredefinedSubset("q", 1.0, [0, 7], [1, 1], sim)
        with pytest.raises(ValidationError):
            PARInstance(photos, [q], 1.0)

    def test_rejects_duplicate_subset_ids(self):
        photos = [Photo(photo_id=0, cost=1.0), Photo(photo_id=1, cost=1.0)]
        sim = DenseSimilarity(np.eye(2))
        q1 = PredefinedSubset("q", 1.0, [0, 1], [1, 1], sim)
        q2 = PredefinedSubset("q", 1.0, [0, 1], [1, 1], sim)
        with pytest.raises(ValidationError):
            PARInstance(photos, [q1, q2], 5.0)

    def test_retained_exceeding_budget_is_infeasible(self):
        photos = [Photo(photo_id=0, cost=3.0), Photo(photo_id=1, cost=3.0)]
        sim = DenseSimilarity(np.eye(2))
        q = PredefinedSubset("q", 1.0, [0, 1], [1, 1], sim)
        with pytest.raises(InfeasibleError):
            PARInstance(photos, [q], budget=2.0, retained=[0])

    def test_retained_out_of_range(self):
        photos = [Photo(photo_id=0, cost=1.0), Photo(photo_id=1, cost=1.0)]
        sim = DenseSimilarity(np.eye(2))
        q = PredefinedSubset("q", 1.0, [0, 1], [1, 1], sim)
        with pytest.raises(ValidationError):
            PARInstance(photos, [q], 5.0, retained=[9])

    def test_cost_and_feasibility(self, figure1):
        assert figure1.cost_of([0, 1]) == pytest.approx(1.9e6)
        assert figure1.cost_of([]) == 0.0
        assert figure1.feasible([0, 1])
        assert not figure1.feasible([0, 1, 2, 3, 4])  # 5.7 Mb > 4 Mb

    def test_feasible_requires_retained(self):
        inst = random_instance(seed=7, retained=2)
        assert not inst.feasible([])
        assert inst.feasible(inst.retained)

    def test_total_cost(self, figure1):
        assert figure1.total_cost() == pytest.approx(8.1e6)

    def test_with_budget(self, figure1):
        other = figure1.with_budget(1.0e6)
        assert other.budget == 1.0e6
        assert figure1.budget == 4.0e6
        assert other.n == figure1.n

    def test_embeddings_shape_validated(self):
        photos = [Photo(photo_id=0, cost=1.0), Photo(photo_id=1, cost=1.0)]
        sim = DenseSimilarity(np.eye(2))
        q = PredefinedSubset("q", 1.0, [0, 1], [1, 1], sim)
        with pytest.raises(ValidationError):
            PARInstance(photos, [q], 5.0, embeddings=np.zeros((3, 4)))

    def test_is_sparse_and_nnz(self, figure1):
        assert not figure1.is_sparse()
        assert figure1.similarity_nnz() > 0

    def test_build_derives_cosine_similarity(self):
        photos = [Photo(photo_id=i, cost=1.0) for i in range(3)]
        emb = np.array([[1.0, 0.0], [1.0, 0.05], [0.0, 1.0]])
        spec = SubsetSpec("q", 1.0, [0, 1, 2], [1, 1, 1])
        inst = PARInstance.build(photos, [spec], 3.0, embeddings=emb)
        q = inst.subsets[0]
        assert q.sim(0, 1) > 0.9
        assert q.sim(0, 2) < 0.2

    def test_build_without_embeddings_requires_matrix(self):
        photos = [Photo(photo_id=0, cost=1.0)]
        spec = SubsetSpec("q", 1.0, [0], [1.0])
        with pytest.raises(ValidationError):
            PARInstance.build(photos, [spec], 1.0)

    def test_build_with_explicit_matrix(self):
        photos = [Photo(photo_id=0, cost=1.0), Photo(photo_id=1, cost=1.0)]
        spec = SubsetSpec("q", 1.0, [0, 1], [1, 1], similarity=np.array([[1.0, 0.3], [0.3, 1.0]]))
        inst = PARInstance.build(photos, [spec], 2.0)
        assert inst.subsets[0].sim(0, 1) == pytest.approx(0.3)


class TestWithAdjustedWeights:
    def test_scales_named_subsets_only(self, figure1):
        adjusted = figure1.with_adjusted_weights({"Cats": 5.0})
        by_id = {q.subset_id: q for q in adjusted.subsets}
        assert by_id["Cats"].weight == pytest.approx(5.0)
        assert by_id["Bikes"].weight == pytest.approx(9.0)
        # Original untouched.
        assert figure1.subsets[1].weight == 1.0

    def test_changes_solver_priorities(self, figure1):
        """Boosting a subset's weight steers the solver towards it — the
        UI affordance the paper describes."""
        from repro.core.greedy import UC, lazy_greedy

        base_first = lazy_greedy(figure1, UC).picks[0][0]
        assert base_first == 0  # Bikes photo first normally
        boosted = figure1.with_adjusted_weights({"Bookshelf": 20.0})
        boosted_first = lazy_greedy(boosted, UC).picks[0][0]
        assert boosted_first == 5  # p6 (the Bookshelf photo) now leads

    def test_unknown_subset_strict(self, figure1):
        with pytest.raises(ValidationError):
            figure1.with_adjusted_weights({"Dogs": 2.0})

    def test_unknown_subset_lenient(self, figure1):
        adjusted = figure1.with_adjusted_weights({"Dogs": 2.0}, strict=False)
        assert [q.weight for q in adjusted.subsets] == [
            q.weight for q in figure1.subsets
        ]

    def test_rejects_nonpositive_factor(self, figure1):
        with pytest.raises(ValidationError):
            figure1.with_adjusted_weights({"Cats": 0.0})

    def test_scores_scale_linearly(self, figure1):
        from repro.core.objective import score_breakdown

        adjusted = figure1.with_adjusted_weights({"Books": 3.0})
        base = score_breakdown(figure1, [5])
        boosted = score_breakdown(adjusted, [5])
        assert boosted["Books"] == pytest.approx(3.0 * base["Books"])
        assert boosted["Cats"] == pytest.approx(base["Cats"])


class TestRestricted:
    def test_remaps_ids_and_drops_empty_subsets(self, figure1):
        sub = figure1.restricted([5, 6])  # p6 and p7
        assert sub.n == 2
        ids = {q.subset_id for q in sub.subsets}
        # Bikes had members p1-p3 only -> dropped.
        assert ids == {"Cats", "Bookshelf", "Books"}

    def test_relevance_renormalized(self, figure1):
        sub = figure1.restricted([5, 6])
        books = next(q for q in sub.subsets if q.subset_id == "Books")
        assert float(books.relevance.sum()) == pytest.approx(1.0)

    def test_similarity_sliced(self, figure1):
        sub = figure1.restricted([5, 6])
        books = next(q for q in sub.subsets if q.subset_id == "Books")
        assert books.sim(0, 1) == pytest.approx(0.7)

    def test_scores_match_manual_subinstance(self, figure1):
        from repro.core.objective import score

        sub = figure1.restricted([3, 4, 5])  # Cats members
        cats = next(q for q in sub.subsets if q.subset_id == "Cats")
        # Selecting remapped photo 0 (= old p4): covers p4 at 1, p5 at .7, p6 at .4
        val = score(sub, [0])
        expected = cats.weight * (0.3 * 1.0 + 0.4 * 0.7 + 0.3 * 0.4)
        # Bookshelf/Books subsets get 0 from this selection.
        assert val == pytest.approx(expected)

    def test_retained_filtered_and_remapped(self):
        inst = random_instance(seed=7, retained=2)
        keep = sorted(inst.retained)[:1] + [
            p for p in range(inst.n) if p not in inst.retained
        ][:5]
        sub = inst.restricted(keep, budget=inst.budget)
        assert sub.retained == {keep.index(sorted(inst.retained)[0])}

    def test_rejects_duplicates(self, figure1):
        with pytest.raises(ValidationError):
            figure1.restricted([1, 1])

    def test_budget_override(self, figure1):
        sub = figure1.restricted([0, 1, 2], budget=2.0e6)
        assert sub.budget == 2.0e6

    def test_sparse_backend_restriction(self, figure1):
        from repro.sparsify.threshold import threshold_sparsify
        from repro.core.objective import score

        sparse, _ = threshold_sparsify(figure1, 0.0)
        sub_dense = figure1.restricted([0, 1, 2])
        sub_sparse = sparse.restricted([0, 1, 2])
        for sel in ([0], [0, 1], [1, 2]):
            assert score(sub_dense, sel) == pytest.approx(score(sub_sparse, sel))
