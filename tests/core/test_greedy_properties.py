"""Property-based tests of the greedy solvers on generated instances.

Unlike test_objective_properties (which samples from a fixed instance
pool), these strategies generate full PAR instances from hypothesis
primitives, so shrinking produces minimal counterexamples if an invariant
ever breaks.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.greedy import CB, UC, lazy_greedy, main_algorithm, naive_greedy
from repro.core.instance import (
    DenseSimilarity,
    PARInstance,
    Photo,
    PredefinedSubset,
)
from repro.core.objective import score


@st.composite
def par_instances(draw):
    """A small random PAR instance built entirely from drawn primitives."""
    n = draw(st.integers(3, 10))
    costs = draw(
        st.lists(st.floats(0.1, 3.0, allow_nan=False), min_size=n, max_size=n)
    )
    photos = [Photo(photo_id=i, cost=costs[i]) for i in range(n)]

    n_subsets = draw(st.integers(1, 4))
    subsets = []
    for qi in range(n_subsets):
        size = draw(st.integers(1, n))
        members = sorted(
            draw(
                st.sets(st.integers(0, n - 1), min_size=size, max_size=size)
            )
        )
        m = len(members)
        rel = draw(
            st.lists(st.floats(0.01, 1.0, allow_nan=False), min_size=m, max_size=m)
        )
        # Symmetric similarity matrix from drawn upper-triangle entries.
        sim = np.eye(m)
        for i in range(m):
            for j in range(i + 1, m):
                sim[i, j] = sim[j, i] = draw(st.floats(0.0, 1.0, allow_nan=False))
        subsets.append(
            PredefinedSubset(
                f"q{qi}",
                draw(st.floats(0.1, 5.0, allow_nan=False)),
                members,
                rel,
                DenseSimilarity(sim),
            )
        )
    budget = draw(st.floats(0.2, 1.0)) * float(sum(costs))
    return PARInstance(photos, subsets, budget)


@settings(max_examples=50, deadline=None)
@given(inst=par_instances())
def test_greedy_respects_budget(inst):
    for mode in (UC, CB):
        run = lazy_greedy(inst, mode)
        assert run.cost <= inst.budget * (1 + 1e-9)
        assert run.value == pytest.approx(score(inst, run.selection))


@settings(max_examples=40, deadline=None)
@given(inst=par_instances())
def test_lazy_equals_naive(inst):
    """Lazy evaluation is an optimisation, never a behaviour change."""
    for mode in (UC, CB):
        lazy = lazy_greedy(inst, mode)
        naive = naive_greedy(inst, mode)
        assert lazy.value == pytest.approx(naive.value)


@settings(max_examples=40, deadline=None)
@given(inst=par_instances())
def test_greedy_value_monotone_in_budget(inst):
    """A larger budget can only improve the main algorithm's value."""
    small = main_algorithm(inst.with_budget(inst.budget * 0.5))
    large = main_algorithm(inst)
    assert large.value >= small.value - 1e-9


@settings(max_examples=40, deadline=None)
@given(inst=par_instances())
def test_greedy_no_affordable_positive_gain_left(inst):
    """On exit, no remaining affordable photo has positive marginal gain."""
    from repro.core.objective import CoverageState

    run = lazy_greedy(inst, CB)
    state = CoverageState(inst, run.selection)
    remaining_budget = inst.budget - run.cost
    for p in range(inst.n):
        if p in set(run.selection):
            continue
        if inst.costs[p] <= remaining_budget:
            assert state.gain(p) == pytest.approx(0.0, abs=1e-9)


@settings(max_examples=40, deadline=None)
@given(inst=par_instances(), tau=st.floats(0.0, 0.9))
def test_sparsified_greedy_stays_feasible(inst, tau):
    from repro.sparsify.threshold import threshold_sparsify

    sparse, _ = threshold_sparsify(inst, tau)
    run = main_algorithm(sparse)
    assert inst.feasible(run.selection)
    # Scoring the sparse solution on the true objective never exceeds the
    # instance ceiling and never goes negative.
    true_value = score(inst, run.selection)
    assert 0.0 <= true_value <= sum(q.weight for q in inst.subsets) + 1e-9
