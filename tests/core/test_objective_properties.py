"""Property-based tests of Lemma 4.5: G is nonnegative, monotone, submodular.

These hypothesis tests generate random PAR instances and random
selection pairs S ⊆ T, then check the three properties the approximation
guarantees depend on, plus structural invariants of the incremental
evaluator.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.objective import CoverageState, max_score, score

from tests.conftest import random_instance

# Instance pool: built once (hypothesis draws indexes into it), keeping the
# per-example cost low while varying structure across examples.
_INSTANCES = [
    random_instance(seed=s, n_photos=n, n_subsets=q)
    for s, n, q in [(0, 8, 3), (1, 12, 4), (2, 10, 6), (3, 15, 2), (4, 9, 5)]
]

instances = st.sampled_from(_INSTANCES)


@st.composite
def instance_with_nested_selections(draw):
    """An instance plus S ⊆ T ⊆ P and a photo v."""
    inst = draw(instances)
    universe = list(range(inst.n))
    t_sel = draw(st.sets(st.sampled_from(universe), max_size=inst.n))
    s_sel = draw(st.sets(st.sampled_from(sorted(t_sel)), max_size=len(t_sel))) if t_sel else set()
    v = draw(st.sampled_from(universe))
    return inst, sorted(s_sel), sorted(t_sel), v


@settings(max_examples=60, deadline=None)
@given(data=instance_with_nested_selections())
def test_nonnegative(data):
    inst, s_sel, _, _ = data
    assert score(inst, s_sel) >= 0.0


@settings(max_examples=60, deadline=None)
@given(data=instance_with_nested_selections())
def test_monotone(data):
    """Definition 4.2: f(S ∪ {v}) >= f(S)."""
    inst, s_sel, _, v = data
    base = score(inst, s_sel)
    extended = score(inst, set(s_sel) | {v})
    assert extended >= base - 1e-9


@settings(max_examples=60, deadline=None)
@given(data=instance_with_nested_selections())
def test_monotone_under_superset(data):
    """G(T) >= G(S) whenever S ⊆ T."""
    inst, s_sel, t_sel, _ = data
    assert score(inst, t_sel) >= score(inst, s_sel) - 1e-9


@settings(max_examples=80, deadline=None)
@given(data=instance_with_nested_selections())
def test_submodular(data):
    """Definition 4.3: f(S∪{v}) − f(S) >= f(T∪{v}) − f(T) for S ⊆ T."""
    inst, s_sel, t_sel, v = data
    gain_s = score(inst, set(s_sel) | {v}) - score(inst, s_sel)
    gain_t = score(inst, set(t_sel) | {v}) - score(inst, t_sel)
    assert gain_s >= gain_t - 1e-9


@settings(max_examples=60, deadline=None)
@given(data=instance_with_nested_selections())
def test_bounded_by_max_score(data):
    inst, _, t_sel, _ = data
    assert score(inst, t_sel) <= max_score(inst) + 1e-9


@settings(max_examples=60, deadline=None)
@given(data=instance_with_nested_selections())
def test_incremental_state_matches_batch_score(data):
    inst, s_sel, t_sel, _ = data
    state = CoverageState(inst, s_sel)
    for p in t_sel:
        state.add(p)
    assert state.value == pytest.approx(score(inst, set(s_sel) | set(t_sel)))


@settings(max_examples=60, deadline=None)
@given(data=instance_with_nested_selections())
def test_gain_equals_add(data):
    """The queried gain must equal the realised gain of the next add."""
    inst, s_sel, _, v = data
    state = CoverageState(inst, s_sel)
    predicted = state.gain(v)
    realized = state.add(v)
    assert predicted == pytest.approx(realized)


@settings(max_examples=40, deadline=None)
@given(data=instance_with_nested_selections(), tau=st.floats(0.0, 1.0))
def test_sparsified_score_never_exceeds_dense(data, tau):
    """Rounding similarities down can only lower (or keep) the score."""
    from repro.sparsify.threshold import threshold_sparsify

    inst, s_sel, _, _ = data
    sparse, _ = threshold_sparsify(inst, tau)
    assert score(sparse, s_sel) <= score(inst, s_sel) + 1e-9


@settings(max_examples=40, deadline=None)
@given(data=instance_with_nested_selections())
def test_selected_members_always_fully_covered(data):
    """Every selected photo's own (q, p) coverage is exactly 1."""
    inst, s_sel, _, _ = data
    state = CoverageState(inst, s_sel)
    sel = set(s_sel)
    for qi, q in enumerate(inst.subsets):
        cov = state.coverage_of(qi)
        for local, photo in enumerate(q.members):
            if int(photo) in sel:
                assert cov[local] == pytest.approx(1.0)
