"""Tests for the Theorem 3.4 reduction (Maximum Coverage → PAR)."""

from __future__ import annotations

from itertools import combinations

import numpy as np
import pytest

from repro.core.bruteforce import branch_and_bound
from repro.core.greedy import UC, lazy_greedy
from repro.core.hardness import (
    MaxCoverageInstance,
    exact_max_coverage,
    greedy_max_coverage,
    mc_to_par,
    par_selection_to_mc,
)
from repro.core.objective import score
from repro.errors import ValidationError


def _mc(seed: int = 0, n_elements: int = 8, n_sets: int = 6, k: int = 3):
    rng = np.random.default_rng(seed)
    sets = [
        frozenset(int(e) for e in rng.choice(n_elements, size=rng.integers(1, 4), replace=False))
        for _ in range(n_sets)
    ]
    return MaxCoverageInstance(n_elements=n_elements, sets=sets, k=k)


class TestMaxCoverage:
    def test_coverage_counts(self):
        mc = MaxCoverageInstance(4, [frozenset({0, 1}), frozenset({1, 2})], k=2)
        assert mc.coverage([0]) == 2
        assert mc.coverage([0, 1]) == 3

    def test_validation(self):
        with pytest.raises(ValidationError):
            MaxCoverageInstance(0, [], k=1)
        with pytest.raises(ValidationError):
            MaxCoverageInstance(2, [frozenset({5})], k=1)
        with pytest.raises(ValidationError):
            MaxCoverageInstance(2, [frozenset({0})], k=0)

    @pytest.mark.parametrize("seed", range(5))
    def test_greedy_guarantee(self, seed):
        mc = _mc(seed)
        _, exact_cov = exact_max_coverage(mc)
        _, greedy_cov = greedy_max_coverage(mc)
        assert greedy_cov >= (1 - 1 / np.e) * exact_cov - 1e-9

    def test_exact_guard(self):
        mc = _mc(0, n_sets=6)
        with pytest.raises(ValueError):
            exact_max_coverage(mc, max_sets=5)


class TestReduction:
    @pytest.mark.parametrize("seed", range(6))
    def test_par_score_equals_mc_coverage(self, seed):
        """The heart of Theorem 3.4: G(S) == |covered elements| for every
        selection of photos."""
        mc = _mc(seed)
        par = mc_to_par(mc)
        rng = np.random.default_rng(seed)
        for _ in range(10):
            size = int(rng.integers(0, len(mc.sets) + 1))
            sel = sorted(int(s) for s in rng.choice(len(mc.sets), size=size, replace=False))
            assert score(par, sel) == pytest.approx(mc.coverage(sel))

    def test_budget_equals_k(self):
        mc = _mc(1, k=3)
        par = mc_to_par(mc)
        assert par.budget == 3.0
        assert all(p.cost == 1.0 for p in par.photos)

    def test_uncoverable_elements_are_dropped(self):
        mc = MaxCoverageInstance(3, [frozenset({0})], k=1)
        par = mc_to_par(mc)
        assert len(par.subsets) == 1  # elements 1, 2 covered by no set

    @pytest.mark.parametrize("seed", range(5))
    def test_optimal_solutions_transfer(self, seed):
        """An optimal PAR solution of the reduced instance is an optimal MC
        solution, with equal value."""
        mc = _mc(seed)
        par = mc_to_par(mc)
        par_opt = branch_and_bound(par)
        _, mc_opt_cov = exact_max_coverage(mc)
        chosen = par_selection_to_mc(par_opt.selection)
        assert mc.coverage(chosen) == pytest.approx(par_opt.value)
        assert par_opt.value == pytest.approx(mc_opt_cov)

    @pytest.mark.parametrize("seed", range(5))
    def test_greedy_transfers(self, seed):
        """PAR's UC greedy on the reduction behaves like MC greedy: same
        achieved coverage (ties aside, both are the classical greedy)."""
        mc = _mc(seed)
        par = mc_to_par(mc)
        par_run = lazy_greedy(par, UC)
        _, greedy_cov = greedy_max_coverage(mc)
        assert par_run.value == pytest.approx(greedy_cov)

    def test_subset_structure(self):
        mc = MaxCoverageInstance(2, [frozenset({0, 1}), frozenset({1})], k=1)
        par = mc_to_par(mc)
        by_id = {q.subset_id: q for q in par.subsets}
        assert list(by_id["element-0"].members) == [0]
        assert list(by_id["element-1"].members) == [0, 1]
        q1 = by_id["element-1"]
        # Uniform relevance 1/|q|, all-ones similarity.
        assert q1.relevance == pytest.approx([0.5, 0.5])
        assert q1.sim(0, 1) == 1.0
