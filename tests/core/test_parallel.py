"""Shared-memory batch solving (:mod:`repro.core.parallel`).

The parallel path must be an invisible optimisation: a worker that
rebuilds the instance from the shared segment has to produce *exactly*
the solution the serial path produces, results must come back in task
order regardless of completion order, and the segment must be gone from
``/dev/shm`` when ``solve_batch`` returns.
"""

from __future__ import annotations

import glob

import numpy as np
import pytest

from repro.core.parallel import (
    SharedInstance,
    SolveTask,
    attach_instance,
    default_workers,
    solve_batch,
)
from repro.core.solver import solve, solve_many
from repro.errors import ConfigurationError, InfeasibleError
from repro.sparsify.threshold import threshold_sparsify
from tests.conftest import random_instance


def _instances():
    dense = random_instance(7, n_photos=18, n_subsets=5)
    sparse, _ = threshold_sparsify(dense, 0.3)
    return [("dense", dense), ("sparse", sparse)]


def _shm_segments():
    return set(glob.glob("/dev/shm/psm_*"))


class TestSolveTask:
    def test_round_trip(self):
        task = SolveTask("lazy-uc", budget=3.5, certificate=True, seed=9, label="x")
        assert SolveTask.from_dict(task.to_dict()) == task
        assert SolveTask.from_dict({}) == SolveTask()

    def test_default_workers_positive(self):
        assert default_workers() >= 1


class TestSharedInstance:
    @pytest.mark.parametrize("kind,inst", _instances())
    def test_attached_instance_is_equivalent(self, kind, inst):
        with SharedInstance(inst) as shared:
            rebuilt = attach_instance(shared.name, shared.spec)
            assert rebuilt.n == inst.n
            assert rebuilt.budget == inst.budget
            assert rebuilt.retained == inst.retained
            assert np.array_equal(rebuilt.costs, inst.costs)
            assert len(rebuilt.subsets) == len(inst.subsets)
            for q, qr in zip(inst.subsets, rebuilt.subsets):
                assert qr.weight == q.weight
                assert np.array_equal(qr.members, q.members)
                assert np.array_equal(qr.relevance, q.relevance)
                assert qr.similarity.is_sparse == q.similarity.is_sparse
            # The real proof: solving the rebuilt instance is bit-identical.
            a = solve(inst, "phocus")
            b = solve(rebuilt, "phocus")
            assert a.selection == b.selection
            assert a.value == b.value

    def test_attached_budget_override(self):
        inst = random_instance(8)
        override = inst.budget * 0.5
        with SharedInstance(inst) as shared:
            rebuilt = attach_instance(shared.name, shared.spec, budget=override)
            assert rebuilt.budget == override

    def test_infeasible_budget_override_rejected(self):
        inst = random_instance(9, retained=2)
        with SharedInstance(inst) as shared:
            with pytest.raises(InfeasibleError):
                attach_instance(shared.name, shared.spec, budget=1e-9)

    def test_close_is_idempotent_and_unlinks(self):
        before = _shm_segments()
        shared = SharedInstance(random_instance(10))
        assert _shm_segments() - before  # segment exists while open
        shared.close()
        shared.close()
        assert _shm_segments() == before


class TestSolveBatch:
    def test_validation_happens_before_any_work(self):
        inst = random_instance(11)
        with pytest.raises(ConfigurationError):
            solve_batch(inst, [SolveTask("no-such-algorithm")])
        with pytest.raises(ConfigurationError):
            solve_batch(inst, [SolveTask(budget=-1.0)])
        with pytest.raises(ConfigurationError):
            solve_batch(inst, [SolveTask()], workers=0)
        assert solve_batch(inst, []) == []

    def test_dict_tasks_are_coerced(self):
        inst = random_instance(11)
        [solution] = solve_batch(inst, [{"algorithm": "phocus", "label": "d"}])
        assert solution.extras["task_label"] == "d"

    @pytest.mark.parametrize("kind,inst", _instances())
    def test_parallel_matches_serial_exactly(self, kind, inst):
        tasks = [
            SolveTask("phocus", budget=f * inst.budget, label=f"b={f}")
            for f in (0.4, 0.7, 1.0)
        ] + [SolveTask("rand-a", seed=3, label="rand")]
        before = _shm_segments()
        serial = solve_batch(inst, tasks, workers=1)
        parallel = solve_batch(inst, tasks, workers=2)
        assert _shm_segments() == before  # no leaked segments
        assert len(parallel) == len(tasks)
        for s, p, t in zip(serial, parallel, tasks):
            assert p.extras["task_label"] == t.label  # task order preserved
            assert p.selection == s.selection
            assert p.value == s.value
            assert p.cost == s.cost

    def test_certificate_survives_the_pool(self):
        inst = random_instance(12)
        tasks = [SolveTask("phocus", certificate=True) for _ in range(2)]
        serial = solve_batch(inst, tasks, workers=1)
        parallel = solve_batch(inst, tasks, workers=2)
        for s, p in zip(serial, parallel):
            assert p.ratio_certificate is not None
            assert p.ratio_certificate == s.ratio_certificate

    def test_solve_many_facade(self):
        inst = random_instance(13)
        tasks = [SolveTask("phocus"), SolveTask("lazy-uc")]
        results = solve_many(inst, tasks, workers=1)
        direct = solve_batch(inst, tasks, workers=1)
        assert [r.value for r in results] == [d.value for d in direct]
        assert [r.selection for r in results] == [d.selection for d in direct]
