"""Tests for the Section 5.2 baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baselines import (
    greedy_no_redundancy,
    greedy_non_contextual,
    non_contextual_instance,
    rand_add,
    rand_delete,
)
from repro.core.instance import DenseSimilarity, PARInstance, Photo, PredefinedSubset
from repro.core.objective import score
from repro.errors import ConfigurationError

from tests.conftest import random_instance


class TestRandA:
    def test_feasible(self, small_instance):
        sel = rand_add(small_instance, np.random.default_rng(0))
        assert small_instance.feasible(sel)

    def test_deterministic_with_seed(self, small_instance):
        a = rand_add(small_instance, np.random.default_rng(5))
        b = rand_add(small_instance, np.random.default_rng(5))
        assert a == b

    def test_varies_across_seeds(self, small_instance):
        results = {tuple(rand_add(small_instance, np.random.default_rng(s))) for s in range(10)}
        assert len(results) > 1

    def test_includes_retained(self):
        inst = random_instance(seed=7, retained=2)
        sel = rand_add(inst, np.random.default_rng(0))
        assert inst.retained.issubset(set(sel))

    def test_fills_budget_reasonably(self, small_instance):
        """Random fill should not stop while cheap photos still fit."""
        sel = rand_add(small_instance, np.random.default_rng(1))
        remaining = small_instance.budget - small_instance.cost_of(sel)
        cheapest_left = min(
            (small_instance.costs[p] for p in range(small_instance.n) if p not in sel),
            default=float("inf"),
        )
        assert cheapest_left > remaining


class TestRandD:
    def test_feasible(self, small_instance):
        sel = rand_delete(small_instance, np.random.default_rng(0))
        assert small_instance.feasible(sel)

    def test_never_deletes_retained(self):
        inst = random_instance(seed=7, retained=2)
        for s in range(5):
            sel = rand_delete(inst, np.random.default_rng(s))
            assert inst.retained.issubset(set(sel))

    def test_keeps_everything_under_generous_budget(self, figure1):
        generous = figure1.with_budget(1e9)
        assert rand_delete(generous, np.random.default_rng(0)) == list(range(7))

    def test_deterministic_with_seed(self, small_instance):
        a = rand_delete(small_instance, np.random.default_rng(3))
        b = rand_delete(small_instance, np.random.default_rng(3))
        assert a == b


class TestGreedyNR:
    def test_picks_by_additive_value(self):
        """G-NR must pick the individually most valuable photo even when a
        similar photo is already guaranteed to be chosen."""
        # Two photos nearly identical, one distinct but individually weaker.
        sim = DenseSimilarity(
            np.array([[1.0, 0.95, 0.0], [0.95, 1.0, 0.0], [0.0, 0.0, 1.0]])
        )
        q = PredefinedSubset("q", 1.0, [0, 1, 2], [0.45, 0.45, 0.10], sim)
        photos = [Photo(photo_id=i, cost=1.0) for i in range(3)]
        inst = PARInstance(photos, [q], budget=2.0)
        sel = greedy_no_redundancy(inst)
        # Additive values: p0 = p1 = 0.45 > p2 = 0.10 -> picks the twins.
        assert sel == [0, 1]
        # whereas the redundancy-aware optimum pairs a twin with p2:
        assert score(inst, [0, 2]) > score(inst, [0, 1])

    def test_feasible(self, small_instance):
        assert small_instance.feasible(greedy_no_redundancy(small_instance))

    def test_includes_retained(self):
        inst = random_instance(seed=7, retained=2)
        assert inst.retained.issubset(set(greedy_no_redundancy(inst)))

    def test_cost_aware_variant_prefers_density(self):
        sim = DenseSimilarity(np.eye(2))
        q = PredefinedSubset("q", 1.0, [0, 1], [0.6, 0.4], sim)
        photos = [Photo(photo_id=0, cost=10.0), Photo(photo_id=1, cost=1.0)]
        inst = PARInstance(photos, [q], budget=10.0)
        # Value greedy takes p0 (0.6) and has no room for p1.
        assert greedy_no_redundancy(inst) == [0]
        # Density greedy takes p1 first (0.4/1) then cannot afford p0... but
        # 1 + 10 > 10 so only p1 remains.
        assert greedy_no_redundancy(inst, cost_aware=True) == [1]

    def test_deterministic(self, small_instance):
        assert greedy_no_redundancy(small_instance) == greedy_no_redundancy(small_instance)


class TestGreedyNCS:
    def test_requires_embeddings_or_matrix(self, figure1):
        # figure1 carries no embeddings.
        with pytest.raises(ConfigurationError):
            greedy_non_contextual(figure1)

    def test_accepts_global_matrix(self, figure1):
        identity = np.eye(figure1.n)
        sel = greedy_non_contextual(figure1, global_similarity=identity)
        assert figure1.feasible(sel)

    def test_rejects_wrong_matrix_shape(self, figure1):
        with pytest.raises(ConfigurationError):
            greedy_non_contextual(figure1, global_similarity=np.eye(3))

    def test_non_contextual_instance_only_replaces_sim(self, small_instance):
        surrogate = non_contextual_instance(small_instance)
        assert surrogate.n == small_instance.n
        assert surrogate.budget == small_instance.budget
        for q_old, q_new in zip(small_instance.subsets, surrogate.subsets):
            assert q_new.subset_id == q_old.subset_id
            assert q_new.weight == q_old.weight
            assert q_new.relevance == pytest.approx(q_old.relevance)
            assert list(q_new.members) == list(q_old.members)

    def test_global_sim_is_context_independent(self, small_instance):
        """After replacement, a member pair appearing in two subsets must
        have the same similarity in both."""
        surrogate = non_contextual_instance(small_instance)
        seen = {}
        for q in surrogate.subsets:
            for i, p1 in enumerate(q.members):
                for j, p2 in enumerate(q.members):
                    if i < j:
                        key = (int(p1), int(p2))
                        value = q.similarity.pair(i, j)
                        if key in seen:
                            assert value == pytest.approx(seen[key])
                        seen[key] = value

    def test_feasible_and_scored_on_true_objective(self, small_instance):
        sel = greedy_non_contextual(small_instance)
        assert small_instance.feasible(sel)
        assert score(small_instance, sel) > 0
