"""Unit tests for the objective G and the incremental CoverageState."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.objective import CoverageState, max_score, score, score_breakdown

from tests.conftest import random_instance


class TestScore:
    def test_empty_selection_scores_zero(self, figure1):
        assert score(figure1, []) == 0.0

    def test_full_selection_hits_ceiling(self, figure1):
        assert score(figure1, range(7)) == pytest.approx(max_score(figure1))

    def test_max_score_is_weight_sum(self, figure1):
        assert max_score(figure1) == pytest.approx(9 + 1 + 3 + 1)

    def test_single_photo_manual_value(self, figure1):
        # Selecting p1 (id 0): Bikes scores 9*(0.5 + 0.3*0.7 + 0.2*0.8).
        assert score(figure1, [0]) == pytest.approx(9 * (0.5 + 0.21 + 0.16))

    def test_photo_in_multiple_subsets(self, figure1):
        # p6 (id 5): Cats 1*(.3*.4+.4*.7+.3), Bookshelf 3*1, Books 1*(.7+.3*.7).
        assert score(figure1, [5]) == pytest.approx(0.7 + 3.0 + 0.91)

    def test_duplicate_ids_do_not_double_count(self, figure1):
        assert score(figure1, [0, 0]) == pytest.approx(score(figure1, [0]))

    def test_breakdown_sums_to_score(self, figure1):
        sel = [0, 5]
        breakdown = score_breakdown(figure1, sel)
        assert sum(breakdown.values()) == pytest.approx(score(figure1, sel))
        assert set(breakdown) == {"Bikes", "Cats", "Bookshelf", "Books"}

    def test_breakdown_uncovered_subset_is_zero(self, figure1):
        breakdown = score_breakdown(figure1, [0])
        assert breakdown["Cats"] == 0.0
        assert breakdown["Bookshelf"] == 0.0


class TestCoverageState:
    def test_initial_state_empty(self, figure1):
        state = CoverageState(figure1)
        assert state.value == 0.0
        assert state.selected == frozenset()

    def test_seeded_with_selection(self, figure1):
        state = CoverageState(figure1, [0, 5])
        assert state.value == pytest.approx(score(figure1, [0, 5]))
        assert 0 in state and 5 in state

    def test_add_returns_realized_gain(self, figure1):
        state = CoverageState(figure1)
        gain = state.add(0)
        assert gain == pytest.approx(score(figure1, [0]))
        assert state.value == pytest.approx(gain)

    def test_gain_matches_score_difference(self, figure1):
        state = CoverageState(figure1, [0])
        for p in range(1, 7):
            expected = score(figure1, [0, p]) - score(figure1, [0])
            assert state.gain(p) == pytest.approx(expected), f"photo {p}"

    def test_gain_does_not_mutate(self, figure1):
        state = CoverageState(figure1, [0])
        before = state.value
        state.gain(5)
        assert state.value == before
        assert state.selected == frozenset({0})

    def test_gain_of_selected_is_zero(self, figure1):
        state = CoverageState(figure1, [0])
        assert state.gain(0) == 0.0

    def test_readding_is_noop(self, figure1):
        state = CoverageState(figure1, [0])
        assert state.add(0) == 0.0
        assert state.value == pytest.approx(score(figure1, [0]))

    def test_incremental_matches_batch_on_random_instances(self):
        for seed in range(5):
            inst = random_instance(seed=seed)
            rng = np.random.default_rng(seed)
            order = rng.permutation(inst.n)[: inst.n // 2]
            state = CoverageState(inst)
            for p in order:
                state.add(int(p))
            assert state.value == pytest.approx(score(inst, order))

    def test_copy_is_independent(self, figure1):
        state = CoverageState(figure1, [0])
        clone = state.copy()
        clone.add(5)
        assert 5 not in state
        assert state.value == pytest.approx(score(figure1, [0]))
        assert clone.value == pytest.approx(score(figure1, [0, 5]))

    def test_subset_value(self, figure1):
        state = CoverageState(figure1, [5])
        # Subset 2 is Bookshelf = {p6} with weight 3.
        assert state.subset_value(2) == pytest.approx(3.0)
        assert state.subset_value(0) == 0.0

    def test_coverage_of_returns_copy(self, figure1):
        state = CoverageState(figure1, [0])
        cov = state.coverage_of(0)
        assert cov == pytest.approx([1.0, 0.7, 0.8])
        cov[0] = 0.0
        assert state.coverage_of(0)[0] == 1.0

    def test_all_gains_matches_scalar_gains(self, figure1):
        for sel in ([], [0], [0, 5], [1, 3, 6]):
            state = CoverageState(figure1, sel)
            batch = state.all_gains()
            for p in range(figure1.n):
                assert batch[p] == pytest.approx(state.gain(p)), f"photo {p}"

    def test_all_gains_on_sparse_backend(self, figure1):
        from repro.sparsify.threshold import threshold_sparsify

        sparse, _ = threshold_sparsify(figure1, 0.6)
        state = CoverageState(sparse, [0])
        batch = state.all_gains()
        for p in range(sparse.n):
            assert batch[p] == pytest.approx(state.gain(p))

    def test_all_gains_random_instances(self):
        for seed in range(4):
            inst = random_instance(seed=seed)
            state = CoverageState(inst, range(0, inst.n, 3))
            batch = state.all_gains()
            for p in range(inst.n):
                assert batch[p] == pytest.approx(state.gain(p))

    def test_sparse_backend_equivalent_when_nothing_dropped(self, figure1):
        from repro.sparsify.threshold import threshold_sparsify

        sparse, _ = threshold_sparsify(figure1, 0.0)
        for sel in ([0], [0, 5], [1, 3, 6]):
            dense_state = CoverageState(figure1, sel)
            sparse_state = CoverageState(sparse, sel)
            assert dense_state.value == pytest.approx(sparse_state.value)
            for p in range(7):
                assert dense_state.gain(p) == pytest.approx(sparse_state.gain(p))
