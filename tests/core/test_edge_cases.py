"""Degenerate-instance battery: every solver must survive the corners.

Archival deployments hit these shapes routinely — a budget that admits
nothing, identical photos, similarity-free subsets, one giant subset —
and a production solver must handle them without special-casing by the
caller.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bruteforce import branch_and_bound
from repro.core.instance import (
    DenseSimilarity,
    PARInstance,
    Photo,
    PredefinedSubset,
)
from repro.core.objective import max_score, score
from repro.core.solver import available_algorithms, solve

_ALGORITHMS = [
    "phocus", "lazy-uc", "lazy-cb", "naive-greedy", "sviridenko",
    "bruteforce", "rand-a", "rand-d", "greedy-nr",
]


def _instance(photos, subsets, budget, **kwargs):
    return PARInstance(photos, subsets, budget, **kwargs)


def _uniform_subset(subset_id, members, sim_value=0.0, weight=1.0):
    m = len(members)
    matrix = np.full((m, m), sim_value)
    np.fill_diagonal(matrix, 1.0)
    return PredefinedSubset(
        subset_id, weight, members, [1.0] * m, DenseSimilarity(matrix)
    )


class TestNothingFits:
    """Budget smaller than any single photo: the only solution is S0=∅."""

    @pytest.fixture
    def inst(self):
        photos = [Photo(photo_id=i, cost=10.0) for i in range(4)]
        return _instance(photos, [_uniform_subset("q", [0, 1, 2, 3])], budget=1.0)

    @pytest.mark.parametrize("algorithm", _ALGORITHMS)
    def test_all_solvers_return_empty(self, inst, algorithm):
        sol = solve(inst, algorithm, rng=np.random.default_rng(0))
        assert sol.selection == []
        assert sol.value == 0.0


class TestExactFit:
    """Budget exactly equal to the total cost: everything is kept."""

    @pytest.fixture
    def inst(self):
        photos = [Photo(photo_id=i, cost=1.5) for i in range(4)]
        return _instance(photos, [_uniform_subset("q", [0, 1, 2, 3])], budget=6.0)

    @pytest.mark.parametrize("algorithm", ["phocus", "bruteforce", "rand-d"])
    def test_everything_kept(self, inst, algorithm):
        sol = solve(inst, algorithm, rng=np.random.default_rng(0))
        assert sol.selection == [0, 1, 2, 3]
        assert sol.value == pytest.approx(max_score(inst))


class TestIdenticalPhotos:
    """All photos mutually similar at 1: one photo saturates the subset."""

    @pytest.fixture
    def inst(self):
        photos = [Photo(photo_id=i, cost=1.0) for i in range(5)]
        return _instance(
            photos, [_uniform_subset("clones", list(range(5)), sim_value=1.0)],
            budget=3.0,
        )

    def test_single_photo_is_optimal(self, inst):
        assert score(inst, [0]) == pytest.approx(max_score(inst))

    def test_greedy_stops_adding_after_saturation(self, inst):
        sol = solve(inst, "phocus")
        # Further photos add zero gain; lazy greedy may or may not pad the
        # budget with zero-gain picks — the value is what matters.
        assert sol.value == pytest.approx(max_score(inst))

    def test_exact_agrees(self, inst):
        assert branch_and_bound(inst).value == pytest.approx(max_score(inst))


class TestZeroSimilarity:
    """No photo covers another: PAR degenerates to a pure knapsack."""

    @pytest.fixture
    def inst(self):
        photos = [
            Photo(photo_id=0, cost=2.0),
            Photo(photo_id=1, cost=1.0),
            Photo(photo_id=2, cost=1.0),
        ]
        m = 3
        matrix = np.eye(m)
        subset = PredefinedSubset(
            "q", 1.0, [0, 1, 2], [0.5, 0.3, 0.2], DenseSimilarity(matrix)
        )
        return _instance(photos, [subset], budget=2.0)

    def test_knapsack_optimum_found(self, inst):
        # Options: {p0} -> 0.5, {p1, p2} -> 0.5.  Both optimal.
        exact = branch_and_bound(inst)
        assert exact.value == pytest.approx(0.5)
        sol = solve(inst, "phocus")
        assert sol.value == pytest.approx(0.5)


class TestSingletonSubsetsOnly:
    """Each photo is its own subset: selection = weighted knapsack."""

    @pytest.fixture
    def inst(self):
        photos = [Photo(photo_id=i, cost=float(i + 1)) for i in range(4)]
        subsets = [
            PredefinedSubset(
                f"s{i}", float(4 - i), [i], [1.0], DenseSimilarity(np.ones((1, 1)))
            )
            for i in range(4)
        ]
        return _instance(photos, subsets, budget=4.0)

    def test_greedy_matches_exact(self, inst):
        # Weights 4,3,2,1 with costs 1,2,3,4 and budget 4: {p0, p1} -> 7.
        exact = branch_and_bound(inst)
        assert exact.value == pytest.approx(7.0)
        assert solve(inst, "phocus").value == pytest.approx(7.0)


class TestOneGiantSubset:
    def test_solvers_handle_single_subset_instances(self):
        rng = np.random.default_rng(0)
        emb = rng.standard_normal((30, 8))
        emb /= np.linalg.norm(emb, axis=1, keepdims=True)
        sim = np.clip(emb @ emb.T, 0, 1)
        sim = (sim + sim.T) / 2
        np.fill_diagonal(sim, 1.0)
        photos = [Photo(photo_id=i, cost=1.0) for i in range(30)]
        subset = PredefinedSubset(
            "all", 1.0, list(range(30)), rng.uniform(0.1, 1, 30),
            DenseSimilarity(sim),
        )
        inst = _instance(photos, [subset], budget=5.0)
        for algorithm in ("phocus", "greedy-nr", "rand-a"):
            sol = solve(inst, algorithm, rng=np.random.default_rng(1))
            assert inst.feasible(sol.selection)
            assert 0 < sol.value <= 1.0 + 1e-9


class TestRetainedIsEntireBudget:
    def test_solvers_return_exactly_s0(self):
        photos = [Photo(photo_id=i, cost=1.0) for i in range(4)]
        inst = _instance(
            photos, [_uniform_subset("q", [0, 1, 2, 3])],
            budget=2.0, retained=[0, 1],
        )
        for algorithm in ("phocus", "sviridenko", "bruteforce", "greedy-nr"):
            sol = solve(inst, algorithm)
            assert sol.selection == [0, 1]


class TestFractionalCosts:
    def test_tiny_and_huge_costs_coexist(self):
        photos = [
            Photo(photo_id=0, cost=1e-6),
            Photo(photo_id=1, cost=1e9),
            Photo(photo_id=2, cost=1.0),
        ]
        inst = _instance(photos, [_uniform_subset("q", [0, 1, 2])], budget=2.0)
        sol = solve(inst, "phocus")
        assert 1 not in sol.selection
        assert inst.feasible(sol.selection)
        assert {0, 2}.issubset(set(sol.selection))
