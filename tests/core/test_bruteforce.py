"""Tests for the exact solvers (exhaustive + branch and bound)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bruteforce import branch_and_bound, exhaustive
from repro.core.greedy import main_algorithm
from repro.core.objective import score

from tests.conftest import random_instance


class TestExhaustive:
    def test_figure1_optimum(self, figure1):
        result = exhaustive(figure1)
        assert result.value == pytest.approx(13.46)
        assert result.selection == [0, 1, 4, 5]

    def test_respects_budget(self, figure1):
        result = exhaustive(figure1)
        assert result.cost <= figure1.budget

    def test_guard_on_large_instances(self):
        inst = random_instance(seed=0, n_photos=30)
        with pytest.raises(ValueError):
            exhaustive(inst, max_photos=24)

    def test_includes_retained(self):
        inst = random_instance(seed=7, n_photos=10, retained=2)
        result = exhaustive(inst)
        assert inst.retained.issubset(set(result.selection))

    def test_value_is_scored_selection(self, figure1):
        result = exhaustive(figure1)
        assert result.value == pytest.approx(score(figure1, result.selection))


class TestBranchAndBound:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_exhaustive(self, seed):
        inst = random_instance(seed=seed, n_photos=11, n_subsets=4)
        assert branch_and_bound(inst).value == pytest.approx(exhaustive(inst).value)

    def test_with_retained(self):
        inst = random_instance(seed=3, n_photos=10, retained=2)
        bb = branch_and_bound(inst)
        assert inst.retained.issubset(set(bb.selection))
        assert bb.value == pytest.approx(exhaustive(inst).value)

    def test_at_least_greedy(self):
        for seed in range(5):
            inst = random_instance(seed=seed, n_photos=13)
            assert branch_and_bound(inst).value >= main_algorithm(inst).value - 1e-9

    def test_prunes_relative_to_exhaustive(self):
        inst = random_instance(seed=1, n_photos=14, budget_fraction=0.3)
        bb = branch_and_bound(inst)
        ex = exhaustive(inst, max_photos=14)
        assert bb.nodes < ex.nodes

    def test_node_limit_guard(self):
        inst = random_instance(seed=2, n_photos=14)
        with pytest.raises(RuntimeError):
            branch_and_bound(inst, node_limit=3)

    def test_feasible(self, small_instance):
        result = branch_and_bound(small_instance)
        assert small_instance.feasible(result.selection)

    def test_handles_budget_fitting_everything(self, figure1):
        generous = figure1.with_budget(1e9)
        result = branch_and_bound(generous)
        assert result.selection == list(range(7))
