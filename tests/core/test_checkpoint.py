"""Checkpoint wire format and resume-determinism proofs.

The determinism tests are the contract the whole crash-safety layer
rests on: a solve interrupted at *any* checkpoint and resumed must
produce byte-identical selections and bit-identical objective values to
the uninterrupted run, for both lazy-greedy variants and the full
two-phase main algorithm.
"""

import os

import pytest

from repro.core.checkpoint import (
    FileCheckpointSink,
    MemoryCheckpointSink,
    decode_record,
    decode_record_b64,
    encode_record,
    encode_record_b64,
    resume_from_checkpoint,
)
from repro.core.greedy import CB, UC, lazy_greedy, main_algorithm
from repro.core.solver import checkpointable_algorithms, solve
from repro.errors import CheckpointError, ConfigurationError
from tests.conftest import random_instance


# --------------------------------------------------------------- wire format


def test_record_round_trip():
    doc = {"kind": "lazy_greedy", "value": 1.25, "picks": [[3, 0.5]], "n": 7}
    assert decode_record(encode_record(doc)) == doc


def test_record_b64_round_trip():
    doc = {"kind": "main_algorithm", "phase": "CB", "nested": {"a": [1, 2]}}
    assert decode_record_b64(encode_record_b64(doc)) == doc


def test_record_preserves_floats_exactly():
    value = 0.1 + 0.2  # not representable prettily; must survive exactly
    doc = decode_record(encode_record({"value": value}))
    assert doc["value"] == value


def test_corrupt_payload_detected():
    data = bytearray(encode_record({"kind": "lazy_greedy", "value": 3.5}))
    data[-2] ^= 0x01  # flip one bit in the JSON body
    with pytest.raises(CheckpointError, match="CRC32"):
        decode_record(bytes(data))


def test_corrupt_magic_detected():
    data = b"XXXXXXXX" + encode_record({"a": 1})[8:]
    with pytest.raises(CheckpointError, match="magic"):
        decode_record(data)


def test_truncated_record_detected():
    data = encode_record({"kind": "lazy_greedy", "selection": list(range(50))})
    with pytest.raises(CheckpointError, match="truncated"):
        decode_record(data[: len(data) // 2])


def test_bad_base64_detected():
    with pytest.raises(CheckpointError, match="base64"):
        decode_record_b64("!!! not base64 !!!")


def test_file_sink_round_trip(tmp_path):
    sink = FileCheckpointSink(tmp_path / "ckpt.bin")
    assert sink.load() is None
    sink({"kind": "lazy_greedy", "picks": []})
    sink({"kind": "lazy_greedy", "picks": [[1, 0.5]]})  # atomically replaces
    assert sink.load() == {"kind": "lazy_greedy", "picks": [[1, 0.5]]}


# ----------------------------------------------------- argument validation


def test_checkpoint_every_requires_sink():
    instance = random_instance(seed=0)
    with pytest.raises(ConfigurationError):
        lazy_greedy(instance, CB, checkpoint_every=2)


def test_checkpoint_every_must_be_positive():
    instance = random_instance(seed=0)
    with pytest.raises(ConfigurationError):
        lazy_greedy(instance, CB, checkpoint_every=0, checkpoint_sink=lambda d: None)


def test_solve_rejects_checkpointing_non_checkpointable():
    instance = random_instance(seed=0)
    with pytest.raises(ConfigurationError):
        solve(instance, "sviridenko", checkpoint_every=2, checkpoint_sink=lambda d: None)
    assert checkpointable_algorithms() == ["lazy-cb", "lazy-uc", "phocus"]


def test_resume_rejects_mode_mismatch():
    instance = random_instance(seed=3, n_photos=20)
    sink = MemoryCheckpointSink()
    lazy_greedy(instance, CB, checkpoint_every=1, checkpoint_sink=sink)
    with pytest.raises(CheckpointError):
        lazy_greedy(instance, UC, resume_from=sink.last)


def test_resume_rejects_wrong_instance_size():
    sink = MemoryCheckpointSink()
    lazy_greedy(random_instance(seed=3, n_photos=20), CB, checkpoint_every=1, checkpoint_sink=sink)
    with pytest.raises(CheckpointError):
        lazy_greedy(random_instance(seed=3, n_photos=24), CB, resume_from=sink.last)


def test_resume_unknown_kind_rejected():
    instance = random_instance(seed=0)
    with pytest.raises(CheckpointError, match="kind"):
        resume_from_checkpoint(instance, {"kind": "mystery"})


# --------------------------------------------------- determinism proofs


@pytest.mark.parametrize("mode", [UC, CB])
def test_lazy_greedy_resume_matches_uninterrupted_at_every_checkpoint(mode):
    """Resuming from *each* emitted checkpoint reproduces the full run
    byte-identically: same selection, same value bit pattern, same
    cumulative evaluation count."""
    instance = random_instance(seed=17, n_photos=40, n_subsets=8, budget_fraction=0.5)
    reference = lazy_greedy(instance, mode)
    sink = MemoryCheckpointSink()
    lazy_greedy(instance, mode, checkpoint_every=2, checkpoint_sink=sink)
    assert sink.docs, "expected at least one checkpoint"
    for doc in sink.docs:
        resumed = lazy_greedy(instance, mode, resume_from=doc)
        assert resumed.selection == reference.selection
        assert resumed.value == reference.value  # bit-identical float
        assert resumed.picks == reference.picks
        assert resumed.evaluations == reference.evaluations
        assert resumed.resumed_at == len(doc["picks"])


def test_main_algorithm_resume_matches_uninterrupted_both_phases():
    instance = random_instance(seed=23, n_photos=36, n_subsets=6, budget_fraction=0.45)
    reference = main_algorithm(instance)
    sink = MemoryCheckpointSink()
    main_algorithm(instance, checkpoint_every=2, checkpoint_sink=sink)
    phases = {doc["phase"] for doc in sink.docs}
    assert phases == {"UC", "CB"}, "need checkpoints spanning both phases"
    for doc in sink.docs:
        resumed = main_algorithm(instance, resume_from=doc)
        assert resumed.selection == reference.selection
        assert resumed.value == reference.value
        assert resumed.mode == reference.mode
        assert resumed.evaluations == reference.evaluations


def test_resume_from_checkpoint_file_dispatch(tmp_path):
    instance = random_instance(seed=29, n_photos=30, n_subsets=6, budget_fraction=0.4)
    reference = main_algorithm(instance)
    sink = FileCheckpointSink(tmp_path / "main.ckpt")
    main_algorithm(instance, checkpoint_every=3, checkpoint_sink=sink)
    assert os.path.exists(sink.path)
    resumed = resume_from_checkpoint(instance, sink.path)
    assert resumed.selection == reference.selection
    assert resumed.value == reference.value


def test_resumed_run_keeps_checkpointing():
    instance = random_instance(seed=31, n_photos=30, n_subsets=6, budget_fraction=0.5)
    first = MemoryCheckpointSink()
    reference = lazy_greedy(instance, CB, checkpoint_every=2, checkpoint_sink=first)
    second = MemoryCheckpointSink()
    resumed = lazy_greedy(
        instance,
        CB,
        resume_from=first.docs[0],
        checkpoint_every=2,
        checkpoint_sink=second,
    )
    assert resumed.selection == reference.selection
    assert second.docs, "resumed run must emit fresh checkpoints"
    assert len(second.docs[-1]["picks"]) > len(first.docs[0]["picks"])


def test_solve_facade_reports_resume_extras():
    instance = random_instance(seed=37, n_photos=30, n_subsets=6, budget_fraction=0.5)
    sink = MemoryCheckpointSink()
    baseline = solve(instance, "phocus", checkpoint_every=2, checkpoint_sink=sink)
    resumed = solve(instance, "phocus", resume_from=sink.docs[0])
    assert resumed.selection == baseline.selection
    assert resumed.value == baseline.value
    assert resumed.extras["resumed_from_picks"] >= 1
    assert "resumed_from_picks" not in baseline.extras
