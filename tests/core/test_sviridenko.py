"""Tests for the optimal-guarantee Sviridenko algorithm [45]."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bruteforce import branch_and_bound
from repro.core.objective import score
from repro.core.sviridenko import sviridenko

from tests.conftest import random_instance

_ONE_MINUS_1_OVER_E = 1.0 - 1.0 / np.e


class TestSviridenko:
    def test_figure1_reaches_optimum(self, figure1):
        assert sviridenko(figure1).value == pytest.approx(13.46)

    @pytest.mark.parametrize("seed", range(6))
    def test_achieves_approximation_guarantee(self, seed):
        inst = random_instance(seed=seed, n_photos=11, n_subsets=4)
        opt = branch_and_bound(inst).value
        got = sviridenko(inst).value
        assert got >= _ONE_MINUS_1_OVER_E * opt - 1e-9

    @pytest.mark.parametrize("seed", range(6))
    def test_usually_optimal_on_small_instances(self, seed):
        """Partial enumeration is exact far more often than its bound; on
        these tiny instances it should actually reach the optimum."""
        inst = random_instance(seed=seed, n_photos=9, n_subsets=3)
        assert sviridenko(inst).value == pytest.approx(branch_and_bound(inst).value)

    def test_respects_budget_and_retained(self):
        inst = random_instance(seed=7, n_photos=10, retained=2)
        result = sviridenko(inst)
        assert inst.feasible(result.selection)

    def test_guard_on_large_instances(self):
        inst = random_instance(seed=0, n_photos=70)
        with pytest.raises(ValueError):
            sviridenko(inst, max_photos=60)

    def test_value_matches_selection(self, small_instance):
        result = sviridenko(small_instance)
        assert result.value == pytest.approx(score(small_instance, result.selection))

    def test_counts_seeds(self, figure1):
        result = sviridenko(figure1)
        assert result.seeds_tried > 0
        assert result.evaluations >= 0

    def test_tight_budget_only_singletons(self, figure1):
        # Budget 0.8 Mb: only p2 (0.7) or p5 (0.8) fit; optimum is p2
        # (Bikes gain 6.75 > Cats gain 0.82).
        tight = figure1.with_budget(0.8e6)
        result = sviridenko(tight)
        assert result.selection == [1]
