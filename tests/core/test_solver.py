"""Tests for the solve() facade and Solution reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.solver import Solution, available_algorithms, solve
from repro.core.objective import score
from repro.errors import ConfigurationError

from tests.conftest import random_instance


class TestRegistry:
    def test_expected_algorithms_registered(self):
        names = available_algorithms()
        for expected in (
            "phocus", "lazy-uc", "lazy-cb", "naive-greedy", "sviridenko",
            "bruteforce", "rand-a", "rand-d", "greedy-nr", "greedy-ncs",
        ):
            assert expected in names

    def test_unknown_algorithm_raises(self, figure1):
        with pytest.raises(ConfigurationError):
            solve(figure1, "does-not-exist")


class TestSolve:
    @pytest.mark.parametrize(
        "algorithm",
        ["phocus", "lazy-uc", "lazy-cb", "naive-greedy", "sviridenko", "bruteforce",
         "rand-a", "rand-d", "greedy-nr"],
    )
    def test_every_algorithm_returns_feasible_solution(self, figure1, algorithm):
        sol = solve(figure1, algorithm, rng=np.random.default_rng(0))
        assert figure1.feasible(sol.selection)
        assert sol.value == pytest.approx(score(figure1, sol.selection))
        assert sol.cost <= figure1.budget
        assert sol.algorithm == algorithm
        assert sol.elapsed_seconds >= 0.0

    def test_greedy_ncs_needs_embeddings(self, small_instance):
        sol = solve(small_instance, "greedy-ncs")
        assert small_instance.feasible(sol.selection)

    def test_selection_is_sorted_and_unique(self, figure1):
        sol = solve(figure1, "phocus")
        assert sol.selection == sorted(set(sol.selection))

    def test_retained_always_included(self):
        inst = random_instance(seed=7, retained=2)
        for algorithm in ("phocus", "rand-a", "greedy-nr"):
            sol = solve(inst, algorithm, rng=np.random.default_rng(1))
            assert inst.retained.issubset(set(sol.selection))

    def test_certificate_requested(self, small_instance):
        sol = solve(small_instance, "phocus", certificate=True)
        assert sol.ratio_certificate is not None
        assert 0.0 < sol.ratio_certificate <= 1.0

    def test_certificate_not_computed_by_default(self, small_instance):
        assert solve(small_instance, "phocus").ratio_certificate is None

    def test_budget_utilisation(self, figure1):
        sol = solve(figure1, "phocus")
        assert sol.budget_utilisation == pytest.approx(sol.cost / figure1.budget)

    def test_phocus_dominates_random(self, small_instance):
        phocus = solve(small_instance, "phocus")
        rand = solve(small_instance, "rand-a", rng=np.random.default_rng(0))
        assert phocus.value >= rand.value - 1e-9

    def test_bruteforce_dominates_phocus(self, small_instance):
        exact = solve(small_instance, "bruteforce")
        phocus = solve(small_instance, "phocus")
        assert exact.value >= phocus.value - 1e-9

    def test_extras_populated(self, figure1):
        sol = solve(figure1, "phocus")
        assert "mode" in sol.extras and "evaluations" in sol.extras
        exact = solve(figure1, "bruteforce")
        assert exact.extras.get("exact") is True
