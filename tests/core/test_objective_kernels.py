"""Kernel-vs-reference backend equivalence — exact, not approximate.

The flat-CSR kernel backend of :class:`CoverageState` must be a perfect
stand-in for the original per-subset reference path: same add order ⇒
bit-identical ``value``, coverage vectors, marginal gains, and — because
heap keys flow into checkpoint documents — byte-identical checkpoints.
These are the properties the PR-2 resume proofs and the CI bench-smoke
gate rely on, so everything here asserts ``==``, never ``approx``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checkpoint import MemoryCheckpointSink, encode_record
from repro.core.greedy import CB, UC, lazy_greedy, main_algorithm
from repro.core.instance import build_incidence
from repro.core.objective import KERNEL, REFERENCE, CoverageState, score
from repro.errors import ConfigurationError
from repro.sparsify.threshold import threshold_sparsify
from tests.conftest import random_instance


def _variants(seed: int, **kwargs):
    dense = random_instance(seed, **kwargs)
    sparse, _ = threshold_sparsify(dense, 0.3)
    return [("dense", dense), ("sparse", sparse)]


class TestIncidenceLayout:
    def test_entry_ranges_partition_the_nnz(self):
        inst = random_instance(0, n_photos=20, n_subsets=5)
        inc = inst.incidence
        assert inc.total_slots == sum(len(q) for q in inst.subsets)
        assert inc.entry_indptr[0] == 0
        assert inc.entry_indptr[-1] == inc.nnz
        assert inc.nnz == sum(q.similarity.nnz() for q in inst.subsets)

    def test_membership_order_matches_instance_membership(self):
        inst = random_instance(1, n_photos=18, n_subsets=6)
        inc = inst.incidence
        off = inc.subset_offsets
        for p in range(inst.n):
            ms, me = inc.photo_member_indptr[p], inc.photo_member_indptr[p + 1]
            assert me - ms == len(inst.membership[p])
            for k, (qi, local) in zip(range(ms, me), inst.membership[p]):
                s, e = inc.member_entry_indptr[k], inc.member_entry_indptr[k + 1]
                idx, sims = inst.subsets[qi].similarity.neighbors(local)
                assert np.array_equal(inc.slots[s:e] - off[qi], idx)
                assert np.array_equal(inc.sims[s:e], sims)

    def test_with_budget_shares_the_incidence(self):
        inst = random_instance(2)
        assert inst.with_budget(inst.budget * 0.5).incidence is inst.incidence

    def test_build_incidence_empty_subsets(self):
        inc = build_incidence([], 5)
        assert inc.total_slots == 0 and inc.nnz == 0
        assert inc.photo_member_indptr.shape == (6,)


class TestBackendEquivalence:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            CoverageState(random_instance(0), backend="vectorized")

    def test_env_var_selects_default_backend(self, monkeypatch):
        inst = random_instance(0)
        monkeypatch.setenv("PHOCUS_COVERAGE_BACKEND", REFERENCE)
        assert CoverageState(inst).backend == REFERENCE
        monkeypatch.delenv("PHOCUS_COVERAGE_BACKEND")
        assert CoverageState(inst).backend == KERNEL

    @settings(max_examples=25)
    @given(
        seed=st.integers(0, 50),
        n_photos=st.integers(6, 28),
        n_subsets=st.integers(2, 7),
        order_seed=st.integers(0, 1000),
    )
    def test_same_add_order_is_bit_identical(
        self, seed, n_photos, n_subsets, order_seed
    ):
        for _, inst in _variants(seed, n_photos=n_photos, n_subsets=n_subsets):
            kernel = CoverageState(inst, backend=KERNEL)
            reference = CoverageState(inst, backend=REFERENCE)
            rng = np.random.default_rng(order_seed)
            order = [int(p) for p in rng.permutation(inst.n)[: inst.n // 2 + 1]]
            for p in order:
                assert kernel.gain(p) == reference.gain(p)
                assert kernel.add(p) == reference.add(p)
                assert kernel.value == reference.value
            for qi in range(len(inst.subsets)):
                assert np.array_equal(
                    kernel.coverage_of(qi), reference.coverage_of(qi)
                )
                assert kernel.subset_value(qi) == reference.subset_value(qi)

    @settings(max_examples=10)
    @given(seed=st.integers(0, 30))
    def test_value_matches_from_scratch_score(self, seed):
        for _, inst in _variants(seed, n_photos=16, n_subsets=5):
            selection = list(range(0, inst.n, 2))
            for backend in (KERNEL, REFERENCE):
                state = CoverageState(inst, selection, backend=backend)
                assert state.value == pytest.approx(
                    score(inst, selection), rel=1e-12
                )

    @settings(max_examples=10)
    @given(seed=st.integers(0, 30), order_seed=st.integers(0, 100))
    def test_all_gains_matches_per_photo_gain(self, seed, order_seed):
        for _, inst in _variants(seed, n_photos=14, n_subsets=4):
            rng = np.random.default_rng(order_seed)
            selection = [int(p) for p in rng.permutation(inst.n)[: inst.n // 3]]
            for backend in (KERNEL, REFERENCE):
                state = CoverageState(inst, selection, backend=backend)
                gains = state.all_gains()
                expected = np.array([state.gain(p) for p in range(inst.n)])
                np.testing.assert_allclose(gains, expected, rtol=1e-12, atol=1e-12)

    def test_gain_cache_add_matches_cold_add(self):
        # add() right after gain() (the CELF select step) replays the
        # cached masks; an add with no preceding gain recomputes.  Both
        # must land in exactly the same state.
        inst = random_instance(4, n_photos=20, n_subsets=5)
        for backend in (KERNEL, REFERENCE):
            warm = CoverageState(inst, backend=backend)
            cold = CoverageState(inst, backend=backend)
            for p in range(0, inst.n, 2):
                g = warm.gain(p)
                assert warm.add(p) == g
                cold.add(p)
            assert warm.value == cold.value
            for qi in range(len(inst.subsets)):
                assert np.array_equal(warm.coverage_of(qi), cold.coverage_of(qi))

    def test_stale_gain_cache_is_not_replayed(self):
        # gain(a); add(b); add(a) — the cached segments for a are stale
        # (computed before b joined) and must be discarded.
        inst = random_instance(5, n_photos=20, n_subsets=5)
        for backend in (KERNEL, REFERENCE):
            state = CoverageState(inst, backend=backend)
            state.gain(0)
            state.add(1)
            state.add(0)
            oracle = CoverageState(inst, [1, 0], backend=REFERENCE)
            assert state.value == oracle.value
            for qi in range(len(inst.subsets)):
                assert np.array_equal(state.coverage_of(qi), oracle.coverage_of(qi))

    def test_copy_is_independent_and_exact(self):
        inst = random_instance(6, n_photos=18, n_subsets=5)
        for backend in (KERNEL, REFERENCE):
            state = CoverageState(inst, [0, 3], backend=backend)
            clone = state.copy()
            assert clone.value == state.value
            clone.add(5)
            assert 5 not in state
            assert state.value == CoverageState(inst, [0, 3], backend=backend).value
            for qi in range(len(inst.subsets)):
                assert np.array_equal(
                    state.coverage_of(qi),
                    CoverageState(inst, [0, 3], backend=backend).coverage_of(qi),
                )


class TestSolverBitIdentity:
    @pytest.mark.parametrize("mode", [UC, CB])
    def test_lazy_greedy_identical_across_backends(self, mode):
        for seed in range(4):
            for _, inst in _variants(seed, n_photos=24, n_subsets=6):
                runs = {}
                for backend in (KERNEL, REFERENCE):
                    state = CoverageState(inst, inst.retained, backend=backend)
                    runs[backend] = lazy_greedy(inst, mode, state=state)
                assert runs[KERNEL].selection == runs[REFERENCE].selection
                assert runs[KERNEL].value == runs[REFERENCE].value
                assert runs[KERNEL].picks == runs[REFERENCE].picks
                assert runs[KERNEL].evaluations == runs[REFERENCE].evaluations

    def test_main_algorithm_identical_across_backends(self, monkeypatch):
        for seed in range(3):
            for _, inst in _variants(seed, n_photos=22, n_subsets=6):
                runs = {}
                for backend in (KERNEL, REFERENCE):
                    monkeypatch.setenv("PHOCUS_COVERAGE_BACKEND", backend)
                    runs[backend] = main_algorithm(inst)
                assert runs[KERNEL].selection == runs[REFERENCE].selection
                assert runs[KERNEL].value == runs[REFERENCE].value
                assert runs[KERNEL].picks == runs[REFERENCE].picks

    @pytest.mark.parametrize("mode", [UC, CB])
    def test_checkpoint_bytes_identical_across_backends(self, mode):
        # Checkpoints embed heap keys (i.e. gain values) and realised
        # picks; backend equality must survive all the way into the CRC32
        # wire encoding or resume proofs would be backend-dependent.
        for seed in range(3):
            for _, inst in _variants(seed, n_photos=24, n_subsets=6):
                encoded = {}
                for backend in (KERNEL, REFERENCE):
                    sink = MemoryCheckpointSink()
                    state = CoverageState(inst, inst.retained, backend=backend)
                    lazy_greedy(
                        inst,
                        mode,
                        state=state,
                        checkpoint_every=2,
                        checkpoint_sink=sink,
                    )
                    encoded[backend] = [encode_record(doc) for doc in sink.docs]
                assert encoded[KERNEL], "expected at least one checkpoint"
                assert encoded[KERNEL] == encoded[REFERENCE]
