"""Tests for the Budgeted Maximum Coverage solver [25]."""

from __future__ import annotations

from itertools import combinations

import numpy as np
import pytest

from repro.core.budgeted_coverage import (
    CoverageProblem,
    greedy_budgeted_coverage,
)
from repro.errors import ValidationError


def _problem(**kwargs):
    defaults = dict(
        item_weights=np.array([1.0, 2.0, 3.0, 4.0]),
        sets=[np.array([0, 1]), np.array([2]), np.array([2, 3]), np.array([0, 3])],
        set_costs=np.array([1.0, 1.0, 2.0, 2.0]),
        budget=3.0,
    )
    defaults.update(kwargs)
    return CoverageProblem(**defaults)


def _exact_optimum(problem: CoverageProblem) -> float:
    best = 0.0
    n = len(problem.sets)
    for r in range(n + 1):
        for combo in combinations(range(n), r):
            if sum(problem.set_costs[list(combo)]) > problem.budget + 1e-12:
                continue
            covered = set()
            for si in combo:
                covered.update(int(i) for i in problem.sets[si])
            best = max(best, sum(problem.item_weights[list(covered)]) if covered else 0.0)
    return best


class TestCoverageProblem:
    def test_normalises_duplicate_items(self):
        p = _problem(sets=[np.array([0, 0, 1]), np.array([2]), np.array([3]), np.array([1])])
        assert list(p.sets[0]) == [0, 1]

    def test_total_weight(self):
        assert _problem().total_weight == pytest.approx(10.0)

    def test_rejects_negative_weights(self):
        with pytest.raises(ValidationError):
            _problem(item_weights=np.array([1.0, -1.0, 0.0, 0.0]))

    def test_rejects_cost_mismatch(self):
        with pytest.raises(ValidationError):
            _problem(set_costs=np.array([1.0]))

    def test_rejects_nonpositive_costs(self):
        with pytest.raises(ValidationError):
            _problem(set_costs=np.array([1.0, 0.0, 1.0, 1.0]))

    def test_rejects_out_of_universe_items(self):
        with pytest.raises(ValidationError):
            _problem(sets=[np.array([9]), np.array([0]), np.array([1]), np.array([2])])

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValidationError):
            _problem(budget=0.0)


class TestGreedyBudgetedCoverage:
    def test_solution_is_feasible(self):
        p = _problem()
        sol = greedy_budgeted_coverage(p)
        assert sol.cost <= p.budget + 1e-12
        assert sol.covered_weight == pytest.approx(
            float(p.item_weights[sol.covered_items].sum())
        )

    def test_simple_instance_optimal(self):
        # Budget 3: set0 {0,1} (cost 1) + set2 {2,3} (cost 2) covers the
        # whole universe for weight 10 — and greedy finds it.
        sol = greedy_budgeted_coverage(_problem())
        assert sol.covered_weight == pytest.approx(10.0)
        assert sol.covered_weight == pytest.approx(_exact_optimum(_problem()))

    @pytest.mark.parametrize("seed", range(10))
    def test_guarantee_against_exact(self, seed):
        rng = np.random.default_rng(seed)
        m, n = 8, 6
        sets = [
            np.sort(rng.choice(m, size=rng.integers(1, 4), replace=False))
            for _ in range(n)
        ]
        p = CoverageProblem(
            item_weights=rng.uniform(0.1, 2.0, size=m),
            sets=sets,
            set_costs=rng.uniform(0.5, 2.0, size=n),
            budget=3.0,
        )
        opt = _exact_optimum(p)
        got = greedy_budgeted_coverage(p).covered_weight
        assert got >= (1 - 1 / np.e) / 2 * opt - 1e-9

    def test_best_single_set_branch(self):
        """One huge expensive set beats density greedy on small sets."""
        p = CoverageProblem(
            item_weights=np.array([1.0, 1.0, 1.0, 1.0, 10.0]),
            sets=[np.array([0]), np.array([1]), np.array([4])],
            set_costs=np.array([0.1, 0.1, 3.0]),
            budget=3.0,
        )
        sol = greedy_budgeted_coverage(p)
        assert sol.covered_weight == pytest.approx(10.0)
        assert sol.chosen == [2]

    def test_coverage_fraction(self):
        sol = greedy_budgeted_coverage(_problem())
        assert sol.coverage_fraction(10.0) == pytest.approx(sol.covered_weight / 10.0)
        assert sol.coverage_fraction(0.0) == 0.0

    def test_unaffordable_sets_are_skipped(self):
        p = _problem(budget=0.5)
        sol = greedy_budgeted_coverage(p)
        assert sol.chosen == []
        assert sol.covered_weight == 0.0
