"""Tests for the HTTP solver service (dispatcher + live server)."""

from __future__ import annotations

import json
import urllib.request

import numpy as np
import pytest

from repro.core.serialize import instance_to_dict
from repro.core.solver import solve
from repro.system.service import PhocusService, handle_request

from tests.conftest import random_instance


def _body(payload) -> bytes:
    return json.dumps(payload).encode("utf-8")


class TestDispatcher:
    def test_health(self):
        status, payload = handle_request("GET", "/health", None)
        assert status == 200
        assert payload["status"] == "ok"

    def test_algorithms(self):
        status, payload = handle_request("GET", "/algorithms", None)
        assert status == 200
        assert "phocus" in payload["algorithms"]

    def test_unknown_route(self):
        status, payload = handle_request("GET", "/nope", None)
        assert status == 404
        assert "error" in payload

    def test_solve_round_trip(self, figure1):
        status, payload = handle_request(
            "POST", "/solve",
            _body({"instance": instance_to_dict(figure1), "certificate": True}),
        )
        assert status == 200
        local = solve(figure1, "phocus", certificate=True)
        assert payload["selection"] == local.selection
        assert payload["value"] == pytest.approx(local.value)
        assert payload["ratio_certificate"] == pytest.approx(local.ratio_certificate)
        assert payload["sparsify"] is None

    def test_solve_with_sparsification(self, small_instance):
        status, payload = handle_request(
            "POST", "/solve",
            _body({"instance": instance_to_dict(small_instance), "tau": 0.5, "seed": 1}),
        )
        assert status == 200
        assert payload["sparsify"]["tau"] == 0.5
        assert payload["sparsify"]["kept_fraction"] <= 1.0
        # Values are reported on the TRUE objective.
        from repro.core.objective import score

        assert payload["value"] == pytest.approx(
            score(small_instance, payload["selection"])
        )

    def test_solve_with_algorithm_choice(self, figure1):
        status, payload = handle_request(
            "POST", "/solve",
            _body({"instance": instance_to_dict(figure1), "algorithm": "greedy-nr"}),
        )
        assert status == 200
        assert payload["algorithm"] == "greedy-nr"

    def test_score_endpoint(self, figure1):
        status, payload = handle_request(
            "POST", "/score",
            _body({"instance": instance_to_dict(figure1), "selection": [0, 5]}),
        )
        assert status == 200
        assert payload["value"] == pytest.approx(
            solve(figure1, "phocus").value, rel=1.0
        )  # sanity: a float came back
        assert payload["feasible"] is True
        assert set(payload["breakdown"]) == {"Bikes", "Cats", "Bookshelf", "Books"}

    def test_empty_body(self):
        status, payload = handle_request("POST", "/solve", b"")
        assert status == 400

    def test_invalid_json(self):
        status, payload = handle_request("POST", "/solve", b"{broken")
        assert status == 400

    def test_non_object_body(self):
        status, payload = handle_request("POST", "/solve", b"[1,2]")
        assert status == 400

    def test_missing_instance(self):
        status, payload = handle_request("POST", "/solve", _body({"algorithm": "phocus"}))
        assert status == 422

    def test_validation_errors_are_422(self, figure1):
        doc = instance_to_dict(figure1)
        doc["budget"] = -1.0
        status, payload = handle_request("POST", "/solve", _body({"instance": doc}))
        assert status == 422
        assert "error" in payload

    def test_unknown_algorithm_is_422(self, figure1):
        status, payload = handle_request(
            "POST", "/solve",
            _body({"instance": instance_to_dict(figure1), "algorithm": "magic"}),
        )
        assert status == 422


class TestLiveServer:
    @pytest.fixture(scope="class")
    def service(self):
        with PhocusService() as svc:
            yield svc

    def _get(self, service, path):
        with urllib.request.urlopen(f"http://{service.address}{path}") as resp:
            return resp.status, json.loads(resp.read())

    def _post(self, service, path, payload):
        req = urllib.request.Request(
            f"http://{service.address}{path}",
            data=_body(payload),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(req) as resp:
            return resp.status, json.loads(resp.read())

    def test_health_over_http(self, service):
        status, payload = self._get(service, "/health")
        assert status == 200
        assert payload["status"] == "ok"

    def test_solve_over_http(self, service, figure1):
        status, payload = self._post(
            service, "/solve", {"instance": instance_to_dict(figure1)}
        )
        assert status == 200
        assert payload["selection"] == [0, 1, 4, 5]
        assert payload["value"] == pytest.approx(13.46)

    def test_concurrent_requests(self, service):
        import concurrent.futures

        instances = [random_instance(seed=s) for s in range(4)]

        def call(inst):
            return self._post(service, "/solve", {"instance": instance_to_dict(inst)})

        with concurrent.futures.ThreadPoolExecutor(4) as pool:
            results = list(pool.map(call, instances))
        for (status, payload), inst in zip(results, instances):
            assert status == 200
            assert payload["value"] == pytest.approx(solve(inst, "phocus").value)

    def test_error_status_over_http(self, service):
        req = urllib.request.Request(
            f"http://{service.address}/solve",
            data=b"{}",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req)
        assert excinfo.value.code == 422

    def test_stop_is_idempotent(self):
        svc = PhocusService().start()
        svc.stop()
        svc.stop()
