"""Tests for the simulated user study (analyst, judge, preference protocol)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.objective import score
from repro.core.solver import solve
from repro.errors import ValidationError
from repro.study.gold import (
    ExpertJudge,
    PreferenceCounts,
    gold_standard,
    run_preference_study,
)
from repro.study.manual import AnalystProfile, ManualOutcome, simulated_analyst

from tests.conftest import random_instance


class TestAnalystProfile:
    def test_validation(self):
        with pytest.raises(ValidationError):
            AnalystProfile(attention_noise=2.0)
        with pytest.raises(ValidationError):
            AnalystProfile(duplicate_awareness=-0.1)
        with pytest.raises(ValidationError):
            AnalystProfile(seconds_per_photo=0.0)


class TestSimulatedAnalyst:
    def test_selection_is_feasible(self, small_instance):
        outcome = simulated_analyst(small_instance, rng=np.random.default_rng(0))
        assert small_instance.feasible(outcome.selection)

    def test_starts_from_retained(self):
        inst = random_instance(seed=7, retained=2)
        outcome = simulated_analyst(inst, rng=np.random.default_rng(0))
        assert inst.retained.issubset(set(outcome.selection))

    def test_time_model_positive_and_consistent(self, small_instance):
        profile = AnalystProfile(seconds_per_photo=4.0, seconds_per_page=90.0)
        outcome = simulated_analyst(small_instance, profile, np.random.default_rng(0))
        floor = (
            outcome.photos_browsed * 4.0 + outcome.pages_visited * 90.0
        )
        assert outcome.seconds == pytest.approx(floor * 1.2)
        assert outcome.hours == pytest.approx(outcome.seconds / 3600)

    def test_deterministic_given_seed(self, small_instance):
        a = simulated_analyst(small_instance, rng=np.random.default_rng(5))
        b = simulated_analyst(small_instance, rng=np.random.default_rng(5))
        assert a.selection == b.selection
        assert a.seconds == b.seconds

    def test_beats_random_usually(self):
        """The analyst is competent: better than random selection on most
        instances (Figure 5g shows them within 15-25% of PHOcus)."""
        wins = 0
        for seed in range(8):
            inst = random_instance(seed=seed, n_photos=20, n_subsets=6)
            analyst = simulated_analyst(inst, rng=np.random.default_rng(seed))
            rand = solve(inst, "rand-a", rng=np.random.default_rng(seed))
            if score(inst, analyst.selection) >= rand.value:
                wins += 1
        assert wins >= 6

    def test_phocus_beats_analyst_usually(self):
        """Figure 5g's shape: PHOcus above the manual solution."""
        wins = 0
        for seed in range(8):
            inst = random_instance(seed=seed, n_photos=20, n_subsets=6)
            analyst = simulated_analyst(inst, rng=np.random.default_rng(seed))
            phocus = solve(inst, "phocus")
            if phocus.value >= score(inst, analyst.selection) - 1e-9:
                wins += 1
        assert wins >= 6

    def test_browses_at_most_all_pages(self, small_instance):
        outcome = simulated_analyst(small_instance, rng=np.random.default_rng(1))
        assert outcome.pages_visited == len(small_instance.subsets)


class TestGoldStandard:
    def test_exact_on_small(self, figure1):
        selection, value = gold_standard(figure1)
        assert value == pytest.approx(13.46)

    def test_sviridenko_fallback(self):
        inst = random_instance(seed=0, n_photos=12, budget_fraction=0.25)
        sel_exact, val_exact = gold_standard(inst, exact_limit=40)
        sel_approx, val_approx = gold_standard(inst, exact_limit=0)
        assert val_approx <= val_exact + 1e-9
        assert val_approx >= (1 - 1 / np.e) * val_exact - 1e-9


class TestExpertJudge:
    def test_clear_winner(self, figure1):
        judge = ExpertJudge(error_rate=0.0, rng=np.random.default_rng(0))
        assert judge.compare(figure1, [0, 1, 4, 5], [6]) == "A"
        assert judge.compare(figure1, [6], [0, 1, 4, 5]) == "B"

    def test_tie_on_identical(self, figure1):
        judge = ExpertJudge(rng=np.random.default_rng(0))
        assert judge.compare(figure1, [0, 5], [0, 5]) == "tie"

    def test_indifference_window(self, figure1):
        judge = ExpertJudge(indifference=0.99, error_rate=0.0, rng=np.random.default_rng(0))
        # Huge indifference window makes everything a tie.
        assert judge.compare(figure1, [0, 1, 4, 5], [6]) == "tie"

    def test_error_rate_flips_sometimes(self, figure1):
        judge = ExpertJudge(error_rate=0.49, rng=np.random.default_rng(0))
        results = {judge.compare(figure1, [0, 1, 4, 5], [6]) for _ in range(100)}
        assert results == {"A", "B"}

    def test_validation(self):
        with pytest.raises(ValidationError):
            ExpertJudge(indifference=1.0)
        with pytest.raises(ValidationError):
            ExpertJudge(error_rate=0.5)


class TestPreferenceStudy:
    def test_counts_sum_to_iterations(self):
        inst = random_instance(seed=0, n_photos=40, n_subsets=8)
        counts = run_preference_study(
            inst, iterations=6, sample_size=20, rng=np.random.default_rng(0)
        )
        assert counts.iterations == 6
        assert set(counts.as_dict()) == {"phocus", "greedy-ncs", "tie"}

    def test_phocus_never_dominated(self):
        """The paper's result shape: PHOcus wins far more often than the
        non-contextual greedy loses to it."""
        inst = random_instance(seed=1, n_photos=50, n_subsets=10)
        counts = run_preference_study(
            inst,
            iterations=10,
            sample_size=25,
            judge=ExpertJudge(error_rate=0.0, rng=np.random.default_rng(1)),
            rng=np.random.default_rng(1),
        )
        assert counts.a_wins >= counts.b_wins

    def test_iterations_guard(self, small_instance):
        with pytest.raises(ValidationError):
            run_preference_study(small_instance, iterations=0)

    def test_preference_counts_helper(self):
        counts = PreferenceCounts(a_wins=35, b_wins=3, ties=12)
        assert counts.iterations == 50
        assert counts.as_dict()["PHOcus"] == 35
