"""Tests for incremental archive maintenance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.objective import score
from repro.core.solver import solve
from repro.errors import ValidationError
from repro.extensions.incremental import (
    extend_selection,
    maintain,
    removal_loss,
    shrink_to_budget,
)

from tests.conftest import random_instance


class TestRemovalLoss:
    def test_matches_score_difference(self, figure1):
        sel = [0, 1, 4, 5]
        for p in sel:
            expected = score(figure1, sel) - score(
                figure1, [x for x in sel if x != p]
            )
            assert removal_loss(figure1, sel, p) == pytest.approx(expected), f"p{p+1}"

    def test_absent_photo_loses_nothing(self, figure1):
        assert removal_loss(figure1, [0, 1], 6) == 0.0

    def test_redundant_photo_cheap_to_remove(self, figure1):
        # With p1 kept, p3 is mostly covered (0.8): removing p3 from
        # {p1, p3} costs less than removing p1.
        sel = [0, 2]
        assert removal_loss(figure1, sel, 2) < removal_loss(figure1, sel, 0)


class TestShrink:
    def test_shrinks_below_budget(self, figure1):
        sel = list(range(7))  # 8.1 Mb
        shrunk = shrink_to_budget(figure1, sel)  # 4 Mb budget
        assert figure1.cost_of(shrunk) <= figure1.budget

    def test_quality_close_to_cold_solve(self):
        for seed in range(5):
            inst = random_instance(seed=seed, n_photos=16, n_subsets=5,
                                   budget_fraction=0.4)
            shrunk = shrink_to_budget(inst, list(range(inst.n)))
            cold = solve(inst, "phocus").value
            assert score(inst, shrunk) >= 0.8 * cold

    def test_never_evicts_retained(self):
        inst = random_instance(seed=7, retained=2, budget_fraction=0.3)
        shrunk = shrink_to_budget(inst, list(range(inst.n)))
        assert inst.retained.issubset(set(shrunk))

    def test_noop_when_already_feasible(self, figure1):
        sel = [0, 1]
        assert shrink_to_budget(figure1, sel) == [0, 1]

    def test_custom_budget(self, figure1):
        shrunk = shrink_to_budget(figure1, list(range(7)), budget=2.0e6)
        assert figure1.cost_of(shrunk) <= 2.0e6

    def test_infeasible_retention(self):
        inst = random_instance(seed=7, retained=2)
        with pytest.raises(ValidationError):
            shrink_to_budget(inst, [], budget=inst.cost_of(inst.retained) * 0.5)


class TestExtend:
    def test_fills_headroom(self, figure1):
        extended = extend_selection(figure1, [0])
        assert len(extended) > 1
        assert figure1.cost_of(extended) <= figure1.budget

    def test_keeps_seed(self, figure1):
        extended = extend_selection(figure1, [6])  # a weak seed
        assert 6 in extended

    def test_rejects_over_budget_seed(self, figure1):
        with pytest.raises(ValidationError):
            extend_selection(figure1, list(range(7)))

    def test_empty_seed_equals_greedy(self, figure1):
        from repro.core.greedy import CB, lazy_greedy

        assert extend_selection(figure1, []) == sorted(
            lazy_greedy(figure1, CB).selection
        )


class TestMaintain:
    def test_budget_shrink_event(self):
        inst = random_instance(seed=3, n_photos=18, n_subsets=5, budget_fraction=0.6)
        previous = solve(inst, "phocus").selection
        tight = inst.with_budget(inst.budget * 0.5)
        result = maintain(tight, previous)
        assert tight.feasible(result.selection)
        assert result.evicted  # something had to go
        cold = solve(tight, "phocus").value
        assert result.value >= 0.85 * cold

    def test_budget_growth_event(self):
        inst = random_instance(seed=4, n_photos=18, n_subsets=5, budget_fraction=0.3)
        previous = solve(inst, "phocus").selection
        roomy = inst.with_budget(inst.budget * 2.0)
        result = maintain(roomy, previous)
        assert result.added
        assert set(previous).issubset(set(result.selection))
        assert result.value >= score(inst, previous)

    def test_new_arrivals_event(self):
        """Photos appended to the archive get considered on maintenance."""
        small = random_instance(seed=5, n_photos=12, n_subsets=4, budget_fraction=0.5)
        previous = solve(small, "phocus").selection
        big = random_instance(seed=5, n_photos=20, n_subsets=6, budget_fraction=0.5)
        # Note: seeds differ in structure; we only need ids 0..11 to exist.
        result = maintain(big, previous)
        assert big.feasible(result.selection)
        cold = solve(big, "phocus").value
        assert result.value >= 0.8 * cold

    def test_stale_ids_dropped(self, figure1):
        result = maintain(figure1, [0, 99])
        assert 99 not in result.selection
        assert figure1.feasible(result.selection)

    def test_result_bookkeeping(self, figure1):
        result = maintain(figure1, [6])
        assert result.value == pytest.approx(score(figure1, result.selection))
        assert set(result.added).isdisjoint({6}) or 6 in result.selection
        assert result.cost == pytest.approx(figure1.cost_of(result.selection))
