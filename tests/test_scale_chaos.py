"""Chaos tests for the fused streamed builder (``scalebuild.*`` sites).

The durability contract: a build killed at any injection point —
mid-verification chunk, before serialisation, or anywhere inside the
atomic write protocol — leaves either the complete instance file or
nothing at all.  No partial instance, no stray temp file, and a clean
retry afterwards succeeds from scratch.
"""

from __future__ import annotations

import glob
import os

import numpy as np
import pytest

from repro import faults
from repro.core.serialize import instance_from_json
from repro.errors import ValidationError
from repro.faults.plan import FaultPlan, ProcessKilled
from repro.scale import (
    build_streamed_instance,
    save_streamed_instance,
    synthetic_archive,
)

CHAOS_SEED = int(os.environ.get("PHOCUS_CHAOS_SEED", "0"))
TAU = 0.6
N_BITS = 64


@pytest.fixture(autouse=True)
def always_disarmed():
    yield
    faults.disarm()


@pytest.fixture(scope="module")
def archive():
    return synthetic_archive(300, dim=8, seed=5)


def _build(archive, **kw):
    costs, emb = archive
    return build_streamed_instance(
        costs, emb, float(costs.sum()) * 0.3, tau=TAU, n_bits=N_BITS, rng=7, **kw
    )


def _no_partial_output(tmp_path):
    assert list(tmp_path.iterdir()) == []


def test_kill_mid_verify_chunk_leaves_no_output(archive, tmp_path):
    plan = FaultPlan(seed=CHAOS_SEED).on("scalebuild.chunk", "kill")
    with faults.armed(plan):
        with pytest.raises(ProcessKilled):
            # Tiny chunks guarantee several chunk boundaries to die at.
            _build(archive, chunk_pairs=256)
    assert plan.fired("scalebuild.chunk") >= 1
    _no_partial_output(tmp_path)

    # A clean retry is unaffected by the earlier crash.
    inst, report = _build(archive)
    assert report.kept_pairs > 0
    path = tmp_path / "archive.json"
    save_streamed_instance(inst, path)
    assert instance_from_json(path.read_text()).n == inst.n


@pytest.mark.parametrize(
    "site", ["scalebuild.flush", "scalebuild.write", "scalebuild.replace"]
)
def test_kill_during_save_leaves_no_partial_file(archive, tmp_path, site):
    inst, _ = _build(archive)
    path = tmp_path / "archive.json"
    plan = FaultPlan(seed=CHAOS_SEED).on(site, "kill")
    with faults.armed(plan):
        with pytest.raises(ProcessKilled):
            save_streamed_instance(inst, path)
    # Neither the target nor any temp file survives the crash.
    assert not path.exists()
    assert glob.glob(str(tmp_path / "*.tmp*")) == []

    # Retrying after the "restart" publishes the complete file.
    nbytes = save_streamed_instance(inst, path)
    assert path.stat().st_size == nbytes
    assert instance_from_json(path.read_text()).n == inst.n


def test_kill_replace_never_tears_previous_version(archive, tmp_path):
    inst, _ = _build(archive)
    path = tmp_path / "archive.json"
    save_streamed_instance(inst, path)
    before = path.read_bytes()

    plan = FaultPlan(seed=CHAOS_SEED).on("scalebuild.replace", "kill")
    with faults.armed(plan):
        with pytest.raises(ProcessKilled):
            save_streamed_instance(inst, path)
    # The crash hit between temp write and rename: the published file is
    # byte-identical to the previous version.
    assert path.read_bytes() == before
    assert glob.glob(str(tmp_path / "*.tmp*")) == []


def test_corrupted_write_never_passes_silently(archive, tmp_path):
    inst, _ = _build(archive)
    path = tmp_path / "archive.json"
    plan = FaultPlan(seed=CHAOS_SEED).on("scalebuild.write", "corrupt")
    with faults.armed(plan):
        save_streamed_instance(inst, path)  # write "succeeds"...
    # ...but one seeded bit was flipped.  Depending on where it landed the
    # load either fails structurally (ValidationError) or yields a
    # document that visibly differs from what was saved — a corrupt save
    # is never mistaken for the original instance.
    from repro.core.serialize import instance_to_dict, instance_to_json

    assert path.read_bytes() != instance_to_json(inst).encode("utf-8")
    try:
        back = instance_from_json(path.read_text(errors="replace"))
    except ValidationError:
        return
    assert instance_to_dict(back) != instance_to_dict(inst)


def test_dropped_fsync_is_silent_without_a_crash(archive, tmp_path):
    inst, _ = _build(archive)
    path = tmp_path / "archive.json"
    plan = FaultPlan(seed=CHAOS_SEED).on("scalebuild.fsync", "drop")
    with faults.armed(plan):
        save_streamed_instance(inst, path)
        assert plan.fired("scalebuild.fsync") == 1
    # No crash followed the dropped fsync, so the file is complete.
    assert instance_from_json(path.read_text()).n == inst.n
