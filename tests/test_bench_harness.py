"""Tests for the shared experiment harness."""

from __future__ import annotations

import pytest

from repro.bench.harness import (
    format_grid,
    ordering_violations,
    run_quality_grid,
)
from repro.datasets.public import generate_public_dataset
from repro.sparsify.pipeline import sparsify_instance


@pytest.fixture(scope="module")
def dataset():
    return generate_public_dataset(80, 12, name="bench-test", seed=0)


@pytest.fixture(scope="module")
def grid(dataset):
    budgets = [dataset.total_cost_mb() * f for f in (0.1, 0.3)]
    return run_quality_grid(
        dataset, budgets, ["rand-a", "greedy-nr", "phocus"], seed=1
    )


class TestRunQualityGrid:
    def test_all_cells_present(self, grid):
        assert len(grid.cells) == 2 * 3
        for budget in grid.budgets:
            for algorithm in grid.algorithms:
                assert grid.value(budget, algorithm) >= 0.0

    def test_series(self, grid):
        series = grid.series("phocus")
        assert len(series) == 2
        # Quality grows with budget (monotone objective + more room).
        assert series[1] >= series[0] - 1e-9

    def test_missing_cell_raises(self, grid):
        with pytest.raises(KeyError):
            grid.value(123.0, "phocus")

    def test_max_value_is_weight_sum(self, grid, dataset):
        inst = dataset.instance(1.0)
        from repro.core.objective import max_score

        assert grid.max_value == pytest.approx(max_score(inst))

    def test_instance_transform_scored_on_true_objective(self, dataset):
        budgets = [dataset.total_cost_mb() * 0.2]
        grid = run_quality_grid(
            dataset,
            budgets,
            ["phocus"],
            instance_transform=lambda inst: sparsify_instance(inst, 0.4)[0],
        )
        cell = grid.cells[0]
        # True-objective score: must be positive and at most the ceiling.
        assert 0 < cell.value <= grid.max_value + 1e-9


class TestFormatting:
    def test_format_contains_all_algorithms(self, grid):
        text = format_grid(grid)
        assert "PHOcus" in text and "G-NR" in text and "RAND" in text
        assert "MB" in text

    def test_relative_format_percentages(self, grid):
        text = format_grid(grid, relative=True)
        assert "%" in text


class TestOrderingViolations:
    def test_expected_order_holds(self, grid):
        violations = ordering_violations(grid, ["phocus", "rand-a"])
        assert violations == []

    def test_detects_violation(self, grid):
        # Reversed expectation must produce violations at every budget.
        violations = ordering_violations(grid, ["rand-a", "phocus"])
        assert len(violations) == len(grid.budgets)

    def test_tolerance_absorbs_near_ties(self, grid):
        assert ordering_violations(grid, ["phocus", "greedy-nr"], tolerance=10.0) == []
