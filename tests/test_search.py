"""Tests for the tokenizer, inverted index, and query-to-subset engine."""

from __future__ import annotations

import pytest

from repro.core.instance import SubsetSpec
from repro.errors import ValidationError
from repro.search.engine import SearchEngine
from repro.search.index import InvertedIndex
from repro.search.tokenizer import STOP_WORDS, tokenize


class TestTokenizer:
    def test_lowercases_and_splits(self):
        assert tokenize("Nike RED Shirt") == ["nike", "red", "shirt"]

    def test_removes_stop_words(self):
        assert tokenize("the cat and the hat") == ["cat", "hat"]

    def test_strips_plurals(self):
        assert tokenize("shirts") == ["shirt"]
        assert tokenize("dresses") == ["dress"]
        assert tokenize("boxes") == ["box"]

    def test_keeps_ss_words(self):
        assert tokenize("dress") == ["dress"]

    def test_strips_ing(self):
        assert tokenize("running") == ["run"]
        assert tokenize("walking") == ["walk"]

    def test_handles_punctuation_and_numbers(self):
        assert tokenize("iphone-13, pro!") == ["iphone", "13", "pro"]

    def test_empty_input(self):
        assert tokenize("") == []
        assert tokenize("   ") == []

    def test_stop_words_is_frozen(self):
        assert "the" in STOP_WORDS
        with pytest.raises(AttributeError):
            STOP_WORDS.add("x")


class TestInvertedIndex:
    def _index(self):
        index = InvertedIndex()
        index.add(0, "black nike shirt")
        index.add(1, "red nike sneakers")
        index.add(2, "black adidas shirt sports shirt")
        index.add(3, "blue jeans")
        return index

    def test_len(self):
        assert len(self._index()) == 4

    def test_exact_phrase_ranks_highest(self):
        hits = self._index().search("black shirt")
        assert hits[0].doc_id in (0, 2)
        ids = [h.doc_id for h in hits]
        assert 3 not in ids

    def test_term_frequency_matters(self):
        # Doc 2 contains "shirt" twice.
        hits = self._index().search("shirt")
        assert hits[0].doc_id == 2

    def test_no_match(self):
        assert self._index().search("zebra") == []

    def test_empty_query(self):
        assert self._index().search("") == []

    def test_empty_index(self):
        assert InvertedIndex().search("anything") == []

    def test_top_k(self):
        hits = self._index().search("nike shirt", top_k=1)
        assert len(hits) == 1

    def test_remove(self):
        index = self._index()
        index.remove(0)
        ids = [h.doc_id for h in index.search("black shirt")]
        assert 0 not in ids
        index.remove(99)  # no-op

    def test_readd_replaces(self):
        index = self._index()
        index.add(0, "green hat")
        assert 0 not in [h.doc_id for h in index.search("black shirt")]
        assert 0 in [h.doc_id for h in index.search("green hat")]

    def test_deterministic_tie_break(self):
        index = InvertedIndex()
        index.add(5, "apple")
        index.add(2, "apple")
        hits = index.search("apple")
        assert [h.doc_id for h in hits] == [2, 5]

    def test_parameter_validation(self):
        with pytest.raises(ValidationError):
            InvertedIndex(k1=-1)
        with pytest.raises(ValidationError):
            InvertedIndex(b=2.0)

    def test_scores_positive_and_sorted(self):
        hits = self._index().search("black nike shirt")
        scores = [h.score for h in hits]
        assert all(s > 0 for s in scores)
        assert scores == sorted(scores, reverse=True)


class TestSearchEngine:
    def _engine(self):
        engine = SearchEngine()
        engine.add_photo(0, "adidas black sports shirt")
        engine.add_photo(1, "nike red running shoes")
        engine.add_photo(2, "adidas white sneakers")
        engine.add_photo(3, "gucci black dress")
        return engine

    def test_register_and_text_of(self):
        engine = self._engine()
        assert engine.text_of(0) == "adidas black sports shirt"
        with pytest.raises(ValidationError):
            engine.text_of(42)

    def test_rejects_empty_text(self):
        with pytest.raises(ValidationError):
            self._engine().add_photo(9, "   ")

    def test_subset_for_query(self):
        result = self._engine().subset_for_query("adidas")
        assert set(result.photo_ids) == {0, 2}
        assert len(result.relevance) == 2
        assert all(r > 0 for r in result.relevance)

    def test_subset_for_unmatched_query_is_empty(self):
        result = self._engine().subset_for_query("samsung tv")
        assert result.photo_ids == []

    def test_to_spec(self):
        result = self._engine().subset_for_query("black")
        spec = result.to_spec(weight=2.5)
        assert isinstance(spec, SubsetSpec)
        assert spec.weight == 2.5
        assert spec.subset_id == "black"

    def test_subsets_for_queries_drops_empty(self):
        specs = self._engine().subsets_for_queries(
            [("adidas", 3.0), ("samsung tv", 1.0), ("black", 2.0)]
        )
        assert [s.subset_id for s in specs] == ["adidas", "black"]
        assert specs[0].weight == 3.0

    def test_top_k_limits_subset(self):
        specs = self._engine().subsets_for_queries([("black", 1.0)], top_k=1)
        assert len(specs[0].members) == 1
