"""Tests for the compression extension (Section 6 future work)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.objective import max_score, score
from repro.core.solver import solve
from repro.errors import ValidationError
from repro.extensions.compression import (
    CompressionLevel,
    deduplicate_variants,
    expand_with_compression,
    selection_summary,
)

from tests.conftest import random_instance


class TestCompressionLevel:
    def test_validation(self):
        with pytest.raises(ValidationError):
            CompressionLevel(fidelity=1.0, size_factor=0.5)
        with pytest.raises(ValidationError):
            CompressionLevel(fidelity=0.8, size_factor=0.0)
        CompressionLevel(fidelity=0.8, size_factor=0.4)  # valid


class TestExpand:
    def test_sizes_and_ids(self, figure1):
        expanded, variants = expand_with_compression(figure1, [(0.8, 0.4)])
        assert expanded.n == 14
        # Originals keep their ids and costs.
        for p in range(7):
            assert expanded.costs[p] == pytest.approx(figure1.costs[p])
            assert variants.is_original(p)
        # Variants cost size_factor of the original.
        for v in range(7, 14):
            origin = variants.origin[v]
            assert expanded.costs[v] == pytest.approx(0.4 * figure1.costs[origin])
            assert not variants.is_original(v)

    def test_original_selection_scores_unchanged(self, figure1):
        """The expansion is conservative: selections of originals score
        exactly as in the base instance."""
        expanded, _ = expand_with_compression(figure1, [(0.8, 0.4)])
        for sel in ([0], [0, 5], [1, 3, 6], list(range(7))):
            assert score(expanded, sel) == pytest.approx(score(figure1, sel))

    def test_variant_covers_its_origin_at_fidelity(self, figure1):
        expanded, variants = expand_with_compression(figure1, [(0.8, 0.4)])
        # Variant of p6 (origin id 5): covers Bookshelf at 0.8 * weight 3.
        v = next(v for v in range(7, 14) if variants.origin[v] == 5)
        from repro.core.objective import score_breakdown

        breakdown = score_breakdown(expanded, [v])
        assert breakdown["Bookshelf"] == pytest.approx(3 * 0.8)
        # And Cats at 1*(0.3*0.4 + 0.4*0.7 + 0.3*1) * 0.8.
        assert breakdown["Cats"] == pytest.approx(0.8 * (0.12 + 0.28 + 0.3))

    def test_variant_cross_coverage_scaled(self, figure1):
        expanded, variants = expand_with_compression(figure1, [(0.5, 0.3)])
        v1 = next(v for v in range(7, 14) if variants.origin[v] == 0)  # p1@0.5
        from repro.core.objective import score_breakdown

        breakdown = score_breakdown(expanded, [v1])
        # p1 covers Bikes at 9*(0.5*1 + 0.3*0.7 + 0.2*0.8) when original;
        # the 0.5-fidelity copy covers everything at half that.
        assert breakdown["Bikes"] == pytest.approx(0.5 * 7.83)

    def test_retained_pins_survive(self):
        inst = random_instance(seed=7, retained=2)
        expanded, _ = expand_with_compression(inst)
        assert expanded.retained == inst.retained

    def test_max_score_unchanged(self, figure1):
        expanded, _ = expand_with_compression(figure1)
        assert max_score(expanded) == pytest.approx(max_score(figure1))

    def test_multiple_levels(self, figure1):
        expanded, variants = expand_with_compression(
            figure1, [(0.9, 0.6), (0.6, 0.25)]
        )
        assert expanded.n == 21
        fidelities = {
            variants.level[v].fidelity for v in range(7, 21)
        }
        assert fidelities == {0.9, 0.6}


class TestCompressionHelps:
    def test_compression_beats_remove_only_under_tight_budget(self):
        """The paper's future-work hypothesis: allowing compression yields
        at least the remove-only quality, and strictly more when the
        budget is tight relative to photo sizes."""
        wins = 0
        for seed in range(6):
            inst = random_instance(seed=seed, n_photos=14, n_subsets=5,
                                   budget_fraction=0.2)
            expanded, _ = expand_with_compression(inst, [(0.85, 0.4)])
            remove_only = solve(inst, "phocus").value
            with_compression = solve(expanded, "phocus").value
            # Greedy is not monotone under ground-set growth; allow a hair
            # of slack but require a strict win on most instances.
            assert with_compression >= 0.98 * remove_only
            if with_compression > remove_only + 1e-9:
                wins += 1
        assert wins >= 4, "compression should strictly help on most tight instances"

    def test_worthless_level_never_hurts(self, figure1):
        # fidelity 0.5 at 90% of the size: the original dominates.
        expanded, _ = expand_with_compression(figure1, [(0.5, 0.9)])
        base = solve(figure1, "phocus").value
        assert solve(expanded, "phocus").value >= 0.98 * base


class TestVariantBookkeeping:
    def test_deduplicate_keeps_best_fidelity(self, figure1):
        expanded, variants = expand_with_compression(figure1, [(0.8, 0.4)])
        v0 = next(v for v in range(7, 14) if variants.origin[v] == 0)
        deduped = deduplicate_variants([0, v0, 5], variants)
        assert deduped == [0, 5]  # original p1 beats its variant

    def test_originals_of(self, figure1):
        expanded, variants = expand_with_compression(figure1, [(0.8, 0.4)])
        v3 = next(v for v in range(7, 14) if variants.origin[v] == 3)
        assert variants.originals_of([0, v3]) == [0, 3]

    def test_selection_summary(self, figure1):
        expanded, variants = expand_with_compression(figure1, [(0.8, 0.4)])
        v0 = next(v for v in range(7, 14) if variants.origin[v] == 0)
        summary = selection_summary([0, 5, v0], variants)
        assert summary == {
            "kept_original": 2,
            "kept_compressed": 1,
            "distinct_photos": 2,
        }
