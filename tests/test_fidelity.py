"""The multi-fidelity subsystem: catalog, exclusive solver, guarantees.

Covers the acceptance criteria of the ``repro.fidelity`` subsystem:

* the exclusive solver selects **at most one variant per photo**, stays
  within budget, and its incremental value agrees with the from-scratch
  :func:`repro.fidelity.solver.fidelity_score` oracle;
* a trivial (originals-only) catalog reproduces the discard-only
  ``lazy_greedy`` **bit for bit** — selection, value, cost, picks, and
  evaluation count — for both UC and CB;
* ``fidelity_main`` preserves the ``(1 − 1/e)/2``-style approximation
  against the brute-forced exclusive optimum on small instances across
  seeds × budgets;
* the exclusive value dominates the flat-expansion cross-check oracle
  (``expand_with_compression`` + ``deduplicate_variants``), and the
  sparse expansion path is bit-identical to the dense one;
* variant instances round-trip through serialization (float32 and
  float64) and non-variant blobs stay back-compatible.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.greedy import CB, UC, lazy_greedy, main_algorithm
from repro.core.instance import DenseSimilarity, PARInstance, PredefinedSubset
from repro.core.serialize import instance_from_json, instance_to_json
from repro.errors import ValidationError
from repro.extensions.compression import (
    deduplicate_variants,
    expand_with_compression,
)
from repro.fidelity import (
    DEFAULT_TIERS,
    VariantCatalog,
    budget_frontier,
    exclusive_lazy_greedy,
    fidelity_main,
    fidelity_score,
)
from repro.scale import build_streamed_instance, synthetic_archive

LEVELS = [(0.85, 0.45), (0.6, 0.22)]


def _archive(n, *, frac, seed, tau=0.5, noise=0.7, dtype=np.float64):
    costs, emb = synthetic_archive(n, dim=8, noise=noise, seed=seed)
    total = float(costs.sum())
    instance, _ = build_streamed_instance(
        costs, emb, total * frac, tau=tau, rng=seed, dtype=dtype
    )
    return instance


# ---------------------------------------------------------------- catalog


class TestVariantCatalog:
    def test_default_menu_shape(self):
        cat = VariantCatalog.default([10.0, 4.0])
        assert cat.n_photos == 2
        assert cat.n_variants == 2 * (1 + len(DEFAULT_TIERS))
        assert cat.tier[:3] == ["original", "q85", "q60"]
        # Slot 0 is the original; fidelity and cost strictly decrease.
        assert cat.fidelity[cat.original_of(0)] == 1.0
        assert list(cat.photo_of) == [0, 0, 0, 1, 1, 1]

    def test_from_levels_sorts_best_first(self):
        a = VariantCatalog.from_levels([8.0], LEVELS)
        b = VariantCatalog.from_levels([8.0], list(reversed(LEVELS)))
        assert np.array_equal(a.fidelity, b.fidelity)
        assert np.array_equal(a.cost, b.cost)

    def test_trivial_is_discard_only(self):
        cat = VariantCatalog.trivial([3.0, 5.0, 7.0])
        assert cat.is_trivial()
        assert cat.n_variants == 3
        assert all(t == "original" for t in cat.tier)

    def test_rejects_dominated_variant(self):
        # Lower fidelity at equal cost: dominated, must be rejected.
        with pytest.raises(ValidationError, match="strictly decrease"):
            VariantCatalog(
                np.array([0, 2]),
                np.array([10.0, 10.0]),
                np.array([1.0, 0.8]),
                ["original", "q80"],
            )

    def test_rejects_missing_original(self):
        with pytest.raises(ValidationError, match="slot 0"):
            VariantCatalog(
                np.array([0, 1]),
                np.array([10.0]),
                np.array([0.9]),
                ["q90"],
            )

    def test_rejects_out_of_range_fidelity(self):
        with pytest.raises(ValidationError, match="fidelity"):
            VariantCatalog.from_levels([10.0], [(1.5, 0.5)])

    def test_round_trip(self):
        cat = VariantCatalog.from_levels([10.0, 4.0, 2.5], LEVELS)
        back = VariantCatalog.from_dict(cat.to_dict())
        assert np.array_equal(back.indptr, cat.indptr)
        assert np.array_equal(back.cost, cat.cost)
        assert np.array_equal(back.fidelity, cat.fidelity)
        assert back.tier == cat.tier

    def test_from_dict_rejects_unknown_format(self):
        doc = VariantCatalog.trivial([1.0]).to_dict()
        doc["format"] = 99
        with pytest.raises(ValidationError, match="format"):
            VariantCatalog.from_dict(doc)

    def test_describe_selection(self):
        cat = VariantCatalog.default([10.0, 4.0, 2.0])
        chosen = {0: cat.original_of(0), 1: cat.original_of(1) + 1}
        report = cat.describe_selection(chosen)
        assert report["kept"] == 2 and report["dropped"] == 1
        assert report["kept_original"] == 1 and report["recompressed"] == 1
        assert report["by_tier"] == {"original": 1, "q85": 1}
        assert report["mean_fidelity"] == pytest.approx((1.0 + 0.85) / 3)


# ----------------------------------------------------- degradation contract


@pytest.mark.parametrize("mode", [UC, CB])
def test_trivial_catalog_reproduces_lazy_greedy_bit_for_bit(mode):
    instance = _archive(150, frac=0.2, seed=3)
    catalog = VariantCatalog.trivial(instance.costs)
    base = lazy_greedy(instance, mode)
    excl = exclusive_lazy_greedy(instance, catalog, mode)
    assert excl.selection == base.selection
    assert excl.value == base.value
    assert excl.cost == base.cost
    assert excl.evaluations == base.evaluations
    assert excl.picks == base.picks
    assert excl.upgrades == []


def test_trivial_catalog_fidelity_main_matches_main_algorithm():
    instance = _archive(150, frac=0.2, seed=4)
    catalog = VariantCatalog.trivial(instance.costs)
    base = main_algorithm(instance)
    excl = fidelity_main(instance, catalog)
    assert excl.selection == base.selection
    assert excl.value == base.value
    assert excl.mode == base.mode
    assert excl.evaluations == base.evaluations


# -------------------------------------------------- solver core properties


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("frac", [0.1, 0.3])
def test_exclusive_choice_feasibility_and_oracle(seed, frac):
    instance = _archive(120, frac=frac, seed=seed)
    catalog = VariantCatalog.default(instance.costs)
    run = fidelity_main(instance, catalog)

    # At most one variant per photo, each owned by its photo.
    for p, vid in run.chosen.items():
        assert catalog.indptr[p] <= vid < catalog.indptr[p + 1]
    assert len(run.chosen) == len(set(run.chosen))

    spent = float(sum(catalog.cost[v] for v in run.chosen.values()))
    assert spent == pytest.approx(run.cost)
    assert spent <= instance.budget * (1 + 1e-12)

    # The incrementally tracked value agrees with the scratch oracle.
    assert run.value == pytest.approx(
        fidelity_score(instance, catalog, run.chosen), rel=1e-9
    )


def test_retained_photos_stay_at_original_rendition():
    costs, emb = synthetic_archive(60, dim=8, noise=0.7, seed=9)
    total = float(costs.sum())
    instance, _ = build_streamed_instance(
        costs, emb, total * 0.2, tau=0.5, rng=9, retained=[0, 7]
    )
    catalog = VariantCatalog.default(instance.costs)
    run = fidelity_main(instance, catalog)
    for p in (0, 7):
        assert run.chosen[p] == catalog.original_of(p)


def test_in_drain_upgrades_never_hurt():
    for seed in (0, 1, 2):
        instance = _archive(120, frac=0.25, seed=seed)
        catalog = VariantCatalog.default(instance.costs)
        with_up = fidelity_main(instance, catalog, upgrade=True)
        without = fidelity_main(instance, catalog, upgrade=False)
        assert with_up.value >= without.value - 1e-12


def test_solver_rejects_mismatched_catalog():
    instance = _archive(50, frac=0.2, seed=1)
    catalog = VariantCatalog.default(instance.costs[:-1])
    with pytest.raises(ValidationError, match="catalog covers"):
        exclusive_lazy_greedy(instance, catalog)


# ------------------------------------------------- approximation guarantee


def _brute_force_opt(instance, catalog):
    """Exhaustive exclusive optimum: per photo pick a variant or drop."""
    menus = [
        [None] + list(catalog.variants_of(p)) for p in range(instance.n)
    ]
    best = 0.0
    for combo in itertools.product(*menus):
        chosen = {p: v for p, v in enumerate(combo) if v is not None}
        cost = float(sum(catalog.cost[v] for v in chosen.values()))
        if cost > instance.budget * (1 + 1e-12):
            continue
        best = max(best, fidelity_score(instance, catalog, chosen))
    return best


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("frac", [0.25, 0.5])
def test_approximation_guarantee_vs_brute_force(seed, frac):
    instance = _archive(7, frac=frac, seed=seed, tau=0.1)
    catalog = VariantCatalog.from_levels(instance.costs, [(0.85, 0.45)])
    opt = _brute_force_opt(instance, catalog)
    run = fidelity_main(instance, catalog)
    # Algorithm 1's bound, lifted to the exclusive ground set.
    assert run.value >= (1 - 1 / np.e) / 2 * opt - 1e-9


# -------------------------------------------------------- frontier sweeps


def test_budget_frontier_shape_and_dominance_fields():
    instance = _archive(100, frac=1.0, seed=2)
    total = float(instance.costs.sum())
    catalog = VariantCatalog.default(instance.costs)
    doc = budget_frontier(instance, catalog, [total * 0.3, total * 0.1])
    assert doc["budgets"] == sorted(doc["budgets"])
    assert len(doc["points"]) == 2
    for point in doc["points"]:
        assert point["frontier_value"] == max(
            point["fidelity_value"], point["discard_value"]
        )
        assert point["weakly_dominates"] in (True, False)
    assert set(doc["checks"]) == {"weakly_dominates_all", "strict_points"}


def test_budget_frontier_rejects_empty_and_nonpositive():
    instance = _archive(30, frac=0.5, seed=0)
    catalog = VariantCatalog.trivial(instance.costs)
    with pytest.raises(ValidationError):
        budget_frontier(instance, catalog, [])
    with pytest.raises(ValidationError):
        budget_frontier(instance, catalog, [0.0])


# ------------------------------------- flat-expansion cross-check oracle


def _flat_to_exclusive(dedup, vmap, catalog):
    """Map a deduplicated flat selection onto catalog variant ids."""
    chosen = {}
    for v in dedup:
        p = vmap.origin[v]
        if vmap.is_original(v):
            chosen[p] = catalog.original_of(p)
        else:
            fid = vmap.level[v].fidelity
            chosen[p] = next(
                k
                for k in catalog.variants_of(p)
                if catalog.fidelity[k] == fid
            )
    return chosen


@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("frac", [0.1, 0.3])
def test_exclusive_value_dominates_flat_expansion(seed, frac):
    instance = _archive(60, frac=frac, seed=seed, tau=0.4, noise=0.6)
    catalog = VariantCatalog.from_levels(instance.costs, LEVELS)

    expanded, vmap = expand_with_compression(instance, LEVELS)
    flat = main_algorithm(expanded)
    dedup = deduplicate_variants(flat.selection, vmap)
    flat_value = fidelity_score(
        instance, catalog, _flat_to_exclusive(dedup, vmap, catalog)
    )

    run = fidelity_main(instance, catalog)
    assert run.value >= flat_value - 1e-9


def test_sparse_expansion_matches_dense_expansion():
    instance = _archive(50, frac=0.25, seed=6, tau=0.4, noise=0.6)
    subset = instance.subsets[0]
    assert subset.similarity.is_sparse

    indptr, cols, vals = subset.similarity.csr()
    m = len(subset)
    dense = np.zeros((m, m))
    for i in range(m):
        dense[i, cols[indptr[i] : indptr[i + 1]]] = vals[
            indptr[i] : indptr[i + 1]
        ]
    dense_instance = PARInstance(
        list(instance.photos),
        [
            PredefinedSubset(
                subset.subset_id,
                subset.weight,
                list(subset.members),
                list(subset.relevance),
                DenseSimilarity(dense),
                normalize=False,
            )
        ],
        instance.budget,
        retained=instance.retained,
    )

    exp_sparse, _ = expand_with_compression(instance, LEVELS)
    exp_dense, _ = expand_with_compression(dense_instance, LEVELS)
    assert exp_sparse.subsets[0].similarity.is_sparse
    run_sparse = main_algorithm(exp_sparse)
    run_dense = main_algorithm(exp_dense)
    assert run_sparse.selection == run_dense.selection
    assert run_sparse.value == pytest.approx(run_dense.value, abs=1e-12)


def test_sparse_expansion_preserves_dtype():
    instance = _archive(40, frac=0.25, seed=5, dtype=np.float32)
    expanded, _ = expand_with_compression(instance, LEVELS)
    sim = expanded.subsets[0].similarity
    assert sim.is_sparse
    assert sim.csr()[2].dtype == np.float32


# ------------------------------------------------------------- serialize


@pytest.mark.parametrize("dtype", [np.float64, np.float32])
def test_variant_instance_round_trips(dtype):
    instance = _archive(60, frac=0.2, seed=8, dtype=dtype)
    instance.variants = VariantCatalog.default(instance.costs)

    back = instance_from_json(instance_to_json(instance))
    assert back.variants is not None
    assert np.array_equal(back.variants.indptr, instance.variants.indptr)
    assert np.array_equal(back.variants.cost, instance.variants.cost)
    assert np.array_equal(back.variants.fidelity, instance.variants.fidelity)
    assert back.variants.tier == instance.variants.tier

    # The round-tripped instance solves to the same exclusive choices.
    a = fidelity_main(instance, instance.variants)
    b = fidelity_main(back, back.variants)
    assert a.chosen == b.chosen
    assert a.value == pytest.approx(b.value, rel=1e-12)


def test_non_variant_blob_stays_back_compatible():
    instance = _archive(40, frac=0.2, seed=8)
    text = instance_to_json(instance)
    assert '"variants"' not in text
    back = instance_from_json(text)
    assert back.variants is None


def test_instance_rejects_mismatched_variants():
    instance = _archive(40, frac=0.2, seed=8)
    with pytest.raises(ValidationError, match="variant"):
        PARInstance(
            list(instance.photos),
            list(instance.subsets),
            instance.budget,
            variants=VariantCatalog.trivial(instance.costs[:-1]),
        )


def test_with_budget_carries_variants():
    instance = _archive(40, frac=0.5, seed=8)
    instance.variants = VariantCatalog.default(instance.costs)
    smaller = instance.with_budget(instance.budget * 0.5)
    assert smaller.variants is instance.variants
