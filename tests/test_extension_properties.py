"""Property-based tests for the compression and maintenance extensions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.objective import max_score, score
from repro.core.solver import solve
from repro.extensions.compression import expand_with_compression
from repro.extensions.incremental import (
    extend_selection,
    maintain,
    removal_loss,
    shrink_to_budget,
)

from tests.conftest import random_instance

_INSTANCES = [random_instance(seed=s, n_photos=12, n_subsets=4) for s in range(4)]
instances = st.sampled_from(_INSTANCES)
levels = st.tuples(
    st.floats(0.3, 0.95, allow_nan=False), st.floats(0.1, 0.9, allow_nan=False)
).filter(lambda fs: fs[1] < fs[0])  # useful levels: cheaper than faithful


@settings(max_examples=30, deadline=None)
@given(inst=instances, level=levels)
def test_compression_preserves_original_scores(inst, level):
    """Original-only selections score identically after expansion."""
    expanded, _ = expand_with_compression(inst, [level])
    rng = np.random.default_rng(0)
    sel = sorted(int(p) for p in rng.choice(inst.n, size=inst.n // 2, replace=False))
    assert score(expanded, sel) == pytest.approx(score(inst, sel))


@settings(max_examples=30, deadline=None)
@given(inst=instances, level=levels)
def test_compression_rarely_hurts_greedy(inst, level):
    """The *optimum* of the expanded instance dominates the original's
    (originals remain available), but greedy is not monotone under
    ground-set growth — extra variants can divert its path slightly.
    The property that must hold: no visible regression."""
    expanded, _ = expand_with_compression(inst, [level])
    assert solve(expanded, "phocus").value >= 0.95 * solve(inst, "phocus").value


@settings(max_examples=30, deadline=None)
@given(inst=instances, level=levels)
def test_compression_keeps_ceiling(inst, level):
    expanded, _ = expand_with_compression(inst, [level])
    assert max_score(expanded) == pytest.approx(max_score(inst))


@settings(max_examples=30, deadline=None)
@given(inst=instances, frac=st.floats(0.2, 0.9))
def test_shrink_always_feasible_and_loss_bounded(inst, frac):
    target = inst.total_cost() * frac
    if inst.cost_of(inst.retained) > target:
        return
    shrunk = shrink_to_budget(inst, list(range(inst.n)), budget=target)
    assert inst.cost_of(shrunk) <= target * (1 + 1e-9)
    assert inst.retained.issubset(set(shrunk))


@settings(max_examples=30, deadline=None)
@given(inst=instances)
def test_removal_loss_is_exact(inst):
    sel = list(range(0, inst.n, 2))
    for p in sel[:4]:
        expected = score(inst, sel) - score(inst, [x for x in sel if x != p])
        assert removal_loss(inst, sel, p) == pytest.approx(expected)


@settings(max_examples=30, deadline=None)
@given(inst=instances)
def test_maintain_always_feasible_and_at_least_as_good_as_seed(inst):
    rng = np.random.default_rng(1)
    seed_sel = sorted(
        int(p) for p in rng.choice(inst.n, size=inst.n // 3, replace=False)
    )
    result = maintain(inst, seed_sel)
    assert inst.feasible(result.selection)
    # Maintenance shrinks only when over budget; when under budget the
    # extension pass can only add value over the (feasible part of) seed.
    feasible_seed = shrink_to_budget(inst, seed_sel)
    assert result.value >= score(inst, feasible_seed) - 1e-9


@settings(max_examples=30, deadline=None)
@given(inst=instances)
def test_extend_is_monotone_on_value(inst):
    base = extend_selection(inst, [])
    assert score(inst, base) >= 0.0
    assert inst.feasible(base)
