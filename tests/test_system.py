"""Tests for the end-to-end PHOcus pipeline (Figure 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.instance import Photo
from repro.core.objective import score
from repro.errors import ConfigurationError, ValidationError
from repro.images.exif import synthesize_event_exif
from repro.system.phocus import (
    ArchiveReport,
    DataRepresentationModule,
    PHOcus,
    PhocusConfig,
)

from tests.conftest import random_instance


def _photos_with_embeddings(n=10, seed=0):
    rng = np.random.default_rng(seed)
    emb = rng.standard_normal((n, 8))
    emb /= np.linalg.norm(emb, axis=1, keepdims=True)
    photos = [Photo(photo_id=i, cost=float(rng.uniform(0.5, 2.0))) for i in range(n)]
    return photos, emb


class TestConfig:
    def test_tau_validation(self):
        with pytest.raises(ConfigurationError):
            PhocusConfig(tau=1.5)

    def test_defaults(self):
        config = PhocusConfig()
        assert config.algorithm == "phocus"
        assert config.tau == 0.0


class TestDataRepresentationModule:
    def test_from_tags_uniform_relevance(self):
        photos, emb = _photos_with_embeddings()
        module = DataRepresentationModule()
        inst = module.from_tags(
            photos, emb, {"beach": [0, 1, 2], "city": [3, 4]}, budget=5.0
        )
        assert len(inst.subsets) == 2
        beach = next(q for q in inst.subsets if q.subset_id == "beach")
        assert beach.relevance == pytest.approx([1 / 3] * 3)

    def test_from_tags_with_weights_and_relevance(self):
        photos, emb = _photos_with_embeddings()
        module = DataRepresentationModule()
        inst = module.from_tags(
            photos, emb, {"beach": [0, 1]}, budget=5.0,
            weights={"beach": 4.0}, relevance={"beach": [3.0, 1.0]},
        )
        q = inst.subsets[0]
        assert q.weight == 4.0
        assert q.relevance == pytest.approx([0.75, 0.25])

    def test_from_tags_skips_empty(self):
        photos, emb = _photos_with_embeddings()
        module = DataRepresentationModule()
        inst = module.from_tags(photos, emb, {"a": [0, 1], "b": []}, budget=5.0)
        assert [q.subset_id for q in inst.subsets] == ["a"]

    def test_empty_input_rejected(self):
        photos, emb = _photos_with_embeddings()
        with pytest.raises(ValidationError):
            DataRepresentationModule().from_tags(photos, emb, {}, budget=5.0)

    def test_from_queries(self):
        photos, emb = _photos_with_embeddings(4)
        texts = {0: "paris eiffel tower", 1: "paris louvre", 2: "beach sunset", 3: "dog park"}
        module = DataRepresentationModule()
        inst = module.from_queries(
            photos, emb, texts, [("paris vacation", 2.0), ("beach", 1.0)], budget=4.0
        )
        ids = {q.subset_id for q in inst.subsets}
        assert ids == {"paris vacation", "beach"}
        paris = next(q for q in inst.subsets if q.subset_id == "paris vacation")
        assert set(int(m) for m in paris.members) == {0, 1}
        assert paris.weight == 2.0

    def test_from_metadata_labels_and_exif(self):
        rng = np.random.default_rng(0)
        exif = synthesize_event_exif(4, rng)
        photos = [
            Photo(0, 1.0, metadata={"labels": ["cat"], "exif": exif[0]}),
            Photo(1, 1.0, metadata={"labels": ["cat", "sofa"], "exif": exif[1]}),
            Photo(2, 1.0, metadata={"labels": ["sofa"], "exif": exif[2]}),
            Photo(3, 1.0, metadata={"labels": ["cat"], "exif": exif[3]}),
        ]
        emb = rng.standard_normal((4, 6))
        inst = DataRepresentationModule().from_metadata(photos, emb, budget=4.0)
        ids = {q.subset_id for q in inst.subsets}
        assert "cat" in ids and "sofa" in ids
        # One shooting event -> a shared day bucket subset.
        assert any(i.startswith("20") for i in ids)
        assert any(i.startswith("geo:") for i in ids)

    def test_from_metadata_exif_dict_form(self):
        rng = np.random.default_rng(0)
        photos = [
            Photo(0, 1.0, metadata={"exif": {"timestamp": "2022-03-01T10:00:00"}}),
            Photo(1, 1.0, metadata={"exif": {"timestamp": "2022-03-01T11:00:00"}}),
        ]
        emb = rng.standard_normal((2, 4))
        inst = DataRepresentationModule().from_metadata(photos, emb, budget=2.0)
        assert [q.subset_id for q in inst.subsets] == ["2022-03-01"]

    def test_from_metadata_weights_by_size(self):
        rng = np.random.default_rng(1)
        photos = [
            Photo(0, 1.0, metadata={"labels": ["big", "small"]}),
            Photo(1, 1.0, metadata={"labels": ["big"]}),
            Photo(2, 1.0, metadata={"labels": ["big", "small"]}),
        ]
        emb = rng.standard_normal((3, 4))
        inst = DataRepresentationModule().from_metadata(photos, emb, budget=3.0)
        by_id = {q.subset_id: q for q in inst.subsets}
        assert by_id["big"].weight == 3.0
        assert by_id["small"].weight == 2.0


class TestPHOcusPipeline:
    def test_basic_run(self, small_instance):
        report = PHOcus().run(small_instance)
        assert isinstance(report, ArchiveReport)
        sol = report.solution
        assert small_instance.feasible(sol.selection)
        assert sol.value == pytest.approx(score(small_instance, sol.selection))
        assert report.retained_count + report.archived_count == small_instance.n
        assert sum(report.subset_scores.values()) == pytest.approx(sol.value)

    def test_certificate(self, small_instance):
        report = PHOcus(PhocusConfig(certificate=True)).run(small_instance)
        assert report.optimum_upper_bound is not None
        assert report.optimum_upper_bound >= report.solution.value - 1e-9
        assert 0 < report.solution.ratio_certificate <= 1.0

    def test_no_certificate(self, small_instance):
        report = PHOcus(PhocusConfig(certificate=False)).run(small_instance)
        assert report.optimum_upper_bound is None
        assert report.solution.ratio_certificate is None

    def test_sparsified_run_reports_true_objective(self, small_instance):
        report = PHOcus(PhocusConfig(tau=0.5, seed=1)).run(small_instance)
        assert report.sparsify is not None
        assert report.sparsify.tau == 0.5
        assert report.sparsification_guarantee is not None
        # The reported value must be the TRUE score, not the sparsified one.
        assert report.solution.value == pytest.approx(
            score(small_instance, report.solution.selection)
        )

    def test_lsh_sparsified_run(self, small_instance):
        config = PhocusConfig(tau=0.5, sparsify_method="lsh", seed=3)
        report = PHOcus(config).run(small_instance)
        assert report.sparsify.method == "lsh"
        assert small_instance.feasible(report.solution.selection)

    def test_sparsification_loss_is_small(self, small_instance):
        dense = PHOcus(PhocusConfig(certificate=False)).run(small_instance)
        sparse = PHOcus(PhocusConfig(tau=0.3, certificate=False, seed=0)).run(small_instance)
        assert sparse.solution.value >= 0.75 * dense.solution.value

    def test_worst_covered_subsets(self, small_instance):
        report = PHOcus().run(small_instance)
        worst = report.worst_covered_subsets
        assert len(worst) <= 5
        values = [v for _, v in worst]
        assert values == sorted(values)

    def test_alternative_algorithm(self, small_instance):
        report = PHOcus(PhocusConfig(algorithm="greedy-nr", certificate=False)).run(
            small_instance
        )
        assert report.solution.algorithm == "greedy-nr"
