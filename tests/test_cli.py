"""Tests for the phocus command-line interface."""

from __future__ import annotations

import pytest

from repro.datasets.io import save_dataset
from repro.datasets.public import generate_public_dataset
from repro.system.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve", "--dataset", "P-1K"])
        assert args.algorithm == "phocus"
        assert args.tau == 0.0
        assert args.scale == 0.1

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--dataset", "P-1K", "--algorithm", "magic"])


class TestCommands:
    def test_datasets_lists_table2(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "P-100K" in out
        assert "EC-Fashion" in out

    def test_demo_prints_figure3_trace(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "pick p1" in out
        assert "7.830" in out
        assert "objective value" in out

    def test_solve_named_dataset(self, capsys):
        code = main(
            [
                "solve", "--dataset", "P-1K", "--scale", "0.05",
                "--budget-mb", "10", "--tau", "0.5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "algorithm            : phocus" in out
        assert "sparsification" in out

    def test_solve_dataset_file(self, tmp_path, capsys):
        ds = generate_public_dataset(40, 8, seed=1)
        path = tmp_path / "ds.json"
        save_dataset(ds, path)
        code = main(
            ["solve", "--dataset-file", str(path), "--budget-fraction", "0.2",
             "--no-certificate"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "objective value" in out
        assert "certificate" not in out.split("least-covered")[0].split("solve time")[1]

    def test_solve_requires_exactly_one_source(self, capsys):
        assert main(["solve"]) == 2
        assert main(["solve", "--dataset", "P-1K", "--dataset-file", "x.json"]) == 2

    def test_solve_default_budget_note(self, capsys):
        code = main(["solve", "--dataset", "P-1K", "--scale", "0.05"])
        assert code == 0
        assert "defaulting to 10%" in capsys.readouterr().out

    def test_solve_with_compression(self, capsys):
        code = main(
            ["solve", "--dataset", "P-1K", "--scale", "0.05",
             "--budget-fraction", "0.1", "--compress", "--no-certificate"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "compression" in out
        assert "compressed renditions" in out

    def test_compare_prints_grid(self, capsys):
        code = main(
            ["compare", "--dataset", "P-1K", "--scale", "0.05",
             "--budget-fractions", "0.1,0.3",
             "--algorithms", "rand-a,phocus"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "PHOcus" in out and "RAND" in out
        assert "maximum attainable score" in out

    def test_compare_rejects_unknown_algorithm(self, capsys):
        code = main(
            ["compare", "--dataset", "P-1K", "--scale", "0.05",
             "--algorithms", "rand-a,wizardry"]
        )
        assert code == 2
