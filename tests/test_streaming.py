"""Tests for the streaming PAR extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.objective import score
from repro.core.solver import solve
from repro.errors import ValidationError
from repro.extensions.streaming import StreamingArchiver, stream_solve

from tests.conftest import random_instance


class TestStreamingArchiver:
    def test_offer_counts_arrivals(self, figure1):
        archiver = StreamingArchiver(figure1)
        archiver.offer(0)
        archiver.offer(1)
        assert archiver.arrived == 2

    def test_rejects_unknown_photo(self, figure1):
        archiver = StreamingArchiver(figure1)
        with pytest.raises(ValidationError):
            archiver.offer(99)

    def test_invalid_epsilon(self, figure1):
        with pytest.raises(ValidationError):
            StreamingArchiver(figure1, epsilon=0.0)

    def test_solution_always_feasible(self, figure1):
        archiver = StreamingArchiver(figure1)
        for p in range(7):
            archiver.offer(p)
            sel, _ = archiver.current_solution()
            assert figure1.feasible(sel)

    def test_retained_always_accepted(self):
        inst = random_instance(seed=7, retained=2)
        archiver = StreamingArchiver(inst)
        for p in range(inst.n):
            archiver.offer(p)
        sel, _ = archiver.current_solution()
        assert inst.retained.issubset(set(sel))

    def test_value_matches_selection(self, figure1):
        sel, val = stream_solve(figure1)
        assert val == pytest.approx(score(figure1, sel))

    def test_candidate_count_bounded(self):
        inst = random_instance(seed=1, n_photos=30, n_subsets=6)
        archiver = StreamingArchiver(inst, epsilon=0.25)
        for p in range(inst.n):
            archiver.offer(p)
        # O(log(n)/epsilon) candidates, far below one per photo.
        assert archiver.candidates < inst.n


class TestStreamQuality:
    @pytest.mark.parametrize("seed", range(4))
    def test_reasonable_fraction_of_offline(self, seed):
        inst = random_instance(seed=seed, n_photos=20, n_subsets=6)
        offline = solve(inst, "phocus").value
        _, streamed = stream_solve(inst, epsilon=0.15)
        assert streamed >= 0.5 * offline

    def test_better_than_random_on_average(self):
        better = 0
        for seed in range(5):
            inst = random_instance(seed=seed, n_photos=24, n_subsets=6)
            _, streamed = stream_solve(inst, epsilon=0.2)
            rng = np.random.default_rng(seed)
            random_val = score(
                inst, solve(inst, "rand-a", rng=rng).selection
            )
            if streamed >= random_val:
                better += 1
        assert better >= 4

    def test_order_insensitivity_reasonable(self):
        """Different arrival orders may change the result, but not wildly."""
        inst = random_instance(seed=3, n_photos=20, n_subsets=6)
        values = []
        for perm_seed in range(4):
            order = np.random.default_rng(perm_seed).permutation(inst.n)
            _, val = stream_solve(inst, arrival_order=order, epsilon=0.15)
            values.append(val)
        assert min(values) >= 0.6 * max(values)

    def test_smaller_epsilon_not_worse_on_average(self):
        total_fine = total_coarse = 0.0
        for seed in range(4):
            inst = random_instance(seed=seed, n_photos=20, n_subsets=5)
            _, fine = stream_solve(inst, epsilon=0.1)
            _, coarse = stream_solve(inst, epsilon=0.8)
            total_fine += fine
            total_coarse += coarse
        assert total_fine >= total_coarse * 0.95

    def test_partial_stream_monotone(self, figure1):
        """The held solution's value never decreases as photos arrive."""
        archiver = StreamingArchiver(figure1)
        last = 0.0
        for p in range(7):
            archiver.offer(p)
            _, val = archiver.current_solution()
            assert val >= last - 1e-9
            last = val
