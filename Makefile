# Development entry points for the PHOcus reproduction.

.PHONY: install test bench examples results clean

install:
	python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f > /dev/null || exit 1; done
	@echo "all examples ran cleanly"

results:
	@cat benchmarks/results/*.txt

clean:
	rm -rf build dist src/*.egg-info .pytest_cache benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
