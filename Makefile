# Development entry points for the PHOcus reproduction.
#
# Targets export PYTHONPATH=src so they match the tier-1 verify command
# and work on a fresh clone without `make install`.

.PHONY: install test bench examples chaos results clean

PYTHONPATH_SRC = PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH}

install:
	python setup.py develop

test:
	$(PYTHONPATH_SRC) python -m pytest -x -q tests/

bench:
	$(PYTHONPATH_SRC) python -m pytest benchmarks/ --benchmark-only

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHONPATH_SRC) python $$f > /dev/null || exit 1; done
	@echo "all examples ran cleanly"

chaos:
	@for seed in 0 1 2; do \
		echo "== PHOCUS_CHAOS_SEED=$$seed"; \
		PHOCUS_CHAOS_SEED=$$seed $(PYTHONPATH_SRC) python -m pytest -q \
			tests/test_faults.py tests/core/test_checkpoint.py || exit 1; \
	done

results:
	@cat benchmarks/results/*.txt

clean:
	rm -rf build dist src/*.egg-info .pytest_cache benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
