# Development entry points for the PHOcus reproduction.
#
# Targets export PYTHONPATH=src so they match the tier-1 verify command
# and work on a fresh clone without `make install`.

.PHONY: install test bench bench-kernels bench-million million-smoke obs-smoke load-smoke overload-smoke bench-live live-smoke bench-fidelity fidelity-smoke examples chaos results clean

# Instance-size multiplier for the kernel bench (CI smoke uses 0.25).
KERNEL_BENCH_SCALE ?= 1.0
KERNEL_BENCH_OUT ?= BENCH_solver_kernels.json

# Instance-size multiplier for the observability overhead gate.
OBS_BENCH_SCALE ?= 1.0
OBS_BENCH_OUT ?= BENCH_obs_overhead.json

# Output path for the multi-tenant service load benchmark.
LOAD_BENCH_OUT ?= BENCH_service_load.json
LOAD_BENCH_FLAGS ?=

# Output path for the overload resilience benchmark.
OVERLOAD_BENCH_OUT ?= BENCH_overload.json
OVERLOAD_BENCH_FLAGS ?=

PYTHONPATH_SRC = PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH}

install:
	python setup.py develop

test:
	$(PYTHONPATH_SRC) python -m pytest -x -q tests/

bench:
	$(PYTHONPATH_SRC) python -m pytest benchmarks/ --benchmark-only

bench-kernels:
	$(PYTHONPATH_SRC) python benchmarks/bench_solver_kernels.py \
		--scale $(KERNEL_BENCH_SCALE) --out $(KERNEL_BENCH_OUT)

# Million-photo scaling trajectory: fused streamed builds vs the legacy
# dense-then-sparsify path, per-scale peak RSS in fresh subprocesses.
# Exits non-zero when a gate fails (sub-quadratic memory, >= 5x fused
# RSS advantage, fused/unfused bit-identity).  MILLION_BENCH_FLAGS
# accepts --million for the 10^6-photo run.
MILLION_BENCH_OUT ?= BENCH_million.json
MILLION_BENCH_FLAGS ?=

bench-million:
	$(PYTHONPATH_SRC) python benchmarks/bench_million.py \
		--out $(MILLION_BENCH_OUT) $(MILLION_BENCH_FLAGS)

# CI gate: one fused build at 2e4 photos, peak RSS / wall-clock /
# determinism checked against the committed BENCH_million.json.
million-smoke:
	$(PYTHONPATH_SRC) python benchmarks/bench_million.py --smoke

# End-to-end observability smoke: the self-asserting example (arm →
# solve → service → job → /metrics scrape) plus the <1% disarmed
# overhead gate.
obs-smoke:
	$(PYTHONPATH_SRC) python examples/observability.py > /dev/null
	$(PYTHONPATH_SRC) python benchmarks/bench_obs_overhead.py \
		--scale $(OBS_BENCH_SCALE) --out $(OBS_BENCH_OUT)

# Multi-tenant service load smoke: 16 concurrent tenants solving by_ref
# over real HTTP, cold (cache off) vs warm (cache on) phases.  The bench
# exits non-zero when an SLO gate fails: warm steady-state p95 must beat
# cold p95, the warm hit rate must be exactly (rounds-1)/rounds, results
# must be bit-identical across phases, and no shm segment may leak.
load-smoke:
	$(PYTHONPATH_SRC) python benchmarks/bench_service_load.py \
		--quick --out $(LOAD_BENCH_OUT) $(LOAD_BENCH_FLAGS)

# Overload resilience smoke: 12 clients at ~3x admitted capacity over
# real HTTP, baseline (admit everything) vs resilient (admission control
# + brownout + graceful drain).  The bench exits non-zero when an SLO
# gate fails: every shed must be a structured 503 with Retry-After,
# admitted p99 must stay bounded, in-flight must never exceed the
# configured cap, goodput must not collapse, non-degraded answers must
# be bit-identical to baseline, and the drain must leave no shm segment.
overload-smoke:
	$(PYTHONPATH_SRC) python benchmarks/bench_overload.py \
		--quick --out $(OVERLOAD_BENCH_OUT) $(OVERLOAD_BENCH_FLAGS)

# Online-curation latency: per-upload delta ingestion + warm re-solve
# vs a cold full re-solve at 10^3..10^5 photos.  Exits non-zero when a
# gate fails (warm >= 10x cold at 10^4, the measured-regret guarantee,
# empty-delta bit-identity).
LIVE_BENCH_OUT ?= BENCH_live.json
LIVE_BENCH_FLAGS ?=

bench-live:
	$(PYTHONPATH_SRC) python benchmarks/bench_live.py \
		--out $(LIVE_BENCH_OUT) $(LIVE_BENCH_FLAGS)

# CI gate: one 10^4 measurement checked against the committed
# BENCH_live.json (speedup, latency headroom, determinism).
live-smoke:
	$(PYTHONPATH_SRC) python benchmarks/bench_live.py --smoke

# Multi-fidelity frontier: exclusive variant choice (keep / recompress /
# drop) vs discard-only PHOcus at matched budgets.  Exits non-zero when
# a gate fails (weak dominance at every budget, strict at >= 1,
# aggregate solve overhead <= 2x, trivial-catalog bit-identity).
FIDELITY_BENCH_OUT ?= BENCH_fidelity.json
FIDELITY_BENCH_FLAGS ?=

bench-fidelity:
	$(PYTHONPATH_SRC) python benchmarks/bench_fidelity.py \
		--out $(FIDELITY_BENCH_OUT) $(FIDELITY_BENCH_FLAGS)

# CI gate: re-run the sweep checked against the committed
# BENCH_fidelity.json (dominance, overhead, determinism hashes).
fidelity-smoke:
	$(PYTHONPATH_SRC) python benchmarks/bench_fidelity.py --smoke

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHONPATH_SRC) python $$f > /dev/null || exit 1; done
	@echo "all examples ran cleanly"

chaos:
	@for seed in 0 1 2; do \
		echo "== PHOCUS_CHAOS_SEED=$$seed"; \
		PHOCUS_CHAOS_SEED=$$seed $(PYTHONPATH_SRC) python -m pytest -q \
			tests/test_faults.py tests/core/test_checkpoint.py \
			tests/test_tenants_chaos.py tests/test_resilience_chaos.py \
			tests/test_scale_chaos.py tests/test_live_chaos.py \
			tests/test_fidelity_chaos.py || exit 1; \
	done

results:
	@cat benchmarks/results/*.txt

clean:
	rm -rf build dist src/*.egg-info .pytest_cache benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
