"""Overhead of the disarmed fault-injection probes on the solver hot path.

The crash-safety layer leaves `faults.check("solver.iteration")` in the
lazy-greedy loop permanently; its disarmed cost must stay in the noise
(acceptance bar: < 2% on a full greedy solve).  These benches time the
probe itself and a complete solve with and without checkpointing, so a
regression that makes the no-op path expensive shows up immediately.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.core.checkpoint import MemoryCheckpointSink
from repro.core.greedy import CB, lazy_greedy


@pytest.fixture(scope="module")
def overhead_instance(p1k):
    return p1k.instance(p1k.total_cost() * 0.3)


def test_disarmed_probe(benchmark):
    """One disarmed `faults.check` call — a single global None test."""
    assert faults.active() is None
    benchmark(faults.check, "solver.iteration")


def test_solve_probes_disarmed(benchmark, overhead_instance):
    """Full lazy-greedy solve with the probes disarmed (production path)."""
    assert faults.active() is None
    benchmark(lazy_greedy, overhead_instance, CB)


def test_solve_with_checkpointing(benchmark, overhead_instance):
    """The same solve emitting a checkpoint every 10 picks, for scale."""

    def checkpointed():
        lazy_greedy(
            overhead_instance,
            CB,
            checkpoint_every=10,
            checkpoint_sink=MemoryCheckpointSink(),
        )

    benchmark(checkpointed)
