"""Shared fixtures for the per-figure benchmark targets.

Every bench runs on faithfully *shaped* but laptop-sized datasets: the
``--repro-scale`` option (default sizes chosen to finish the whole suite
in minutes) controls how far the Table 2 datasets are scaled down, and
budgets are expressed as the same *fractions of the corpus size* the
paper's absolute budgets correspond to.  Each bench appends its result
rows to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can quote them.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.datasets.ecommerce import generate_ecommerce_dataset
from repro.datasets.public import generate_public_dataset

RESULTS_DIR = Path(__file__).parent / "results"

# Paper budget grids, as fractions of the full corpus cost.  The paper's
# largest budget per figure is "large enough to retain all photos"
# (Section 5.3 discussion of Figure 5a), anchoring the conversion.
FIG5A_FRACTIONS = {"5MB": 0.10, "10MB": 0.20, "25MB": 0.50, "50MB": 1.00}
FIG5B_FRACTIONS = {"25MB": 0.10, "50MB": 0.20, "100MB": 0.40, "250MB": 1.00}
FIG5C_FRACTIONS = {"100MB": 0.10, "250MB": 0.25, "500MB": 0.50, "1GB": 1.00}
FIG5D_FRACTIONS = {"1MB": 0.10, "2MB": 0.20, "5MB": 0.50, "10MB": 0.90}


def pytest_addoption(parser):
    parser.addoption(
        "--repro-scale",
        type=float,
        default=1.0,
        help="multiply the default bench dataset sizes (1.0 = quick laptop run)",
    )
    parser.addoption(
        "--repro-workers",
        type=int,
        default=int(os.environ.get("PHOCUS_BENCH_WORKERS", "1")),
        help=(
            "worker processes for the Fig 5 budget sweeps (shared-memory "
            "solve_many); 1 = serial.  Also settable via PHOCUS_BENCH_WORKERS."
        ),
    )


# Stashed by pytest_configure so non-fixture helpers (benchmark.pedantic
# callables in the Fig 5 benches) can read the sweep worker count.
_WORKERS = 1


def pytest_configure(config):
    global _WORKERS
    _WORKERS = max(1, int(config.getoption("--repro-workers")))


def sweep_workers() -> int:
    """Worker count requested for Fig 5 sweeps (see --repro-workers)."""
    return _WORKERS


@pytest.fixture(scope="session")
def repro_scale(request) -> float:
    return request.config.getoption("--repro-scale")


def write_result(name: str, text: str, data=None) -> None:
    """Persist a bench's formatted rows under benchmarks/results/.

    ``data`` (optional) is additionally written as ``<name>.json`` for
    machine consumption (downstream plotting / regression tracking).
    """
    import json

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    if data is not None:
        (RESULTS_DIR / f"{name}.json").write_text(
            json.dumps(data, indent=2, default=float), encoding="utf-8"
        )
    print(f"\n{text}\n[saved to {path}]")


@pytest.fixture(scope="session")
def p1k(repro_scale):
    """The P-1K analogue (scaled)."""
    n = int(250 * repro_scale)
    return generate_public_dataset(n, max(10, n // 5), name="P-1K", seed=101)


@pytest.fixture(scope="session")
def p5k(repro_scale):
    """The P-5K analogue (scaled).  Denser subsets than P-1K, like Table 2."""
    n = int(400 * repro_scale)
    return generate_public_dataset(n, max(20, int(n * 0.28)), name="P-5K", seed=102)


@pytest.fixture(scope="session")
def ec_fashion(repro_scale):
    return generate_ecommerce_dataset(
        "Fashion", int(160 * repro_scale), n_queries=30, name="EC-Fashion", seed=103
    )


@pytest.fixture(scope="session")
def ec_electronics(repro_scale):
    return generate_ecommerce_dataset(
        "Electronics", int(160 * repro_scale), n_queries=30, name="EC-Electronics", seed=104
    )


@pytest.fixture(scope="session")
def ec_home(repro_scale):
    return generate_ecommerce_dataset(
        "Home & Garden", int(160 * repro_scale), n_queries=30,
        name="EC-Home & Garden", seed=105,
    )
