"""Figure 5f — sparsification's effect on running time (P-5K).

Paper: sparsification cuts solve time "from hours to tens of minutes"
while Figure 5e shows the quality loss is negligible.  At bench scale the
absolute numbers shrink, but the *ratio* — sparsified solves beat dense
solves — must hold, and the work saved is also visible in the
gain-evaluation neighbourhood sizes (stored similarity entries).
"""

from __future__ import annotations

import time

import pytest

from repro.core.solver import solve
from repro.sparsify.pipeline import sparsify_instance

from benchmarks.conftest import FIG5B_FRACTIONS, write_result

TAU = 0.5


def _run(p5k):
    total = p5k.total_cost()
    rows = []
    for label, fraction in FIG5B_FRACTIONS.items():
        inst = p5k.instance(total * fraction)
        start = time.perf_counter()
        solve(inst, "phocus")
        ns_seconds = time.perf_counter() - start

        start = time.perf_counter()
        sparse_inst, report = sparsify_instance(inst, TAU, method="exact")
        solve(sparse_inst, "phocus")
        sp_seconds = time.perf_counter() - start
        rows.append(
            (label, ns_seconds, sp_seconds, report.nnz_before, report.nnz_after)
        )
    return rows


def test_fig5f_sparsification_time(benchmark, p5k):
    rows = benchmark.pedantic(_run, args=(p5k,), rounds=1, iterations=1)
    lines = [
        f"Figure 5f — PHOcus (tau={TAU}) vs PHOcus-NS running time (P-5K)",
        f"{'budget':>8} {'NS seconds':>11} {'sparse seconds':>15} {'entries before':>15} {'after':>9}",
    ]
    total_ns = total_sp = 0.0
    for label, ns_s, sp_s, before, after in rows:
        lines.append(f"{label:>8} {ns_s:>11.3f} {sp_s:>15.3f} {before:>15} {after:>9}")
        total_ns += ns_s
        total_sp += sp_s
        # The similarity structure the solver traverses must actually shrink.
        assert after < before
    # Across the sweep, sparsified runs are faster in aggregate (per-budget
    # timings at laptop scale can jitter; the paper's claim is about the
    # overall regime).
    assert total_sp < total_ns * 1.1, (
        f"sparsified sweep ({total_sp:.2f}s) not faster than dense ({total_ns:.2f}s)"
    )
    lines.append(f"{'total':>8} {total_ns:>11.3f} {total_sp:>15.3f}")
    write_result("fig5f", "\n".join(lines))
