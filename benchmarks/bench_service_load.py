#!/usr/bin/env python
"""Multi-tenant service load benchmark with SLO gates.

A standalone script (``make load-smoke``), not a pytest-benchmark
target: it load-tests the HTTP service's ``by_ref`` solve path with many
concurrent tenants and proves the warm-cache SLO story end to end.
Results land in ``BENCH_service_load.json`` at the repo root.

Two sequential phases run the *same* workload — N tenant threads, each
solving its own stored instance R times over real HTTP — against the
same persistent store root:

* **cold** — the warm cache is disabled (``cache_bytes=0``): every
  request deserialises the stored JSON document and packs a transient
  shared-memory segment.  This is the per-request price without the
  subsystem.
* **warm** — a fresh service over the same root with an ample cache:
  the first solve per tenant packs, every later one is served from the
  resident segment (asserted exactly — ``hits == N * (R - 1)``).

Gates (non-zero exit on violation):

1. ``warm_steady_p95 < cold_p95`` — client-side p95 latency of warm
   steady-state requests (round >= 1, i.e. actual cache hits) must beat
   the cold p95.
2. ``hit_rate == (R - 1) / R`` — the warm phase's hit counter must show
   exactly one miss per tenant (no spurious eviction, no double pack).
3. Every response bit-identical across phases per tenant, no HTTP
   errors, and no leaked ``/dev/shm`` segment after both services stop.

The JSON document is validated against the expected schema before it is
written; a malformed document also exits non-zero.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import platform
import shutil
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.core.serialize import instance_to_dict
from repro.datasets.ecommerce import generate_ecommerce_dataset
from repro.obs import probes
from repro.system.service import PhocusService
from repro.tenants import Tenants

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_service_load.json"


def _make_instance(seed: int, n_photos: int):
    dataset = generate_ecommerce_dataset(
        "Fashion",
        n_photos,
        n_queries=max(6, n_photos // 12),
        name=f"load-{seed}",
        seed=seed,
    )
    return dataset.instance(dataset.total_cost() * 0.35)


def _post_solve(address: str, payload: Dict, timeout: float = 120.0) -> Dict:
    req = urllib.request.Request(
        f"http://{address}/solve",
        data=json.dumps(payload).encode("utf-8"),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    # One reconnect on RST: a load generator's connect burst can outrun
    # even a sized listen backlog on small CI boxes; a retried request is
    # still timed end to end (the retry cost stays in the latency sample).
    for attempt in (0, 1):
        try:
            with urllib.request.urlopen(req, timeout=timeout) as resp:
                if resp.status != 200:
                    raise RuntimeError(f"/solve answered {resp.status}")
                return json.loads(resp.read().decode("utf-8"))
        except ConnectionResetError:
            if attempt:
                raise
            time.sleep(0.05)


def _put_instance(address: str, tenant: str, instance_id: str, doc: Dict) -> None:
    req = urllib.request.Request(
        f"http://{address}/tenants/{tenant}/instances/{instance_id}",
        data=json.dumps({"instance": doc}).encode("utf-8"),
        method="PUT",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=120) as resp:
        if resp.status not in (200, 201):
            raise RuntimeError(f"PUT answered {resp.status}")


def _percentile(samples: List[float], q: float) -> float:
    if not samples:
        return float("nan")
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))]


def _scrape_counter(address: str, needle: str) -> float:
    with urllib.request.urlopen(f"http://{address}/metrics", timeout=30) as resp:
        text = resp.read().decode("utf-8")
    total = 0.0
    for line in text.splitlines():
        if line.startswith(needle):
            total += float(line.rsplit(" ", 1)[-1])
    return total


def _run_phase(
    *,
    root: str,
    prefix: str,
    cache_bytes: float,
    n_tenants: int,
    rounds: int,
    upload_docs: Dict[str, Dict] = None,
) -> Dict[str, object]:
    """One service lifetime: optional uploads, then the solve fan-out."""
    probes.disarm()  # fresh per-phase metrics registry
    tenants = Tenants(root, cache_bytes=cache_bytes, name_prefix=prefix)
    latencies: Dict[str, List[float]] = {}
    selections: Dict[str, List] = {}
    errors: List[str] = []

    with PhocusService(workers=0, tenants=tenants) as service:
        address = service.address
        if upload_docs:
            for tenant, doc in upload_docs.items():
                _put_instance(address, tenant, "archive", doc)

        barrier = threading.Barrier(n_tenants)

        def client(tenant: str) -> None:
            lats: List[float] = []
            try:
                barrier.wait(timeout=60)
                for _ in range(rounds):
                    start = time.perf_counter()
                    doc = _post_solve(
                        address,
                        {"by_ref": {"tenant": tenant, "instance_id": "archive"}},
                    )
                    lats.append(time.perf_counter() - start)
                    selections.setdefault(tenant, []).append(doc["selection"])
            except Exception as exc:  # noqa: BLE001 - reported in the doc
                errors.append(f"{tenant}: {exc!r}")
            finally:
                latencies[tenant] = lats

        threads = [
            threading.Thread(target=client, args=(f"tenant{i:02d}",))
            for i in range(n_tenants)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        prom_hits = _scrape_counter(address, "phocus_tenants_cache_hits_total")
        prom_misses = _scrape_counter(address, "phocus_tenants_cache_misses_total")

    cache_stats = tenants.cache.stats()
    tenants.close()
    probes.disarm()

    flat = [s for lats in latencies.values() for s in lats]
    steady = [s for lats in latencies.values() for s in lats[1:]]
    return {
        "requests": len(flat),
        "errors": errors,
        "p50_ms": _percentile(flat, 0.50) * 1e3,
        "p95_ms": _percentile(flat, 0.95) * 1e3,
        "steady_p50_ms": _percentile(steady, 0.50) * 1e3,
        "steady_p95_ms": _percentile(steady, 0.95) * 1e3,
        "mean_ms": (sum(flat) / len(flat) * 1e3) if flat else float("nan"),
        "cache": {
            "hits": cache_stats["hits"],
            "misses": cache_stats["misses"],
            "evictions": cache_stats["evictions"],
            "capacity_bytes": cache_stats["capacity_bytes"],
        },
        "prometheus": {"hits_total": prom_hits, "misses_total": prom_misses},
        "selections": selections,
    }


def run(n_tenants: int, rounds: int, n_photos: int) -> Dict[str, object]:
    prefix = f"phocus-bench-{os.getpid()}"
    root = tempfile.mkdtemp(prefix="phocus-bench-store-")
    try:
        docs = {
            f"tenant{i:02d}": instance_to_dict(
                _make_instance(1000 + i, n_photos)
            )
            for i in range(n_tenants)
        }
        cold = _run_phase(
            root=root,
            prefix=prefix,
            cache_bytes=0,
            n_tenants=n_tenants,
            rounds=rounds,
            upload_docs=docs,
        )
        # Same store root, fresh service: persistence across restart is
        # part of what this phase exercises.
        warm = _run_phase(
            root=root,
            prefix=prefix,
            cache_bytes=1024 * 1024 * 1024,
            n_tenants=n_tenants,
            rounds=rounds,
        )
        leaked = glob.glob(f"/dev/shm/{prefix}-*")
    finally:
        shutil.rmtree(root, ignore_errors=True)

    cold_selections = cold.pop("selections")
    warm_selections = warm.pop("selections")
    identical = all(
        len(set(map(tuple, cold_selections.get(t, [])))) == 1
        and len(set(map(tuple, warm_selections.get(t, [])))) == 1
        and tuple(cold_selections[t][0]) == tuple(warm_selections[t][0])
        for t in cold_selections
    ) and len(cold_selections) == n_tenants == len(warm_selections)

    expected_hit_rate = (rounds - 1) / rounds
    total = warm["cache"]["hits"] + warm["cache"]["misses"]
    hit_rate = warm["cache"]["hits"] / total if total else 0.0

    checks = {
        "no_errors": not cold["errors"] and not warm["errors"],
        "results_bit_identical": bool(identical),
        "warm_steady_p95_below_cold_p95": bool(
            warm["steady_p95_ms"] < cold["p95_ms"]
        ),
        "hit_rate_ok": bool(abs(hit_rate - expected_hit_rate) < 1e-9),
        "no_leaked_segments": leaked == [],
    }
    return {
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "cpus": len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity")
            else (os.cpu_count() or 1),
            "tenants": n_tenants,
            "rounds_per_tenant": rounds,
            "n_photos": n_photos,
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        },
        "cold": cold,
        "warm": {**warm, "hit_rate": hit_rate, "expected_hit_rate": expected_hit_rate},
        "checks": checks,
    }


def validate_document(doc: Dict[str, object]) -> None:
    """Raise ``ValueError`` unless ``doc`` has the expected shape."""

    def need(mapping, key, kind, where):
        if key not in mapping:
            raise ValueError(f"missing key {where}.{key}")
        if not isinstance(mapping[key], kind):
            raise ValueError(
                f"{where}.{key} should be {kind}, got {type(mapping[key]).__name__}"
            )
        return mapping[key]

    meta = need(doc, "meta", dict, "$")
    for key in ("python", "numpy", "platform"):
        need(meta, key, str, "meta")
    if need(meta, "tenants", int, "meta") < 1:
        raise ValueError("meta.tenants must be positive")
    for phase in ("cold", "warm"):
        body = need(doc, phase, dict, "$")
        for key in ("p50_ms", "p95_ms", "steady_p50_ms", "steady_p95_ms", "mean_ms"):
            if not need(body, key, (int, float), phase) >= 0:
                raise ValueError(f"{phase}.{key} must be non-negative")
        if need(body, "requests", int, phase) < 1:
            raise ValueError(f"{phase}.requests must be positive")
        need(body, "errors", list, phase)
        cache = need(body, "cache", dict, phase)
        for key in ("hits", "misses", "evictions"):
            need(cache, key, int, f"{phase}.cache")
        need(body, "prometheus", dict, phase)
    need(doc["warm"], "hit_rate", (int, float), "warm")
    checks = need(doc, "checks", dict, "$")
    for key in (
        "no_errors",
        "results_bit_identical",
        "warm_steady_p95_below_cold_p95",
        "hit_rate_ok",
        "no_leaked_segments",
    ):
        if not isinstance(checks.get(key), bool):
            raise ValueError(f"checks.{key} must be a bool")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tenants", type=int, default=16, help="concurrent tenant threads"
    )
    parser.add_argument(
        "--rounds", type=int, default=6, help="solves per tenant per phase"
    )
    parser.add_argument(
        "--photos", type=int, default=140, help="photos per tenant instance"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke shape: same 16 tenants, fewer rounds, smaller instances",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT, help="output JSON path")
    args = parser.parse_args(argv)
    if args.quick:
        args.rounds = min(args.rounds, 3)
        args.photos = min(args.photos, 60)
    if args.rounds < 2:
        parser.error("--rounds must be >= 2 (need at least one warm request)")

    doc = run(args.tenants, args.rounds, args.photos)
    validate_document(doc)
    args.out.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")

    cold, warm, checks = doc["cold"], doc["warm"], doc["checks"]
    print(
        f"[bench_service_load] tenants={doc['meta']['tenants']} "
        f"rounds={doc['meta']['rounds_per_tenant']} "
        f"photos={doc['meta']['n_photos']} cpus={doc['meta']['cpus']}"
    )
    print(
        f"  cold: p50 {cold['p50_ms']:.1f}ms  p95 {cold['p95_ms']:.1f}ms "
        f"({cold['requests']} requests, every solve deserialises + packs)"
    )
    print(
        f"  warm: p50 {warm['p50_ms']:.1f}ms  p95 {warm['p95_ms']:.1f}ms  "
        f"steady-state p95 {warm['steady_p95_ms']:.1f}ms  "
        f"hit rate {warm['hit_rate']:.1%}"
    )
    print(f"  checks: {checks}")
    if not all(checks.values()):
        print("[bench_service_load] SLO GATE FAILED", file=sys.stderr)
        return 1
    print(f"  wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
