"""Section 5.3 "budget scenarios in practice" — the 4%-budget Electronics case.

The paper's concrete deployment: 2 MB of landing-page media (a hard
100 ms page-load limit) selected out of ~640 photos (~50 MB), i.e. a
budget of ~4% of the corpus.  Reported results at that operating point:
PHOcus reached 35% of the total quality, Greedy-NCS 18% and Greedy-NR 16%.

The bench reproduces the protocol — an Electronics instance at a 4%
budget — and asserts the shape: PHOcus's relative quality is far above
both greedy baselines, and (closing the loop with the storage simulator)
its cached pages respect the 100 ms deadline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.objective import max_score
from repro.core.solver import solve
from repro.storage.workload import replay_page_workload

from benchmarks.conftest import write_result

BUDGET_FRACTION = 0.04


def _run(ec_electronics):
    inst = ec_electronics.instance(ec_electronics.total_cost() * BUDGET_FRACTION)
    ceiling = max_score(inst)
    results = {}
    for algorithm in ("phocus", "greedy-ncs", "greedy-nr"):
        solution = solve(inst, algorithm)
        results[algorithm] = solution.value / ceiling
    phocus_sel = solve(inst, "phocus").selection
    ops = replay_page_workload(
        inst, phocus_sel, n_visits=300, photos_per_page=6,
        deadline_ms=100.0, rng=np.random.default_rng(1),
    )
    return results, ops


def test_budget_scenario_electronics(benchmark, ec_electronics):
    results, ops = benchmark.pedantic(_run, args=(ec_electronics,), rounds=1, iterations=1)
    lines = [
        "Section 5.3 — practical budget scenario (Electronics, 4% budget)",
        f"{'algorithm':<12} {'fraction of total quality':>26}",
        f"{'PHOcus':<12} {results['phocus']:>25.1%}",
        f"{'G-NCS':<12} {results['greedy-ncs']:>25.1%}",
        f"{'G-NR':<12} {results['greedy-nr']:>25.1%}",
        f"(paper: 35% / 18% / 16%)",
        f"page loads within the 100ms deadline: {ops.deadline_met_fraction:.1%} "
        f"(byte hit rate {ops.byte_hit_rate:.1%})",
    ]
    # Shape: at tiny budgets PHOcus' advantage is at its largest (the
    # paper's factor is ~2x over both greedies).
    assert results["phocus"] > results["greedy-ncs"] * 1.05
    assert results["phocus"] > results["greedy-nr"] * 1.05
    # The cached selection keeps most weighted page views inside the SLA.
    assert ops.deadline_met_fraction > 0.5
    write_result("budget_scenario", "\n".join(lines))
