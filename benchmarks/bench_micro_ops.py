"""Micro-benchmarks of the hot-path primitives.

Unlike the figure benches (single-shot experiment harnesses), these use
pytest-benchmark's statistical timing to track the cost of the operations
everything else is built from: marginal-gain queries, state updates,
batch gain evaluation, full scoring, and one complete lazy-greedy solve.
Useful for catching performance regressions in the incremental evaluator.
"""

from __future__ import annotations

import pytest

from repro.core.greedy import CB, lazy_greedy
from repro.core.objective import CoverageState, score
from repro.sparsify.threshold import threshold_sparsify


@pytest.fixture(scope="module")
def micro_instance(p1k):
    return p1k.instance(p1k.total_cost() * 0.3)


@pytest.fixture(scope="module")
def seeded_state(micro_instance):
    return CoverageState(micro_instance, range(0, micro_instance.n, 7))


def test_micro_gain_query(benchmark, micro_instance, seeded_state):
    """One marginal-gain evaluation (the CELF inner loop)."""
    photo = micro_instance.n // 2
    benchmark(seeded_state.gain, photo)


def test_micro_all_gains(benchmark, micro_instance, seeded_state):
    """Vectorised batch gain evaluation over every photo."""
    benchmark(seeded_state.all_gains)


def test_micro_state_add(benchmark, micro_instance):
    """A selection update, including the state copy it needs to repeat."""

    def add_one():
        state = CoverageState(micro_instance, [0, 5, 9])
        state.add(micro_instance.n - 1)

    benchmark(add_one)


def test_micro_score_from_scratch(benchmark, micro_instance):
    """The reference (non-incremental) objective evaluation."""
    selection = list(range(0, micro_instance.n, 4))
    benchmark(score, micro_instance, selection)


def test_micro_lazy_greedy_solve(benchmark, micro_instance):
    """A complete Algorithm 2 (CB) run."""
    benchmark(lazy_greedy, micro_instance, CB)


def test_micro_sparsified_solve(benchmark, micro_instance):
    """Algorithm 2 on the τ-sparsified instance (the production path)."""
    sparse, _ = threshold_sparsify(micro_instance, 0.5)
    benchmark(lazy_greedy, sparse, CB)


def test_micro_sparse_all_gains_kernel_vs_reference(benchmark, micro_instance):
    """Flat-CSR kernel vs per-subset reference all_gains on a sparse instance.

    The benchmark fixture times the kernel path (so regressions show in the
    tracked stats); the reference path is timed inline and the old-vs-new
    speedup ratio is recorded in ``extra_info`` — it lands in the saved
    JSON next to the timing columns.
    """
    import time

    sparse, _ = threshold_sparsify(micro_instance, 0.5)
    seeded = range(0, sparse.n, 7)
    kernel = CoverageState(sparse, seeded, backend="kernel")
    reference = CoverageState(sparse, seeded, backend="reference")

    benchmark(kernel.all_gains)

    repeats = 5
    ref_best = min(
        (lambda t0: (reference.all_gains(), time.perf_counter() - t0))(
            time.perf_counter()
        )[1]
        for _ in range(repeats)
    )
    kernel_best = benchmark.stats.stats.min
    benchmark.extra_info["reference_seconds"] = ref_best
    benchmark.extra_info["kernel_seconds"] = kernel_best
    benchmark.extra_info["speedup_old_over_new"] = ref_best / kernel_best
    assert kernel_best > 0 and ref_best > 0
