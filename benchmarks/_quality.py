"""Shared machinery for the Figure 5a/5b/5c quality-by-budget benches."""

from __future__ import annotations

from typing import Dict

from repro.bench.harness import QualityGrid, format_grid, ordering_violations, run_quality_grid
from repro.datasets.base import Dataset

ALGORITHMS = ["rand-a", "greedy-nr", "greedy-ncs", "phocus"]


def run_quality_figure(dataset: Dataset, fractions: Dict[str, float], seed: int = 0) -> QualityGrid:
    """Run the RAND/G-NR/G-NCS/PHOcus sweep over the paper's budget grid.

    Honours ``--repro-workers`` / ``PHOCUS_BENCH_WORKERS``: with more than
    one worker the sweep fans out over the shared-memory process pool.
    """
    from conftest import sweep_workers

    total_mb = dataset.total_cost_mb()
    budgets_mb = [total_mb * f for f in fractions.values()]
    return run_quality_grid(
        dataset, budgets_mb, ALGORITHMS, seed=seed, workers=sweep_workers()
    )


def assert_figure5_shape(grid: QualityGrid) -> None:
    """The orderings the paper reports for Figures 5a-5c.

    * PHOcus is the best algorithm at every budget;
    * RAND is (weakly) the worst;
    * the greedy variants sit in between (G-NCS and G-NR may nearly tie —
      Section 5.3 notes several such cases — so only a loose ordering is
      required between them);
    * at the full-corpus budget every algorithm reaches the ceiling.
    """
    assert ordering_violations(grid, ["phocus", "greedy-ncs"], tolerance=0.01) == []
    assert ordering_violations(grid, ["phocus", "greedy-nr"], tolerance=0.01) == []
    assert ordering_violations(grid, ["phocus", "rand-a"]) == []
    assert ordering_violations(grid, ["greedy-nr", "rand-a"], tolerance=0.05) == []
    assert ordering_violations(grid, ["greedy-ncs", "rand-a"], tolerance=0.05) == []
    full_budget = grid.budgets[-1]
    for algorithm in grid.algorithms:
        value = grid.value(full_budget, algorithm)
        assert value >= 0.99 * grid.max_value, (
            f"{algorithm} below ceiling at the retain-everything budget"
        )


def grid_data(grid: QualityGrid, fractions: Dict[str, float]) -> Dict:
    """Machine-readable form of a quality grid (for the .json artefact)."""
    return {
        "dataset": grid.dataset_name,
        "budgets_bytes": list(grid.budgets),
        "paper_budget_fractions": dict(fractions),
        "max_value": grid.max_value,
        "series": {a: grid.series(a) for a in grid.algorithms},
    }


def render(grid: QualityGrid, fractions: Dict[str, float], paper_labels: bool = True) -> str:
    from repro.bench.ascii_chart import quality_grid_chart

    text = format_grid(grid)
    if paper_labels:
        labels = ", ".join(
            f"{label}≈{frac:.0%} of corpus" for label, frac in fractions.items()
        )
        text += f"\n(paper budgets: {labels})"
    text += "\n\n" + quality_grid_chart(grid)
    return text
