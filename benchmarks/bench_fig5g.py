"""Figure 5g — user study: solution quality, PHOcus vs Manual.

The paper's analysts produced manual selections 15-25% *below* PHOcus'
quality across the three e-commerce domains.  We replay the protocol with
the simulated analyst (see DESIGN.md §4 for the substitution) and assert
the shape: PHOcus above Manual in every domain, with a visible gap.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.objective import score
from repro.core.solver import solve
from repro.study.manual import simulated_analyst

from benchmarks.conftest import write_result

BUDGET_FRACTION = 0.15


def _run(domains):
    rows = []
    for name, dataset in domains:
        inst = dataset.instance(dataset.total_cost() * BUDGET_FRACTION)
        phocus = solve(inst, "phocus")
        manual = simulated_analyst(inst, rng=np.random.default_rng(31))
        manual_value = score(inst, manual.selection)
        advantage = (
            phocus.value / manual_value - 1.0 if manual_value > 0 else float("inf")
        )
        rows.append((name, phocus.value, manual_value, advantage))
    return rows


def test_fig5g_user_study_quality(benchmark, ec_electronics, ec_fashion, ec_home):
    domains = [
        ("Electronics", ec_electronics),
        ("Fashion", ec_fashion),
        ("Home & Garden", ec_home),
    ]
    rows = benchmark.pedantic(_run, args=(domains,), rounds=1, iterations=1)
    lines = [
        "Figure 5g — user study quality (PHOcus vs Manual)",
        f"{'domain':<15} {'PHOcus':>10} {'Manual':>10} {'advantage':>10}",
    ]
    for name, phocus, manual, advantage in rows:
        lines.append(f"{name:<15} {phocus:>10.3f} {manual:>10.3f} {advantage:>9.1%}")
        # Paper shape: PHOcus 15-25% higher.  We assert a clear win in
        # every domain without pinning the simulated gap to human numbers.
        assert phocus > manual, f"PHOcus did not beat Manual in {name}"
        assert advantage > 0.02, f"advantage {advantage:.1%} in {name} is negligible"
    from repro.bench.ascii_chart import grouped_bar_chart

    lines.append("")
    lines.append(
        grouped_bar_chart(
            [r[0] for r in rows],
            {
                "PHOcus": [r[1] for r in rows],
                "Manual": [r[2] for r in rows],
            },
            value_format="{:.3f}",
        )
    )
    write_result("fig5g", "\n".join(lines))
