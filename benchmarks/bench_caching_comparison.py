"""Related-work claim (§2) — PAR vs access-driven caching (LRU/LFU).

"These caching solutions are not relevant for PAR, since similarities
are not leveraged to save space ... the decision of which items to
retain is not based on any redundancy in the data, but on
frequency/recency of the use."

The bench gives both sides the same resources (cache capacity = PAR
budget, retention set pinned) and the same weighted page workload, then
compares the photo set each approach ends up holding on the PAR
objective.  Expected shape: PHOcus' selection scores clearly higher —
classic policies keep whatever is popular, including visually redundant
shots of the same popular products.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.objective import score
from repro.core.solver import solve
from repro.storage.caching import replay_accesses
from repro.storage.workload import replay_page_workload

from benchmarks.conftest import write_result

BUDGET_FRACTION = 0.12


def _run(ec_fashion):
    inst = ec_fashion.instance(ec_fashion.total_cost() * BUDGET_FRACTION)
    phocus_sel = solve(inst, "phocus").selection
    phocus_value = score(inst, phocus_sel)
    phocus_ops = replay_page_workload(
        inst, phocus_sel, n_visits=600, rng=np.random.default_rng(11)
    )

    rows = [("PHOcus", phocus_value, phocus_ops.hit_rate)]
    for policy in ("lru", "lfu"):
        replay = replay_accesses(
            inst, policy=policy, n_visits=600, rng=np.random.default_rng(11)
        )
        value = score(inst, replay.final_resident)
        rows.append((policy.upper(), value, replay.hit_rate))
    return rows


def test_par_vs_cache_policies(benchmark, ec_fashion):
    rows = benchmark.pedantic(_run, args=(ec_fashion,), rounds=1, iterations=1)
    lines = [
        "Related work (§2) — PAR selection vs access-driven caching",
        f"(equal resources: capacity = budget = {BUDGET_FRACTION:.0%} of corpus)",
        f"{'approach':<10} {'PAR objective':>14} {'workload hit rate':>18}",
    ]
    values = {}
    for name, value, hit_rate in rows:
        lines.append(f"{name:<10} {value:>14.4f} {hit_rate:>17.1%}")
        values[name] = value
    # The claim: redundancy-aware selection dominates recency/frequency.
    assert values["PHOcus"] > values["LRU"] * 1.02
    assert values["PHOcus"] > values["LFU"] * 1.02
    write_result("caching_comparison", "\n".join(lines))
