"""Extension — single-pass streaming PAR vs the offline solver.

Measures what one pass over an arrival stream costs relative to offline
CELF (Section 2 cites streaming submodular maximisation [5] as the
regime for data too large or too fast to hold).  Expected shape: the
sieve solution lands within a constant factor of offline — well above
its pessimistic worst-case — with memory bounded by the threshold grid,
not the stream.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.solver import solve
from repro.extensions.streaming import StreamingArchiver

from benchmarks.conftest import write_result

FRACTIONS = (0.1, 0.25, 0.5)
EPSILON = 0.15


def _run(p1k):
    corpus = p1k.total_cost()
    rows = []
    for fraction in FRACTIONS:
        inst = p1k.instance(corpus * fraction)
        offline = solve(inst, "phocus")
        archiver = StreamingArchiver(inst, epsilon=EPSILON)
        order = np.random.default_rng(3).permutation(inst.n)
        for p in order:
            archiver.offer(int(p))
        _, streamed_value = archiver.current_solution()
        rows.append(
            (fraction, streamed_value, offline.value, archiver.candidates, inst.n)
        )
    return rows


def test_extension_streaming(benchmark, p1k):
    rows = benchmark.pedantic(_run, args=(p1k,), rounds=1, iterations=1)
    lines = [
        f"Extension — streaming sieve (eps={EPSILON}) vs offline CELF",
        f"{'budget':>8} {'streaming':>10} {'offline':>10} {'ratio':>7} "
        f"{'candidates':>11} {'stream n':>9}",
    ]
    for fraction, streamed, offline, candidates, n in rows:
        ratio = streamed / offline if offline > 0 else 1.0
        lines.append(
            f"{fraction:>7.0%} {streamed:>10.3f} {offline:>10.3f} {ratio:>6.1%} "
            f"{candidates:>11} {n:>9}"
        )
        assert ratio >= 0.5, "streaming fell below half of offline"
        assert candidates < n, "candidate state must not scale with the stream"
    write_result("extension_streaming", "\n".join(lines))
