"""Table 1 — system comparison matrix.

Table 1 of the paper contrasts PHOcus with five image-summarisation
systems along three dimensions: byte-sum space constraint, specifiable
coverage focus, and worst-case approximation guarantee.  The comparison
rows for the prior systems are literature facts; the PHOcus row is
*verified programmatically* here — the bench demonstrates each claimed
property on a live instance and renders the full matrix.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bounds import performance_certificate
from repro.core.solver import solve

from benchmarks.conftest import write_result

# (system, byte-sum space constraint, coverage focus, approximation guarantee)
_LITERATURE_ROWS = [
    ("Canonview [42]", False, False, False),
    ("Personal photologs [44]", False, False, False),
    ("Submodular mixture [46]", False, True, True),
    ("Fantom [35]", False, True, True),
    ("Image corpus [43]", False, False, False),
]


def _verify_phocus_row(p1k):
    """Demonstrate the three ✓ properties of the PHOcus row."""
    total = p1k.total_cost()
    instance = p1k.instance(total * 0.2)

    # 1. Space constraint is on the SUM OF SIZES, not photo count: the
    # solver fills heterogeneous-size photos up to a byte budget.
    solution = solve(instance, "phocus")
    sizes = {float(instance.costs[p]) for p in solution.selection}
    assert solution.cost <= instance.budget
    assert len(sizes) > 1, "photos have heterogeneous byte sizes"

    # 2. Coverage focus is specifiable: doubling one subset's weight makes
    # the solver cover it at least as well.
    from repro.core.instance import PredefinedSubset

    target = instance.subsets[0]
    boosted_subsets = [
        PredefinedSubset(
            q.subset_id, q.weight * (50.0 if qi == 0 else 1.0), q.members,
            q.relevance, q.similarity, normalize=False,
        )
        for qi, q in enumerate(instance.subsets)
    ]
    boosted = instance.with_subsets(boosted_subsets)
    from repro.core.objective import score_breakdown

    base_cov = score_breakdown(instance, solution.selection)[target.subset_id] / target.weight
    boosted_sol = solve(boosted, "phocus")
    boosted_cov = (
        score_breakdown(instance, boosted_sol.selection)[target.subset_id] / target.weight
    )
    assert boosted_cov >= base_cov - 1e-9

    # 3. Worst-case guarantee: the online certificate confirms the solution
    # is at least the a-priori (1 - 1/e)/2 fraction of optimal.
    _, ratio = performance_certificate(instance, solution.selection)
    assert ratio >= (1 - 1 / np.e) / 2
    return ratio


def test_table1_system_comparison(benchmark, p1k):
    ratio = benchmark.pedantic(_verify_phocus_row, args=(p1k,), rounds=1, iterations=1)

    def mark(flag):
        return "yes" if flag else "no "

    lines = [
        "Table 1: image summarisation systems vs PHOcus",
        f"{'system':<28} {'space-constraint':>16} {'coverage-focus':>15} {'guarantee':>10}",
    ]
    for name, space, coverage, guarantee in _LITERATURE_ROWS:
        lines.append(f"{name:<28} {mark(space):>16} {mark(coverage):>15} {mark(guarantee):>10}")
    lines.append(f"{'PHOcus':<28} {'yes':>16} {'yes':>15} {'yes':>10}")
    lines.append(f"(PHOcus properties verified live; certificate ratio {ratio:.3f})")
    write_result("table1", "\n".join(lines))
