"""Section 4.2 — the data-dependent online bound in practice.

The paper adopts the scalable CELF scheme despite its weaker a-priori
guarantee because the Leskovec online bound certifies, per instance, a
performance ratio far above the worst case ((1 − 1/e)/2 ≈ 0.316).  The
bench computes the certificate across datasets and budgets and asserts
every ratio clears the a-priori bound by a wide margin.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bounds import performance_certificate
from repro.core.solver import solve

from benchmarks.conftest import write_result

WORST_CASE = (1 - 1 / np.e) / 2
FRACTIONS = (0.05, 0.15, 0.4)


def _run(datasets):
    rows = []
    for dataset in datasets:
        corpus = dataset.total_cost()
        for fraction in FRACTIONS:
            inst = dataset.instance(corpus * fraction)
            solution = solve(inst, "phocus")
            _, ratio = performance_certificate(inst, solution.selection)
            rows.append((dataset.name, fraction, solution.value, ratio))
    return rows


def test_online_bound_certificates(benchmark, p1k, ec_fashion):
    rows = benchmark.pedantic(_run, args=([p1k, ec_fashion],), rounds=1, iterations=1)
    lines = [
        "Section 4.2 — online-bound certificates (a-priori worst case 0.316)",
        f"{'dataset':<14} {'budget':>8} {'value':>10} {'certified ratio':>16}",
    ]
    for name, fraction, value, ratio in rows:
        lines.append(f"{name:<14} {fraction:>7.0%} {value:>10.3f} {ratio:>16.3f}")
        assert ratio > WORST_CASE, f"certificate below the a-priori bound ({name})"
    worst = min(r for _, _, _, r in rows)
    lines.append(f"minimum certified ratio: {worst:.3f} (>> 0.316)")
    assert worst > 0.5
    write_result("online_bound", "\n".join(lines))
