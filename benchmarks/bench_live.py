#!/usr/bin/env python
"""Per-upload re-curation latency for the live incremental pipeline.

A standalone script (``make bench-live``), not a pytest-benchmark
target: it measures what one photo-delta upload costs at archive scales
10^3..10^5 — delta ingestion (bucket only the new photos, grow the CSR
through ``append_rows``) plus the warm-started CELF re-solve — against
the cold baseline (a full two-phase ``main_algorithm`` re-solve of the
grown instance), and writes the machine-readable document to
``BENCH_live.json`` at the repo root:

* ``runs`` — per archive scale: create/initial-solve timings, ingest
  seconds, warm re-solve seconds, cold re-solve seconds, the
  warm-vs-cold speedup, the certified ``regret_bound``, and the
  warm/cold objective values with their selection hashes;
* ``checks`` — the gates CI enforces: warm re-curation is **>= 10x
  faster** than a cold full re-solve at 10^4 photos, the measured-regret
  guarantee ``warm.value >= (1 - regret_bound) * cold.value`` holds at
  every scale, and an empty delta reproduces the stored solution **bit
  for bit**.

``--smoke`` mode (the CI ``live-smoke`` job) re-runs the 10^4 scale and
gates the speedup and both correctness properties against the committed
``BENCH_live.json`` (selection hashes must match — the pipeline is
deterministic at a fixed seed; wall-clock gets generous headroom for
slower runners).

The JSON is validated against the expected schema before it is written;
a malformed document also exits non-zero.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_live.json"

DIM = 16
TAU = 0.8
SEED = 0
BUDGET_FRACTION = 0.1
DELTA_PHOTOS = 16
SCALES = (1_000, 10_000, 100_000)
SMOKE_PHOTOS = 10_000
#: The headline gate: warm re-curation vs cold full re-solve at 10^4.
SPEEDUP_GATE = 10.0
#: Wall-clock headroom the smoke gate allows over the committed numbers.
SMOKE_SECONDS_HEADROOM = 8.0


def _selection_sha(selection) -> str:
    return hashlib.sha256(
        json.dumps([int(p) for p in selection]).encode()
    ).hexdigest()


def _median_seconds(fn, repeats: int):
    """``(median_seconds, last_result)`` of ``repeats`` runs of ``fn``.

    Every measured operation here is deterministic and side-effect-free
    on its inputs (``ingest`` never mutates ``self``), so repetition is
    safe and the median discards allocator/governor warm-up noise.
    """
    samples = []
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - t0)
    samples.sort()
    return samples[len(samples) // 2], result


def measure_scale(photos: int, delta: int = DELTA_PHOTOS) -> Dict[str, object]:
    from repro.live import LiveArchive, cold_resolve, warm_resolve

    from repro.scale import synthetic_archive

    costs, embeddings = synthetic_archive(photos + delta, dim=DIM, seed=SEED)
    budget = float(costs[:photos].sum()) * BUDGET_FRACTION
    # A cold solve at 10^5 runs >10 s; one sample is plenty there.
    repeats = 3 if photos <= 10_000 else 1

    t0 = time.perf_counter()
    archive, build = LiveArchive.create(
        costs[:photos], embeddings[:photos], budget, tau=TAU, seed=SEED
    )
    create_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    stored = cold_resolve(archive.instance)
    initial_solve_seconds = time.perf_counter() - t0

    # Property: an empty delta reproduces the stored solution bit for bit.
    replay = warm_resolve(archive.instance, stored.selection)
    empty_delta_identical = bool(
        replay.selection == stored.selection and replay.value == stored.value
    )

    # The warm path: bucket + verify + append the delta, then re-enter the
    # CELF heap from the stored solution.
    ingest_seconds, (grown, ingest) = _median_seconds(
        lambda: archive.ingest(costs[photos:], embeddings[photos:]), repeats
    )
    warm_solve_seconds, warm = _median_seconds(
        lambda: warm_resolve(grown.instance, stored.selection), repeats
    )
    warm_latency = ingest_seconds + warm_solve_seconds

    # The cold baseline: a from-scratch two-phase solve of the same grown
    # instance (what every upload would cost without the warm start).
    cold_solve_seconds, cold = _median_seconds(
        lambda: cold_resolve(grown.instance), repeats
    )

    regret_holds = bool(
        warm.value >= (1.0 - warm.regret_bound) * cold.value - 1e-12
    )
    return {
        "photos": photos,
        "delta_photos": delta,
        "n_bits": build.n_bits,
        "nnz_after_ingest": ingest.nnz,
        "delta_candidate_pairs": ingest.candidate_pairs,
        "create_seconds": create_seconds,
        "initial_solve_seconds": initial_solve_seconds,
        "ingest_seconds": ingest_seconds,
        "warm_solve_seconds": warm_solve_seconds,
        "warm_latency_seconds": warm_latency,
        "cold_solve_seconds": cold_solve_seconds,
        "speedup": cold_solve_seconds / warm_latency,
        "warm_value": warm.value,
        "cold_value": cold.value,
        "regret_bound": warm.regret_bound,
        "upper_bound": warm.upper_bound,
        "warm_evaluations": warm.evaluations,
        "cold_evaluations": cold.evaluations,
        "warm_selection_sha256": _selection_sha(warm.selection),
        "cold_selection_sha256": _selection_sha(cold.selection),
        "empty_delta_bit_identical": empty_delta_identical,
        "regret_guarantee_holds": regret_holds,
    }


# ---------------------------------------------------------------------------
# Schema
# ---------------------------------------------------------------------------


def validate_document(doc: Dict[str, object]) -> None:
    """Raise ``ValueError`` unless ``doc`` has the expected shape."""

    def need(mapping, key, kind, where):
        if key not in mapping:
            raise ValueError(f"missing key {where}.{key}")
        if not isinstance(mapping[key], kind):
            raise ValueError(
                f"{where}.{key} should be {kind}, got {type(mapping[key]).__name__}"
            )
        return mapping[key]

    meta = need(doc, "meta", dict, "$")
    for key in ("python", "numpy", "platform"):
        need(meta, key, str, "meta")
    for key in ("cpus", "dim", "seed", "delta_photos"):
        need(meta, key, int, "meta")
    need(meta, "tau", (int, float), "meta")
    runs = need(doc, "runs", list, "$")
    if not runs:
        raise ValueError("runs must be non-empty")
    for i, run in enumerate(runs):
        if not isinstance(run, dict):
            raise ValueError(f"runs[{i}] must be an object")
        need(run, "photos", int, f"runs[{i}]")
        for key in (
            "ingest_seconds",
            "warm_solve_seconds",
            "warm_latency_seconds",
            "cold_solve_seconds",
            "speedup",
            "warm_value",
            "cold_value",
        ):
            value = need(run, key, (int, float), f"runs[{i}]")
            if not value > 0:
                raise ValueError(f"runs[{i}].{key} must be positive")
        need(run, "regret_bound", (int, float), f"runs[{i}]")
        for key in ("warm_selection_sha256", "cold_selection_sha256"):
            need(run, key, str, f"runs[{i}]")
        for key in ("empty_delta_bit_identical", "regret_guarantee_holds"):
            if not isinstance(run.get(key), bool):
                raise ValueError(f"runs[{i}].{key} must be a bool")
    checks = need(doc, "checks", dict, "$")
    for key in (
        "warm_speedup_gate_ok",
        "regret_guarantee_holds",
        "empty_delta_bit_identical",
    ):
        if not isinstance(checks.get(key), bool):
            raise ValueError(f"checks.{key} must be a bool")
    need(checks, "speedup_at_gate_scale", (int, float), "checks")
    need(checks, "gate_scale", int, "checks")
    need(checks, "speedup_gate", (int, float), "checks")


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def _meta() -> Dict[str, object]:
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "cpus": len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else (os.cpu_count() or 1),
        "dim": DIM,
        "tau": TAU,
        "seed": SEED,
        "budget_fraction": BUDGET_FRACTION,
        "delta_photos": DELTA_PHOTOS,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }


def _print_run(run: Dict[str, object]) -> None:
    print(
        f"  {run['photos']:>7} photos: ingest {run['ingest_seconds'] * 1e3:7.1f} ms "
        f"+ warm solve {run['warm_solve_seconds'] * 1e3:7.1f} ms "
        f"= {run['warm_latency_seconds'] * 1e3:7.1f} ms "
        f"vs cold {run['cold_solve_seconds']:6.2f} s "
        f"({run['speedup']:6.1f}x), regret bound {run['regret_bound']:.4f}"
    )


def run_bench(scales) -> Dict[str, object]:
    runs: List[Dict[str, object]] = []
    for photos in scales:
        print(f"[bench_live] upload latency @ {photos} ...", flush=True)
        run = measure_scale(photos)
        _print_run(run)
        runs.append(run)

    gate_scale = SMOKE_PHOTOS if any(
        r["photos"] == SMOKE_PHOTOS for r in runs
    ) else runs[-1]["photos"]
    at_gate = next(r for r in runs if r["photos"] == gate_scale)
    checks = {
        "gate_scale": int(gate_scale),
        "speedup_gate": SPEEDUP_GATE,
        "speedup_at_gate_scale": float(at_gate["speedup"]),
        "warm_speedup_gate_ok": bool(at_gate["speedup"] >= SPEEDUP_GATE),
        "regret_guarantee_holds": all(
            r["regret_guarantee_holds"] for r in runs
        ),
        "empty_delta_bit_identical": all(
            r["empty_delta_bit_identical"] for r in runs
        ),
    }
    return {"meta": _meta(), "runs": runs, "checks": checks}


def run_smoke(committed_path: Path) -> int:
    committed = json.loads(committed_path.read_text())
    validate_document(committed)
    baseline = next(
        r for r in committed["runs"] if r["photos"] == SMOKE_PHOTOS
    )
    print(f"[live-smoke] upload latency @ {SMOKE_PHOTOS} ...", flush=True)
    run = measure_scale(SMOKE_PHOTOS)
    _print_run(run)
    latency_limit = (
        baseline["warm_latency_seconds"] * SMOKE_SECONDS_HEADROOM
    )
    failures = []
    if run["speedup"] < SPEEDUP_GATE:
        failures.append(
            f"warm re-curation only {run['speedup']:.1f}x faster than a cold "
            f"full re-solve (gate: >= {SPEEDUP_GATE}x)"
        )
    if run["warm_latency_seconds"] > latency_limit:
        failures.append(
            f"warm latency {run['warm_latency_seconds']:.3f}s above committed "
            f"baseline headroom ({latency_limit:.3f}s)"
        )
    if not run["regret_guarantee_holds"]:
        failures.append("measured-regret guarantee violated")
    if not run["empty_delta_bit_identical"]:
        failures.append("empty delta no longer reproduces the stored solution")
    if run["warm_selection_sha256"] != baseline["warm_selection_sha256"]:
        failures.append(
            "warm picks drifted from the committed baseline "
            "(the pipeline is no longer deterministic at a fixed seed)"
        )
    if run["cold_selection_sha256"] != baseline["cold_selection_sha256"]:
        failures.append("cold picks drifted from the committed baseline")
    for f in failures:
        print(f"LIVE-SMOKE FAILURE: {f}", file=sys.stderr)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scales",
        default=",".join(str(s) for s in SCALES),
        help="comma-separated archive scales",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: one 10^4 run gated against the committed JSON",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    if args.smoke:
        return run_smoke(args.out)

    scales = sorted(int(s) for s in args.scales.split(","))
    doc = run_bench(scales)
    validate_document(doc)
    args.out.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")

    checks = doc["checks"]
    print(
        f"  speedup at {checks['gate_scale']}: "
        f"{checks['speedup_at_gate_scale']:.1f}x "
        f"(>= {checks['speedup_gate']:.0f}x: {checks['warm_speedup_gate_ok']}), "
        f"regret guarantee: {checks['regret_guarantee_holds']}, "
        f"empty-delta bit-identical: {checks['empty_delta_bit_identical']}"
    )
    print(f"  wrote {args.out}")

    failed = [
        key
        for key in (
            "warm_speedup_gate_ok",
            "regret_guarantee_holds",
            "empty_delta_bit_identical",
        )
        if not checks[key]
    ]
    if failed:
        print(f"BENCH GATES FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
