"""Table 2 — the dataset inventory.

Regenerates the paper's dataset table from the registry: the full-scale
photo/subset counts come straight from Table 2; the bench additionally
*generates* each dataset at bench scale and verifies the generator honours
the registered counts (proportionally) and the structural facts Section
5.2 states (public subsets from labels, EC subsets from the top-k query
log with frequency weights).
"""

from __future__ import annotations

import pytest

from repro.datasets.registry import TABLE2, dataset_names, load

from benchmarks.conftest import write_result

_BENCH_SCALE = {"public": 0.05, "ecommerce": 0.01}


def _generate_all():
    rows = []
    for name in dataset_names():
        config = TABLE2[name]
        dataset = load(name, scale=_BENCH_SCALE[config.source], seed=7)
        expected = config.scaled(_BENCH_SCALE[config.source])
        assert dataset.n_photos >= expected.n_photos * 0.5
        assert dataset.n_subsets <= expected.n_subsets
        rows.append((config, dataset))
    return rows


def test_table2_datasets(benchmark):
    rows = benchmark.pedantic(_generate_all, rounds=1, iterations=1)
    lines = [
        "Table 2: datasets (paper-scale counts; generated at bench scale)",
        f"{'dataset':<18} {'#photos':>9} {'#subsets':>9} | {'gen photos':>10} {'gen subsets':>11} {'gen MB':>9}",
    ]
    for config, dataset in rows:
        lines.append(
            f"{config.name:<18} {config.n_photos:>9} {config.n_subsets:>9} | "
            f"{dataset.n_photos:>10} {dataset.n_subsets:>11} {dataset.total_cost_mb():>9.1f}"
        )
    write_result("table2", "\n".join(lines))
