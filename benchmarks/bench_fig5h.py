"""Figure 5h — user study: time, PHOcus vs Manual (log scale).

The paper reports 6-14 *hours* of manual curation vs ~10 *minutes* with
PHOcus (solver runtime plus analyst review).  With the simulated analyst's
calibrated time model the same orders-of-magnitude gap must appear: the
manual path costs hours, the PHOcus path stays within minutes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.solver import solve
from repro.study.manual import simulated_analyst

from benchmarks.conftest import write_result

BUDGET_FRACTION = 0.15
# Analyst review of a PHOcus proposal ("final touches and approval"):
# inspect each retained photo once.
REVIEW_SECONDS_PER_PHOTO = 4.0


def _run(domains):
    rows = []
    for name, dataset in domains:
        inst = dataset.instance(dataset.total_cost() * BUDGET_FRACTION)
        phocus = solve(inst, "phocus")
        phocus_minutes = (
            phocus.elapsed_seconds + REVIEW_SECONDS_PER_PHOTO * len(phocus.selection)
        ) / 60.0
        manual = simulated_analyst(inst, rng=np.random.default_rng(31))
        rows.append((name, phocus_minutes, manual.seconds / 60.0))
    return rows


def test_fig5h_user_study_time(benchmark, ec_electronics, ec_fashion, ec_home):
    domains = [
        ("Electronics", ec_electronics),
        ("Fashion", ec_fashion),
        ("Home & Garden", ec_home),
    ]
    rows = benchmark.pedantic(_run, args=(domains,), rounds=1, iterations=1)
    lines = [
        "Figure 5h — user study time in minutes (log-scale in the paper)",
        f"{'domain':<15} {'PHOcus (min)':>13} {'Manual (min)':>13} {'speed-up':>9}",
    ]
    for name, phocus_min, manual_min in rows:
        speedup = manual_min / phocus_min if phocus_min > 0 else float("inf")
        lines.append(f"{name:<15} {phocus_min:>13.1f} {manual_min:>13.1f} {speedup:>8.0f}x")
        # Orders-of-magnitude shape: manual at least 10x slower at bench
        # scale (the paper's full-scale gap is ~40-80x).
        assert manual_min > 10 * phocus_min, f"no time advantage in {name}"
    import math

    from repro.bench.ascii_chart import grouped_bar_chart

    lines.append("")
    lines.append(
        grouped_bar_chart(
            [r[0] for r in rows],
            {
                "PHOcus log10(min)": [math.log10(max(r[1], 1e-3)) for r in rows],
                "Manual log10(min)": [math.log10(max(r[2], 1e-3)) for r in rows],
            },
            value_format="{:.2f}",
            title="(log scale, as in the paper)",
        )
    )
    write_result("fig5h", "\n".join(lines))
