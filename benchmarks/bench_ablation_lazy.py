"""Ablation — lazy (CELF) vs naive greedy evaluation counts.

Section 4.2 motivates the CELF scheme by its lazy evaluation, "shown to
improve the running time by a factor of 700" in [30].  The bench counts
marginal-gain evaluations for the lazy and naive variants on identical
instances: identical outputs, far fewer evaluations.
"""

from __future__ import annotations

import time

import pytest

from repro.core.greedy import CB, lazy_greedy, naive_greedy

from benchmarks.conftest import write_result

FRACTIONS = (0.1, 0.3)


def _run(p1k):
    corpus = p1k.total_cost()
    rows = []
    for fraction in FRACTIONS:
        inst = p1k.instance(corpus * fraction)
        start = time.perf_counter()
        lazy = lazy_greedy(inst, CB)
        lazy_s = time.perf_counter() - start
        start = time.perf_counter()
        naive = naive_greedy(inst, CB)
        naive_s = time.perf_counter() - start
        assert abs(lazy.value - naive.value) < 1e-9
        rows.append(
            (fraction, lazy.evaluations, naive.evaluations, lazy_s, naive_s)
        )
    return rows


def test_ablation_lazy_evaluation(benchmark, p1k):
    rows = benchmark.pedantic(_run, args=(p1k,), rounds=1, iterations=1)
    lines = [
        "Ablation — lazy (CELF) vs naive greedy (identical outputs)",
        f"{'budget':>8} {'lazy evals':>11} {'naive evals':>12} {'saving':>8} "
        f"{'lazy s':>8} {'naive s':>8}",
    ]
    for fraction, lazy_e, naive_e, lazy_s, naive_s in rows:
        saving = naive_e / lazy_e if lazy_e else float("inf")
        lines.append(
            f"{fraction:>7.0%} {lazy_e:>11} {naive_e:>12} {saving:>7.1f}x "
            f"{lazy_s:>8.3f} {naive_s:>8.3f}"
        )
        # Laziness must cut the evaluation count dramatically.
        assert lazy_e * 2 < naive_e
    write_result("ablation_lazy", "\n".join(lines))
