"""Figure 5d — PHOcus vs the brute-force optimum on a small P-1K subset.

The paper runs exhaustive search on a 100-photo subset of P-1K (larger
inputs are intractable) over budgets 1/2/5/10 MB and reports PHOcus'
quality loss is always below 15% (often below 10%).  We reproduce the
protocol with the branch-and-bound exact solver on a subset sized so the
search closes quickly, and assert the same loss bound.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.solver import solve

from benchmarks.conftest import FIG5D_FRACTIONS, write_result


def _run(p1k):
    rng = np.random.default_rng(17)
    base = p1k.instance(p1k.total_cost())
    ids = sorted(int(p) for p in rng.choice(base.n, size=min(45, base.n), replace=False))
    sub_full = base.restricted(ids, budget=float("inf"))
    total = sub_full.total_cost()

    rows = []
    for label, fraction in FIG5D_FRACTIONS.items():
        inst = sub_full.with_budget(total * fraction)
        exact = solve(inst, "bruteforce")
        phocus = solve(inst, "phocus")
        loss = 1.0 - (phocus.value / exact.value if exact.value > 0 else 1.0)
        rows.append((label, fraction, phocus.value, exact.value, loss))
    return rows


def test_fig5d_phocus_vs_bruteforce(benchmark, p1k):
    rows = benchmark.pedantic(_run, args=(p1k,), rounds=1, iterations=1)
    lines = [
        "Figure 5d — PHOcus vs Brute-Force (small P-1K subset)",
        f"{'budget':>8} {'fraction':>9} {'PHOcus':>10} {'Brute-Force':>12} {'loss':>7}",
    ]
    for label, fraction, phocus, exact, loss in rows:
        lines.append(
            f"{label:>8} {fraction:>8.0%} {phocus:>10.3f} {exact:>12.3f} {loss:>6.1%}"
        )
        # Paper: "the loss is always less than 15%".
        assert loss < 0.15, f"loss {loss:.1%} at {label} exceeds the paper's bound"
        assert phocus <= exact + 1e-9
    from repro.bench.ascii_chart import grouped_bar_chart

    lines.append("")
    lines.append(
        grouped_bar_chart(
            [label for label, *_ in rows],
            {
                "PHOcus": [r[2] for r in rows],
                "Brute-Force": [r[3] for r in rows],
            },
        )
    )
    write_result("fig5d", "\n".join(lines))
