"""Figure 5c — quality by budget on the private EC-Fashion dataset.

The e-commerce instance: subsets are the top query-log queries, weights
are query frequencies, relevance is the retrieval score.  Paper shape as
in Figures 5a/5b.
"""

from __future__ import annotations

import pytest

from benchmarks._quality import assert_figure5_shape, grid_data, render, run_quality_figure
from benchmarks.conftest import FIG5C_FRACTIONS, write_result


def test_fig5c_ec_fashion_quality(benchmark, ec_fashion):
    grid = benchmark.pedantic(
        run_quality_figure, args=(ec_fashion, FIG5C_FRACTIONS), rounds=1, iterations=1
    )
    assert_figure5_shape(grid)
    write_result(
        "fig5c",
        "Figure 5c — EC-Fashion\n" + render(grid, FIG5C_FRACTIONS),
        data=grid_data(grid, FIG5C_FRACTIONS),
    )
