"""Figure 5b — quality by budget on P-5K.

Same protocol as Figure 5a on the larger public dataset.  The paper notes
that at some budgets G-NCS and G-NR are nearly indistinguishable here;
the shape assertion therefore only enforces PHOcus on top and RAND at the
bottom, with both greedies strictly above RAND.
"""

from __future__ import annotations

import pytest

from benchmarks._quality import assert_figure5_shape, grid_data, render, run_quality_figure
from benchmarks.conftest import FIG5B_FRACTIONS, write_result


def test_fig5b_p5k_quality(benchmark, p5k):
    grid = benchmark.pedantic(
        run_quality_figure, args=(p5k, FIG5B_FRACTIONS), rounds=1, iterations=1
    )
    assert_figure5_shape(grid)
    write_result(
        "fig5b",
        "Figure 5b — P-5K\n" + render(grid, FIG5B_FRACTIONS),
        data=grid_data(grid, FIG5B_FRACTIONS),
    )
