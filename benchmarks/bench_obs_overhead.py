#!/usr/bin/env python
"""Observability overhead gate for the solver hot path.

A standalone script (``make obs-smoke``), not a pytest-benchmark target:
it proves that :mod:`repro.obs` instrumentation costs nothing measurable
when disarmed and stays cheap when armed, on a full ``main_algorithm``
run over a Fig 5c-shape synthetic instance.  Results land in
``BENCH_obs_overhead.json`` at the repo root:

* ``disarmed`` — per-call cost of the ``probes.active()`` fast path (one
  global load + ``None`` test), the exact number of probe touches one
  solve executes (counted, not estimated), and the resulting overhead
  fraction relative to the disarmed solve's wall-clock.  **Gate: this
  fraction must stay below 1% or the script exits non-zero.**  The
  analytic form is used because the pre-instrumentation solver no longer
  exists to A/B against; counting touches and pricing the fast path
  bounds the disarmed cost from above.
* ``armed`` — direct A/B of armed vs disarmed solve wall-clock
  (informational; armed cost is end-of-run aggregation, so it is a
  per-solve constant, not per-iteration work).

The JSON is validated against the expected schema before it is written;
a malformed document also exits non-zero.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Dict

import numpy as np

from repro.core.greedy import main_algorithm
from repro.obs import probes

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_obs_overhead.json"
DISARMED_OVERHEAD_LIMIT = 0.01  # the 1% gate


def _best_seconds(fn: Callable[[], None], repeats: int) -> float:
    """Minimum wall-clock of ``repeats`` runs (noise-robust point estimate)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _active_call_seconds() -> float:
    """Per-call cost of the disarmed ``probes.active()`` fast path."""
    import timeit

    loops = 200_000
    per_loop = min(
        timeit.repeat("active()", globals={"active": probes.active}, number=loops, repeat=5)
    ) / loops
    # Subtract the bare-loop baseline so we price the call, not the harness.
    baseline = min(
        timeit.repeat("pass", number=loops, repeat=5)
    ) / loops
    return max(per_loop - baseline, 1e-10)


def _count_probe_touches(instance) -> int:
    """Count how many times one disarmed solve consults ``probes.active``.

    Counted by swapping in a tallying wrapper for the duration of a single
    solve — exact for this instance, so the analytic overhead bound uses
    the true touch count rather than a guess.
    """
    calls = {"n": 0}
    real_active = probes.active

    def counting_active():
        calls["n"] += 1
        return real_active()

    modules = _probe_consumers()
    try:
        for mod in modules:
            mod.active = counting_active  # type: ignore[attr-defined]
        main_algorithm(instance)
    finally:
        for mod in modules:
            mod.active = real_active  # type: ignore[attr-defined]
    return calls["n"]


def _probe_consumers():
    """The modules whose ``_obs_probes.active`` reference must be swapped."""
    # Consumers import the module (`from repro.obs import probes`) and call
    # `probes.active()` at probe time, so patching the one module object
    # covers every call site.
    return [probes]


def run(scale: float, repeats: int) -> Dict[str, object]:
    from repro.datasets.ecommerce import generate_ecommerce_dataset

    n_photos = max(40, int(160 * scale))
    n_queries = max(8, int(30 * scale))
    dataset = generate_ecommerce_dataset(
        "Fashion", n_photos, n_queries=n_queries, name="EC-Fashion", seed=103
    )
    instance = dataset.instance(dataset.total_cost() * 0.3)

    probes.disarm()
    disarmed_seconds = _best_seconds(lambda: main_algorithm(instance), repeats)
    touches = _count_probe_touches(instance)
    call_seconds = _active_call_seconds()
    disarmed_overhead = (touches * call_seconds) / disarmed_seconds

    probes.arm(registry=None)  # fresh registry so armed cost includes recording
    try:
        armed_seconds = _best_seconds(lambda: main_algorithm(instance), repeats)
    finally:
        probes.disarm()
    armed_overhead = max(0.0, (armed_seconds - disarmed_seconds) / disarmed_seconds)

    return {
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "cpus": len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity")
            else (os.cpu_count() or 1),
            "scale": scale,
            "repeats": repeats,
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        },
        "instance": {
            "n_photos": instance.n,
            "n_subsets": len(instance.subsets),
            "budget_fraction": 0.3,
        },
        "disarmed": {
            "solve_seconds": disarmed_seconds,
            "probe_touches_per_solve": touches,
            "active_call_seconds": call_seconds,
            "overhead_fraction": disarmed_overhead,
            "limit_fraction": DISARMED_OVERHEAD_LIMIT,
        },
        "armed": {
            "solve_seconds": armed_seconds,
            "overhead_fraction": armed_overhead,
        },
        "checks": {
            "disarmed_overhead_ok": bool(disarmed_overhead < DISARMED_OVERHEAD_LIMIT),
        },
    }


def validate_document(doc: Dict[str, object]) -> None:
    """Raise ``ValueError`` unless ``doc`` has the expected shape."""

    def need(mapping, key, kind, where):
        if key not in mapping:
            raise ValueError(f"missing key {where}.{key}")
        if not isinstance(mapping[key], kind):
            raise ValueError(
                f"{where}.{key} should be {kind}, got {type(mapping[key]).__name__}"
            )
        return mapping[key]

    meta = need(doc, "meta", dict, "$")
    for key in ("python", "numpy", "platform"):
        need(meta, key, str, "meta")
    need(meta, "cpus", int, "meta")
    need(doc, "instance", dict, "$")
    disarmed = need(doc, "disarmed", dict, "$")
    for key in ("solve_seconds", "active_call_seconds", "overhead_fraction"):
        value = need(disarmed, key, (int, float), "disarmed")
        if not value >= 0:
            raise ValueError(f"disarmed.{key} must be non-negative")
    touches = need(disarmed, "probe_touches_per_solve", int, "disarmed")
    if touches <= 0:
        raise ValueError("disarmed.probe_touches_per_solve must be positive")
    armed = need(doc, "armed", dict, "$")
    for key in ("solve_seconds", "overhead_fraction"):
        need(armed, key, (int, float), "armed")
    checks = need(doc, "checks", dict, "$")
    if not isinstance(checks.get("disarmed_overhead_ok"), bool):
        raise ValueError("checks.disarmed_overhead_ok must be a bool")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="instance size multiplier (1.0 = Fig 5c bench shape, 160 photos)",
    )
    parser.add_argument("--repeats", type=int, default=5, help="timing repeats (min taken)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT, help="output JSON path")
    args = parser.parse_args(argv)

    doc = run(args.scale, args.repeats)
    validate_document(doc)
    args.out.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")

    d, a = doc["disarmed"], doc["armed"]
    print(
        f"[bench_obs_overhead] n={doc['instance']['n_photos']} "
        f"subsets={doc['instance']['n_subsets']} cpus={doc['meta']['cpus']}"
    )
    print(
        f"  disarmed: solve {d['solve_seconds'] * 1e3:.2f}ms, "
        f"{d['probe_touches_per_solve']} probe touches x "
        f"{d['active_call_seconds'] * 1e9:.0f}ns = "
        f"{d['overhead_fraction']:.5%} overhead (limit {d['limit_fraction']:.0%})"
    )
    print(
        f"  armed   : solve {a['solve_seconds'] * 1e3:.2f}ms "
        f"({a['overhead_fraction']:.3%} vs disarmed)"
    )
    print(f"  wrote {args.out}")

    if not doc["checks"]["disarmed_overhead_ok"]:
        print(
            f"DISARMED OVERHEAD GATE FAILED: {d['overhead_fraction']:.4%} "
            f">= {d['limit_fraction']:.0%}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
