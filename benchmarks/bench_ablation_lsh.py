"""Ablation — SimHash LSH vs exact all-pairs sparsification.

Section 4.3: LSH finds "with probability arbitrarily close to 1 all
vectors pairs of similarity at least τ, except for an arbitrarily small
fraction", while only comparing colliding pairs.  The bench measures, per
subset-sweep: the fraction of pairs the LSH pipeline actually compared,
the recall of surviving entries against exact thresholding, and the
quality of the downstream solution.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.objective import score
from repro.core.solver import solve
from repro.sparsify.pipeline import sparsify_instance

from benchmarks.conftest import write_result

TAU = 0.6


def _run(p5k):
    inst = p5k.instance(p5k.total_cost() * 0.2)
    exact_inst, exact_report = sparsify_instance(inst, TAU, method="exact")
    lsh_inst, lsh_report = sparsify_instance(
        inst, TAU, method="lsh", target_recall=0.95, rng=np.random.default_rng(5)
    )
    # Entry recall: surviving LSH entries over surviving exact entries.
    recall = lsh_inst.similarity_nnz() / exact_inst.similarity_nnz()

    exact_sol = solve(exact_inst, "phocus")
    lsh_sol = solve(lsh_inst, "phocus")
    exact_value = score(inst, exact_sol.selection)
    lsh_value = score(inst, lsh_sol.selection)
    return exact_report, lsh_report, recall, exact_value, lsh_value


def test_ablation_lsh_vs_exact(benchmark, p5k):
    exact_report, lsh_report, recall, exact_value, lsh_value = benchmark.pedantic(
        _run, args=(p5k,), rounds=1, iterations=1
    )
    lines = [
        f"Ablation — LSH vs exact sparsification (tau={TAU})",
        f"pairs compared  : exact {exact_report.checked_fraction:.1%}, "
        f"lsh {lsh_report.checked_fraction:.1%}",
        f"entry recall    : {recall:.1%} (bands tuned for 95% pair recall)",
        f"solution quality: exact {exact_value:.3f}, lsh {lsh_value:.3f} "
        f"({lsh_value / exact_value:.1%} of exact)",
    ]
    # LSH must actually skip comparisons, keep high recall, and not hurt
    # the downstream solution materially.
    assert lsh_report.checked_fraction < exact_report.checked_fraction
    assert recall >= 0.8
    assert lsh_value >= 0.95 * exact_value
    write_result("ablation_lsh", "\n".join(lines))
