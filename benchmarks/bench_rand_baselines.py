"""Section 5.3 side-claim — RAND-A and RAND-D are interchangeable.

"Both RAND-A and RAND-D achieved almost identical quality scores, hence
we omit RAND-D and show only results for RAND-A."  The bench verifies the
claim on our substrate: across budgets and seeds, the two random
baselines' expected quality differs by only a few percent.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baselines import rand_add, rand_delete
from repro.core.objective import score

from benchmarks.conftest import write_result

FRACTIONS = (0.1, 0.3, 0.6)
SEEDS = range(8)


def _run(p1k):
    corpus = p1k.total_cost()
    rows = []
    for fraction in FRACTIONS:
        inst = p1k.instance(corpus * fraction)
        add_scores = [
            score(inst, rand_add(inst, np.random.default_rng(s))) for s in SEEDS
        ]
        del_scores = [
            score(inst, rand_delete(inst, np.random.default_rng(s))) for s in SEEDS
        ]
        rows.append((fraction, float(np.mean(add_scores)), float(np.mean(del_scores))))
    return rows


def test_rand_a_vs_rand_d(benchmark, p1k):
    rows = benchmark.pedantic(_run, args=(p1k,), rounds=1, iterations=1)
    lines = [
        "Section 5.3 — RAND-A vs RAND-D mean quality (8 seeds)",
        f"{'budget':>8} {'RAND-A':>10} {'RAND-D':>10} {'difference':>11}",
    ]
    for fraction, add_mean, del_mean, in rows:
        diff = abs(add_mean - del_mean) / max(add_mean, del_mean)
        lines.append(f"{fraction:>7.0%} {add_mean:>10.3f} {del_mean:>10.3f} {diff:>10.1%}")
        # "Almost identical": within 10% in expectation.
        assert diff < 0.10
    write_result("rand_baselines", "\n".join(lines))
