"""Ablation — UC vs CB sub-algorithm win rate (Section 5.3).

Algorithm 1 keeps the better of its two passes; the paper reports the
cost-aware CB pass won in roughly 90% of their runs, "validating our
claim that algorithms without explicit costs are not suited for our
problem".  The bench measures the win rate across datasets and budgets
and asserts CB wins a clear majority.
"""

from __future__ import annotations

import pytest

from repro.core.greedy import CB, UC, lazy_greedy

from benchmarks.conftest import write_result

FRACTIONS = (0.04, 0.08, 0.15, 0.3, 0.5)


def _run(datasets):
    rows = []
    cb_wins = ties = total = 0
    for dataset in datasets:
        corpus = dataset.total_cost()
        for fraction in FRACTIONS:
            inst = dataset.instance(corpus * fraction)
            uc = lazy_greedy(inst, UC)
            cb = lazy_greedy(inst, CB)
            total += 1
            if abs(cb.value - uc.value) <= 1e-9:
                ties += 1
                winner = "tie"
            elif cb.value > uc.value:
                cb_wins += 1
                winner = "CB"
            else:
                winner = "UC"
            rows.append((dataset.name, fraction, uc.value, cb.value, winner))
    return rows, cb_wins, ties, total


def test_ablation_uc_vs_cb(benchmark, p1k, p5k, ec_fashion):
    rows, cb_wins, ties, total = benchmark.pedantic(
        _run, args=([p1k, p5k, ec_fashion],), rounds=1, iterations=1
    )
    lines = [
        "Ablation — Algorithm 1 sub-procedure winner (UC vs CB)",
        f"{'dataset':<14} {'budget':>8} {'UC value':>10} {'CB value':>10} {'winner':>7}",
    ]
    for name, fraction, uc, cb, winner in rows:
        lines.append(f"{name:<14} {fraction:>7.0%} {uc:>10.3f} {cb:>10.3f} {winner:>7}")
    decided = total - ties
    rate = cb_wins / decided if decided else 1.0
    lines.append(
        f"CB won {cb_wins}/{decided} decided runs ({rate:.0%}); paper reports ~90%"
    )
    # Shape: the cost-aware pass dominates on heterogeneous-cost instances.
    assert cb_wins >= decided * 0.6
    write_result("ablation_uc_cb", "\n".join(lines))
