"""Extension — incremental maintenance vs from-scratch re-solve.

A deployed archive faces budget changes and photo arrivals between full
re-optimisations.  The bench measures the warm-path
(:func:`repro.extensions.incremental.maintain`) against a cold solve on
three event types, reporting quality retention and wall-time ratio.
Expected shape: maintenance keeps ≥95% of cold quality at a fraction of
the time (it only touches the changed margin).
"""

from __future__ import annotations

import time

import pytest

from repro.core.solver import solve
from repro.extensions.incremental import maintain

from benchmarks.conftest import write_result


def _run(p1k):
    corpus = p1k.total_cost()
    base = p1k.instance(corpus * 0.2)
    previous = solve(base, "phocus").selection

    events = [
        ("budget -50%", base.with_budget(base.budget * 0.5)),
        ("budget +100%", base.with_budget(base.budget * 2.0)),
        ("budget -20%", base.with_budget(base.budget * 0.8)),
    ]
    rows = []
    for name, changed in events:
        start = time.perf_counter()
        warm = maintain(changed, previous)
        warm_s = time.perf_counter() - start
        start = time.perf_counter()
        cold = solve(changed, "phocus")
        cold_s = time.perf_counter() - start
        rows.append(
            (name, warm.value, cold.value, warm_s, cold_s,
             len(warm.evicted), len(warm.added))
        )
    return rows


def test_extension_incremental_maintenance(benchmark, p1k):
    rows = benchmark.pedantic(_run, args=(p1k,), rounds=1, iterations=1)
    lines = [
        "Extension — warm maintenance vs cold re-solve",
        f"{'event':<14} {'warm value':>11} {'cold value':>11} {'kept':>7} "
        f"{'warm s':>8} {'cold s':>8} {'evicted':>8} {'added':>6}",
    ]
    for name, warm_v, cold_v, warm_s, cold_s, evicted, added in rows:
        kept = warm_v / cold_v if cold_v > 0 else 1.0
        lines.append(
            f"{name:<14} {warm_v:>11.3f} {cold_v:>11.3f} {kept:>6.1%} "
            f"{warm_s:>8.3f} {cold_s:>8.3f} {evicted:>8} {added:>6}"
        )
        assert kept >= 0.93, f"maintenance quality collapsed on {name}"
    write_result("extension_incremental", "\n".join(lines))
