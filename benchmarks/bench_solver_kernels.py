#!/usr/bin/env python
"""Kernel vs reference performance trajectory for the objective hot path.

A standalone script (``make bench-kernels``), not a pytest-benchmark
target: it measures the flat-CSR kernel backend of
:class:`repro.core.objective.CoverageState` against the ``reference``
oracle on a Fig 5c-scale synthetic instance (EC-Fashion shape), dense and
τ-sparsified, and writes the machine-readable trajectory to
``BENCH_solver_kernels.json`` at the repo root:

* ``micro`` — ops/sec for ``gain`` / ``add`` / ``all_gains`` per backend,
  with speed-up ratios;
* ``end_to_end`` — ``main_algorithm`` wall-clock per backend (selected via
  ``PHOCUS_COVERAGE_BACKEND``), with speed-ups;
* ``parallel`` — ``solve_many`` budget-sweep throughput at 1/2/4 workers
  plus scaling efficiency (read alongside ``meta.cpus``: efficiency is
  bounded by the CPUs actually visible to the process);
* ``checks`` — backend divergence proof: both backends must produce
  bit-identical selections, values, and pick orders, or the script exits
  non-zero (this is what the CI bench-smoke job enforces).

The JSON is validated against the expected schema before it is written;
a malformed document also exits non-zero.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List

import numpy as np

from repro.core.greedy import main_algorithm
from repro.core.objective import CoverageState
from repro.core.parallel import SolveTask, solve_batch
from repro.sparsify.threshold import threshold_sparsify

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_solver_kernels.json"
BACKENDS = ("kernel", "reference")
WORKER_COUNTS = (1, 2, 4)


# ---------------------------------------------------------------------------
# Timing helpers
# ---------------------------------------------------------------------------


def _best_seconds(fn: Callable[[], None], repeats: int) -> float:
    """Minimum wall-clock of ``repeats`` runs (noise-robust point estimate)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _bench_gain(instance, backend: str, repeats: int) -> float:
    """ops/sec for marginal-gain queries on a partially filled state."""
    state = CoverageState(instance, range(0, instance.n, 5), backend=backend)
    sample = [p for p in range(instance.n) if p not in state][: max(64, instance.n // 2)]

    def run() -> None:
        for p in sample:
            state.gain(p)

    return len(sample) / _best_seconds(run, repeats)


def _bench_add(instance, backend: str, repeats: int) -> float:
    """ops/sec for state updates, built up from the empty selection."""
    picks = list(range(0, instance.n, 2))

    def run() -> None:
        state = CoverageState(instance, backend=backend)
        for p in picks:
            state.add(p)

    # State construction is part of the loop but amortised over the adds;
    # both backends pay it, so the ratio stays honest.
    return len(picks) / _best_seconds(run, repeats)


def _bench_all_gains(instance, backend: str, repeats: int) -> float:
    state = CoverageState(instance, range(0, instance.n, 5), backend=backend)

    def run() -> None:
        state.all_gains()

    return 1.0 / _best_seconds(run, repeats)


def _bench_row_access(instance, repeats: int) -> Dict[str, float]:
    """``neighbors()`` vs ``row()`` throughput on a sparse backend.

    Guards the hot-path regression this repo fixed: ``row()`` materialises
    a dense length-m vector per call, while ``neighbors()`` returns
    zero-copy views into the CSR arrays.  The speed-up must stay > 1 or
    the sparse fast path has regressed to dense materialisation.
    """
    sim = instance.subsets[0].similarity
    m = len(sim)

    def run_neighbors() -> None:
        for i in range(m):
            sim.neighbors(i)

    def run_row() -> None:
        for i in range(m):
            sim.row(i)

    neighbors_ops = m / _best_seconds(run_neighbors, repeats)
    row_ops = m / _best_seconds(run_row, repeats)
    return {
        "neighbors_ops_per_sec": neighbors_ops,
        "row_ops_per_sec": row_ops,
        "speedup": neighbors_ops / row_ops,
    }


def _bench_micro(instance, repeats: int) -> Dict[str, Dict[str, float]]:
    out: Dict[str, Dict[str, float]] = {}
    for op, bench in (
        ("gain", _bench_gain),
        ("add", _bench_add),
        ("all_gains", _bench_all_gains),
    ):
        ops = {b: bench(instance, b, repeats) for b in BACKENDS}
        out[op] = {
            "kernel_ops_per_sec": ops["kernel"],
            "reference_ops_per_sec": ops["reference"],
            "speedup": ops["kernel"] / ops["reference"],
        }
    return out


def _bench_end_to_end(instance, repeats: int) -> Dict[str, float]:
    seconds: Dict[str, float] = {}
    saved = os.environ.get("PHOCUS_COVERAGE_BACKEND")
    try:
        for backend in BACKENDS:
            os.environ["PHOCUS_COVERAGE_BACKEND"] = backend
            seconds[backend] = _best_seconds(lambda: main_algorithm(instance), repeats)
    finally:
        if saved is None:
            os.environ.pop("PHOCUS_COVERAGE_BACKEND", None)
        else:
            os.environ["PHOCUS_COVERAGE_BACKEND"] = saved
    return {
        "kernel_seconds": seconds["kernel"],
        "reference_seconds": seconds["reference"],
        "speedup": seconds["reference"] / seconds["kernel"],
    }


def _bench_parallel(instance, n_tasks: int) -> Dict[str, object]:
    budgets = np.linspace(0.3, 1.0, n_tasks) * instance.budget
    tasks = [SolveTask(algorithm="phocus", budget=float(b)) for b in budgets]
    by_workers: Dict[str, Dict[str, float]] = {}
    for workers in WORKER_COUNTS:
        start = time.perf_counter()
        solutions = solve_batch(instance, tasks, workers=workers)
        elapsed = time.perf_counter() - start
        assert len(solutions) == n_tasks
        by_workers[str(workers)] = {
            "seconds": elapsed,
            "throughput_tasks_per_sec": n_tasks / elapsed,
        }
    base = by_workers["1"]["seconds"]
    return {
        "tasks": n_tasks,
        "workers": by_workers,
        "speedup_vs_1": {
            str(w): base / by_workers[str(w)]["seconds"] for w in WORKER_COUNTS[1:]
        },
        "efficiency": {
            str(w): base / by_workers[str(w)]["seconds"] / w for w in WORKER_COUNTS[1:]
        },
    }


# ---------------------------------------------------------------------------
# Divergence checks (the CI gate)
# ---------------------------------------------------------------------------


def _check_divergence(instance) -> Dict[str, object]:
    """Prove kernel and reference agree bit for bit on this instance."""
    problems: List[str] = []

    # Incremental state agreement on a deterministic interleaved add order.
    kernel = CoverageState(instance, backend="kernel")
    reference = CoverageState(instance, backend="reference")
    order = list(range(0, instance.n, 3)) + list(range(1, instance.n, 3))
    for p in order:
        if kernel.gain(p) != reference.gain(p):
            problems.append(f"gain({p}) differs between backends")
            break
        if kernel.add(p) != reference.add(p) or kernel.value != reference.value:
            problems.append(f"add({p}) / value differs between backends")
            break
    for qi in range(len(instance.subsets)):
        if not np.array_equal(kernel.coverage_of(qi), reference.coverage_of(qi)):
            problems.append(f"coverage of subset {qi} differs between backends")
            break

    # End-to-end agreement of the paper's main algorithm.
    runs = {}
    saved = os.environ.get("PHOCUS_COVERAGE_BACKEND")
    try:
        for backend in BACKENDS:
            os.environ["PHOCUS_COVERAGE_BACKEND"] = backend
            runs[backend] = main_algorithm(instance)
    finally:
        if saved is None:
            os.environ.pop("PHOCUS_COVERAGE_BACKEND", None)
        else:
            os.environ["PHOCUS_COVERAGE_BACKEND"] = saved
    k, r = runs["kernel"], runs["reference"]
    if k.selection != r.selection:
        problems.append("main_algorithm selections differ between backends")
    if k.value != r.value:
        problems.append("main_algorithm values differ between backends")
    if k.picks != r.picks:
        problems.append("main_algorithm pick orders differ between backends")
    return {"backend_divergence": bool(problems), "problems": problems}


# ---------------------------------------------------------------------------
# Schema
# ---------------------------------------------------------------------------


def validate_document(doc: Dict[str, object]) -> None:
    """Raise ``ValueError`` unless ``doc`` has the expected shape."""

    def need(mapping, key, kind, where):
        if key not in mapping:
            raise ValueError(f"missing key {where}.{key}")
        if not isinstance(mapping[key], kind):
            raise ValueError(
                f"{where}.{key} should be {kind}, got {type(mapping[key]).__name__}"
            )
        return mapping[key]

    meta = need(doc, "meta", dict, "$")
    for key in ("python", "numpy", "platform"):
        need(meta, key, str, "meta")
    need(meta, "cpus", int, "meta")
    need(meta, "scale", (int, float), "meta")
    need(doc, "instance", dict, "$")
    for variant in ("dense", "sparse"):
        micro = need(need(doc, "micro", dict, "$"), variant, dict, "micro")
        for op in ("gain", "add", "all_gains"):
            entry = need(micro, op, dict, f"micro.{variant}")
            for key in ("kernel_ops_per_sec", "reference_ops_per_sec", "speedup"):
                value = need(entry, key, (int, float), f"micro.{variant}.{op}")
                if not value > 0:
                    raise ValueError(f"micro.{variant}.{op}.{key} must be positive")
        e2e = need(need(doc, "end_to_end", dict, "$"), variant, dict, "end_to_end")
        for key in ("kernel_seconds", "reference_seconds", "speedup"):
            value = need(e2e, key, (int, float), f"end_to_end.{variant}")
            if not value > 0:
                raise ValueError(f"end_to_end.{variant}.{key} must be positive")
    ra = need(doc, "row_access", dict, "$")
    for key in ("neighbors_ops_per_sec", "row_ops_per_sec", "speedup"):
        value = need(ra, key, (int, float), "row_access")
        if not value > 0:
            raise ValueError(f"row_access.{key} must be positive")
    par = need(doc, "parallel", dict, "$")
    workers = need(par, "workers", dict, "parallel")
    for w in WORKER_COUNTS:
        entry = need(workers, str(w), dict, "parallel.workers")
        need(entry, "seconds", (int, float), f"parallel.workers.{w}")
        need(entry, "throughput_tasks_per_sec", (int, float), f"parallel.workers.{w}")
    need(par, "speedup_vs_1", dict, "parallel")
    checks = need(doc, "checks", dict, "$")
    if not isinstance(checks.get("backend_divergence"), bool):
        raise ValueError("checks.backend_divergence must be a bool")
    if not isinstance(checks.get("neighbors_zero_copy"), bool):
        raise ValueError("checks.neighbors_zero_copy must be a bool")


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def run(scale: float, repeats: int, parallel_tasks: int) -> Dict[str, object]:
    from repro.datasets.ecommerce import generate_ecommerce_dataset

    # Fig 5c shape: the EC-Fashion synthetic at the bench's default size,
    # solved at the 0.3-of-corpus budget.
    n_photos = max(40, int(160 * scale))
    n_queries = max(8, int(30 * scale))
    dataset = generate_ecommerce_dataset(
        "Fashion", n_photos, n_queries=n_queries, name="EC-Fashion", seed=103
    )
    dense = dataset.instance(dataset.total_cost() * 0.3)
    sparse, stats = threshold_sparsify(dense, 0.35)
    instances = {"dense": dense, "sparse": sparse}

    checks: Dict[str, object] = {"backend_divergence": False, "problems": []}
    for variant, instance in instances.items():
        result = _check_divergence(instance)
        checks["backend_divergence"] = bool(
            checks["backend_divergence"] or result["backend_divergence"]
        )
        checks["problems"] += [f"[{variant}] {p}" for p in result["problems"]]

    # Zero-copy regression assertion: neighbors() must return views into
    # the live CSR arrays, never per-call copies (let alone dense rows).
    sim = sparse.subsets[0].similarity
    _, csr_cols, csr_vals = sim.csr()
    idx0, val0 = sim.neighbors(0)
    checks["neighbors_zero_copy"] = bool(
        np.shares_memory(idx0, csr_cols) and np.shares_memory(val0, csr_vals)
    )
    if not checks["neighbors_zero_copy"]:
        checks["problems"].append(
            "[sparse] neighbors() no longer aliases the CSR arrays (copying?)"
        )

    row_access = _bench_row_access(sparse, repeats)
    if not row_access["speedup"] > 1.0:
        checks["problems"].append(
            "[sparse] neighbors() not faster than dense row() materialisation"
        )

    doc: Dict[str, object] = {
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "cpus": len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity")
            else (os.cpu_count() or 1),
            "scale": scale,
            "repeats": repeats,
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        },
        "instance": {
            "n_photos": dense.n,
            "n_subsets": len(dense.subsets),
            "budget_fraction": 0.3,
            "dense_nnz": dense.similarity_nnz(),
            "sparse_nnz": sparse.similarity_nnz(),
            "sparse_tau": 0.35,
            "sparse_kept_fraction": stats.kept_fraction,
        },
        "micro": {v: _bench_micro(i, repeats) for v, i in instances.items()},
        "row_access": row_access,
        "end_to_end": {v: _bench_end_to_end(i, repeats) for v, i in instances.items()},
        "parallel": _bench_parallel(dense, parallel_tasks),
        "checks": checks,
    }
    return doc


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="instance size multiplier (1.0 = Fig 5c bench shape, 160 photos)",
    )
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats (min taken)")
    parser.add_argument(
        "--parallel-tasks", type=int, default=8, help="sweep size for the scaling bench"
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT, help="output JSON path")
    args = parser.parse_args(argv)

    doc = run(args.scale, args.repeats, args.parallel_tasks)
    validate_document(doc)
    args.out.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")

    micro = doc["micro"]
    e2e = doc["end_to_end"]
    par = doc["parallel"]
    print(f"[bench_solver_kernels] n={doc['instance']['n_photos']} "
          f"subsets={doc['instance']['n_subsets']} cpus={doc['meta']['cpus']}")
    for variant in ("dense", "sparse"):
        ops = ", ".join(
            f"{op} {micro[variant][op]['speedup']:.2f}x" for op in ("gain", "add", "all_gains")
        )
        print(f"  {variant:>6}: micro [{ops}] | "
              f"main_algorithm {e2e[variant]['speedup']:.2f}x "
              f"({e2e[variant]['reference_seconds']:.3f}s -> "
              f"{e2e[variant]['kernel_seconds']:.3f}s)")
    ra = doc["row_access"]
    print(f"  sparse row access: neighbors() {ra['speedup']:.1f}x faster than row() "
          f"(zero-copy: {doc['checks']['neighbors_zero_copy']})")
    sp = ", ".join(f"{w}w {s:.2f}x" for w, s in par["speedup_vs_1"].items())
    print(f"  parallel: {par['tasks']} tasks, speedup vs 1 worker: {sp}")
    print(f"  wrote {args.out}")

    if doc["checks"]["backend_divergence"] or doc["checks"]["problems"]:
        print("BENCH CHECKS FAILED:", file=sys.stderr)
        for problem in doc["checks"]["problems"]:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
