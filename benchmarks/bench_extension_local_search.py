"""Extension — swap local search on top of Algorithm 1.

How much does a 1-swap post-optimisation pass add to the paper's greedy?
The literature expects little (greedy is strong on submodular knapsacks),
and measuring that residue quantifies how tight Algorithm 1 already is —
complementing the online-bound certificates with a constructive check.
"""

from __future__ import annotations

import time

import pytest

from repro.core.solver import solve
from repro.extensions.local_search import swap_local_search

from benchmarks.conftest import write_result

FRACTIONS = (0.05, 0.15, 0.35)


def _run(p1k):
    corpus = p1k.total_cost()
    rows = []
    for fraction in FRACTIONS:
        inst = p1k.instance(corpus * fraction)
        greedy = solve(inst, "phocus")
        start = time.perf_counter()
        refined = swap_local_search(inst, greedy.selection, max_passes=3)
        elapsed = time.perf_counter() - start
        rows.append((fraction, greedy.value, refined.value, refined.swaps, elapsed))
    return rows


def test_extension_local_search(benchmark, p1k):
    rows = benchmark.pedantic(_run, args=(p1k,), rounds=1, iterations=1)
    lines = [
        "Extension — 1-swap local search after Algorithm 1",
        f"{'budget':>8} {'greedy':>10} {'after swaps':>12} {'gain':>7} "
        f"{'swaps':>6} {'seconds':>8}",
    ]
    for fraction, greedy, refined, swaps, seconds in rows:
        gain = refined / greedy - 1.0 if greedy > 0 else 0.0
        lines.append(
            f"{fraction:>7.0%} {greedy:>10.3f} {refined:>12.3f} {gain:>6.2%} "
            f"{swaps:>6} {seconds:>8.2f}"
        )
        # Local search can only improve, and the greedy residue is small —
        # the constructive counterpart of the paper's high certificates.
        assert refined >= greedy - 1e-9
        assert gain < 0.10, "greedy left >10% on the table — investigate"
    write_result("extension_local_search", "\n".join(lines))
