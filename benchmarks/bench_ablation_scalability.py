"""Ablation — Sviridenko's optimal scheme vs the CELF lazy greedy (§4.2).

"The time complexity of the algorithm in [45] is Ω(B · n⁴) ... We
therefore leverage a more efficient algorithm ... the number of times it
evaluates the gain from adding a photo is O(B · n)."  The bench measures
both solvers' gain-evaluation counts and wall time on growing instances
and checks the paper's two claims: the evaluation gap explodes with n,
and the quality gap stays negligible.
"""

from __future__ import annotations

import time

import pytest

from repro.core.greedy import main_algorithm
from repro.core.sviridenko import sviridenko
from repro.datasets.public import generate_public_dataset

from benchmarks.conftest import write_result

SIZES = (12, 20, 30)


def _run():
    rows = []
    for n in SIZES:
        dataset = generate_public_dataset(n, max(3, n // 4), seed=n)
        inst = dataset.instance(dataset.total_cost() * 0.3)
        start = time.perf_counter()
        sv = sviridenko(inst)
        sv_seconds = time.perf_counter() - start
        start = time.perf_counter()
        celf = main_algorithm(inst)
        celf_seconds = time.perf_counter() - start
        rows.append((n, sv, sv_seconds, celf, celf_seconds))
    return rows


def test_ablation_sviridenko_vs_celf(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [
        "Ablation — Sviridenko [45] vs CELF [30] (gain evaluations & time)",
        f"{'n':>4} {'sv evals':>9} {'celf evals':>11} {'ratio':>8} "
        f"{'sv s':>8} {'celf s':>8} {'quality celf/sv':>16}",
    ]
    prev_ratio = 0.0
    for n, sv, sv_s, celf, celf_s in rows:
        ratio = sv.evaluations / max(1, celf.evaluations)
        quality = celf.value / sv.value if sv.value > 0 else 1.0
        lines.append(
            f"{n:>4} {sv.evaluations:>9} {celf.evaluations:>11} {ratio:>7.1f}x "
            f"{sv_s:>8.3f} {celf_s:>8.3f} {quality:>15.1%}"
        )
        # CELF keeps (almost) all the quality at a fraction of the work.
        assert quality >= 0.95
        assert ratio >= prev_ratio * 0.8  # the gap grows (roughly) with n
        prev_ratio = ratio
    final_ratio = rows[-1][1].evaluations / max(1, rows[-1][3].evaluations)
    assert final_ratio > 10, "the evaluation-count gap should be dramatic"
    write_result("ablation_scalability", "\n".join(lines))
