"""Ablation — contextualised vs plain similarity (the Section 2 novelty).

"An important novelty is that the embedding is contextualized by the
predefined subset, i.e. there is a different embedding of the same photo
for different predefined subsets."  The bench quantifies what the
contextualisation buys: the same dataset is solved under each similarity
derivation mode, each solution is scored under the full contextual
objective, and the paper's narrative (Section 5.3: "Using a contextual
similarity function improves performance") is asserted as
contextual-aware ≥ plain-cosine at every budget.
"""

from __future__ import annotations

import pytest

from repro.core.objective import score
from repro.core.solver import solve

from benchmarks.conftest import write_result

MODES = ("cosine", "max-distance", "centroid-reweight", "reweight+normalise")
FRACTIONS = (0.05, 0.15, 0.3)


def _run(ec_fashion):
    corpus = ec_fashion.total_cost()
    # The evaluation objective: the full contextual instance.
    rows = []
    for fraction in FRACTIONS:
        reference = ec_fashion.instance(corpus * fraction)
        row = {}
        for mode in MODES:
            surrogate = ec_fashion.instance(corpus * fraction, contextual_mode=mode)
            selection = solve(surrogate, "phocus").selection
            row[mode] = score(reference, selection)
        rows.append((fraction, row))
    return rows


def test_ablation_contextual_similarity(benchmark, ec_fashion):
    rows = benchmark.pedantic(_run, args=(ec_fashion,), rounds=1, iterations=1)
    lines = [
        "Ablation — solve under each SIM derivation, score on the contextual objective",
        f"{'budget':>8} " + " ".join(f"{m:>20}" for m in MODES),
    ]
    for fraction, row in rows:
        lines.append(
            f"{fraction:>7.0%} " + " ".join(f"{row[m]:>20.4f}" for m in MODES)
        )
        # Greedy is not monotone in its surrogate, so allow per-budget
        # near-ties; the contextual solve must never lose visibly.
        assert row["reweight+normalise"] >= row["cosine"] * (1 - 0.005)
    # In aggregate across the sweep, optimising the true contextual
    # objective dominates the plain-cosine surrogate.
    total_ctx = sum(row["reweight+normalise"] for _, row in rows)
    total_cos = sum(row["cosine"] for _, row in rows)
    assert total_ctx >= total_cos - 1e-9
    write_result("ablation_contextual", "\n".join(lines))
