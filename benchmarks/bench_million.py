#!/usr/bin/env python
"""Million-photo scaling trajectory for the fused streamed builder.

A standalone script (``make bench-million``), not a pytest-benchmark
target: it measures the fused ``repro.scale`` build path (embeddings →
banded SimHash candidates → τ-verified cosines → CSR instance → greedy
solve) against the legacy dense-then-sparsify path (materialise the full
``n × n`` cosine matrix, threshold it, solve) across archive scales, and
writes the machine-readable trajectory to ``BENCH_million.json`` at the
repo root:

* ``runs`` — per ``(mode, photos)`` measurement: peak RSS, build and
  solve wall-clock, candidate/kept counts.  Each measurement runs in its
  own subprocess (``--worker``) so ``ru_maxrss`` is that run's true high
  water mark, uninflated by earlier runs;
* ``checks`` — the gates CI enforces: the largest fused scale completes,
  fused peak memory grows sub-quadratically, the fused build needs ≥ 5×
  less peak RSS than dense-then-sparsify at the largest common scale,
  and fused picks are bit-identical to the unfused LSH pipeline at a
  matched seed and signature width.

``--smoke`` mode (the CI ``million-smoke`` job) re-runs the fused build
at one mid scale and gates its peak RSS / wall-clock against the
committed ``BENCH_million.json`` with generous headroom for slower
runners.  ``--million`` adds a 10^6-photo fused run (several minutes).

The JSON is validated against the expected schema before it is written;
a malformed document also exits non-zero.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import resource
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_million.json"

DIM = 16
TAU = 0.8
SEED = 0
BUDGET_FRACTION = 0.1
FUSED_SCALES = (4_000, 20_000, 100_000)
DENSE_SCALES = (4_000, 20_000)
IDENTITY_PHOTOS = 10_000
SMOKE_PHOTOS = 20_000
#: Headroom multipliers the smoke gate allows over the committed numbers
#: (CI runners are slower and noisier than the machine that committed them).
SMOKE_RSS_HEADROOM = 2.0
SMOKE_SECONDS_HEADROOM = 8.0


# ---------------------------------------------------------------------------
# Worker: one (mode, photos) measurement in a fresh process
# ---------------------------------------------------------------------------


def _peak_rss_bytes() -> int:
    # Linux reports ru_maxrss in KiB.
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def _selection_sha(selection) -> str:
    return hashlib.sha256(
        json.dumps([int(p) for p in selection]).encode()
    ).hexdigest()


def _build_plain_instance(costs, sparse, budget):
    from repro.core.instance import PARInstance, Photo, PredefinedSubset

    n = costs.size
    subset = PredefinedSubset(
        "archive",
        1.0,
        np.arange(n, dtype=np.int64),
        np.full(n, 1.0 / n),
        sparse,
        normalize=False,
    )
    photos = [Photo(photo_id=i, cost=float(c)) for i, c in enumerate(costs)]
    return PARInstance(photos, [subset], budget)


def run_worker(mode: str, photos: int, n_bits: Optional[int]) -> Dict[str, object]:
    from repro.core.greedy import main_algorithm
    from repro.scale import build_streamed_instance, synthetic_archive

    costs, embeddings = synthetic_archive(photos, dim=DIM, seed=SEED)
    budget = float(costs.sum()) * BUDGET_FRACTION
    t0 = time.perf_counter()

    if mode == "fused":
        instance, report = build_streamed_instance(
            costs,
            embeddings,
            budget,
            tau=TAU,
            n_bits="auto" if n_bits is None else n_bits,
            rng=SEED,
        )
        build_extras = {
            "n_bits": report.n_bits,
            "candidate_pairs": report.candidate_pairs,
            "kept_pairs": report.kept_pairs,
            "nnz": report.nnz,
            "phase_seconds": report.phase_seconds,
        }
    elif mode == "unfused":
        from repro.core.instance import SparseSimilarity
        from repro.sparsify.simhash import lsh_similar_pairs, recommended_bits

        width = n_bits if n_bits is not None else recommended_bits(photos, TAU)
        result = lsh_similar_pairs(
            embeddings, TAU, n_bits=width, rng=np.random.default_rng(SEED)
        )
        ii = np.array([p[0] for p in result.pairs], dtype=np.int64)
        jj = np.array([p[1] for p in result.pairs], dtype=np.int64)
        sparse = SparseSimilarity.from_pairs(
            photos, ii, jj, result.similarities, validate=False
        )
        instance = _build_plain_instance(costs, sparse, budget)
        build_extras = {
            "n_bits": width,
            "candidate_pairs": result.candidates_checked,
            "kept_pairs": len(result.pairs),
            "nnz": sparse.nnz(),
        }
    elif mode == "dense":
        # The legacy path this repo used before the fused builder: the
        # full n x n cosine matrix exists in memory before thresholding.
        from repro.core.instance import DenseSimilarity
        from repro.sparsify.simhash import unit_normalize

        unit = unit_normalize(embeddings)
        matrix = np.clip(unit @ unit.T, 0.0, 1.0)
        np.fill_diagonal(matrix, 1.0)
        dense = DenseSimilarity(matrix, validate=False)
        sparse = dense.sparsified(TAU)
        del matrix, dense
        instance = _build_plain_instance(costs, sparse, budget)
        build_extras = {"nnz": sparse.nnz()}
    else:
        raise ValueError(f"unknown mode {mode!r}")

    build_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    solution = main_algorithm(instance)
    solve_seconds = time.perf_counter() - t0

    out: Dict[str, object] = {
        "mode": mode,
        "photos": photos,
        "peak_rss_bytes": _peak_rss_bytes(),
        "build_seconds": build_seconds,
        "solve_seconds": solve_seconds,
        "total_seconds": build_seconds + solve_seconds,
        "value": solution.value,
        "n_selected": len(solution.selection),
        "selection_sha256": _selection_sha(solution.selection),
    }
    out.update(build_extras)
    return out


def _spawn_worker(
    mode: str, photos: int, n_bits: Optional[int] = None
) -> Dict[str, object]:
    cmd = [sys.executable, str(Path(__file__).resolve()), "--worker", mode, str(photos)]
    if n_bits is not None:
        cmd += ["--n-bits", str(n_bits)]
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    proc = subprocess.run(cmd, capture_output=True, text=True, env=env)
    if proc.returncode != 0:
        raise RuntimeError(
            f"worker {mode}@{photos} failed (exit {proc.returncode}):\n{proc.stderr}"
        )
    return json.loads(proc.stdout)


# ---------------------------------------------------------------------------
# Schema
# ---------------------------------------------------------------------------


def validate_document(doc: Dict[str, object]) -> None:
    """Raise ``ValueError`` unless ``doc`` has the expected shape."""

    def need(mapping, key, kind, where):
        if key not in mapping:
            raise ValueError(f"missing key {where}.{key}")
        if not isinstance(mapping[key], kind):
            raise ValueError(
                f"{where}.{key} should be {kind}, got {type(mapping[key]).__name__}"
            )
        return mapping[key]

    meta = need(doc, "meta", dict, "$")
    for key in ("python", "numpy", "platform"):
        need(meta, key, str, "meta")
    for key in ("cpus", "dim", "seed"):
        need(meta, key, int, "meta")
    need(meta, "tau", (int, float), "meta")
    runs = need(doc, "runs", list, "$")
    if not runs:
        raise ValueError("runs must be non-empty")
    for i, run in enumerate(runs):
        if not isinstance(run, dict):
            raise ValueError(f"runs[{i}] must be an object")
        mode = need(run, "mode", str, f"runs[{i}]")
        if mode not in ("fused", "dense", "unfused"):
            raise ValueError(f"runs[{i}].mode unknown: {mode!r}")
        need(run, "photos", int, f"runs[{i}]")
        for key in ("peak_rss_bytes", "build_seconds", "solve_seconds", "value"):
            value = need(run, key, (int, float), f"runs[{i}]")
            if not value > 0:
                raise ValueError(f"runs[{i}].{key} must be positive")
        need(run, "n_selected", int, f"runs[{i}]")
        need(run, "selection_sha256", str, f"runs[{i}]")
    checks = need(doc, "checks", dict, "$")
    for key in (
        "largest_fused_scale_completed",
        "subquadratic_memory",
        "fused_rss_advantage_ok",
        "picks_bit_identical",
    ):
        if not isinstance(checks.get(key), bool):
            raise ValueError(f"checks.{key} must be a bool")
    need(checks, "memory_scaling_exponent", (int, float), "checks")
    need(checks, "rss_ratio_at_common_scale", (int, float), "checks")
    identity = need(checks, "identity", dict, "checks")
    need(identity, "photos", int, "checks.identity")


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def _meta() -> Dict[str, object]:
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "cpus": len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else (os.cpu_count() or 1),
        "dim": DIM,
        "tau": TAU,
        "seed": SEED,
        "budget_fraction": BUDGET_FRACTION,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }


def run_bench(fused_scales, dense_scales, identity_photos) -> Dict[str, object]:
    runs: List[Dict[str, object]] = []
    for photos in fused_scales:
        print(f"[bench_million] fused @ {photos} ...", flush=True)
        runs.append(_spawn_worker("fused", photos))
    for photos in dense_scales:
        print(f"[bench_million] dense @ {photos} ...", flush=True)
        runs.append(_spawn_worker("dense", photos))

    # Bit-identity gate: fused vs the unfused LSH pipeline at a matched
    # seed and the same (auto-resolved) signature width.
    print(f"[bench_million] identity fused/unfused @ {identity_photos} ...", flush=True)
    fused_id = _spawn_worker("fused", identity_photos)
    unfused_id = _spawn_worker("unfused", identity_photos, n_bits=fused_id["n_bits"])
    runs += [fused_id, unfused_id]

    fused_runs = sorted(
        (r for r in runs if r["mode"] == "fused"), key=lambda r: r["photos"]
    )
    dense_runs = sorted(
        (r for r in runs if r["mode"] == "dense"), key=lambda r: r["photos"]
    )
    largest_fused = fused_runs[-1]

    # Memory scaling: peak-RSS growth exponent between the two largest
    # fused scales.  A dense O(n^2) build would show exponent -> 2; the
    # fused path must stay clearly sub-quadratic.
    a, b = fused_runs[-2], fused_runs[-1]
    exponent = float(
        np.log(b["peak_rss_bytes"] / a["peak_rss_bytes"])
        / np.log(b["photos"] / a["photos"])
    )

    common = set(r["photos"] for r in fused_runs) & set(
        r["photos"] for r in dense_runs
    )
    largest_common = max(common)
    fused_at = next(r for r in fused_runs if r["photos"] == largest_common)
    dense_at = next(r for r in dense_runs if r["photos"] == largest_common)
    rss_ratio = dense_at["peak_rss_bytes"] / fused_at["peak_rss_bytes"]

    checks = {
        "largest_fused_scale_completed": bool(
            largest_fused["n_selected"] > 0 and largest_fused["value"] > 0
        ),
        "memory_scaling_exponent": exponent,
        "subquadratic_memory": bool(exponent < 1.7),
        "rss_ratio_at_common_scale": float(rss_ratio),
        "common_scale": int(largest_common),
        "fused_rss_advantage_ok": bool(rss_ratio >= 5.0),
        "identity": {
            "photos": int(identity_photos),
            "n_bits": int(fused_id["n_bits"]),
            "fused_sha": fused_id["selection_sha256"],
            "unfused_sha": unfused_id["selection_sha256"],
        },
        "picks_bit_identical": bool(
            fused_id["selection_sha256"] == unfused_id["selection_sha256"]
            and fused_id["value"] == unfused_id["value"]
            and fused_id["kept_pairs"] == unfused_id["kept_pairs"]
            and fused_id["candidate_pairs"] == unfused_id["candidate_pairs"]
        ),
    }
    return {"meta": _meta(), "runs": runs, "checks": checks}


def run_smoke(committed_path: Path) -> int:
    committed = json.loads(committed_path.read_text())
    validate_document(committed)
    baseline = next(
        r
        for r in committed["runs"]
        if r["mode"] == "fused" and r["photos"] == SMOKE_PHOTOS
    )
    print(f"[million-smoke] fused @ {SMOKE_PHOTOS} ...", flush=True)
    run = _spawn_worker("fused", SMOKE_PHOTOS)
    rss_limit = baseline["peak_rss_bytes"] * SMOKE_RSS_HEADROOM
    seconds_limit = baseline["total_seconds"] * SMOKE_SECONDS_HEADROOM
    print(
        f"  peak RSS {run['peak_rss_bytes'] / 1e6:.0f} MB "
        f"(limit {rss_limit / 1e6:.0f} MB), "
        f"wall {run['total_seconds']:.1f}s (limit {seconds_limit:.1f}s), "
        f"nnz {run['nnz']}"
    )
    failures = []
    if run["peak_rss_bytes"] > rss_limit:
        failures.append("peak RSS above committed baseline headroom")
    if run["total_seconds"] > seconds_limit:
        failures.append("wall-clock above committed baseline headroom")
    if run["kept_pairs"] != baseline["kept_pairs"]:
        failures.append(
            f"kept pairs drifted: {run['kept_pairs']} != {baseline['kept_pairs']} "
            "(the build is no longer deterministic at a fixed seed)"
        )
    if run["selection_sha256"] != baseline["selection_sha256"]:
        failures.append("greedy picks drifted from the committed baseline")
    for f in failures:
        print(f"MILLION-SMOKE FAILURE: {f}", file=sys.stderr)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--worker", nargs=2, metavar=("MODE", "PHOTOS"))
    parser.add_argument("--n-bits", type=int, default=None)
    parser.add_argument(
        "--scales",
        default=",".join(str(s) for s in FUSED_SCALES),
        help="comma-separated fused scales",
    )
    parser.add_argument(
        "--dense-scales",
        default=",".join(str(s) for s in DENSE_SCALES),
        help="comma-separated dense-then-sparsify scales",
    )
    parser.add_argument(
        "--identity-photos",
        type=int,
        default=IDENTITY_PHOTOS,
        help="scale of the fused-vs-unfused bit-identity gate",
    )
    parser.add_argument(
        "--million",
        action="store_true",
        help="additionally run the fused build at 10^6 photos (minutes)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: one fused run gated against the committed JSON",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    if args.worker:
        mode, photos = args.worker
        print(json.dumps(run_worker(mode, int(photos), args.n_bits)))
        return 0

    if args.smoke:
        return run_smoke(args.out)

    fused_scales = sorted(int(s) for s in args.scales.split(","))
    if args.million:
        fused_scales = sorted(set(fused_scales) | {1_000_000})
    dense_scales = sorted(int(s) for s in args.dense_scales.split(","))
    doc = run_bench(fused_scales, dense_scales, args.identity_photos)
    validate_document(doc)
    args.out.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")

    checks = doc["checks"]
    for run in doc["runs"]:
        extra = f", nnz {run['nnz']}" if "nnz" in run else ""
        print(
            f"  {run['mode']:>7} @ {run['photos']:>7}: "
            f"RSS {run['peak_rss_bytes'] / 1e6:8.0f} MB, "
            f"build {run['build_seconds']:7.2f}s, solve {run['solve_seconds']:6.2f}s"
            f"{extra}"
        )
    print(
        f"  memory exponent {checks['memory_scaling_exponent']:.2f} "
        f"(sub-quadratic: {checks['subquadratic_memory']}), "
        f"fused vs dense RSS at {checks['common_scale']}: "
        f"{checks['rss_ratio_at_common_scale']:.1f}x "
        f"(>= 5x: {checks['fused_rss_advantage_ok']}), "
        f"picks bit-identical: {checks['picks_bit_identical']}"
    )
    print(f"  wrote {args.out}")

    failed = [
        key
        for key in (
            "largest_fused_scale_completed",
            "subquadratic_memory",
            "fused_rss_advantage_ok",
            "picks_bit_identical",
        )
        if not checks[key]
    ]
    if failed:
        print(f"BENCH GATES FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
