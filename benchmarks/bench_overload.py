#!/usr/bin/env python
"""Overload resilience benchmark with SLO gates.

A standalone script (``make overload-smoke``), not a pytest-benchmark
target: it drives the HTTP service's ``by_ref`` solve path at roughly
3x its admitted capacity and proves the load-shedding story end to end.
Results land in ``BENCH_overload.json`` at the repo root.

Two sequential phases run the *same* workload — N client threads, each
solving its own stored instance R times over real HTTP, with no client
retries — against the same persistent store root:

* **baseline** — no resilience bundle: every request is admitted and
  solved no matter how many arrive at once.  Under overload each solve
  pays full CPU contention; latency is whatever it is.
* **resilient** — an :class:`~repro.resilience.AdmissionController`
  bounds in-flight solves (``max_inflight``) and a
  :class:`~repro.resilience.BrownoutPolicy` serves opted-in clients
  cheaper answers under pressure.  Excess requests shed *fast* with a
  structured 503 and a ``Retry-After`` header instead of queueing.
  After the load, the service drains gracefully.

Gates (non-zero exit on violation):

1. ``sheds_structured`` — every 503 carries a positive ``Retry-After``
   header and a known body ``reason``; under ~3x overload at least one
   request must actually shed.
2. ``admitted_p99_bounded`` — p99 latency of *admitted* resilient
   requests must not exceed 1.25x the baseline p99 (shedding exists to
   keep admitted work fast; admitted requests run at bounded
   concurrency and must never queue behind the whole burst).
3. ``bounded_inflight`` — the controller's peak in-flight count never
   exceeds ``max_inflight``.
4. ``goodput_ok`` — successful solves per wall-second in the resilient
   phase stay within 2x of baseline goodput (shedding trades a bounded
   amount of completed work for bounded latency, not a collapse).
5. ``results_bit_identical`` — every non-degraded 200 matches the
   baseline answer for its tenant exactly; degraded answers are always
   labeled.
6. ``drained_clean`` — the post-load drain reports ``drained`` and no
   ``/dev/shm`` segment survives it.

The JSON document is validated against the expected schema before it is
written; a malformed document also exits non-zero.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import platform
import shutil
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.core.serialize import instance_to_dict
from repro.datasets.ecommerce import generate_ecommerce_dataset
from repro.obs import probes
from repro.resilience import AdmissionController, BrownoutPolicy, Resilience
from repro.system.service import PhocusService
from repro.tenants import Tenants

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_overload.json"

_KNOWN_SHED_REASONS = {
    "capacity",
    "tenant_fairness",
    "deadline_unmeetable",
    "queue_full_soon",
    "draining",
}


def _make_instance(seed: int, n_photos: int):
    dataset = generate_ecommerce_dataset(
        "Fashion",
        n_photos,
        n_queries=max(6, n_photos // 12),
        name=f"overload-{seed}",
        seed=seed,
    )
    return dataset.instance(dataset.total_cost() * 0.35)


def _put_instance(address: str, tenant: str, instance_id: str, doc: Dict) -> None:
    req = urllib.request.Request(
        f"http://{address}/tenants/{tenant}/instances/{instance_id}",
        data=json.dumps({"instance": doc}).encode("utf-8"),
        method="PUT",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=120) as resp:
        if resp.status not in (200, 201):
            raise RuntimeError(f"PUT answered {resp.status}")


def _post_solve(address: str, payload: Dict, timeout: float = 300.0) -> Dict:
    """One timed request; 503s are data here, not failures."""
    req = urllib.request.Request(
        f"http://{address}/solve",
        data=json.dumps(payload).encode("utf-8"),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    start = time.perf_counter()
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            elapsed = time.perf_counter() - start
            return {
                "status": resp.status,
                "seconds": elapsed,
                "retry_after": resp.headers.get("Retry-After"),
                "body": json.loads(resp.read().decode("utf-8")),
            }
    except urllib.error.HTTPError as exc:
        elapsed = time.perf_counter() - start
        return {
            "status": exc.code,
            "seconds": elapsed,
            "retry_after": exc.headers.get("Retry-After"),
            "body": json.loads(exc.read().decode("utf-8")),
        }


def _percentile(samples: List[float], q: float) -> float:
    if not samples:
        return float("nan")
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))]


def _run_phase(
    *,
    root: str,
    prefix: str,
    n_clients: int,
    rounds: int,
    resilience: Optional[Resilience],
    upload_docs: Optional[Dict[str, Dict]] = None,
) -> Dict[str, object]:
    """One service lifetime: optional uploads, overload burst, drain."""
    probes.disarm()  # fresh per-phase metrics registry
    tenants = Tenants(root, cache_bytes=1024 * 1024 * 1024, name_prefix=prefix)
    outcomes: Dict[str, List[Dict]] = {}
    transport_errors: List[str] = []

    with PhocusService(workers=0, tenants=tenants, resilience=resilience) as service:
        address = service.address
        if upload_docs:
            for tenant, doc in upload_docs.items():
                _put_instance(address, tenant, "archive", doc)

        barrier = threading.Barrier(n_clients + 1)

        def client(index: int, tenant: str) -> None:
            mine: List[Dict] = []
            payload = {"by_ref": {"tenant": tenant, "instance_id": "archive"}}
            if resilience is not None and index % 2 == 1:
                payload["degraded_ok"] = True  # half the fleet opts in
            try:
                barrier.wait(timeout=60)
                for _ in range(rounds):
                    mine.append(_post_solve(address, payload))
            except Exception as exc:  # noqa: BLE001 - reported in the doc
                transport_errors.append(f"{tenant}: {exc!r}")
            finally:
                outcomes[tenant] = mine

        threads = [
            threading.Thread(target=client, args=(i, f"tenant{i:02d}"))
            for i in range(n_clients)
        ]
        for t in threads:
            t.start()
        barrier.wait(timeout=60)
        wall_start = time.perf_counter()
        for t in threads:
            t.join()
        wall = time.perf_counter() - wall_start

        admission_snapshot = (
            resilience.admission.snapshot()
            if resilience is not None and resilience.admission is not None
            else None
        )
        drain_summary = service.drain(grace_seconds=10.0) if resilience else None

    tenants.close()
    probes.disarm()
    leaked = glob.glob(f"/dev/shm/{prefix}-*")

    flat = [r for results in outcomes.values() for r in results]
    ok = [r for r in flat if r["status"] == 200]
    shed = [r for r in flat if r["status"] == 503]
    degraded = [r for r in ok if "degraded" in r["body"]]
    ok_lat = [r["seconds"] for r in ok]
    selections = {
        tenant: [
            r["body"]["selection"]
            for r in results
            if r["status"] == 200 and "degraded" not in r["body"]
        ]
        for tenant, results in outcomes.items()
    }
    return {
        "requests": len(flat),
        "ok": len(ok),
        "shed": len(shed),
        "degraded": len(degraded),
        "other_status": sorted(
            {r["status"] for r in flat} - {200, 503}
        ),
        "transport_errors": transport_errors,
        "wall_seconds": wall,
        "goodput_rps": (len(ok) / wall) if wall > 0 else float("nan"),
        "ok_p50_ms": _percentile(ok_lat, 0.50) * 1e3,
        "ok_p95_ms": _percentile(ok_lat, 0.95) * 1e3,
        "ok_p99_ms": _percentile(ok_lat, 0.99) * 1e3,
        "shed_p99_ms": _percentile([r["seconds"] for r in shed], 0.99) * 1e3,
        "shed_reasons": sorted({r["body"].get("reason") for r in shed}),
        "bad_sheds": [
            {"retry_after": r["retry_after"], "reason": r["body"].get("reason")}
            for r in shed
            if not (
                r["retry_after"]
                and r["retry_after"].isdigit()
                and int(r["retry_after"]) >= 1
                and r["body"].get("reason") in _KNOWN_SHED_REASONS
            )
        ],
        "admission": admission_snapshot,
        "drain": drain_summary,
        "leaked_segments": leaked,
        "selections": selections,
    }


def run(n_clients: int, rounds: int, n_photos: int, max_inflight: int) -> Dict[str, object]:
    prefix = f"phocus-overload-{os.getpid()}"
    root = tempfile.mkdtemp(prefix="phocus-overload-store-")
    try:
        docs = {
            f"tenant{i:02d}": instance_to_dict(_make_instance(2000 + i, n_photos))
            for i in range(n_clients)
        }
        baseline = _run_phase(
            root=root,
            prefix=prefix,
            n_clients=n_clients,
            rounds=rounds,
            resilience=None,
            upload_docs=docs,
        )
        resilient = _run_phase(
            root=root,
            prefix=prefix,
            n_clients=n_clients,
            rounds=rounds,
            resilience=Resilience(
                admission=AdmissionController(
                    max_inflight, retry_after_seconds=1.0
                ),
                brownout=BrownoutPolicy(tau=0.3, degrade_at=0.7),
            ),
        )
    finally:
        shutil.rmtree(root, ignore_errors=True)

    base_sel = baseline.pop("selections")
    res_sel = resilient.pop("selections")
    # Every full-fidelity resilient answer must equal the baseline answer
    # for its tenant, and at least one tenant must have produced one.
    compared = 0
    identical = True
    for tenant, rounds_sel in res_sel.items():
        reference = base_sel.get(tenant) or [None]
        for sel in rounds_sel:
            compared += 1
            if sel != reference[0]:
                identical = False
    base_flat = [s for sels in base_sel.values() for s in sels]
    baseline_consistent = all(
        sels and all(s == sels[0] for s in sels) for sels in base_sel.values()
    )

    admission = resilient["admission"] or {}
    checks = {
        "baseline_all_ok": (
            baseline["ok"] == baseline["requests"] > 0
            and not baseline["transport_errors"]
            and bool(base_flat)
            and baseline_consistent
        ),
        "resilient_no_errors": (
            not resilient["other_status"] and not resilient["transport_errors"]
        ),
        "sheds_structured": (
            resilient["shed"] > 0 and not resilient["bad_sheds"]
        ),
        "admitted_p99_bounded": bool(
            resilient["ok"] > 0
            and resilient["ok_p99_ms"] <= baseline["ok_p99_ms"] * 1.25
        ),
        "bounded_inflight": bool(
            admission.get("peak_inflight", max_inflight + 1) <= max_inflight
        ),
        "goodput_ok": bool(
            resilient["goodput_rps"] >= baseline["goodput_rps"] / 2.0
        ),
        "results_bit_identical": bool(identical and compared > 0),
        "drained_clean": bool(
            (resilient["drain"] or {}).get("state") == "drained"
            and resilient["leaked_segments"] == []
            and baseline["leaked_segments"] == []
        ),
    }
    return {
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "cpus": len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity")
            else (os.cpu_count() or 1),
            "clients": n_clients,
            "rounds_per_client": rounds,
            "n_photos": n_photos,
            "max_inflight": max_inflight,
            "overload_factor": n_clients / max_inflight,
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        },
        "baseline": baseline,
        "resilient": resilient,
        "checks": checks,
    }


def validate_document(doc: Dict[str, object]) -> None:
    """Raise ``ValueError`` unless ``doc`` has the expected shape."""

    def need(mapping, key, kind, where):
        if key not in mapping:
            raise ValueError(f"missing key {where}.{key}")
        if not isinstance(mapping[key], kind):
            raise ValueError(
                f"{where}.{key} should be {kind}, got {type(mapping[key]).__name__}"
            )
        return mapping[key]

    meta = need(doc, "meta", dict, "$")
    for key in ("python", "numpy", "platform"):
        need(meta, key, str, "meta")
    if need(meta, "clients", int, "meta") < 1:
        raise ValueError("meta.clients must be positive")
    if need(meta, "max_inflight", int, "meta") < 1:
        raise ValueError("meta.max_inflight must be positive")
    for phase in ("baseline", "resilient"):
        body = need(doc, phase, dict, "$")
        if need(body, "requests", int, phase) < 1:
            raise ValueError(f"{phase}.requests must be positive")
        for key in ("ok", "shed", "degraded"):
            need(body, key, int, phase)
        for key in ("ok_p50_ms", "ok_p95_ms", "ok_p99_ms", "goodput_rps"):
            if not need(body, key, (int, float), phase) >= 0:
                raise ValueError(f"{phase}.{key} must be non-negative")
        need(body, "transport_errors", list, phase)
        need(body, "leaked_segments", list, phase)
    need(doc["resilient"], "admission", dict, "resilient")
    need(doc["resilient"], "drain", dict, "resilient")
    checks = need(doc, "checks", dict, "$")
    for key in (
        "baseline_all_ok",
        "resilient_no_errors",
        "sheds_structured",
        "admitted_p99_bounded",
        "bounded_inflight",
        "goodput_ok",
        "results_bit_identical",
        "drained_clean",
    ):
        if not isinstance(checks.get(key), bool):
            raise ValueError(f"checks.{key} must be a bool")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--clients", type=int, default=12, help="concurrent client threads"
    )
    parser.add_argument(
        "--rounds", type=int, default=5, help="requests per client per phase"
    )
    parser.add_argument(
        "--photos", type=int, default=120, help="photos per tenant instance"
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=4,
        help="admitted concurrency in the resilient phase",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke shape: same overload factor, fewer rounds, smaller instances",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT, help="output JSON path")
    args = parser.parse_args(argv)
    if args.quick:
        args.rounds = min(args.rounds, 3)
        args.photos = min(args.photos, 60)
    if args.clients <= args.max_inflight:
        parser.error("--clients must exceed --max-inflight (no overload otherwise)")

    doc = run(args.clients, args.rounds, args.photos, args.max_inflight)
    validate_document(doc)
    args.out.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")

    base, res, checks = doc["baseline"], doc["resilient"], doc["checks"]
    meta = doc["meta"]
    print(
        f"[bench_overload] clients={meta['clients']} max_inflight={meta['max_inflight']} "
        f"(~{meta['overload_factor']:.1f}x overload) rounds={meta['rounds_per_client']} "
        f"photos={meta['n_photos']} cpus={meta['cpus']}"
    )
    print(
        f"  baseline:  {base['ok']}/{base['requests']} ok  "
        f"p99 {base['ok_p99_ms']:.1f}ms  goodput {base['goodput_rps']:.1f} rps"
    )
    print(
        f"  resilient: {res['ok']}/{res['requests']} ok, {res['shed']} shed "
        f"({', '.join(r for r in res['shed_reasons'] if r)}), {res['degraded']} degraded  "
        f"admitted p99 {res['ok_p99_ms']:.1f}ms  shed p99 {res['shed_p99_ms']:.1f}ms  "
        f"goodput {res['goodput_rps']:.1f} rps"
    )
    print(f"  drain: {res['drain']}  peak_inflight={res['admission']['peak_inflight']}")
    print(f"  checks: {checks}")
    if not all(checks.values()):
        print("[bench_overload] SLO GATE FAILED", file=sys.stderr)
        return 1
    print(f"  wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
