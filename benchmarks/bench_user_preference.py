"""Section 5.4, part 2 — expert preference study (PHOcus vs Greedy-NCS).

Experts compared the two best methods on 50 samples of ~100 photos per
domain and picked the better selection (or "cannot decide").  Paper
counts — Fashion 35/3/12, Electronics 37/4/9, Home & Garden 34/5/11 —
i.e. PHOcus preferred by a wide margin with a meaningful tie fraction.

The bench replays the protocol with the simulated expert judge and
asserts the count shape per domain: PHOcus wins a clear majority of the
decided comparisons.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.study.gold import ExpertJudge, run_preference_study

from benchmarks.conftest import write_result

ITERATIONS = 20
SAMPLE_SIZE = 60


def _run(domains):
    rows = []
    for name, dataset in domains:
        inst = dataset.instance(dataset.total_cost())
        counts = run_preference_study(
            inst,
            iterations=ITERATIONS,
            sample_size=min(SAMPLE_SIZE, inst.n),
            budget_fraction=0.2,
            judge=ExpertJudge(indifference=0.03, error_rate=0.05,
                              rng=np.random.default_rng(97)),
            rng=np.random.default_rng(97),
        )
        rows.append((name, counts))
    return rows


def test_user_preference_study(benchmark, ec_fashion, ec_electronics, ec_home):
    domains = [
        ("Fashion", ec_fashion),
        ("Electronics", ec_electronics),
        ("Home & Garden", ec_home),
    ]
    rows = benchmark.pedantic(_run, args=(domains,), rounds=1, iterations=1)
    lines = [
        f"Section 5.4 part 2 — preference counts over {ITERATIONS} iterations",
        f"{'domain':<15} {'PHOcus':>8} {'G-NCS':>8} {'cannot decide':>14}",
    ]
    for name, counts in rows:
        lines.append(
            f"{name:<15} {counts.a_wins:>8} {counts.b_wins:>8} {counts.ties:>14}"
        )
        # Paper shape: PHOcus preferred in the large majority of decided
        # rounds (35-37 of 38-41 decided in the paper).
        decided = counts.a_wins + counts.b_wins
        if decided:
            assert counts.a_wins / decided >= 0.6, f"{name}: PHOcus not preferred"
        assert counts.iterations == ITERATIONS
    lines.append("(paper, 50 iterations: 35/3/12, 37/4/9, 34/5/11)")
    write_result("user_preference", "\n".join(lines))
