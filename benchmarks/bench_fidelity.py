#!/usr/bin/env python
"""Multi-fidelity budget-vs-quality frontier vs discard-only PHOcus.

A standalone script (``make bench-fidelity``), not a pytest-benchmark
target: it sweeps byte budgets over one τ-thresholded synthetic archive
and, at every budget, runs the exclusive multi-fidelity solver
(:func:`repro.fidelity.solver.fidelity_main` on the
:data:`~repro.fidelity.catalog.DEFAULT_TIERS` recompression menu)
against the discard-only baseline
(:func:`repro.core.greedy.main_algorithm`) on the *same* instance, and
writes the machine-readable document to ``BENCH_fidelity.json`` at the
repo root:

* ``runs`` — per budget fraction: both objective values, wall-clock
  (median of repeats), evaluation counts, the quality report (kept /
  recompressed / by-tier / mean fidelity), the applied upgrade count,
  the per-point dominance verdict, and the deterministic selection hash
  of the chosen ``(photo, variant)`` pairs;
* ``checks`` — the gates CI enforces: the multi-fidelity value
  **weakly dominates** discard-only at every matched budget and
  **strictly** at one or more; aggregate solve-time overhead (summed
  fidelity seconds over summed discard seconds) stays **<= 2x**; and a
  trivial (originals-only) catalog reproduces the discard-only picks
  **bit for bit**.

``--smoke`` mode (the CI ``fidelity-smoke`` job) re-runs the sweep and
gates dominance, overhead, and the degradation contract against the
committed ``BENCH_fidelity.json`` (selection hashes must match — the
solver is deterministic at a fixed seed; wall-clock gets generous
headroom for slower runners).

The JSON is validated against the expected schema before it is written;
a malformed document also exits non-zero.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_fidelity.json"

PHOTOS = 2_000
DIM = 16
NOISE = 0.8
TAU = 0.8
SEED = 7
#: Matched-budget sweep, as fractions of the archive's total bytes.
BUDGET_FRACTIONS = (0.1, 0.2, 0.35, 0.5)
REPEATS = 3
#: Aggregate solve-time overhead gate: Σ fidelity seconds / Σ discard
#: seconds (per-point ratios are too noisy at tight-budget denominators).
OVERHEAD_GATE = 2.0
#: Wall-clock headroom the smoke gate allows over the committed numbers.
SMOKE_SECONDS_HEADROOM = 8.0


def _selection_sha(chosen: Dict[int, int]) -> str:
    """Deterministic hash of the chosen ``(photo, variant)`` pairs."""
    pairs = sorted((int(p), int(v)) for p, v in chosen.items())
    return hashlib.sha256(json.dumps(pairs).encode()).hexdigest()


def _median_seconds(fn, repeats: int):
    """``(median_seconds, last_result)`` of ``repeats`` runs of ``fn``.

    Both solvers are deterministic and read-only on the instance, so
    repetition is safe and the median discards allocator warm-up noise.
    """
    samples = []
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - t0)
    samples.sort()
    return samples[len(samples) // 2], result


def build_archive():
    """The locked bench geometry: one sparse, singleton-heavy archive.

    ``noise=0.8`` at ``tau=0.8`` yields many photos with no above-τ
    neighbour — exactly the regime where discarding is expensive (each
    drop forfeits a photo's entire relevance) and recompression shines.
    """
    from repro.fidelity import VariantCatalog
    from repro.scale import build_streamed_instance, synthetic_archive

    costs, embeddings = synthetic_archive(
        PHOTOS, dim=DIM, noise=NOISE, seed=SEED
    )
    total = float(costs.sum())
    instance, build = build_streamed_instance(
        costs, embeddings, total, tau=TAU, rng=SEED
    )
    catalog = VariantCatalog.default(instance.costs)
    return instance, catalog, total, build


def measure_point(instance, catalog, total: float, fraction: float):
    from repro.core.greedy import main_algorithm
    from repro.fidelity import fidelity_main

    budget = total * fraction
    inst_b = instance.with_budget(budget)

    fidelity_seconds, frun = _median_seconds(
        lambda: fidelity_main(inst_b, catalog), REPEATS
    )
    discard_seconds, drun = _median_seconds(
        lambda: main_algorithm(inst_b), REPEATS
    )
    quality = catalog.describe_selection(frun.chosen)

    tol = 1e-9 * max(1.0, abs(drun.value))
    return {
        "budget_fraction": fraction,
        "budget": budget,
        "fidelity_value": frun.value,
        "fidelity_cost": frun.cost,
        "fidelity_mode": frun.mode,
        "fidelity_seconds": fidelity_seconds,
        "fidelity_evaluations": frun.evaluations,
        "upgrades": len(frun.upgrades),
        "kept": quality["kept"],
        "kept_original": quality["kept_original"],
        "recompressed": quality["recompressed"],
        "by_tier": quality["by_tier"],
        "mean_fidelity": quality["mean_fidelity"],
        "discard_value": drun.value,
        "discard_cost": drun.cost,
        "discard_mode": drun.mode,
        "discard_seconds": discard_seconds,
        "discard_evaluations": drun.evaluations,
        "discard_kept": len(drun.selection),
        "weakly_dominates": bool(frun.value >= drun.value - tol),
        "strictly_dominates": bool(frun.value > drun.value + tol),
        "fidelity_selection_sha256": _selection_sha(frun.chosen),
        "discard_selection_sha256": _selection_sha(
            {int(p): 0 for p in drun.selection}
        ),
    }


def check_trivial_contract(instance, total: float) -> bool:
    """Originals-only catalog must reproduce ``lazy_greedy`` bit for bit."""
    from repro.core.greedy import CB, UC, lazy_greedy
    from repro.fidelity import VariantCatalog, exclusive_lazy_greedy

    catalog = VariantCatalog.trivial(instance.costs)
    inst_b = instance.with_budget(total * BUDGET_FRACTIONS[0])
    for mode in (UC, CB):
        base = lazy_greedy(inst_b, mode)
        excl = exclusive_lazy_greedy(inst_b, catalog, mode)
        if (
            excl.selection != base.selection
            or excl.value != base.value
            or excl.cost != base.cost
            or excl.evaluations != base.evaluations
        ):
            return False
    return True


# ---------------------------------------------------------------------------
# Schema
# ---------------------------------------------------------------------------


def validate_document(doc: Dict[str, object]) -> None:
    """Raise ``ValueError`` unless ``doc`` has the expected shape."""

    def need(mapping, key, kind, where):
        if key not in mapping:
            raise ValueError(f"missing key {where}.{key}")
        if not isinstance(mapping[key], kind):
            raise ValueError(
                f"{where}.{key} should be {kind}, got {type(mapping[key]).__name__}"
            )
        return mapping[key]

    meta = need(doc, "meta", dict, "$")
    for key in ("python", "numpy", "platform"):
        need(meta, key, str, "meta")
    for key in ("cpus", "photos", "dim", "seed"):
        need(meta, key, int, "meta")
    for key in ("tau", "noise"):
        need(meta, key, (int, float), "meta")
    need(meta, "tiers", list, "meta")
    runs = need(doc, "runs", list, "$")
    if not runs:
        raise ValueError("runs must be non-empty")
    for i, run in enumerate(runs):
        if not isinstance(run, dict):
            raise ValueError(f"runs[{i}] must be an object")
        for key in (
            "budget_fraction",
            "budget",
            "fidelity_value",
            "fidelity_seconds",
            "discard_value",
            "discard_seconds",
        ):
            value = need(run, key, (int, float), f"runs[{i}]")
            if not value > 0:
                raise ValueError(f"runs[{i}].{key} must be positive")
        for key in ("kept", "recompressed", "upgrades", "discard_kept"):
            need(run, key, int, f"runs[{i}]")
        for key in ("fidelity_selection_sha256", "discard_selection_sha256"):
            need(run, key, str, f"runs[{i}]")
        for key in ("weakly_dominates", "strictly_dominates"):
            if not isinstance(run.get(key), bool):
                raise ValueError(f"runs[{i}].{key} must be a bool")
    checks = need(doc, "checks", dict, "$")
    for key in (
        "weakly_dominates_all",
        "strict_dominance_ok",
        "overhead_gate_ok",
        "trivial_bit_identical",
    ):
        if not isinstance(checks.get(key), bool):
            raise ValueError(f"checks.{key} must be a bool")
    need(checks, "strict_points", int, "checks")
    need(checks, "overhead_ratio", (int, float), "checks")
    need(checks, "overhead_gate", (int, float), "checks")


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def _meta() -> Dict[str, object]:
    from repro.fidelity.catalog import DEFAULT_TIERS

    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "cpus": len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else (os.cpu_count() or 1),
        "photos": PHOTOS,
        "dim": DIM,
        "noise": NOISE,
        "tau": TAU,
        "seed": SEED,
        "tiers": [list(t) for t in DEFAULT_TIERS],
        "budget_fractions": list(BUDGET_FRACTIONS),
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }


def _print_run(run: Dict[str, object]) -> None:
    verdict = (
        "strict" if run["strictly_dominates"]
        else "weak" if run["weakly_dominates"] else "LOSES"
    )
    print(
        f"  frac {run['budget_fraction']:<4}: fidelity {run['fidelity_value']:.4f} "
        f"vs discard {run['discard_value']:.4f} ({verdict}), "
        f"kept {run['kept']} ({run['recompressed']} recompressed, "
        f"{run['upgrades']} upgrades) vs {run['discard_kept']}, "
        f"{run['fidelity_seconds']:.2f}s vs {run['discard_seconds']:.2f}s"
    )


def run_bench(fractions) -> Dict[str, object]:
    print(
        f"[bench_fidelity] archive: {PHOTOS} photos, noise={NOISE}, "
        f"tau={TAU}, seed={SEED} ...",
        flush=True,
    )
    instance, catalog, total, build = build_archive()
    print(
        f"  built: nnz={build.nnz}, catalog {catalog.n_variants} variants "
        f"/ {catalog.n_photos} photos"
    )
    runs: List[Dict[str, object]] = []
    for fraction in fractions:
        run = measure_point(instance, catalog, total, fraction)
        _print_run(run)
        runs.append(run)

    fid_total = sum(r["fidelity_seconds"] for r in runs)
    disc_total = sum(r["discard_seconds"] for r in runs)
    overhead = fid_total / disc_total
    trivial_ok = check_trivial_contract(instance, total)
    strict_points = sum(1 for r in runs if r["strictly_dominates"])
    checks = {
        "weakly_dominates_all": all(r["weakly_dominates"] for r in runs),
        "strict_points": strict_points,
        "strict_dominance_ok": bool(strict_points >= 1),
        "overhead_ratio": overhead,
        "overhead_gate": OVERHEAD_GATE,
        "overhead_gate_ok": bool(overhead <= OVERHEAD_GATE),
        "trivial_bit_identical": trivial_ok,
    }
    return {"meta": _meta(), "runs": runs, "checks": checks}


def run_smoke(committed_path: Path) -> int:
    committed = json.loads(committed_path.read_text())
    validate_document(committed)
    doc = run_bench(
        [r["budget_fraction"] for r in committed["runs"]]
    )
    checks = doc["checks"]
    committed_seconds = sum(
        r["fidelity_seconds"] + r["discard_seconds"] for r in committed["runs"]
    )
    measured_seconds = sum(
        r["fidelity_seconds"] + r["discard_seconds"] for r in doc["runs"]
    )
    failures = []
    if not checks["weakly_dominates_all"]:
        failures.append(
            "multi-fidelity no longer weakly dominates discard-only at "
            "every matched budget"
        )
    if not checks["strict_dominance_ok"]:
        failures.append("no budget shows strict dominance any more")
    if not checks["overhead_gate_ok"]:
        failures.append(
            f"aggregate solve overhead {checks['overhead_ratio']:.2f}x "
            f"above the {OVERHEAD_GATE:.0f}x gate"
        )
    if not checks["trivial_bit_identical"]:
        failures.append(
            "trivial catalog no longer reproduces discard-only bit for bit"
        )
    if measured_seconds > committed_seconds * SMOKE_SECONDS_HEADROOM:
        failures.append(
            f"sweep took {measured_seconds:.1f}s, above committed baseline "
            f"headroom ({committed_seconds * SMOKE_SECONDS_HEADROOM:.1f}s)"
        )
    for run, baseline in zip(doc["runs"], committed["runs"]):
        for key in ("fidelity_selection_sha256", "discard_selection_sha256"):
            if run[key] != baseline[key]:
                failures.append(
                    f"{key.split('_')[0]} picks at frac "
                    f"{run['budget_fraction']} drifted from the committed "
                    "baseline (the solver is no longer deterministic at a "
                    "fixed seed)"
                )
    for f in failures:
        print(f"FIDELITY-SMOKE FAILURE: {f}", file=sys.stderr)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fractions",
        default=",".join(str(f) for f in BUDGET_FRACTIONS),
        help="comma-separated budget fractions of total archive bytes",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: re-run the sweep gated against the committed JSON",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    if args.smoke:
        return run_smoke(args.out)

    fractions = sorted(float(f) for f in args.fractions.split(","))
    doc = run_bench(fractions)
    validate_document(doc)
    args.out.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")

    checks = doc["checks"]
    print(
        f"  weak dominance at all budgets: {checks['weakly_dominates_all']}, "
        f"strict at {checks['strict_points']}/{len(doc['runs'])}, "
        f"overhead {checks['overhead_ratio']:.2f}x "
        f"(<= {checks['overhead_gate']:.0f}x: {checks['overhead_gate_ok']}), "
        f"trivial bit-identical: {checks['trivial_bit_identical']}"
    )
    print(f"  wrote {args.out}")

    failed = [
        key
        for key in (
            "weakly_dominates_all",
            "strict_dominance_ok",
            "overhead_gate_ok",
            "trivial_bit_identical",
        )
        if not checks[key]
    ]
    if failed:
        print(f"BENCH GATES FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
