"""Ablation — the τ trade-off curve (Section 4.3).

"To select the desired trade-off between the degree of the sparsification
and the worst-case accuracy loss, different values of the threshold τ can
be tested."  The bench sweeps τ and reports, per value: the surviving
similarity entries, the Theorem 4.8 a-priori factor, and the *actual*
quality retained — showing the paper's point that the practical loss sits
far above the worst-case bound across the whole curve.
"""

from __future__ import annotations

import pytest

from repro.core.bounds import sparsification_bound
from repro.core.objective import score
from repro.core.solver import solve
from repro.sparsify.pipeline import sparsify_instance

from benchmarks.conftest import write_result

TAUS = (0.2, 0.4, 0.6, 0.8, 0.95)
BUDGET_FRACTION = 0.15


def _run(p1k):
    inst = p1k.instance(p1k.total_cost() * BUDGET_FRACTION)
    dense_value = solve(inst, "phocus").value
    rows = []
    for tau in TAUS:
        sparse, report = sparsify_instance(inst, tau, method="exact")
        solution = solve(sparse, "phocus")
        true_value = score(inst, solution.selection)
        bound = sparsification_bound(inst, tau)
        rows.append(
            (tau, report.kept_fraction, bound.factor,
             true_value / dense_value if dense_value > 0 else 1.0)
        )
    return rows, dense_value


def test_ablation_tau_sweep(benchmark, p1k):
    rows, dense_value = benchmark.pedantic(_run, args=(p1k,), rounds=1, iterations=1)
    lines = [
        f"Ablation — tau sweep (budget {BUDGET_FRACTION:.0%}, dense value "
        f"{dense_value:.3f})",
        f"{'tau':>6} {'entries kept':>13} {'Thm 4.8 factor':>15} {'quality kept':>13}",
    ]
    prev_kept = 1.1
    for tau, kept, factor, quality in rows:
        lines.append(f"{tau:>6.2f} {kept:>12.1%} {factor:>15.3f} {quality:>12.1%}")
        # Structure shrinks monotonically in tau ...
        assert kept <= prev_kept + 1e-9
        prev_kept = kept
        # ... and the realised quality always dominates the a-priori bound.
        assert quality >= factor - 1e-9
    # The paper's operating regime: mid-range taus keep almost everything.
    mid = [q for tau, _, _, q in rows if 0.3 <= tau <= 0.7]
    assert min(mid) >= 0.9
    write_result("ablation_tau_sweep", "\n".join(lines))
