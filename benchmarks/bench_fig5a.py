"""Figure 5a — quality by budget on P-1K (RAND, G-NR, G-NCS, PHOcus).

Paper shape: PHOcus best at every budget, then the greedy variants, then
RAND; the rightmost (50 MB) budget retains everything, so all algorithms
reach the maximum score there.
"""

from __future__ import annotations

import pytest

from benchmarks._quality import assert_figure5_shape, grid_data, render, run_quality_figure
from benchmarks.conftest import FIG5A_FRACTIONS, write_result


def test_fig5a_p1k_quality(benchmark, p1k):
    grid = benchmark.pedantic(
        run_quality_figure, args=(p1k, FIG5A_FRACTIONS), rounds=1, iterations=1
    )
    assert_figure5_shape(grid)
    write_result(
        "fig5a",
        "Figure 5a — P-1K\n" + render(grid, FIG5A_FRACTIONS),
        data=grid_data(grid, FIG5A_FRACTIONS),
    )
