"""Extension — compress instead of remove (Section 6 future work).

Section 6 conjectures the PAR model "can already capture" the choice of
compressing photos (sacrificing quality for space) instead of removing
them.  The bench validates that claim quantitatively: at each budget we
solve the plain remove-only instance and the variant-expanded instance
(one mid-quality rendition per photo at 45% of the bytes) with the
unmodified Algorithm 1 and compare quality.  Expected shape: compression
never hurts, and helps most at tight budgets where full-size photos
don't fit.
"""

from __future__ import annotations

import pytest

from repro.core.solver import solve
from repro.extensions.compression import expand_with_compression, selection_summary

from benchmarks.conftest import write_result

FRACTIONS = (0.05, 0.1, 0.2, 0.4)
LEVELS = ((0.85, 0.45),)


def _run(p1k):
    corpus = p1k.total_cost()
    rows = []
    for fraction in FRACTIONS:
        inst = p1k.instance(corpus * fraction)
        remove_only = solve(inst, "phocus")
        expanded, variants = expand_with_compression(inst, LEVELS)
        with_compression = solve(expanded, "phocus")
        summary = selection_summary(with_compression.selection, variants)
        gain = (
            with_compression.value / remove_only.value - 1.0
            if remove_only.value > 0
            else 0.0
        )
        rows.append((fraction, remove_only.value, with_compression.value, gain, summary))
    return rows


def test_extension_compression(benchmark, p1k):
    rows = benchmark.pedantic(_run, args=(p1k,), rounds=1, iterations=1)
    lines = [
        "Extension — compression-aware archiving (fidelity 0.85 @ 45% bytes)",
        f"{'budget':>8} {'remove-only':>12} {'with compress':>14} {'gain':>7} "
        f"{'orig/comp kept':>15}",
    ]
    gains = []
    for fraction, remove, compress, gain, summary in rows:
        lines.append(
            f"{fraction:>7.0%} {remove:>12.3f} {compress:>14.3f} {gain:>6.1%} "
            f"{summary['kept_original']:>7}/{summary['kept_compressed']:<7}"
        )
        # Greedy is not strictly monotone under ground-set growth; require
        # no visible regression and a clear win somewhere.
        assert compress >= 0.98 * remove, "compression visibly hurt"
        gains.append(gain)
    # Tighter budgets benefit more from compression than looser ones.
    assert max(gains) > 0.01, "compression should visibly help somewhere"
    assert gains[0] >= gains[-1] - 1e-9
    write_result("extension_compression", "\n".join(lines))
