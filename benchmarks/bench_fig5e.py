"""Figure 5e — sparsification's effect on solution quality (P-5K).

PHOcus (with τ-sparsification) vs PHOcus-NS (no sparsification) across
the Figure 5b budget grid.  Paper: the quality decrease is at most 5%.
"""

from __future__ import annotations

import pytest

from repro.core.objective import score
from repro.core.solver import solve
from repro.sparsify.pipeline import sparsify_instance

from benchmarks.conftest import FIG5B_FRACTIONS, write_result

TAU = 0.5


def _run(p5k):
    total = p5k.total_cost()
    rows = []
    for label, fraction in FIG5B_FRACTIONS.items():
        inst = p5k.instance(total * fraction)
        ns = solve(inst, "phocus")
        sparse_inst, report = sparsify_instance(inst, TAU, method="exact")
        sp = solve(sparse_inst, "phocus")
        sp_value = score(inst, sp.selection)
        loss = 1.0 - (sp_value / ns.value if ns.value > 0 else 1.0)
        rows.append((label, fraction, sp_value, ns.value, loss, report.kept_fraction))
    return rows


def test_fig5e_sparsification_quality(benchmark, p5k):
    rows = benchmark.pedantic(_run, args=(p5k,), rounds=1, iterations=1)
    lines = [
        f"Figure 5e — PHOcus (tau={TAU}) vs PHOcus-NS quality (P-5K)",
        f"{'budget':>8} {'fraction':>9} {'PHOcus':>10} {'PHOcus-NS':>10} {'loss':>7} {'entries kept':>13}",
    ]
    for label, fraction, sp, ns, loss, kept in rows:
        lines.append(
            f"{label:>8} {fraction:>8.0%} {sp:>10.3f} {ns:>10.3f} {loss:>6.1%} {kept:>12.1%}"
        )
        # Paper: "decrease of at most 5%".
        assert loss <= 0.05, f"sparsification loss {loss:.1%} at {label}"
    from repro.bench.ascii_chart import grouped_bar_chart

    lines.append("")
    lines.append(
        grouped_bar_chart(
            [label for label, *_ in rows],
            {
                "PHOcus": [r[2] for r in rows],
                "PHOcus-NS": [r[3] for r in rows],
            },
        )
    )
    write_result("fig5e", "\n".join(lines))
