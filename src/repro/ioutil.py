"""Durable file-write primitives shared by every persistence layer.

One idiom, implemented once: *write to a same-directory temp file, fsync,
atomically rename over the target, fsync the directory*.  A crash at any
point leaves either the old file or the new file — never a torn mix.
Dataset saves, checkpoint sinks, and journal compaction all route through
:func:`atomic_write_bytes`, which also carries the fault-injection probes
(``<site>.write`` / ``<site>.fsync`` / ``<site>.replace``) so chaos tests
can crash each stage of the protocol deterministically.
"""

from __future__ import annotations

import errno
import os
from typing import Union

from repro import faults
from repro.errors import StorageExhausted

__all__ = ["atomic_write_bytes", "fsync_directory", "raise_if_no_space"]

#: errno values meaning "the bytes have nowhere to go" — mapped to the
#: structured :class:`StorageExhausted` (HTTP 507) instead of a bare
#: OSError 500.  Injected fault OSErrors carry no errno and pass through.
_NO_SPACE_ERRNOS = frozenset(
    e for e in (errno.ENOSPC, getattr(errno, "EDQUOT", None)) if e is not None
)


def raise_if_no_space(exc: OSError, path: Union[str, os.PathLike]) -> None:
    """Re-raise ``exc`` as :class:`StorageExhausted` if it is disk-full."""
    if isinstance(exc, StorageExhausted):
        raise exc
    if exc.errno in _NO_SPACE_ERRNOS:
        raise StorageExhausted(
            f"no space left writing {os.fspath(path)!r}: {exc.strerror or exc}",
            path=os.fspath(path),
            errno_value=exc.errno,
        ) from exc


def fsync_directory(path: Union[str, os.PathLike]) -> None:
    """fsync a directory so a just-renamed entry survives power loss.

    Best effort: platforms that cannot open directories (Windows) skip it.
    """
    try:
        fd = os.open(os.fspath(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(
    path: Union[str, os.PathLike], data: bytes, *, site: str = "file"
) -> None:
    """Crash-safely replace ``path`` with ``data``.

    ``site`` names the fault-injection probe family: ``{site}.write``
    fires before (and may corrupt) the temp-file write, ``{site}.fsync``
    can drop the data fsync, and ``{site}.replace`` fires between the
    write and the atomic rename — the classic torn-save crash window.
    """
    path = os.fspath(path)
    tmp = path + ".tmp"
    faults.check(f"{site}.write")
    data = faults.mangle(f"{site}.write", data)
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            if not faults.should_drop(f"{site}.fsync"):
                os.fsync(fh.fileno())
        faults.check(f"{site}.replace")
        os.replace(tmp, path)
    except BaseException as exc:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        if isinstance(exc, OSError):
            raise_if_no_space(exc, path)
        raise
    fsync_directory(os.path.dirname(path) or ".")
