"""Swap local search: squeezing the last percent out of a greedy solution.

Greedy solutions under knapsack constraints leave a well-known residue on
the table: a kept photo can be *exchanged* for one or two archived photos
that jointly fit the freed budget and cover more.  This post-optimiser
runs the standard 1-swap (and optional 1-out/2-in) neighbourhood until no
improving move exists or a pass budget is exhausted.

Local search never leaves the feasible region and never removes ``S0``
photos, so its output inherits every guarantee of its input solution —
it can only improve the objective (each accepted move strictly increases
``G``).  The ablation bench measures what the residue is worth on PAR
instances (typically small, confirming how strong Algorithm 1 already
is — but non-zero at tight budgets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.core.instance import PARInstance
from repro.core.objective import score
from repro.errors import ValidationError

__all__ = ["LocalSearchResult", "swap_local_search"]


@dataclass
class LocalSearchResult:
    """Outcome of a local-search pass."""

    selection: List[int]
    value: float
    start_value: float
    swaps: int
    passes: int

    @property
    def improvement(self) -> float:
        """Relative gain over the starting solution."""
        if self.start_value <= 0:
            return 0.0
        return self.value / self.start_value - 1.0


def _best_single_swap(
    instance: PARInstance,
    selection: Set[int],
    spent: float,
    current_value: float,
) -> Optional[Tuple[float, int, List[int]]]:
    """Best (new_value, out_photo, in_photos) 1-out/1-in move, if any.

    For each eviction candidate, one coverage state over the remaining
    selection yields every insertion's value via a single vectorised
    batch-gain evaluation, so a full neighbourhood scan costs
    ``O(|S| · (state build + all_gains))`` instead of ``O(|S| · n)`` full
    scorings.
    """
    from repro.core.objective import CoverageState

    best: Optional[Tuple[float, int, List[int]]] = None
    costs = instance.costs
    for out in selection:
        if out in instance.retained:
            continue
        headroom = instance.budget - (spent - float(costs[out]))
        base = [p for p in selection if p != out]
        state = CoverageState(instance, base)
        gains = state.all_gains()
        candidate_mask = (costs <= headroom + 1e-12) & (gains > 0)
        candidate_mask[list(selection)] = False
        candidates = np.nonzero(candidate_mask)[0]
        if candidates.size == 0:
            continue
        inc = int(candidates[np.argmax(gains[candidates])])
        value = state.value + float(gains[inc])
        if value > current_value + 1e-9 and (best is None or value > best[0]):
            best = (value, out, [inc])
    return best


def swap_local_search(
    instance: PARInstance,
    selection: Iterable[int],
    *,
    max_passes: int = 5,
) -> LocalSearchResult:
    """Improve a feasible selection with 1-swap moves until convergence.

    Parameters
    ----------
    instance:
        The PAR instance.
    selection:
        A feasible starting selection (typically a greedy output).
    max_passes:
        Upper bound on improvement passes (each pass scans the whole
        1-swap neighbourhood once); convergence usually needs 1-2.
    """
    sel: Set[int] = set(int(p) for p in selection) | set(instance.retained)
    if not instance.feasible(sel):
        raise ValidationError("local search requires a feasible starting selection")
    spent = instance.cost_of(sel)
    start_value = value = score(instance, sel)

    swaps = 0
    passes = 0
    for _ in range(max_passes):
        passes += 1
        move = _best_single_swap(instance, sel, spent, value)
        if move is None:
            break
        new_value, out, ins = move
        sel.discard(out)
        sel.update(ins)
        spent = instance.cost_of(sel)
        value = new_value
        swaps += 1
    return LocalSearchResult(
        selection=sorted(sel),
        value=value,
        start_value=start_value,
        swaps=swaps,
        passes=passes,
    )
