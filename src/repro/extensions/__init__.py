"""Extensions beyond the paper's evaluated system.

Currently: compression-aware archiving, the Section 6 future-work item
("which photos to compress rather than to remove"), realised as a pure
instance transformation over the unmodified PAR solvers.
"""

from repro.extensions.compression import (
    CompressionLevel,
    VariantMap,
    deduplicate_variants,
    expand_with_compression,
    selection_summary,
)
from repro.extensions.incremental import (
    MaintenanceResult,
    extend_selection,
    maintain,
    removal_loss,
    shrink_to_budget,
)
from repro.extensions.local_search import LocalSearchResult, swap_local_search
from repro.extensions.streaming import StreamingArchiver, stream_solve

__all__ = [
    "CompressionLevel",
    "VariantMap",
    "expand_with_compression",
    "deduplicate_variants",
    "selection_summary",
    "removal_loss",
    "shrink_to_budget",
    "extend_selection",
    "maintain",
    "MaintenanceResult",
    "StreamingArchiver",
    "stream_solve",
    "swap_local_search",
    "LocalSearchResult",
]
