"""Streaming PAR: archive decisions while photos arrive one at a time.

The paper solves PAR offline; its related-work section points at the
streaming-submodular line ("Streaming submodular maximization: Massive
data summarization on the fly" [5]) for settings where the archive is too
large — or arrives too fast — to hold and re-solve.  This extension
brings that regime to PAR with a threshold (sieve) algorithm adapted to
the knapsack constraint:

* a geometric grid of density thresholds is maintained, each with its own
  candidate solution;
* an arriving photo is added to every candidate where it (a) still fits
  the budget and (b) clears the candidate's marginal-gain-per-byte
  threshold;
* the best candidate (optionally refreshed against the best singleton) is
  the answer at any point — a single pass, O(grid) state, no revisits.

The classical sieve guarantee needs an estimate of ``OPT``; we follow the
standard trick of anchoring the grid to the running best singleton
density and value.  The worst-case constant is weaker than offline CELF
(as theory demands for single-pass knapsack streaming); the tests and the
bench measure the practical gap, which stays small on PAR's heavy-overlap
instances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple


from repro.core.instance import PARInstance
from repro.core.objective import CoverageState, score
from repro.errors import ValidationError

__all__ = ["StreamingArchiver", "stream_solve"]


@dataclass
class _Candidate:
    threshold: float
    state: CoverageState
    cost: float


class StreamingArchiver:
    """Single-pass PAR solver over a photo stream.

    Parameters
    ----------
    instance:
        The PAR instance giving costs, subsets and the budget.  (The
        instance fixes the universe; *which photos actually arrive*, and
        in what order, is up to the stream.)
    epsilon:
        Grid resolution: thresholds grow geometrically by ``1 + epsilon``.
        Smaller epsilon → more candidates → better quality, more memory.

    Photos in the retention set are accepted unconditionally by every
    candidate (policy pins are not optional).
    """

    def __init__(self, instance: PARInstance, epsilon: float = 0.25) -> None:
        if not (0.0 < epsilon <= 1.0):
            raise ValidationError("epsilon must lie in (0, 1]")
        self.instance = instance
        self.epsilon = epsilon
        self._candidates: Dict[int, _Candidate] = {}
        self._best_single: Optional[Tuple[float, int]] = None  # (value, photo)
        self._max_density_seen = 0.0
        self._arrived = 0
        # The singleton evaluator: gain over the retained-only state.
        self._base_state = CoverageState(instance, instance.retained)
        self._base_cost = instance.cost_of(instance.retained)

    @property
    def candidates(self) -> int:
        """Number of live threshold candidates."""
        return len(self._candidates)

    @property
    def arrived(self) -> int:
        return self._arrived

    def _grid_range(self) -> range:
        """Active grid indices anchored to the best density seen so far.

        For a budget ``B`` the optimum density lies in
        ``[d_max / n-ish, d_max]`` scaled by B; the standard sieve keeps
        thresholds within a constant factor window of ``d_max``.
        """
        if self._max_density_seen <= 0:
            return range(0)
        base = 1.0 + self.epsilon
        hi = math.ceil(math.log(self._max_density_seen * 2, base))
        window = math.ceil(math.log(4 * max(4, self.instance.n), base))
        return range(hi - window, hi + 1)

    def offer(self, photo_id: int) -> bool:
        """Process one arriving photo; returns True if ANY candidate took it."""
        p = int(photo_id)
        if p < 0 or p >= self.instance.n:
            raise ValidationError(f"photo id {p} outside the instance universe")
        self._arrived += 1
        cost = float(self.instance.costs[p])
        budget = self.instance.budget

        forced = p in self.instance.retained

        # Track the best affordable singleton and the max density.
        single_gain = self._base_state.gain(p)
        if cost <= budget - self._base_cost:
            if self._best_single is None or single_gain > self._best_single[0]:
                self._best_single = (single_gain, p)
        if cost > 0:
            self._max_density_seen = max(self._max_density_seen, single_gain / cost)

        # Refresh the candidate grid window.
        base = 1.0 + self.epsilon
        active = set(self._grid_range())
        for idx in list(self._candidates):
            if idx not in active:
                del self._candidates[idx]
        for idx in active:
            if idx not in self._candidates:
                self._candidates[idx] = _Candidate(
                    threshold=base**idx,
                    state=self._base_state.copy(),
                    cost=self._base_cost,
                )

        taken = False
        for cand in self._candidates.values():
            if cand.cost + cost > budget * (1 + 1e-12):
                continue
            gain = cand.state.gain(p)
            if forced or (cost > 0 and gain / cost >= cand.threshold):
                cand.state.add(p)
                cand.cost += cost
                taken = True
        return taken

    def current_solution(self) -> Tuple[List[int], float]:
        """Best selection held by any candidate (or the best singleton)."""
        best_sel: List[int] = sorted(self.instance.retained)
        best_val = self._base_state.value
        for cand in self._candidates.values():
            if cand.state.value > best_val:
                best_val = cand.state.value
                best_sel = sorted(cand.state.selected)
        if self._best_single is not None:
            single_val, p = self._best_single
            sel = sorted(set(self.instance.retained) | {p})
            val = score(self.instance, sel)
            if val > best_val:
                best_val, best_sel = val, sel
        return best_sel, best_val


def stream_solve(
    instance: PARInstance,
    arrival_order: Optional[Iterable[int]] = None,
    *,
    epsilon: float = 0.25,
) -> Tuple[List[int], float]:
    """One-shot convenience: stream every photo once, return the solution.

    ``arrival_order`` defaults to id order; pass a permutation to model
    upload order.
    """
    archiver = StreamingArchiver(instance, epsilon=epsilon)
    order = arrival_order if arrival_order is not None else range(instance.n)
    for p in order:
        archiver.offer(int(p))
    return archiver.current_solution()
