"""Compression-aware archiving (the paper's Section 6 future work).

Section 6: "In future work, we plan to consider which photos to compress
(i.e., to sacrifice quality to gain space) rather than to remove.  While
we believe that our model can already capture this problem, it would be
interesting to see how it performs practically."

This module realises that claim: each photo is expanded into *variants* —
the original plus one or more compressed renditions with smaller byte
costs and degraded fidelity — and the variant universe is encoded as a
plain PAR instance, which the unmodified solvers then optimise.

Encoding.  A variant ``v`` of photo ``p`` at fidelity ``φ ∈ (0, 1]``:

* cost: ``C(v) = C(p) · size_factor`` (the compression ratio);
* similarity: ``SIM(q, x, v) = SIM(q, x, p) · φ`` for every photo/variant
  ``x`` — a compressed copy covers its neighbours (and the original's own
  ``(q, p)`` slot) only up to its fidelity, so selecting it scores
  ``R(q, p) · φ`` where the original would score ``R(q, p)``.

Both are exactly expressible in the PAR model (costs are arbitrary
positives; SIM is any symmetric [0, 1] function), confirming the paper's
"our model can already capture this" — no solver changes are needed.
Selecting several variants of the same photo is never *invalid*, merely
wasteful (their coverage dominates pairwise), and the greedy solvers'
marginal gains make them avoid it naturally; :func:`deduplicate_variants`
post-processes any remaining redundancy for reporting.

Sparse inputs stay sparse: a CSR
:class:`~repro.core.instance.SparseSimilarity` expands into the block
CSR of :func:`_expand_sparse_similarity` (nnz × blocks², no dense
detour).  The flat expansion doubles as the *cross-check oracle* for the
exclusive-choice solver in :mod:`repro.fidelity`: after
:func:`deduplicate_variants` its selection is a feasible exclusive
assignment, and tests assert the exclusive solver's value dominates it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.instance import (
    DenseSimilarity,
    PARInstance,
    Photo,
    PredefinedSubset,
    SparseSimilarity,
)
from repro.errors import ValidationError

__all__ = [
    "CompressionLevel",
    "VariantMap",
    "expand_with_compression",
    "deduplicate_variants",
    "selection_summary",
]

# (fidelity, size factor) for a typical mid-quality JPEG re-encode.
DEFAULT_LEVELS = ((0.85, 0.45),)


@dataclass(frozen=True)
class CompressionLevel:
    """One compression rendition: quality kept vs bytes kept.

    ``fidelity`` multiplies the photo's similarities (coverage power);
    ``size_factor`` multiplies its byte cost.  A useful level has
    ``size_factor < fidelity`` — otherwise the original dominates it.
    """

    fidelity: float
    size_factor: float

    def __post_init__(self) -> None:
        if not (0.0 < self.fidelity < 1.0):
            raise ValidationError("fidelity must lie in (0, 1)")
        if not (0.0 < self.size_factor < 1.0):
            raise ValidationError("size_factor must lie in (0, 1)")


@dataclass
class VariantMap:
    """Bookkeeping from variant ids back to original photos.

    ``origin[v]`` is the original photo id of variant id ``v``;
    ``level[v]`` is ``None`` for originals, else the applied level.
    """

    origin: List[int]
    level: List[Optional[CompressionLevel]]

    def is_original(self, variant_id: int) -> bool:
        return self.level[variant_id] is None

    def originals_of(self, selection: Sequence[int]) -> List[int]:
        """Distinct original photo ids a variant selection represents."""
        return sorted({self.origin[int(v)] for v in selection})


def expand_with_compression(
    instance: PARInstance,
    levels: Sequence[Tuple[float, float]] = DEFAULT_LEVELS,
) -> Tuple[PARInstance, VariantMap]:
    """Expand a PAR instance with compressed variants of every photo.

    Returns the expanded instance (original photos keep their ids;
    variants are appended after them) plus the :class:`VariantMap`.
    Retained photos (``S0``) stay pinned as originals — a policy pin
    means the *full-quality* photo must stay.
    """
    parsed = [CompressionLevel(f, s) for f, s in levels]
    n = instance.n

    origin = list(range(n))
    level: List[Optional[CompressionLevel]] = [None] * n
    photos: List[Photo] = list(instance.photos)
    variant_ids: Dict[Tuple[int, int], int] = {}
    for li, lvl in enumerate(parsed):
        for p in range(n):
            vid = len(photos)
            photos.append(
                Photo(
                    photo_id=vid,
                    cost=float(instance.costs[p] * lvl.size_factor),
                    label=(instance.photos[p].label or f"photo-{p}")
                    + f"@q{lvl.fidelity:.2f}",
                    metadata={"origin": p, "fidelity": lvl.fidelity},
                )
            )
            origin.append(p)
            level.append(lvl)
            variant_ids[(p, li)] = vid

    subsets: List[PredefinedSubset] = []
    for q in instance.subsets:
        m = len(q)
        fidelities = [1.0] + [lvl.fidelity for lvl in parsed]
        blocks = len(fidelities)
        if q.similarity.is_sparse:
            # Sparse stays sparse: the expanded matrix is a blocks×blocks
            # tiling of the base CSR, never densified (τ-thresholded
            # million-photo instances would not survive an (m·B)² dense
            # detour).
            similarity = _expand_sparse_similarity(q.similarity, fidelities)
        else:
            base = np.array(q.similarity.matrix, dtype=np.float64)
            big = np.zeros((m * blocks, m * blocks))
            for bi, fi in enumerate(fidelities):
                for bj, fj in enumerate(fidelities):
                    # A pair's effective similarity is capped by both
                    # fidelities: a degraded copy neither covers nor is
                    # covered beyond its quality.
                    big[bi * m : (bi + 1) * m, bj * m : (bj + 1) * m] = base * (
                        fi * fj
                    )
            # PAR requires a unit diagonal; we encode "covers itself at φ"
            # by making the variant a DISTINCT member whose similarity to
            # the original member slot is φ.  The variant's own (q, v) pair
            # is not a scoring target — only original pairs carry
            # relevance — so variants get zero relevance below and the
            # diagonal stays 1.
            np.fill_diagonal(big, 1.0)
            big = np.clip((big + big.T) / 2.0, 0.0, 1.0)
            similarity = DenseSimilarity(big, validate=False)

        members = list(q.members)
        relevance = list(q.relevance)
        for li in range(len(parsed)):
            for photo in q.members:
                members.append(variant_ids[(int(photo), li)])
                relevance.append(0.0)
        # Relevance must stay a distribution: original slots keep their
        # mass, variant slots carry none (they are coverers, not targets).
        subsets.append(
            PredefinedSubset(
                q.subset_id,
                q.weight,
                members,
                relevance,
                similarity,
                normalize=False,
            )
        )

    expanded = PARInstance(
        photos,
        subsets,
        instance.budget,
        retained=instance.retained,
        embeddings=None,
    )
    return expanded, VariantMap(origin=origin, level=level)


def _expand_sparse_similarity(
    sim: SparseSimilarity, fidelities: Sequence[float]
) -> SparseSimilarity:
    """Tile a base CSR into the ``blocks × blocks`` variant similarity.

    Block ``(bi, bj)`` of the expanded matrix is the base matrix scaled
    by ``fidelities[bi] · fidelities[bj]``; the unit diagonal of every
    expanded row is restored afterwards (each base row holds its own
    diagonal entry, so each expanded row inherits exactly one).  nnz
    grows by ``blocks²`` — the sparsity structure itself never
    densifies.  Entries land in canonical per-row ascending-column
    order, and the output keeps the base dtype (float32 stays float32).
    """
    indptr, cols, vals = sim.csr()
    m = len(sim)
    blocks = len(fidelities)
    rows_idx = np.repeat(np.arange(m, dtype=np.int64), np.diff(indptr))
    base_vals = vals.astype(np.float64)
    out_cols_parts: List[np.ndarray] = []
    out_vals_parts: List[np.ndarray] = []
    for fi in fidelities:
        rows_exp = np.concatenate([rows_idx] * blocks)
        cols_exp = np.concatenate([cols + bj * m for bj in range(blocks)])
        vals_exp = np.concatenate(
            [base_vals * (fi * fj) for fj in fidelities]
        )
        # Per expanded row, block columns are disjoint ascending ranges,
        # so sorting by (base row, expanded column) yields canonical CSR.
        order = np.lexsort((cols_exp, rows_exp))
        out_cols_parts.append(cols_exp[order])
        out_vals_parts.append(vals_exp[order])
    out_cols = np.concatenate(out_cols_parts)
    out_vals = np.concatenate(out_vals_parts)
    counts = np.tile(np.diff(indptr) * blocks, blocks)
    out_indptr = np.zeros(m * blocks + 1, dtype=np.int64)
    np.cumsum(counts, out=out_indptr[1:])
    out_rows = np.repeat(np.arange(m * blocks, dtype=np.int64), counts)
    out_vals[out_rows == out_cols] = 1.0
    return SparseSimilarity.from_csr(
        m * blocks,
        out_indptr,
        out_cols,
        out_vals,
        dtype=vals.dtype,
        validate=False,
    )


def deduplicate_variants(
    selection: Sequence[int], variants: VariantMap
) -> List[int]:
    """Keep only the highest-fidelity selected variant per original photo."""
    best: Dict[int, Tuple[float, int]] = {}
    for v in selection:
        v = int(v)
        fidelity = 1.0 if variants.is_original(v) else variants.level[v].fidelity
        origin = variants.origin[v]
        if origin not in best or fidelity > best[origin][0]:
            best[origin] = (fidelity, v)
    return sorted(v for _, v in best.values())


def selection_summary(
    selection: Sequence[int], variants: VariantMap
) -> Dict[str, int]:
    """Counts of originals vs compressed renditions in a selection."""
    originals = sum(1 for v in selection if variants.is_original(int(v)))
    return {
        "kept_original": originals,
        "kept_compressed": len(list(selection)) - originals,
        "distinct_photos": len(variants.originals_of(selection)),
    }
