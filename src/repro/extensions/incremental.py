"""Incremental archive maintenance: keep a solution fresh as things change.

A deployed PHOcus (the paper's quarterly-query-log workflow, Section 5.2)
faces three recurring events between full re-optimisations:

* **new photos arrive** (products are onboarded, trips are shot);
* **the budget shrinks** (cache capacity is re-partitioned);
* **the budget grows** (hardware upgrade).

Solving from scratch each time is wasteful: the existing selection is
already near-greedy.  This module provides warm-started maintenance
primitives built on the same :class:`~repro.core.objective.CoverageState`
machinery:

* :func:`extend_selection` — CELF pass seeded with the current selection
  (handles budget growth and newly arrived photos in one shot);
* :func:`shrink_to_budget` — reverse greedy: repeatedly evict the kept
  photo whose removal loses the least objective per byte freed (never
  evicting ``S0``);
* :func:`maintain` — the combined policy: shrink if over budget, then
  extend into any remaining headroom.

Reverse greedy is the natural dual of the forward pass and is the
standard fast heuristic for monotone submodular *down-sizing*; tests
compare it against from-scratch solves and the benches measure the
speed/quality trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.core.greedy import CB, lazy_greedy
from repro.core.instance import PARInstance
from repro.core.objective import CoverageState, score
from repro.errors import ValidationError

__all__ = [
    "removal_loss",
    "shrink_to_budget",
    "extend_selection",
    "MaintenanceResult",
    "maintain",
]


def removal_loss(
    instance: PARInstance, selection: Iterable[int], photo_id: int
) -> float:
    """Objective lost by evicting one photo from a selection.

    Coverage only changes for members whose *nearest selected neighbour*
    was the evicted photo, and those members all sit in its stored
    similarity rows — so the loss is computed neighbourhood-locally:
    for each subset containing the photo, scan the CSR rows of its
    neighbours for the runner-up selected provider.  No dense per-member
    vector is ever materialised; cost is
    ``O(|selection ∩ q| + Σ_{j ∈ N_q(p)} deg_q(j))`` per subset ``q``,
    independent of the subset size.
    """
    sel = set(int(p) for p in selection)
    p = int(photo_id)
    if p not in sel:
        return 0.0
    loss = 0.0
    for qi, local_p in instance.membership[p]:
        subset = instance.subsets[qi]
        similarity = subset.similarity
        other_locals = np.fromiter(
            (
                subset.local_index(s)
                for s in sel
                if s != p and s in subset
            ),
            dtype=np.int64,
        )
        other_locals.sort()
        idx_p, sims_p = similarity.neighbors(local_p)
        relevance = subset.relevance
        subset_loss = 0.0
        for j, s_pj in zip(idx_p, sims_p):
            # Runner-up provider: best selected neighbour of j besides p.
            cols_j, vals_j = similarity.neighbors(j)
            if other_locals.size:
                pos = np.searchsorted(other_locals, cols_j)
                pos[pos == other_locals.size] = other_locals.size - 1
                hit = other_locals[pos] == cols_j
                runner_up = float(vals_j[hit].max()) if np.any(hit) else 0.0
            else:
                runner_up = 0.0
            if s_pj > runner_up:
                subset_loss += float(relevance[j]) * (float(s_pj) - runner_up)
        loss += subset.weight * subset_loss
    return loss


def shrink_to_budget(
    instance: PARInstance,
    selection: Iterable[int],
    budget: Optional[float] = None,
) -> List[int]:
    """Reverse greedy eviction until the selection fits the budget.

    Evicts, at each step, the non-retained photo minimising
    ``removal_loss / cost`` (cheapest objective per byte freed).  Uses
    lazy re-evaluation, the mirror image of CELF: by submodularity a
    photo's removal loss only *grows* as the selection shrinks, so a
    cached loss is a valid lower bound and a refreshed entry that stays
    at the top of the min-heap can be evicted without refreshing the
    rest.  Raises :class:`ValidationError` when even ``S0`` alone exceeds
    the budget.
    """
    import heapq
    import itertools

    budget = instance.budget if budget is None else float(budget)
    sel = set(int(p) for p in selection) | set(instance.retained)
    spent = instance.cost_of(sel)
    if instance.cost_of(instance.retained) > budget * (1 + 1e-12):
        raise ValidationError("retention set alone exceeds the target budget")
    if spent <= budget * (1 + 1e-12):
        return sorted(sel)

    counter = itertools.count()
    evictions = 0
    heap: List[Tuple[float, int, int, int]] = []
    for p in sel:
        if p in instance.retained:
            continue
        key = removal_loss(instance, sel, p) / instance.costs[p]
        heapq.heappush(heap, (key, next(counter), p, evictions))

    while spent > budget * (1 + 1e-12) and heap:
        key, _, p, stamp = heapq.heappop(heap)
        if p not in sel:
            continue
        if stamp == evictions:
            sel.discard(p)
            spent -= float(instance.costs[p])
            evictions += 1
        else:
            key = removal_loss(instance, sel, p) / instance.costs[p]
            heapq.heappush(heap, (key, next(counter), p, evictions))
    return sorted(sel)


def extend_selection(
    instance: PARInstance,
    selection: Iterable[int],
) -> List[int]:
    """Warm-started CELF pass: grow a feasible selection into headroom."""
    sel = set(int(p) for p in selection) | set(instance.retained)
    if instance.cost_of(sel) > instance.budget * (1 + 1e-12):
        raise ValidationError("selection exceeds the budget; shrink first")
    state = CoverageState(instance, sel)
    run = lazy_greedy(instance, CB, state=state)
    return sorted(run.selection)


@dataclass
class MaintenanceResult:
    """Outcome of one maintenance step."""

    selection: List[int]
    value: float
    cost: float
    evicted: List[int]
    added: List[int]


def maintain(
    instance: PARInstance,
    previous_selection: Iterable[int],
) -> MaintenanceResult:
    """Adapt a previous selection to the (possibly changed) instance.

    The instance may have a different budget and/or more photos than the
    one ``previous_selection`` was computed for; ids of surviving photos
    must be unchanged (append-only arrival, the realistic deployment
    model).  Stale ids (photos that left the archive) are dropped.
    """
    previous = {int(p) for p in previous_selection if 0 <= int(p) < instance.n}
    shrunk = set(shrink_to_budget(instance, previous))
    final = set(extend_selection(instance, shrunk))
    return MaintenanceResult(
        selection=sorted(final),
        value=score(instance, final),
        cost=instance.cost_of(final),
        evicted=sorted(previous - final),
        added=sorted(final - previous),
    )
