"""Tiered photo storage simulator (the system PAR's output feeds).

The paper's motivating deployment keeps selected photos "in a fast-access
cache, which is much smaller than the size of the archive" with a hard
page-load limit (100 ms for 2 MB of media in the Electronics scenario of
Section 5.3).  This module simulates that downstream system so examples
and benches can measure what a selection actually buys:

* :class:`TieredStore` — a hot tier (the cache PAR fills) over a cold
  archive; reads are served from the hot tier when possible and fall back
  to the cold tier otherwise, with per-tier latency and bandwidth models;
* :class:`PageLoadModel` — translates a landing page's photo reads into a
  page-load time, the operational metric behind the paper's budget.

The simulator is deterministic given its parameters — no randomness, so
measured hit-rates and latencies are exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence

from repro.errors import InfeasibleError, ValidationError

__all__ = ["TierSpec", "AccessStats", "TieredStore", "PageLoadModel"]


@dataclass(frozen=True)
class TierSpec:
    """Latency/bandwidth profile of one storage tier.

    Defaults model an in-memory CDN cache vs. object cold storage.
    """

    name: str
    latency_ms: float
    bandwidth_mb_per_s: float

    def read_time_ms(self, size_bytes: float) -> float:
        """Time to read one object of the given size from this tier."""
        transfer_ms = size_bytes / (self.bandwidth_mb_per_s * 1e6) * 1e3
        return self.latency_ms + transfer_ms


HOT_DEFAULT = TierSpec(name="hot-cache", latency_ms=1.0, bandwidth_mb_per_s=2000.0)
COLD_DEFAULT = TierSpec(name="cold-archive", latency_ms=45.0, bandwidth_mb_per_s=120.0)


@dataclass
class AccessStats:
    """Running counters of a store's read traffic."""

    reads: int = 0
    hot_hits: int = 0
    bytes_read: float = 0.0
    bytes_from_hot: float = 0.0
    total_time_ms: float = 0.0

    @property
    def hit_rate(self) -> float:
        return self.hot_hits / self.reads if self.reads else 0.0

    @property
    def byte_hit_rate(self) -> float:
        return self.bytes_from_hot / self.bytes_read if self.bytes_read else 0.0

    @property
    def mean_read_ms(self) -> float:
        return self.total_time_ms / self.reads if self.reads else 0.0


class TieredStore:
    """A hot cache over a cold archive, keyed by photo id.

    All photos live in the cold archive; :meth:`promote` pins a selection
    (a PAR solution) into the hot tier, respecting its capacity.
    """

    def __init__(
        self,
        photo_costs: Dict[int, float],
        hot_capacity_bytes: float,
        *,
        hot: TierSpec = HOT_DEFAULT,
        cold: TierSpec = COLD_DEFAULT,
    ) -> None:
        if hot_capacity_bytes <= 0:
            raise ValidationError("hot capacity must be positive")
        for photo_id, cost in photo_costs.items():
            if cost <= 0:
                raise ValidationError(f"photo {photo_id}: nonpositive size")
        self._costs = dict(photo_costs)
        self.hot_capacity = float(hot_capacity_bytes)
        self.hot_tier = hot
        self.cold_tier = cold
        self._hot: set = set()
        self._hot_bytes = 0.0
        self.stats = AccessStats()

    @property
    def hot_set(self) -> frozenset:
        return frozenset(self._hot)

    @property
    def hot_bytes(self) -> float:
        return self._hot_bytes

    def promote(self, selection: Iterable[int]) -> None:
        """Pin a photo selection into the hot tier (replaces the old pin).

        Raises :class:`InfeasibleError` if the selection exceeds capacity —
        a PAR solution for budget ≤ capacity always fits.
        """
        selection = [int(p) for p in selection]
        unknown = [p for p in selection if p not in self._costs]
        if unknown:
            raise ValidationError(f"unknown photo ids in promotion: {unknown[:5]}")
        total = sum(self._costs[p] for p in selection)
        if total > self.hot_capacity * (1 + 1e-12):
            raise InfeasibleError(
                f"selection of {total:.0f} bytes exceeds hot capacity "
                f"{self.hot_capacity:.0f}"
            )
        self._hot = set(selection)
        self._hot_bytes = total

    def read(self, photo_id: int) -> float:
        """Serve one read; returns the simulated time in milliseconds."""
        photo_id = int(photo_id)
        try:
            size = self._costs[photo_id]
        except KeyError:
            raise ValidationError(f"unknown photo id {photo_id}") from None
        hot = photo_id in self._hot
        tier = self.hot_tier if hot else self.cold_tier
        elapsed = tier.read_time_ms(size)
        self.stats.reads += 1
        self.stats.bytes_read += size
        self.stats.total_time_ms += elapsed
        if hot:
            self.stats.hot_hits += 1
            self.stats.bytes_from_hot += size
        return elapsed

    def reset_stats(self) -> None:
        self.stats = AccessStats()


@dataclass
class PageLoadModel:
    """Page-load time of a landing page given a store.

    A page loads its photos concurrently up to ``parallelism`` streams;
    load time is the max over batches — the metric behind the paper's
    "hard limit of 100ms for loading all media on the web-page".
    """

    store: TieredStore
    parallelism: int = 6

    def load_page(self, photo_ids: Sequence[int]) -> float:
        """Simulated page-load time in milliseconds."""
        if self.parallelism < 1:
            raise ValidationError("parallelism must be at least 1")
        times = [self.store.read(p) for p in photo_ids]
        if not times:
            return 0.0
        # Greedy assignment of reads to streams (longest first).
        streams = [0.0] * min(self.parallelism, len(times))
        for t in sorted(times, reverse=True):
            idx = streams.index(min(streams))
            streams[idx] += t
        return max(streams)

    def meets_deadline(self, photo_ids: Sequence[int], deadline_ms: float) -> bool:
        """Whether the page loads within the deadline."""
        return self.load_page(photo_ids) <= deadline_ms
