"""Page-request workload generator for the storage simulator.

Landing pages are visited with the same popularity profile that defines
the PAR subset weights (Section 5.1 derives ``W`` from "the number of
visits in the last 90 days").  This generator closes the loop: it samples
page visits proportional to subset weights and replays each page's
displayed photos against a :class:`repro.storage.archive.TieredStore`, so
experiments can report the *operational* value of a selection (byte hit
rate, mean page-load time) next to the model objective ``G``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.instance import PARInstance
from repro.errors import ValidationError
from repro.storage.archive import PageLoadModel, TieredStore

__all__ = ["WorkloadResult", "replay_page_workload"]


@dataclass
class WorkloadResult:
    """Operational metrics of replaying a page workload over a store."""

    visits: int
    hit_rate: float
    byte_hit_rate: float
    mean_page_load_ms: float
    p95_page_load_ms: float
    deadline_ms: float
    deadline_met_fraction: float


def replay_page_workload(
    instance: PARInstance,
    selection: Sequence[int],
    *,
    n_visits: int = 1000,
    photos_per_page: int = 8,
    deadline_ms: float = 100.0,
    rng: Optional[np.random.Generator] = None,
    parallelism: int = 6,
) -> WorkloadResult:
    """Replay weighted page visits against a store pinned with a selection.

    Each visit samples a pre-defined subset proportional to its weight and
    loads the page's top photos *from the retained selection* (a page can
    only display photos that were kept — the displaced ones fall back to
    the cold tier only when the page has too few retained photos and must
    pull archive content).
    """
    if n_visits < 1:
        raise ValidationError("n_visits must be positive")
    rng = rng or np.random.default_rng()
    selection_set = set(int(p) for p in selection)

    store = TieredStore(
        {p.photo_id: p.cost for p in instance.photos},
        hot_capacity_bytes=max(instance.budget, instance.cost_of(selection_set) or 1.0),
    )
    store.promote(selection_set)
    pager = PageLoadModel(store, parallelism=parallelism)

    weights = np.array([q.weight for q in instance.subsets], dtype=np.float64)
    weights = weights / weights.sum()

    # Per subset: photos shown = most relevant retained photos first,
    # padded with the most relevant archived photos when the page would
    # otherwise be empty.
    page_photos: List[List[int]] = []
    for q in instance.subsets:
        order = np.argsort(-q.relevance, kind="stable")
        retained = [int(q.members[i]) for i in order if int(q.members[i]) in selection_set]
        archived = [int(q.members[i]) for i in order if int(q.members[i]) not in selection_set]
        shown = (retained + archived)[:photos_per_page]
        page_photos.append(shown)

    load_times = []
    met = 0
    choices = rng.choice(len(instance.subsets), size=n_visits, p=weights)
    for qi in choices:
        elapsed = pager.load_page(page_photos[int(qi)])
        load_times.append(elapsed)
        if elapsed <= deadline_ms:
            met += 1

    times = np.asarray(load_times)
    return WorkloadResult(
        visits=n_visits,
        hit_rate=store.stats.hit_rate,
        byte_hit_rate=store.stats.byte_hit_rate,
        mean_page_load_ms=float(times.mean()),
        p95_page_load_ms=float(np.percentile(times, 95)),
        deadline_ms=deadline_ms,
        deadline_met_fraction=met / n_visits,
    )
