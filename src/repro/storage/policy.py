"""Retention policies: deriving the mandatory set ``S0``.

The PAR model takes "the set of photos that must be retained due to policy
requirements" as input.  Where do those come from?  The paper names legal
contracts ("a company may require only approved images to be used on pages
that are specific to their products"), regulation (GDPR-style retention),
and personal must-keeps (passport, vaccination record, recent favourites).

This module gives those sources a uniform rule engine: a
:class:`RetentionPolicy` is a named predicate over :class:`Photo` records;
:func:`derive_retained` evaluates a policy stack against an archive and
returns the union ``S0``, flagging conflicts (a photo both pinned and
disposed) the way a compliance reviewer would expect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Set

from repro.core.instance import Photo
from repro.errors import ValidationError

__all__ = [
    "RetentionPolicy",
    "brand_contract_policy",
    "metadata_flag_policy",
    "recent_photos_policy",
    "derive_retained",
]

Predicate = Callable[[Photo], bool]


@dataclass(frozen=True)
class RetentionPolicy:
    """A named retention rule.

    ``action`` is ``"retain"`` (add to S0) or ``"dispose"`` (veto: the
    photo must NOT be retained by S0 — e.g. GDPR erasure).  Dispose rules
    do not remove photos from the archive; they only forbid *pinning*, and
    :func:`derive_retained` raises when a photo is simultaneously pinned
    and vetoed.
    """

    name: str
    predicate: Predicate
    action: str = "retain"

    def __post_init__(self) -> None:
        if self.action not in ("retain", "dispose"):
            raise ValidationError(f"policy {self.name!r}: unknown action {self.action!r}")

    def matches(self, photo: Photo) -> bool:
        return bool(self.predicate(photo))


def brand_contract_policy(brands: Iterable[str], name: str = "brand-contract") -> RetentionPolicy:
    """Pin photos whose ``metadata['brand']`` is under an imagery contract."""
    brand_set = {b.lower() for b in brands}
    return RetentionPolicy(
        name=name,
        predicate=lambda p: str(p.metadata.get("brand", "")).lower() in brand_set,
    )


def metadata_flag_policy(
    flag: str,
    name: Optional[str] = None,
    *,
    action: str = "retain",
) -> RetentionPolicy:
    """Pin (or veto) photos whose metadata carries a truthy flag.

    Covers the personal use cases: ``metadata_flag_policy("passport")``,
    ``metadata_flag_policy("gdpr_erasure", action="dispose")`` ...
    """
    return RetentionPolicy(
        name=name or f"flag:{flag}",
        predicate=lambda p: bool(p.metadata.get(flag)),
        action=action,
    )


def recent_photos_policy(
    cutoff_iso: str,
    name: str = "recent-favourites",
) -> RetentionPolicy:
    """Pin photos whose EXIF timestamp is at or after an ISO cutoff.

    Expects ``metadata['exif']['timestamp']`` as an ISO-8601 string (the
    format :meth:`repro.images.exif.ExifRecord.as_dict` writes).  ISO
    strings compare chronologically, so plain string comparison suffices.
    """
    return RetentionPolicy(
        name=name,
        predicate=lambda p: str(
            (p.metadata.get("exif") or {}).get("timestamp", "")
        )
        >= cutoff_iso,
    )


def derive_retained(
    photos: Sequence[Photo],
    policies: Sequence[RetentionPolicy],
) -> List[int]:
    """Evaluate a policy stack; return the sorted retention set ``S0``.

    Raises :class:`ValidationError` when a photo is both pinned by a
    retain rule and vetoed by a dispose rule — contradictory compliance
    requirements must be resolved by a human, not silently.
    """
    pinned: Set[int] = set()
    vetoed: Set[int] = set()
    pin_reason = {}
    veto_reason = {}
    for policy in policies:
        for photo in photos:
            if not policy.matches(photo):
                continue
            if policy.action == "retain":
                pinned.add(photo.photo_id)
                pin_reason.setdefault(photo.photo_id, policy.name)
            else:
                vetoed.add(photo.photo_id)
                veto_reason.setdefault(photo.photo_id, policy.name)
    conflicts = pinned & vetoed
    if conflicts:
        sample = sorted(conflicts)[:5]
        detail = ", ".join(
            f"photo {p} (retain: {pin_reason[p]}, dispose: {veto_reason[p]})"
            for p in sample
        )
        raise ValidationError(f"conflicting retention policies: {detail}")
    return sorted(pinned)
