"""Access-driven cache policies (LRU / LFU) for the related-work claim.

Section 2 argues classic caching is *not* a substitute for PAR: "these
caching solutions are not relevant for PAR, since similarities are not
leveraged to save space, i.e., the decision of which items to retain is
not based on any redundancy in the data, but on frequency/recency of the
use."  To make that claim testable we implement the textbook policies —
byte-capacity LRU and LFU caches with admission on miss — and a replay
harness that drives them with the same weighted page workload the PAR
selection serves.  The comparison bench then measures both worlds on both
metrics: raw hit rate (caching's home turf) and the PAR objective of the
photo set resident in the cache (where redundancy-blindness costs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.instance import PARInstance
from repro.errors import ValidationError
from repro.lru import ByteBudgetLRU

__all__ = ["ByteCapacityCache", "replay_accesses", "CacheReplayResult"]


class ByteCapacityCache:
    """A byte-bounded cache with LRU or LFU eviction.

    Items are admitted on access (miss-fill).  Items larger than the
    capacity are never admitted.  Pinned items (a retention set) are
    admitted up front and never evicted.

    Residency, byte accounting, and the eviction loop live in the shared
    :class:`repro.lru.ByteBudgetLRU`; this class contributes only the
    access-driven admission protocol and the LFU victim policy.
    """

    def __init__(
        self,
        capacity_bytes: float,
        sizes: Dict[int, float],
        policy: str = "lru",
        pinned: Sequence[int] = (),
    ) -> None:
        if policy not in ("lru", "lfu"):
            raise ValidationError(f"unknown policy {policy!r}; use 'lru' or 'lfu'")
        self.policy = policy
        self._sizes = dict(sizes)
        self._freq: Dict[int, int] = {}
        victim = self._lfu_victim if policy == "lfu" else None
        self._lru: ByteBudgetLRU = ByteBudgetLRU(capacity_bytes, victim_of=victim)
        pinned_ids = sorted(set(int(p) for p in pinned))
        if sum(self._sizes[p] for p in pinned_ids) > self.capacity * (1 + 1e-12):
            raise ValidationError("pinned items exceed cache capacity")
        for p in pinned_ids:
            self._lru.put(p, p, self._sizes[p], pin=True)

    @property
    def capacity(self) -> float:
        return self._lru.capacity

    @property
    def resident(self) -> List[int]:
        """Currently cached photo ids."""
        return self._lru.keys()

    @property
    def used_bytes(self) -> float:
        return self._lru.used_bytes

    def _lfu_victim(self, evictable) -> Optional[int]:
        # Least frequently used non-pinned resident; FIFO tie-break.
        best, best_freq = None, None
        for candidate in evictable:
            freq = self._freq.get(candidate, 0)
            if best_freq is None or freq < best_freq:
                best, best_freq = candidate, freq
        return best

    def access(self, photo_id: int) -> bool:
        """Record one access; returns True on hit."""
        photo_id = int(photo_id)
        try:
            size = self._sizes[photo_id]
        except KeyError:
            raise ValidationError(f"unknown photo id {photo_id}") from None
        self._freq[photo_id] = self._freq.get(photo_id, 0) + 1

        if photo_id in self._lru:
            if self.policy == "lru":
                self._lru.touch(photo_id)
            return True
        self._lru.put(photo_id, photo_id, size)
        return False


@dataclass
class CacheReplayResult:
    """Outcome of replaying a page workload through an access-driven cache."""

    policy: str
    accesses: int
    hit_rate: float
    final_resident: List[int]
    final_bytes: float


def replay_accesses(
    instance: PARInstance,
    *,
    policy: str = "lru",
    n_visits: int = 1000,
    photos_per_page: int = 8,
    rng: Optional[np.random.Generator] = None,
) -> CacheReplayResult:
    """Drive an LRU/LFU cache with the weighted page workload.

    Visits sample subsets proportional to weight; each visit accesses the
    page's most relevant photos (the photos a landing page displays).
    The cache capacity is the instance budget and the retention set is
    pinned — the same resources PAR gets.
    """
    rng = rng or np.random.default_rng()
    cache = ByteCapacityCache(
        instance.budget,
        {p.photo_id: p.cost for p in instance.photos},
        policy=policy,
        pinned=sorted(instance.retained),
    )
    weights = np.array([q.weight for q in instance.subsets], dtype=np.float64)
    weights /= weights.sum()
    pages = []
    for q in instance.subsets:
        order = np.argsort(-q.relevance, kind="stable")[:photos_per_page]
        pages.append([int(q.members[i]) for i in order])

    hits = accesses = 0
    for qi in rng.choice(len(pages), size=n_visits, p=weights):
        for photo_id in pages[int(qi)]:
            accesses += 1
            hits += cache.access(photo_id)
    return CacheReplayResult(
        policy=policy,
        accesses=accesses,
        hit_rate=hits / accesses if accesses else 0.0,
        final_resident=sorted(cache.resident),
        final_bytes=cache.used_bytes,
    )
