"""Tiered storage simulator, retention policies, and page workloads."""

from repro.storage.archive import (
    COLD_DEFAULT,
    HOT_DEFAULT,
    AccessStats,
    PageLoadModel,
    TieredStore,
    TierSpec,
)
from repro.storage.policy import (
    RetentionPolicy,
    brand_contract_policy,
    derive_retained,
    metadata_flag_policy,
    recent_photos_policy,
)
from repro.storage.caching import (
    ByteCapacityCache,
    CacheReplayResult,
    replay_accesses,
)
from repro.storage.workload import WorkloadResult, replay_page_workload

__all__ = [
    "TierSpec",
    "TieredStore",
    "PageLoadModel",
    "AccessStats",
    "HOT_DEFAULT",
    "COLD_DEFAULT",
    "RetentionPolicy",
    "brand_contract_policy",
    "metadata_flag_policy",
    "recent_photos_policy",
    "derive_retained",
    "WorkloadResult",
    "replay_page_workload",
    "ByteCapacityCache",
    "CacheReplayResult",
    "replay_accesses",
]
