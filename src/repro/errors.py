"""Exception hierarchy for the PHOcus reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  The concrete
subclasses distinguish the three failure domains a caller may want to
handle differently: malformed problem inputs, infeasible optimisation
requests, and misconfigured components.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ValidationError(ReproError, ValueError):
    """A problem input violates the PAR model contract.

    Raised while building :class:`repro.core.instance.PARInstance` (or any
    substrate input) when, e.g., relevance scores are negative, a similarity
    value lies outside ``[0, 1]``, or a subset references an unknown photo.
    """


class InfeasibleError(ReproError):
    """The optimisation problem admits no feasible solution.

    The canonical case is a retention set ``S0`` whose total cost already
    exceeds the storage budget ``B``.
    """


class ConfigurationError(ReproError):
    """A component was configured inconsistently.

    For example requesting an unknown solver name, or asking the SimHash
    sparsifier for more bands than signature bits.
    """


class CheckpointError(ReproError):
    """A solve checkpoint cannot be decoded or does not fit the instance.

    Raised when a checkpoint record fails its CRC32 (bit rot, torn
    write), carries an unknown format, or references a different
    instance than the one being resumed.  Callers that merely *recover*
    (the job manager) catch this and fall back to a from-scratch solve;
    a resume explicitly requested with a bad checkpoint fails loudly.
    """


class QuotaExceeded(ReproError):
    """A tenant's storage quota refuses the write (HTTP 413).

    ``kind`` names the exhausted resource (``"bytes"`` or
    ``"instances"``); ``used``/``limit`` quantify it so the service can
    return a structured error body instead of prose.
    """

    def __init__(self, tenant: str, kind: str, used: float, limit: float) -> None:
        super().__init__(
            f"tenant {tenant!r} over {kind} quota ({used:g} of {limit:g})"
        )
        self.tenant = tenant
        self.kind = kind
        self.used = used
        self.limit = limit


class RateLimited(ReproError):
    """A tenant's token bucket is empty — back off (HTTP 429).

    ``retry_after`` is the seconds until one token refills, surfaced in
    the structured error body (and usable as a ``Retry-After`` header).
    """

    def __init__(self, tenant: str, retry_after: float) -> None:
        super().__init__(
            f"tenant {tenant!r} is over its request rate; retry in "
            f"{retry_after:.2f}s"
        )
        self.tenant = tenant
        self.retry_after = retry_after


class InstanceNotFound(ReproError, KeyError):
    """A ``by_ref`` reference names no stored tenant instance (HTTP 404)."""

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0] if self.args else ""


class TransientSolveError(ReproError):
    """A solve failed for a reason that may succeed on retry.

    Raised (or used to wrap lower-level faults) when the failure is
    environmental — a flaky backend, resource exhaustion, an interrupted
    worker — rather than a property of the problem input.  The job
    orchestration layer retries these with exponential backoff; every
    other :class:`ReproError` is treated as permanent and fails the job
    immediately (see :func:`repro.core.solver.classify_failure`).
    """
