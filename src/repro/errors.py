"""Exception hierarchy for the PHOcus reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  The concrete
subclasses distinguish the three failure domains a caller may want to
handle differently: malformed problem inputs, infeasible optimisation
requests, and misconfigured components.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ValidationError(ReproError, ValueError):
    """A problem input violates the PAR model contract.

    Raised while building :class:`repro.core.instance.PARInstance` (or any
    substrate input) when, e.g., relevance scores are negative, a similarity
    value lies outside ``[0, 1]``, or a subset references an unknown photo.
    """


class InfeasibleError(ReproError):
    """The optimisation problem admits no feasible solution.

    The canonical case is a retention set ``S0`` whose total cost already
    exceeds the storage budget ``B``.
    """


class ConfigurationError(ReproError):
    """A component was configured inconsistently.

    For example requesting an unknown solver name, or asking the SimHash
    sparsifier for more bands than signature bits.
    """


class CheckpointError(ReproError):
    """A solve checkpoint cannot be decoded or does not fit the instance.

    Raised when a checkpoint record fails its CRC32 (bit rot, torn
    write), carries an unknown format, or references a different
    instance than the one being resumed.  Callers that merely *recover*
    (the job manager) catch this and fall back to a from-scratch solve;
    a resume explicitly requested with a bad checkpoint fails loudly.
    """


class QuotaExceeded(ReproError):
    """A tenant's storage quota refuses the write (HTTP 413).

    ``kind`` names the exhausted resource (``"bytes"`` or
    ``"instances"``); ``used``/``limit`` quantify it so the service can
    return a structured error body instead of prose.
    """

    def __init__(self, tenant: str, kind: str, used: float, limit: float) -> None:
        super().__init__(
            f"tenant {tenant!r} over {kind} quota ({used:g} of {limit:g})"
        )
        self.tenant = tenant
        self.kind = kind
        self.used = used
        self.limit = limit


class RateLimited(ReproError):
    """A tenant's token bucket is empty — back off (HTTP 429).

    ``retry_after`` is the seconds until one token refills, surfaced in
    the structured error body (and usable as a ``Retry-After`` header).
    """

    def __init__(self, tenant: str, retry_after: float) -> None:
        super().__init__(
            f"tenant {tenant!r} is over its request rate; retry in "
            f"{retry_after:.2f}s"
        )
        self.tenant = tenant
        self.retry_after = retry_after


class InstanceNotFound(ReproError, KeyError):
    """A ``by_ref`` reference names no stored tenant instance (HTTP 404)."""

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0] if self.args else ""


class DeadlineExceeded(ReproError):
    """A request's deadline expired while its solve was in flight (HTTP 504).

    Raised cooperatively from the solver hot loops when a
    :class:`repro.resilience.Deadline` armed for the current thread
    expires (or is interrupted, e.g. by a graceful drain).  Instead of
    burning CPU for a client that has already given up, the solve stops
    at the next iteration and carries its latest resumable ``checkpoint``
    document (:mod:`repro.core.checkpoint` plain-dict form) out with the
    exception, so the work done so far is never lost: the job manager
    persists it and a later resume continues bit-identically.

    ``reason`` distinguishes a genuine timeout (``"deadline"``) from an
    external interruption (``"drain"``, ``"clock_skew"``, ...).
    """

    def __init__(
        self,
        message: str,
        *,
        reason: str = "deadline",
        deadline_seconds: "float | None" = None,
        elapsed_seconds: "float | None" = None,
        checkpoint: "dict | None" = None,
    ) -> None:
        super().__init__(message)
        self.reason = reason
        self.deadline_seconds = deadline_seconds
        self.elapsed_seconds = elapsed_seconds
        self.checkpoint = checkpoint

    def progress(self) -> "dict | None":
        """The checkpoint's small progress view (``None`` without one)."""
        if not isinstance(self.checkpoint, dict):
            return None
        progress = self.checkpoint.get("progress")
        return progress if isinstance(progress, dict) else None


class ServiceOverloaded(ReproError):
    """The service shed this request to protect itself (HTTP 503).

    Raised by the admission controller (:mod:`repro.resilience.admission`)
    *before* expensive work starts — when in-flight capacity is gone,
    when one tenant would exceed its fair share under contention, when
    the predicted queue wait cannot meet the request's deadline, or while
    the service is draining.  ``retry_after`` is the suggested backoff in
    seconds (also sent as the ``Retry-After`` header); ``reason`` is a
    stable machine-readable shed cause.
    """

    def __init__(
        self,
        message: str,
        *,
        reason: str = "capacity",
        retry_after: float = 1.0,
        tenant: "str | None" = None,
    ) -> None:
        super().__init__(message)
        self.reason = reason
        self.retry_after = retry_after
        self.tenant = tenant


class StorageExhausted(ReproError, OSError):
    """A durable write failed because the disk is full (HTTP 507).

    Raised when a journal append or tenant-store write hits ``ENOSPC`` /
    ``EDQUOT`` (or a read-only filesystem), so the service can answer a
    structured ``507 Insufficient Storage`` instead of an unhandled 500
    traceback.  Classified as *transient* by
    :func:`repro.core.solver.classify_failure` — space may be reclaimed,
    so a retried job can plausibly succeed.
    """

    def __init__(self, message: str, *, path: "str | None" = None, errno_value: "int | None" = None) -> None:
        ReproError.__init__(self, message)
        self.path = path
        self.errno_value = errno_value
        self.kind = "storage_exhausted"


class TransientSolveError(ReproError):
    """A solve failed for a reason that may succeed on retry.

    Raised (or used to wrap lower-level faults) when the failure is
    environmental — a flaky backend, resource exhaustion, an interrupted
    worker — rather than a property of the problem input.  The job
    orchestration layer retries these with exponential backoff; every
    other :class:`ReproError` is treated as permanent and fails the job
    immediately (see :func:`repro.core.solver.classify_failure`).
    """
