"""Plain-text bar charts for the benchmark result files.

The paper's Figure 5 panels are grouped bar charts; the benches render
the same visual in monospace text so `benchmarks/results/*.txt` can be
read as figures without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["grouped_bar_chart", "quality_grid_chart"]

_FULL = "█"
_PART = " ▏▎▍▌▋▊▉"


def _bar(value: float, max_value: float, width: int) -> str:
    if max_value <= 0:
        return ""
    cells = value / max_value * width
    full = int(cells)
    frac = cells - full
    partial = _PART[int(frac * 8)] if full < width else ""
    return _FULL * full + partial


def grouped_bar_chart(
    groups: Sequence[str],
    series: Dict[str, Sequence[float]],
    *,
    width: int = 40,
    value_format: str = "{:.2f}",
    title: Optional[str] = None,
) -> str:
    """Render grouped horizontal bars (one block of bars per group).

    ``series`` maps series names to per-group values; every series must
    provide one value per group.  Bars share a global scale so lengths
    are comparable across the whole chart.
    """
    for name, values in series.items():
        if len(values) != len(groups):
            raise ValueError(
                f"series {name!r} has {len(values)} values for {len(groups)} groups"
            )
    peak = max((max(values) for values in series.values()), default=0.0)
    label_width = max((len(name) for name in series), default=0)
    lines: List[str] = []
    if title:
        lines.append(title)
    for gi, group in enumerate(groups):
        lines.append(f"{group}:")
        for name, values in series.items():
            value = values[gi]
            rendered = value_format.format(value)
            lines.append(
                f"  {name:<{label_width}} |{_bar(value, peak, width):<{width}}| {rendered}"
            )
    return "\n".join(lines)


def quality_grid_chart(grid, *, width: int = 40) -> str:
    """Render a :class:`repro.bench.harness.QualityGrid` as bars.

    Groups are budgets (labelled in MB), series are algorithms under
    their Figure 5 display names.
    """
    from repro.bench.harness import DISPLAY_NAMES, QualityGrid

    assert isinstance(grid, QualityGrid)
    groups = [f"{b / 1e6:.1f}MB" for b in grid.budgets]
    series = {
        DISPLAY_NAMES.get(a, a): grid.series(a) for a in grid.algorithms
    }
    return grouped_bar_chart(
        groups, series, width=width, title=f"[{grid.dataset_name}] quality by budget"
    )
