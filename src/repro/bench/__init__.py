"""Benchmark harness utilities shared by the per-figure bench targets."""

from repro.bench.ascii_chart import grouped_bar_chart, quality_grid_chart
from repro.bench.harness import (
    DISPLAY_NAMES,
    QualityCell,
    QualityGrid,
    format_grid,
    ordering_violations,
    run_quality_grid,
)

__all__ = [
    "QualityCell",
    "QualityGrid",
    "run_quality_grid",
    "format_grid",
    "ordering_violations",
    "DISPLAY_NAMES",
    "grouped_bar_chart",
    "quality_grid_chart",
]
