"""Experiment harness shared by all benchmark targets.

Every figure/table bench follows the same pattern: build a dataset, sweep
budgets, run a set of algorithms, and print rows shaped like the paper's
plots.  This module centralises that machinery so each bench file only
declares *what* to run.

The harness reports the true contextual objective for every algorithm
regardless of what surrogate the algorithm optimised — the same protocol
as Section 5.3.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.instance import PARInstance
from repro.core.objective import max_score
from repro.core.solver import Solution, solve
from repro.datasets.base import MB, Dataset

__all__ = [
    "QualityCell",
    "QualityGrid",
    "run_quality_grid",
    "format_grid",
    "ordering_violations",
]

# Canonical display names used across the benches (matches Figure 5 legends).
DISPLAY_NAMES = {
    "rand-a": "RAND",
    "rand-d": "RAND-D",
    "greedy-nr": "G-NR",
    "greedy-ncs": "G-NCS",
    "phocus": "PHOcus",
    "bruteforce": "Brute-Force",
    "sviridenko": "Sviridenko",
}


@dataclass
class QualityCell:
    """One (budget, algorithm) measurement."""

    budget: float
    algorithm: str
    value: float
    cost: float
    seconds: float
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def budget_mb(self) -> float:
        return self.budget / MB


@dataclass
class QualityGrid:
    """A full sweep: budgets × algorithms, plus the instance ceiling."""

    dataset_name: str
    budgets: List[float]
    algorithms: List[str]
    cells: List[QualityCell]
    max_value: float

    def value(self, budget: float, algorithm: str) -> float:
        for cell in self.cells:
            if cell.budget == budget and cell.algorithm == algorithm:
                return cell.value
        raise KeyError((budget, algorithm))

    def series(self, algorithm: str) -> List[float]:
        """Values across budgets (in sweep order) for one algorithm."""
        return [self.value(b, algorithm) for b in self.budgets]


def run_quality_grid(
    dataset: Dataset,
    budgets_mb: Sequence[float],
    algorithms: Sequence[str],
    *,
    seed: int = 0,
    contextual_mode: str = "reweight+normalise",
    instance_transform: Optional[Callable[[PARInstance], PARInstance]] = None,
    workers: Optional[int] = None,
) -> QualityGrid:
    """Run the standard budget × algorithm sweep on a dataset.

    ``instance_transform`` lets a bench inject preprocessing (e.g.
    τ-sparsification) between instance construction and solving; the
    reported values are still measured on the untransformed objective.

    ``workers > 1`` fans the (budget × algorithm) cells out over the
    shared-memory process pool (:func:`repro.core.solver.solve_many`):
    the instance is built once at the first budget, exported once, and
    every cell runs with a task-level budget override — valid because
    dataset instances are budget-independent apart from the budget field.
    Benches with an ``instance_transform`` fall back to the serial path
    (the transform may depend on the budget).
    """
    budgets = [b * MB for b in budgets_mb]
    if workers is not None and workers > 1 and instance_transform is None:
        return _run_quality_grid_parallel(
            dataset,
            budgets,
            algorithms,
            seed=seed,
            contextual_mode=contextual_mode,
            workers=workers,
        )
    cells: List[QualityCell] = []
    ceiling = 0.0
    for budget in budgets:
        instance = dataset.instance(budget, contextual_mode=contextual_mode)
        ceiling = max_score(instance)
        solver_instance = (
            instance_transform(instance) if instance_transform else instance
        )
        for algorithm in algorithms:
            rng = np.random.default_rng(seed)
            start = time.perf_counter()
            solution: Solution = solve(solver_instance, algorithm, rng=rng)
            elapsed = time.perf_counter() - start
            # Score against the TRUE instance (transform may be lossy).
            from repro.core.objective import score

            true_value = (
                solution.value
                if solver_instance is instance
                else score(instance, solution.selection)
            )
            cells.append(
                QualityCell(
                    budget=budget,
                    algorithm=algorithm,
                    value=true_value,
                    cost=solution.cost,
                    seconds=elapsed,
                    extras=dict(solution.extras),
                )
            )
    return QualityGrid(
        dataset_name=dataset.name,
        budgets=budgets,
        algorithms=list(algorithms),
        cells=cells,
        max_value=ceiling,
    )


def _run_quality_grid_parallel(
    dataset: Dataset,
    budgets: Sequence[float],
    algorithms: Sequence[str],
    *,
    seed: int,
    contextual_mode: str,
    workers: int,
) -> QualityGrid:
    from repro.core.parallel import SolveTask
    from repro.core.solver import solve_many

    instance = dataset.instance(budgets[0], contextual_mode=contextual_mode)
    tasks = [
        SolveTask(algorithm=algorithm, budget=budget, seed=seed)
        for budget in budgets
        for algorithm in algorithms
    ]
    solutions = solve_many(instance, tasks, workers=workers)
    cells = [
        QualityCell(
            budget=task.budget,
            algorithm=task.algorithm,
            value=solution.value,
            cost=solution.cost,
            seconds=solution.elapsed_seconds,
            extras=dict(solution.extras),
        )
        for task, solution in zip(tasks, solutions)
    ]
    return QualityGrid(
        dataset_name=dataset.name,
        budgets=list(budgets),
        algorithms=list(algorithms),
        cells=cells,
        max_value=max_score(instance),
    )


def format_grid(grid: QualityGrid, *, relative: bool = False) -> str:
    """Render a grid the way the paper's bar charts read: one row per
    budget, one column per algorithm."""
    names = [DISPLAY_NAMES.get(a, a) for a in grid.algorithms]
    header = f"{'budget':>10} | " + " | ".join(f"{n:>12}" for n in names)
    lines = [f"[{grid.dataset_name}] quality by budget", header, "-" * len(header)]
    for budget in grid.budgets:
        row = [f"{budget / MB:>8.1f}MB"]
        for algorithm in grid.algorithms:
            value = grid.value(budget, algorithm)
            if relative and grid.max_value > 0:
                row.append(f"{value / grid.max_value:>11.1%} ")
            else:
                row.append(f"{value:>12.2f}")
        lines.append(" | ".join(row))
    return "\n".join(lines)


def ordering_violations(
    grid: QualityGrid,
    expected_order: Sequence[str],
    *,
    tolerance: float = 0.0,
) -> List[Tuple[float, str, str]]:
    """Check the paper's quality ranking holds at every budget.

    ``expected_order`` lists algorithms best-first.  Returns the
    violations as ``(budget, should_be_better, was_better)`` triples —
    empty means the ranking held everywhere (within ``tolerance`` of the
    better value, to absorb near-ties the paper also reports).
    """
    violations = []
    for budget in grid.budgets:
        for hi in range(len(expected_order)):
            for lo in range(hi + 1, len(expected_order)):
                better = grid.value(budget, expected_order[hi])
                worse = grid.value(budget, expected_order[lo])
                if worse > better * (1.0 + tolerance) + 1e-9:
                    violations.append((budget, expected_order[hi], expected_order[lo]))
    return violations
