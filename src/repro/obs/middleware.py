"""HTTP-layer observability: route metrics and an opt-in access log.

The service's request handler calls :func:`observe_request` once per
request, after the response is written.  It does two independent things:

* **Metrics** — when probes are armed, bump
  ``phocus_http_requests_total{method,route,status}`` and observe
  ``phocus_http_request_seconds{route}``.  The ``route`` label is the
  *pattern*, not the raw path (``/jobs/<id>``, never ``/jobs/3f2a…``),
  via :func:`route_label` — otherwise every job id would mint a new
  series and burn the cardinality cap.
* **Access log** — when an :class:`AccessLog` is given, append one
  structured JSON line (method, path, status, duration_ms, timestamp)
  to its stream.  This replaces the silent ``log_message`` no-op of the
  HTTP handler and is **off by default**, preserving the service's
  historical quiet behaviour; ``phocus serve --access-log`` turns it on.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Optional, TextIO

from repro.obs.probes import Instruments

__all__ = ["AccessLog", "observe_request", "route_label"]

# Exact routes the service exposes; anything else (including the
# /jobs/<id> family) is normalised so unknown paths cannot explode the
# route label space.
_EXACT_ROUTES = frozenset(
    {
        "/health",
        "/healthz",
        "/readyz",
        "/version",
        "/algorithms",
        "/solve",
        "/score",
        "/fidelity/frontier",
        "/jobs",
        "/stats",
        "/metrics",
    }
)


def route_label(path: str) -> str:
    """Collapse a request path to a bounded route label."""
    path = path.rstrip("/") or "/"
    if path in _EXACT_ROUTES:
        return path
    if path.startswith("/jobs/"):
        return "/jobs/<id>"
    if path.startswith("/tenants/"):
        # /tenants/<tid>[/instances[/<iid>]] and /tenants/<tid>/stats —
        # tenant and instance ids never become route labels.
        tail = path.split("/")[3:]
        if tail[:1] == ["stats"]:
            return "/tenants/<id>/stats"
        if tail[:1] == ["instances"]:
            return (
                "/tenants/<id>/instances/<iid>"
                if len(tail) > 1
                else "/tenants/<id>/instances"
            )
        return "/tenants/<id>"
    return "<other>"


class AccessLog:
    """Structured per-request log lines on a text stream (default stderr).

    One JSON object per line, written atomically under a lock so
    concurrent handler threads never interleave partial lines::

        {"ts": 1722870000.123, "method": "GET", "path": "/stats",
         "status": 200, "duration_ms": 1.84}
    """

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._lock = threading.Lock()

    def log(
        self, method: str, path: str, status: int, duration_s: float
    ) -> None:
        line = json.dumps(
            {
                "ts": round(time.time(), 3),
                "method": method,
                "path": path,
                "status": int(status),
                "duration_ms": round(duration_s * 1000.0, 3),
            },
            separators=(", ", ": "),
        )
        with self._lock:
            try:
                self._stream.write(line + "\n")
                self._stream.flush()
            except (ValueError, OSError):
                pass  # closed stream mid-shutdown: logging must never raise


def observe_request(
    instruments: Optional[Instruments],
    access_log: Optional[AccessLog],
    method: str,
    path: str,
    status: int,
    duration_s: float,
) -> None:
    """Record one finished HTTP request into metrics and/or the access log."""
    if instruments is not None:
        route = route_label(path)
        instruments.http_requests.labels(
            method=method, route=route, status=str(int(status))
        ).inc()
        instruments.http_request_seconds.labels(route=route).observe(duration_s)
    if access_log is not None:
        access_log.log(method, path, status, duration_s)
