"""Instrumentation probes: near-zero cost disarmed, full telemetry armed.

This module is the one switch between "the library runs dark" (the
default — tier-1 performance is untouched) and "every layer reports
into one registry".  It follows the :mod:`repro.faults`
single-global-``None``-check pattern exactly: instrumented code does

    from repro.obs import probes

    obs = probes.active()
    if obs is not None:
        obs.solver_runs.labels(mode=mode, backend=backend).inc()

so the disarmed cost at every site is a single module-global load plus a
``None`` test.  No metric names, label sets, or registry lookups are
paid until someone arms observability.

:class:`Instruments` is the metric *catalog*: every family the stack
emits is declared here once, with its name, type, help string, and
labels, so call sites stay one-liners and the DESIGN.md metric table has
a single source of truth.  Naming follows Prometheus conventions —
``phocus_<layer>_<noun>_<unit|total>`` with layers ``solver``,
``objective``, ``checkpoint``, ``jobs``, and ``http``.

:func:`arm` installs an :class:`Instruments` (building one over a fresh
or supplied :class:`~repro.obs.registry.MetricsRegistry`) *and* a span
tracer; :func:`disarm` removes both.  Arming is process-wide, like fault
plans: the point is to reach probes deep inside the solver from the
service layer without threading a registry through every signature.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro.obs import trace as _trace
from repro.obs.registry import DEFAULT_BUCKETS, MetricsRegistry

__all__ = [
    "Instruments",
    "arm",
    "disarm",
    "armed",
    "active",
    "is_armed",
]

#: Log-scale byte buckets for checkpoint record sizes: 256 B ... ~8 MiB.
BYTE_BUCKETS = tuple(256.0 * (4.0 ** i) for i in range(8))


class Instruments:
    """The full metric catalog, pre-bound to one registry.

    Attributes are live metric families; hot paths grab the family once
    and call ``.labels(...).inc()`` / ``.observe(...)`` on it.  All
    families share the registry's cardinality cap; the per-tenant ones
    are the reason the cap exists.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        reg = registry or MetricsRegistry()
        self.registry = reg

        # ----------------------------------------------------------- solver
        self.solver_runs = reg.counter(
            "phocus_solver_runs_total",
            "completed greedy passes",
            ("mode", "backend"),
        )
        self.solver_picks = reg.counter(
            "phocus_solver_picks_total",
            "photos selected by greedy passes (excludes the retained set)",
            ("mode",),
        )
        self.solver_evaluations = reg.counter(
            "phocus_solver_gain_evaluations_total",
            "marginal-gain evaluations (the paper's measure of solver work)",
            ("mode",),
        )
        self.solver_refreshes = reg.counter(
            "phocus_solver_lazy_refreshes_total",
            "CELF lazy re-evaluations (stale heap entries recomputed)",
            ("mode",),
        )
        self.solver_reeval_ratio = reg.gauge(
            "phocus_solver_lazy_reeval_ratio",
            "lazy re-evaluations / heap pops of the most recent pass "
            "(low = laziness is paying off)",
            ("mode",),
        )
        self.solver_heap_size = reg.gauge(
            "phocus_solver_heap_size",
            "candidate heap size at the start of the most recent pass",
            ("mode",),
        )
        self.solver_picks_per_second = reg.gauge(
            "phocus_solver_picks_per_second",
            "selection throughput of the most recent pass",
            ("mode",),
        )
        self.solver_seconds = reg.histogram(
            "phocus_solver_solve_seconds",
            "wall-clock of one greedy pass",
            ("mode",),
        )
        self.solve_requests = reg.counter(
            "phocus_solver_requests_total",
            "solve payloads executed (sync /solve and background jobs)",
            ("algorithm",),
        )

        # -------------------------------------------------------- objective
        self.objective_states = reg.counter(
            "phocus_objective_state_inits_total",
            "CoverageState constructions per evaluation backend",
            ("backend",),
        )

        # ------------------------------------------------------- checkpoint
        self.checkpoint_writes = reg.counter(
            "phocus_checkpoint_writes_total",
            "durable checkpoint records written",
        )
        self.checkpoint_bytes = reg.counter(
            "phocus_checkpoint_bytes_total",
            "bytes of checkpoint records written",
        )
        self.checkpoint_write_seconds = reg.histogram(
            "phocus_checkpoint_write_seconds",
            "latency of one durable checkpoint write (encode + atomic replace)",
        )

        # ------------------------------------------------------------- jobs
        self.jobs_submitted = reg.counter(
            "phocus_jobs_submitted_total",
            "jobs accepted into the queue",
            ("tenant",),
        )
        self.jobs_completed = reg.counter(
            "phocus_jobs_completed_total",
            "jobs reaching a terminal state",
            ("tenant", "state"),
        )
        self.jobs_rejected = reg.counter(
            "phocus_jobs_rejected_total",
            "submissions refused with queue-full backpressure (HTTP 429)",
        )
        self.jobs_retries = reg.counter(
            "phocus_jobs_retries_total",
            "transient failures re-queued for another attempt",
        )
        self.jobs_timeouts = reg.counter(
            "phocus_jobs_timeouts_total",
            "jobs failed by the per-job timeout",
        )
        self.jobs_failures = reg.counter(
            "phocus_jobs_failures_total",
            "job failure outcomes by classification "
            "(transient / transient_exhausted / permanent / timeout / cancelled)",
            ("kind",),
        )
        self.jobs_queue_depth = reg.gauge(
            "phocus_jobs_queue_depth",
            "jobs waiting in the fair queue",
        )
        self.jobs_workers_busy = reg.gauge(
            "phocus_jobs_workers_busy",
            "worker threads currently executing a job",
        )
        self.jobs_wait_seconds = reg.histogram(
            "phocus_jobs_wait_seconds",
            "queue wait: submission to first dequeue",
        )
        self.jobs_run_seconds = reg.histogram(
            "phocus_jobs_run_seconds",
            "execution time of successful job attempts",
        )

        # ---------------------------------------------------------- tenants
        self.tenants_store_bytes = reg.gauge(
            "phocus_tenants_store_bytes",
            "bytes of stored instance envelopes per tenant",
            ("tenant",),
            max_series=128,
        )
        self.tenants_store_instances = reg.gauge(
            "phocus_tenants_store_instances",
            "stored instances per tenant",
            ("tenant",),
            max_series=128,
        )
        self.tenants_cache_hits = reg.counter(
            "phocus_tenants_cache_hits_total",
            "warm-cache leases served from a resident packed instance",
            ("tenant",),
            max_series=128,
        )
        self.tenants_cache_misses = reg.counter(
            "phocus_tenants_cache_misses_total",
            "warm-cache leases that had to load + pack",
            ("tenant",),
            max_series=128,
        )
        self.tenants_cache_evictions = reg.counter(
            "phocus_tenants_cache_evictions_total",
            "packed instances evicted from the warm cache",
            ("tenant",),
            max_series=128,
        )
        self.tenants_cache_bytes = reg.gauge(
            "phocus_tenants_cache_bytes",
            "bytes of packed instances resident in the warm cache",
        )
        self.tenants_quota_rejections = reg.counter(
            "phocus_tenants_quota_rejections_total",
            "requests refused by quota (413: bytes/instances) or rate (429)",
            ("tenant", "kind"),
            max_series=256,
        )

        # ------------------------------------------------------- scalebuild
        self.scalebuild_candidates = reg.counter(
            "phocus_scalebuild_candidate_pairs_total",
            "unique banded-LSH candidate pairs produced by streamed builds",
        )
        self.scalebuild_verified = reg.counter(
            "phocus_scalebuild_verified_pairs_total",
            "candidate pairs whose exact cosine was computed",
        )
        self.scalebuild_kept = reg.counter(
            "phocus_scalebuild_kept_pairs_total",
            "verified pairs at or above τ kept in the CSR instance",
        )
        self.scalebuild_chunks = reg.counter(
            "phocus_scalebuild_chunks_total",
            "bounded-memory work chunks processed, by pipeline stage",
            ("stage",),
        )
        self.scalebuild_phase_seconds = reg.histogram(
            "phocus_scalebuild_phase_seconds",
            "wall-clock of one streamed-build phase",
            ("phase",),
        )

        # ------------------------------------------------------------- live
        self.live_ingests = reg.counter(
            "phocus_live_ingests_total",
            "photo-delta ingestions committed to the tenant store",
            ("tenant",),
            max_series=256,
        )
        self.live_photos = reg.counter(
            "phocus_live_photos_total",
            "photos appended to live archives via delta ingestion",
            ("tenant",),
            max_series=256,
        )
        self.live_resolves = reg.counter(
            "phocus_live_resolves_total",
            "re-curation solves, by kind (warm seeded vs cold two-phase)",
            ("kind",),
        )
        self.live_resolve_seconds = reg.histogram(
            "phocus_live_resolve_seconds",
            "wall-clock of one re-curation solve",
            ("kind",),
        )
        self.live_regret_bound = reg.gauge(
            "phocus_live_regret_bound",
            "certified relative regret bound of the latest stored solution",
            ("tenant",),
            max_series=256,
        )
        self.live_pending = reg.gauge(
            "phocus_live_pending_deltas",
            "deferred (un-curated) deltas awaiting the re-curation sweep",
            ("tenant",),
            max_series=256,
        )
        self.live_sweeps = reg.counter(
            "phocus_live_sweeps_total",
            "re-curation scheduler sweep passes",
        )
        self.live_recurations = reg.counter(
            "phocus_live_recurations_total",
            "sweep-triggered re-curations, by trigger (warm coalesce vs "
            "full regret/backlog escalation)",
            ("trigger",),
        )

        # --------------------------------------------------------- fidelity
        self.fidelity_solves = reg.counter(
            "phocus_fidelity_solves_total",
            "exclusive-choice multi-fidelity passes completed",
            ("mode",),
        )
        self.fidelity_solve_seconds = reg.histogram(
            "phocus_fidelity_solve_seconds",
            "wall-clock of one exclusive-choice pass",
            ("mode",),
        )
        self.fidelity_variants_selected = reg.counter(
            "phocus_fidelity_variants_selected_total",
            "variants chosen by exclusive passes, by catalog tier",
            ("tier",),
            max_series=64,
        )
        self.fidelity_upgrade_swaps = reg.counter(
            "phocus_fidelity_upgrade_swaps_total",
            "in-drain upgrades of a chosen variant to a higher-fidelity "
            "sibling",
        )
        self.fidelity_frontier_points = reg.counter(
            "phocus_fidelity_frontier_points_total",
            "budget points evaluated by frontier sweeps",
        )
        self.fidelity_mean_fidelity = reg.gauge(
            "phocus_fidelity_mean_fidelity",
            "mean retained fidelity of the most recent fidelity solve "
            "(dropped photos count as 0)",
        )

        # ------------------------------------------------------- resilience
        self.resilience_shed = reg.counter(
            "phocus_resilience_shed_total",
            "requests shed by the admission controller (HTTP 503)",
            ("reason", "tenant"),
            max_series=256,
        )
        self.resilience_brownout = reg.counter(
            "phocus_resilience_brownout_total",
            "degraded /solve responses served under brownout",
            ("mode",),
        )
        self.resilience_deadline_exceeded = reg.counter(
            "phocus_resilience_deadline_exceeded_total",
            "solves stopped by an expired or interrupted deadline",
            ("where",),
        )
        self.resilience_deadline_remaining = reg.histogram(
            "phocus_resilience_deadline_remaining_seconds",
            "deadline budget remaining at admission",
        )
        self.resilience_inflight = reg.gauge(
            "phocus_resilience_inflight",
            "admitted requests currently executing",
        )
        self.resilience_pressure = reg.gauge(
            "phocus_resilience_pressure",
            "admission pressure (1.0 = at capacity)",
        )
        self.resilience_wait_ewma = reg.gauge(
            "phocus_resilience_queue_wait_ewma_seconds",
            "EWMA of job queue wait fed to the admission controller",
        )
        self.resilience_draining = reg.gauge(
            "phocus_resilience_draining",
            "1 while the service is draining or drained, else 0",
        )
        self.jobs_drain_interrupted = reg.counter(
            "phocus_jobs_drain_interrupted_total",
            "running jobs checkpointed and requeued by a graceful drain",
        )

        # ------------------------------------------------------------- http
        self.http_requests = reg.counter(
            "phocus_http_requests_total",
            "HTTP requests served",
            ("method", "route", "status"),
            max_series=256,
        )
        self.http_request_seconds = reg.histogram(
            "phocus_http_request_seconds",
            "request handling latency",
            ("route",),
        )

    # ------------------------------------------------------------ summaries

    def failure_counts(self) -> Dict[str, object]:
        """Job failure tallies for ``GET /stats`` (reads the live registry)."""
        reg = self.registry
        by_kind = reg.sum_by_label("phocus_jobs_failures_total", "kind")
        return {
            "by_kind": {k: int(v) for k, v in sorted(by_kind.items())},
            "retries": int(reg.get_sample("phocus_jobs_retries_total") or 0),
            "timeouts": int(reg.get_sample("phocus_jobs_timeouts_total") or 0),
            "rejected": int(reg.get_sample("phocus_jobs_rejected_total") or 0),
        }


_instruments: Optional[Instruments] = None
_arm_lock = threading.Lock()


def arm(
    registry: Optional[MetricsRegistry] = None,
    *,
    tracer: Optional[_trace.Tracer] = None,
) -> Instruments:
    """Arm observability process-wide; returns the live :class:`Instruments`.

    Re-arming with no arguments while already armed keeps the existing
    instruments (so a service and a library caller can both "ensure
    armed" without resetting each other's counters); passing an explicit
    ``registry`` always rebuilds.
    """
    global _instruments
    with _arm_lock:
        if _instruments is not None and registry is None:
            if _trace.active_tracer() is None:
                _trace.install(tracer)
            return _instruments
        _instruments = Instruments(registry)
        _trace.install(tracer)
        return _instruments


def disarm() -> None:
    """Disarm: every probe site reverts to the single-None-check no-op."""
    global _instruments
    with _arm_lock:
        _instruments = None
        _trace.uninstall()


@contextmanager
def armed(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[Instruments]:
    """Context manager: arm for the block, always disarm after (tests)."""
    instruments = arm(registry or MetricsRegistry())
    try:
        yield instruments
    finally:
        disarm()


def active() -> Optional[Instruments]:
    """The armed instruments, or ``None`` — THE hot-path check.

    Instrumented code must test the result against ``None`` before doing
    any metric work; that test is the entire disarmed cost.
    """
    return _instruments


def is_armed() -> bool:
    return _instruments is not None
