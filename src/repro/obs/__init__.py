"""``repro.obs`` — metrics, tracing, and profiling for the PHOcus stack.

Operating a photo-archival service at fleet scale is an observability
problem as much as an algorithmic one: budget decisions ride on
per-request latency and byte telemetry, and the CELF solver's own
health signal — how often laziness actually avoids re-evaluation — is
invisible without counters.  This package is the standing telemetry
layer every other subsystem reports into:

* :mod:`repro.obs.registry` — thread-safe metric families
  (:class:`~repro.obs.registry.Counter`,
  :class:`~repro.obs.registry.Gauge`,
  :class:`~repro.obs.registry.Histogram` with fixed log-scale buckets),
  labelled series under a hard cardinality cap, snapshot/reset.
* :mod:`repro.obs.prom` — Prometheus text exposition (format 0.0.4) of
  a snapshot; what ``GET /metrics`` serves.
* :mod:`repro.obs.trace` — nested spans with monotonic timing and a
  ring buffer of recent history.
* :mod:`repro.obs.probes` — the arm/disarm switch and the full metric
  catalog (:class:`~repro.obs.probes.Instruments`).  Disarmed, every
  probe site costs one global ``None`` test (the :mod:`repro.faults`
  pattern), so tier-1 performance is unaffected by default.
* :mod:`repro.obs.middleware` — per-route HTTP metrics and the opt-in
  structured access log.

Quick use::

    from repro import obs

    obs.arm()                          # process-wide, like faults.arm
    main_algorithm(instance)
    print(obs.render_text())           # Prometheus exposition text

or scrape a running service: ``phocus serve`` arms automatically and
serves ``GET /metrics``.  See ``docs/observability.md`` and the
DESIGN.md "Observability" section for the metric catalog.
"""

from __future__ import annotations

from repro.obs.middleware import AccessLog, observe_request, route_label
from repro.obs.probes import Instruments, active, arm, armed, disarm, is_armed
from repro.obs.prom import CONTENT_TYPE, render, render_registry
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    DEFAULT_MAX_SERIES,
    Counter,
    FamilySnapshot,
    Gauge,
    Histogram,
    HistogramValue,
    MetricsRegistry,
    SeriesSnapshot,
)
from repro.obs.trace import Span, SpanRecord, Tracer, recent_spans, span

__all__ = [
    # registry
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramValue",
    "FamilySnapshot",
    "SeriesSnapshot",
    "DEFAULT_BUCKETS",
    "DEFAULT_MAX_SERIES",
    # prom
    "CONTENT_TYPE",
    "render",
    "render_registry",
    # trace
    "span",
    "Span",
    "SpanRecord",
    "Tracer",
    "recent_spans",
    # probes
    "Instruments",
    "arm",
    "disarm",
    "armed",
    "active",
    "is_armed",
    # middleware
    "AccessLog",
    "observe_request",
    "route_label",
    # convenience
    "render_text",
]


def render_text() -> str:
    """Exposition text of the armed registry ('' when disarmed)."""
    instruments = active()
    if instruments is None:
        return ""
    return render_registry(instruments.registry)
