"""Lightweight in-process tracing: nested spans with a ring of history.

A *span* is one timed region of work — a solve pass, a checkpoint write,
a job execution — with monotonic start/duration, free-form annotations,
and parent/child nesting tracked per thread::

    from repro.obs import trace

    with trace.span("solve.uc") as sp:
        sp.annotate(picks=len(run.picks))
        with trace.span("solve.uc.checkpoint"):
            ...

Completed spans land in a bounded ring buffer (:class:`Tracer`,
default :data:`DEFAULT_CAPACITY` most recent spans); ``phocus obs dump
--local`` and tests read it via :func:`recent_spans`.  The ring evicts
oldest-first, so a long-running service keeps a rolling window of its
latest work at fixed memory cost.

Like :mod:`repro.faults` and :mod:`repro.obs.probes`, tracing follows
the single-global-``None``-check pattern: with no tracer installed,
:func:`span` hands back a shared no-op span and records nothing, so the
hooks can stay in production code.  :func:`repro.obs.probes.arm`
installs a tracer alongside the metrics registry; :func:`install` does
it directly for tests.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "DEFAULT_CAPACITY",
    "Span",
    "SpanRecord",
    "Tracer",
    "span",
    "install",
    "uninstall",
    "active_tracer",
    "recent_spans",
]

DEFAULT_CAPACITY = 256

_ids = itertools.count(1)


@dataclass(frozen=True)
class SpanRecord:
    """One completed span, as kept in the ring buffer."""

    name: str
    span_id: int
    parent_id: Optional[int]
    start: float  # time.monotonic() at entry
    duration_s: float
    annotations: Tuple[Tuple[str, Any], ...]
    thread: str
    error: Optional[str] = None  # exception type name when the block raised

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "duration_ms": self.duration_s * 1000.0,
            "annotations": dict(self.annotations),
            "thread": self.thread,
            "error": self.error,
        }


class Span:
    """A live span; annotate freely, closed by the context manager."""

    __slots__ = ("name", "span_id", "parent_id", "_start", "_annotations")

    def __init__(self, name: str, span_id: int, parent_id: Optional[int]) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self._start = time.monotonic()
        self._annotations: Dict[str, Any] = {}

    def annotate(self, **kv: Any) -> "Span":
        """Attach key/value context to the span; returns ``self``."""
        self._annotations.update(kv)
        return self


class _NullSpan:
    """The shared do-nothing span handed out when no tracer is installed."""

    __slots__ = ()
    name = ""
    span_id = 0
    parent_id = None

    def annotate(self, **kv: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class Tracer:
    """Per-thread span stacks feeding one shared bounded ring buffer."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._local = threading.local()

    # ------------------------------------------------------------- spanning

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str) -> Iterator[Span]:
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        sp = Span(name, next(_ids), parent_id)
        stack.append(sp)
        error: Optional[str] = None
        try:
            yield sp
        except BaseException as exc:
            error = type(exc).__name__
            raise
        finally:
            duration = time.monotonic() - sp._start
            stack.pop()
            record = SpanRecord(
                name=sp.name,
                span_id=sp.span_id,
                parent_id=sp.parent_id,
                start=sp._start,
                duration_s=duration,
                annotations=tuple(sorted(sp._annotations.items())),
                thread=threading.current_thread().name,
                error=error,
            )
            with self._lock:
                self._ring.append(record)

    # -------------------------------------------------------------- reading

    def recent(self, limit: Optional[int] = None) -> List[SpanRecord]:
        """Most recent completed spans, oldest first (up to ``limit``)."""
        with self._lock:
            records = list(self._ring)
        return records[-limit:] if limit is not None else records

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()


_tracer: Optional[Tracer] = None


def install(tracer: Optional[Tracer] = None) -> Tracer:
    """Install a process-wide tracer (a fresh default one when omitted)."""
    global _tracer
    tracer = tracer or Tracer()
    _tracer = tracer
    return tracer


def uninstall() -> None:
    """Remove the tracer; :func:`span` becomes a no-op again."""
    global _tracer
    _tracer = None


def active_tracer() -> Optional[Tracer]:
    return _tracer


@contextmanager
def span(name: str) -> Iterator[Any]:
    """Open a span on the installed tracer (no-op without one).

    The disarmed path is one global load and ``None`` test plus a shared
    inert span object — cheap enough to leave at every call site.
    """
    tracer = _tracer
    if tracer is None:
        yield _NULL_SPAN
        return
    with tracer.span(name) as sp:
        yield sp


def recent_spans(limit: Optional[int] = None) -> List[SpanRecord]:
    """Completed spans from the installed tracer (empty without one)."""
    tracer = _tracer
    if tracer is None:
        return []
    return tracer.recent(limit)
