"""Process-wide, thread-safe metrics registry (counters, gauges, histograms).

A production archive service needs numbers, not anecdotes: how many
solves ran, how long requests took, how deep the job queue is.  This
module is the in-process store those numbers live in — deliberately
small, dependency-free, and modelled on the Prometheus client-library
data model so :mod:`repro.obs.prom` can render a snapshot in the
standard text exposition format.

Three metric types cover every signal the stack emits:

:class:`Counter`
    A monotonically increasing total (requests served, retries fired).
:class:`Gauge`
    A value that goes both ways (queue depth, busy workers).
:class:`Histogram`
    A distribution accumulated into *fixed log-scale buckets*
    (:data:`DEFAULT_BUCKETS`, powers of two from 1 ms to ~65 s) with the
    Prometheus cumulative-``le`` semantics plus ``_sum``/``_count``.

Metrics are created through a :class:`MetricsRegistry` and addressed by
name; re-registering the same name returns the existing family (so
instrumentation sites stay decoupled), while re-registering under a
different type raises — a silent type clash would corrupt the scrape.

Labels and the cardinality cap
------------------------------

Families may declare label names (``labelnames=("tenant",)``); concrete
series are materialised on first use via ``family.labels(tenant="a")``.
Label values arrive from untrusted places (tenant ids, HTTP paths), so
every family enforces a **hard cardinality cap** (``max_series``,
default :data:`DEFAULT_MAX_SERIES`): once a family holds that many
distinct children, further new label combinations collapse into a single
overflow series whose label values are all ``"__overflow__"``, and the
registry's self-metric ``phocus_obs_series_dropped_total`` counts the
collapses.  Totals stay correct; memory stays bounded; a label-cardinality
bug becomes a visible counter instead of an OOM.

Snapshots
---------

:meth:`MetricsRegistry.snapshot` returns an immutable, point-in-time
list of :class:`FamilySnapshot` (plain data, safe to render or assert
on), and :meth:`MetricsRegistry.reset` zeroes every series for test
isolation.  All mutation paths take the registry lock, so concurrent
increments from worker threads never lose updates.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError

__all__ = [
    "COUNTER",
    "GAUGE",
    "HISTOGRAM",
    "DEFAULT_BUCKETS",
    "DEFAULT_MAX_SERIES",
    "OVERFLOW_LABEL_VALUE",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramValue",
    "SeriesSnapshot",
    "FamilySnapshot",
    "MetricsRegistry",
]

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

#: Fixed log-scale (base-2) latency buckets: 1 ms, 2 ms, ... ~65.5 s.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(0.001 * (2.0 ** i) for i in range(17))

#: Hard per-family cap on distinct label combinations.
DEFAULT_MAX_SERIES = 64

#: Label value of the sink series absorbing over-cap combinations.
OVERFLOW_LABEL_VALUE = "__overflow__"

#: Name of the registry self-metric counting collapsed series.
DROPPED_SERIES_METRIC = "phocus_obs_series_dropped_total"

LabelValues = Tuple[str, ...]


@dataclass(frozen=True)
class HistogramValue:
    """Immutable histogram state: cumulative counts are derived on render."""

    buckets: Tuple[float, ...]
    counts: Tuple[int, ...]  # per-bucket (non-cumulative), len == len(buckets) + 1
    sum: float
    count: int

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ``+Inf`` last."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.buckets, self.counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out


@dataclass(frozen=True)
class SeriesSnapshot:
    """One labelled series at snapshot time."""

    labels: Tuple[Tuple[str, str], ...]  # sorted (name, value) pairs
    value: Union[float, HistogramValue]


@dataclass(frozen=True)
class FamilySnapshot:
    """One metric family (name + type + help) with all its series."""

    name: str
    type: str
    help: str
    series: Tuple[SeriesSnapshot, ...]


class _Series:
    """Mutable state of one label combination (guarded by the family lock)."""

    __slots__ = ("value", "bucket_counts", "sum", "count")

    def __init__(self, buckets: Optional[Sequence[float]] = None) -> None:
        self.value = 0.0
        if buckets is not None:
            self.bucket_counts = [0] * (len(buckets) + 1)
            self.sum = 0.0
            self.count = 0


class _Family:
    """Common machinery: label validation, child cache, cardinality cap."""

    type: str = ""

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        labelnames: Sequence[str],
        max_series: int,
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        self._registry = registry
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._max_series = max_series
        self._buckets = tuple(buckets) if buckets is not None else None
        self._lock = registry._lock
        self._children: Dict[LabelValues, _Series] = {}
        if not self.labelnames:
            # Unlabelled family: materialise the single series eagerly so a
            # never-touched counter still renders as 0.
            self._children[()] = _Series(self._buckets)

    # ------------------------------------------------------------- children

    def labels(self, **labels: str) -> "_Bound":
        """The child series for this label combination (created on demand)."""
        if set(labels) != set(self.labelnames):
            raise ConfigurationError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[ln]) for ln in self.labelnames)
        return _Bound(self, self._series(key))

    def _series(self, key: LabelValues) -> _Series:
        with self._lock:
            series = self._children.get(key)
            if series is None:
                if len(self._children) >= self._max_series:
                    key = tuple(OVERFLOW_LABEL_VALUE for _ in self.labelnames)
                    series = self._children.get(key)
                    self._registry._count_dropped_locked()
                    if series is None:
                        series = self._children[key] = _Series(self._buckets)
                else:
                    series = self._children[key] = _Series(self._buckets)
            return series

    # ----------------------------------------------- unlabelled conveniences

    def _solo(self) -> _Series:
        if self.labelnames:
            raise ConfigurationError(
                f"metric {self.name!r} is labelled {self.labelnames}; "
                "use .labels(...)"
            )
        return self._children[()]

    # ------------------------------------------------------------- snapshot

    def _snapshot_locked(self) -> FamilySnapshot:
        series = []
        for key in sorted(self._children):
            child = self._children[key]
            labels = tuple(zip(self.labelnames, key))
            if self._buckets is not None:
                value: Union[float, HistogramValue] = HistogramValue(
                    buckets=self._buckets,
                    counts=tuple(child.bucket_counts),
                    sum=child.sum,
                    count=child.count,
                )
            else:
                value = child.value
            series.append(SeriesSnapshot(labels=labels, value=value))
        return FamilySnapshot(
            name=self.name, type=self.type, help=self.help, series=tuple(series)
        )

    def _reset_locked(self) -> None:
        for child in self._children.values():
            child.value = 0.0
            if self._buckets is not None:
                child.bucket_counts = [0] * (len(self._buckets) + 1)
                child.sum = 0.0
                child.count = 0


class _Bound:
    """A family bound to one concrete series — what call sites mutate."""

    __slots__ = ("_family", "_series")

    def __init__(self, family: _Family, series: _Series) -> None:
        self._family = family
        self._series = series

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError("counters only go up; use a gauge")
        with self._family._lock:
            self._series.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._add(-amount)

    def _add(self, amount: float) -> None:
        with self._family._lock:
            self._series.value += amount

    def set(self, value: float) -> None:
        with self._family._lock:
            self._series.value = float(value)

    def observe(self, value: float) -> None:
        family = self._family
        buckets = family._buckets
        if buckets is None:
            raise ConfigurationError(
                f"metric {family.name!r} is not a histogram"
            )
        value = float(value)
        idx = _bucket_index(buckets, value)
        with family._lock:
            series = self._series
            series.bucket_counts[idx] += 1
            series.sum += value
            series.count += 1


def _bucket_index(buckets: Tuple[float, ...], value: float) -> int:
    """Index of the first bucket with ``value <= bound`` (len == overflow)."""
    lo, hi = 0, len(buckets)
    while lo < hi:
        mid = (lo + hi) // 2
        if value <= buckets[mid]:
            hi = mid
        else:
            lo = mid + 1
    return lo


class Counter(_Family):
    """Monotonically increasing total."""

    type = COUNTER

    def inc(self, amount: float = 1.0) -> None:
        _Bound(self, self._solo()).inc(amount)


class Gauge(_Family):
    """A value that can go up and down (or be set outright)."""

    type = GAUGE

    def inc(self, amount: float = 1.0) -> None:
        _Bound(self, self._solo())._add(amount)

    def dec(self, amount: float = 1.0) -> None:
        _Bound(self, self._solo())._add(-amount)

    def set(self, value: float) -> None:
        _Bound(self, self._solo()).set(value)


class Histogram(_Family):
    """Distribution over fixed log-scale buckets."""

    type = HISTOGRAM

    def observe(self, value: float) -> None:
        _Bound(self, self._solo()).observe(value)


class MetricsRegistry:
    """Thread-safe home of every metric family in one process.

    One lock guards the whole registry: metric mutation is a few
    arithmetic ops per call and never contended for long, and a single
    lock makes :meth:`snapshot` trivially consistent (no torn reads of a
    histogram's ``sum`` vs ``count``).
    """

    def __init__(self, *, max_series: int = DEFAULT_MAX_SERIES) -> None:
        if max_series < 1:
            raise ConfigurationError("max_series must be >= 1")
        self._lock = threading.RLock()
        self._families: Dict[str, _Family] = {}
        self._default_max_series = max_series
        # Self-metric: series collapsed into overflow sinks by the cap.
        self._dropped = self._register(
            Counter, DROPPED_SERIES_METRIC,
            "label combinations collapsed into __overflow__ by the cardinality cap",
            (), None, None,
        )

    # ---------------------------------------------------------- registration

    def counter(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        *,
        max_series: Optional[int] = None,
    ) -> Counter:
        return self._register(Counter, name, help, labelnames, max_series, None)

    def gauge(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        *,
        max_series: Optional[int] = None,
    ) -> Gauge:
        return self._register(Gauge, name, help, labelnames, max_series, None)

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        *,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        max_series: Optional[int] = None,
    ) -> Histogram:
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ConfigurationError("histogram buckets must be sorted and unique")
        return self._register(Histogram, name, help, labelnames, max_series, buckets)

    def _register(
        self,
        cls,
        name: str,
        help: str,
        labelnames: Sequence[str],
        max_series: Optional[int],
        buckets: Optional[Sequence[float]],
    ):
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ConfigurationError(
                        f"metric {name!r} already registered as {existing.type}, "
                        f"cannot re-register as {cls.type}"
                    )
                if tuple(labelnames) != existing.labelnames:
                    raise ConfigurationError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.labelnames}, got {tuple(labelnames)}"
                    )
                return existing
            family = cls(
                self,
                name,
                help,
                labelnames,
                max_series if max_series is not None else self._default_max_series,
                buckets,
            )
            self._families[name] = family
            return family

    # -------------------------------------------------------------- reading

    def snapshot(self) -> List[FamilySnapshot]:
        """Point-in-time, immutable view of every family (sorted by name)."""
        with self._lock:
            return [
                self._families[name]._snapshot_locked()
                for name in sorted(self._families)
            ]

    def get_sample(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Optional[Union[float, HistogramValue]]:
        """The current value of one series (``None`` when absent) — test helper."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return None
            key = tuple(str((labels or {}).get(ln, "")) for ln in family.labelnames)
            child = family._children.get(key)
            if child is None:
                return None
            if family._buckets is not None:
                return HistogramValue(
                    buckets=family._buckets,
                    counts=tuple(child.bucket_counts),
                    sum=child.sum,
                    count=child.count,
                )
            return child.value

    def sum_by_label(self, name: str, label: str) -> Dict[str, float]:
        """Aggregate a family's series values per value of one label."""
        out: Dict[str, float] = {}
        with self._lock:
            family = self._families.get(name)
            if family is None or family._buckets is not None:
                return out
            if label not in family.labelnames:
                return out
            pos = family.labelnames.index(label)
            for key, child in family._children.items():
                out[key[pos]] = out.get(key[pos], 0.0) + child.value
        return out

    def reset(self) -> None:
        """Zero every series (keeps registrations) — test isolation."""
        with self._lock:
            for family in self._families.values():
                family._reset_locked()

    # ------------------------------------------------------------ internals

    def _count_dropped_locked(self) -> None:
        # Called under self._lock (RLock, so the nested inc is fine).
        self._dropped._children[()].value += 1.0
