"""Prometheus text exposition format (0.0.4) rendering.

Turns a :meth:`repro.obs.registry.MetricsRegistry.snapshot` into the
plain-text scrape body a Prometheus server (or ``curl``) expects::

    # HELP phocus_http_requests_total HTTP requests served
    # TYPE phocus_http_requests_total counter
    phocus_http_requests_total{method="GET",route="/health",status="200"} 3

Histograms render with the standard cumulative ``le`` buckets plus
``_sum`` and ``_count`` children.  HELP text escapes ``\\`` and newlines;
label values additionally escape ``"``.  Series within a family render in
sorted label order and families in sorted name order, so the output is
deterministic — the golden test in ``tests/test_obs.py`` depends on it.

The format reference is the "Exposition formats" chapter of the
Prometheus docs; this module implements the subset our metric types
need, with no client-library dependency.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

from repro.obs.registry import (
    FamilySnapshot,
    HistogramValue,
    MetricsRegistry,
)

__all__ = ["CONTENT_TYPE", "render", "render_registry"]

#: The scrape response Content-Type mandated by text format 0.0.4.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt_value(value: float) -> str:
    """Prometheus-friendly number: integral values without the ``.0``."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_text(labels: Sequence[Tuple[str, str]]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in labels
    )
    return "{" + inner + "}"


def _render_family(family: FamilySnapshot, lines: List[str]) -> None:
    lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
    lines.append(f"# TYPE {family.name} {family.type}")
    for series in family.series:
        if isinstance(series.value, HistogramValue):
            base = list(series.labels)
            for bound, cumulative in series.value.cumulative():
                labels = _labels_text(base + [("le", _fmt_value(bound))])
                lines.append(f"{family.name}_bucket{labels} {cumulative}")
            labels = _labels_text(base)
            lines.append(f"{family.name}_sum{labels} {_fmt_value(series.value.sum)}")
            lines.append(f"{family.name}_count{labels} {series.value.count}")
        else:
            labels = _labels_text(series.labels)
            lines.append(f"{family.name}{labels} {_fmt_value(series.value)}")


def render(snapshot: Iterable[FamilySnapshot]) -> str:
    """Render a snapshot to exposition text (trailing newline included)."""
    lines: List[str] = []
    for family in snapshot:
        _render_family(family, lines)
    return "\n".join(lines) + "\n" if lines else ""


def render_registry(registry: MetricsRegistry) -> str:
    """Convenience: snapshot + render in one call."""
    return render(registry.snapshot())
