"""SimHash locality-sensitive hashing for cosine similarity (Charikar [6]).

The paper sparsifies large instances without computing all pairwise
similarities: each embedding is hashed a constant number of times with
random-hyperplane signatures, and only pairs colliding in some band are
considered similar-pair candidates.  With properly tuned parameters this
finds, with probability arbitrarily close to 1, (almost) all pairs of
cosine similarity at least τ in roughly linear time.

Maths used for tuning:

* a single random hyperplane separates two vectors at angle θ with
  probability ``θ / π``, so one signature *bit* agrees with probability
  ``p(s) = 1 − arccos(s) / π`` for cosine similarity ``s``;
* with ``b`` bands of ``r`` rows each, a pair becomes a candidate with
  probability ``1 − (1 − p^r)^b`` — the classic LSH S-curve.

:func:`tune_bands` inverts the S-curve to pick ``(b, r)`` achieving a
target recall at τ while keeping ``r`` as large as possible (fewer spurious
candidates).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "bit_agreement_probability",
    "candidate_probability",
    "recommended_bits",
    "tune_bands",
    "SimHasher",
    "candidate_pairs",
    "unit_normalize",
    "verify_candidate_pairs",
    "lsh_similar_pairs",
]

#: Default number of candidate pairs verified per chunk.  At embedding
#: dimension d the verifier gathers ``2 * chunk * d`` float64s per chunk
#: (~32 MB at d=16), independent of the total candidate count.
DEFAULT_VERIFY_CHUNK = 1 << 17


def bit_agreement_probability(cosine_sim: float) -> float:
    """Probability one random-hyperplane bit agrees for a pair at ``s``.

    ``p(s) = 1 − arccos(s) / π``; clipped to the valid cosine range.
    """
    s = min(1.0, max(-1.0, float(cosine_sim)))
    return 1.0 - np.arccos(s) / np.pi


def candidate_probability(cosine_sim: float, bands: int, rows: int) -> float:
    """Probability a pair at similarity ``s`` collides in at least one band."""
    p = bit_agreement_probability(cosine_sim)
    return 1.0 - (1.0 - p**rows) ** bands


def recommended_bits(
    n: int,
    tau: float,
    target_recall: float = 0.95,
) -> int:
    """Signature width for near-linear candidate counts at scale ``n``.

    Banded LSH admits a random (dissimilar) pair into the candidate set
    with probability ``≈ bands · 0.5^rows`` — with the classic 64-bit
    default the bands are so short that candidates grow as O(n²) once the
    archive passes ~10^4 photos.  The standard cure (Indyk–Motwani) is
    ``rows ≈ log2(n)`` so each band's false-collision rate is ~1/n, then
    as many bands as the recall target needs.  The resulting candidate
    count scales as ``n^(1+ρ)`` with ``ρ = ln(1/p₁)/ln 2 < 1`` —
    sub-quadratic, at the price of a wider (but still O(n·bits) ≪ O(n²))
    signature.

    Returns an ``n_bits`` for which :func:`tune_bands` recovers exactly
    this (bands, rows) split.
    """
    if n < 1:
        raise ConfigurationError("n must be positive")
    if not (0.0 < tau <= 1.0):
        raise ConfigurationError(f"tau must lie in (0, 1], got {tau}")
    if not (0.0 < target_recall < 1.0):
        raise ConfigurationError("target_recall must lie in (0, 1)")
    rows = max(4, int(np.ceil(np.log2(max(n, 2)))))
    p_tau = bit_agreement_probability(tau) ** rows
    if p_tau <= 0.0:
        raise ConfigurationError("tau too low for banded LSH at this scale")
    bands = int(np.ceil(np.log(1.0 - target_recall) / np.log(1.0 - p_tau)))
    return max(1, bands) * rows


def tune_bands(
    tau: float,
    n_bits: int,
    target_recall: float = 0.95,
) -> Tuple[int, int]:
    """Choose ``(bands, rows)`` with ``bands · rows ≤ n_bits``.

    Picks the largest ``rows`` (sharpest S-curve, fewest false candidates)
    whose full-width banding still reaches ``target_recall`` at similarity
    ``τ``.  Falls back to ``rows = 1`` when even that cannot reach the
    target with the given number of bits.
    """
    if not (0.0 < tau <= 1.0):
        raise ConfigurationError(f"tau must lie in (0, 1], got {tau}")
    if not (0.0 < target_recall < 1.0):
        raise ConfigurationError("target_recall must lie in (0, 1)")
    if n_bits < 1:
        raise ConfigurationError("n_bits must be at least 1")
    for rows in range(n_bits, 0, -1):
        bands = n_bits // rows
        if candidate_probability(tau, bands, rows) >= target_recall:
            return bands, rows
    return n_bits, 1


class SimHasher:
    """Random-hyperplane signature generator.

    Parameters
    ----------
    dim:
        Embedding dimensionality.
    n_bits:
        Signature length (``bands · rows`` bits are used by banding).
    rng:
        Randomness source; pass a seeded generator for reproducibility.
    """

    def __init__(
        self,
        dim: int,
        n_bits: int = 64,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if dim < 1 or n_bits < 1:
            raise ConfigurationError("dim and n_bits must be positive")
        rng = rng or np.random.default_rng()
        self.dim = dim
        self.n_bits = n_bits
        # Hyperplane normals; rows are independent standard Gaussians, which
        # makes the sign pattern uniform over directions.
        self.planes = rng.standard_normal((n_bits, dim))

    def signatures(self, vectors: np.ndarray) -> np.ndarray:
        """Boolean signature matrix of shape ``(n_vectors, n_bits)``."""
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[1] != self.dim:
            raise ConfigurationError(
                f"expected vectors of shape (n, {self.dim}), got {vectors.shape}"
            )
        return (vectors @ self.planes.T) >= 0.0


def candidate_pairs(
    signatures: np.ndarray,
    bands: int,
    rows: int,
) -> Set[Tuple[int, int]]:
    """Banded LSH candidate pairs from boolean signatures.

    Vectors whose signature agrees on every bit of at least one band are
    returned as candidate pairs ``(i, j)`` with ``i < j``.
    """
    n, n_bits = signatures.shape
    if bands * rows > n_bits:
        raise ConfigurationError(
            f"bands*rows = {bands * rows} exceeds signature width {n_bits}"
        )
    pairs: Set[Tuple[int, int]] = set()
    for b in range(bands):
        band = signatures[:, b * rows : (b + 1) * rows]
        buckets: Dict[bytes, List[int]] = defaultdict(list)
        packed = np.packbits(band, axis=1)
        for i in range(n):
            buckets[packed[i].tobytes()].append(i)
        for members in buckets.values():
            if len(members) < 2:
                continue
            for a in range(len(members)):
                for c in range(a + 1, len(members)):
                    pairs.add((members[a], members[c]))
    return pairs


def unit_normalize(vectors: np.ndarray) -> np.ndarray:
    """Rows scaled to unit L2 norm (zero rows pass through unchanged)."""
    vectors = np.asarray(vectors, dtype=np.float64)
    norms = np.linalg.norm(vectors, axis=1)
    norms[norms == 0] = 1.0
    return vectors / norms[:, None]


def verify_candidate_pairs(
    unit: np.ndarray,
    ii: np.ndarray,
    jj: np.ndarray,
    tau: float,
    *,
    chunk: int = DEFAULT_VERIFY_CHUNK,
    on_chunk: Optional[Callable[[int, int], None]] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Exact-cosine verification of candidate pairs, in bounded chunks.

    ``unit`` must be unit-normalised (:func:`unit_normalize`).  Pairs with
    raw cosine ≥ τ are kept, their stored value clipped to ``min(1, s)``.
    Each pair's dot product is a per-row ``einsum`` reduction, so the value
    for a given ``(i, j)`` is bit-identical regardless of chunk size or
    position — the fused streamed builder (:mod:`repro.scale`) and the
    unfused pipeline share this function precisely so their surviving pairs
    and values match bit for bit.

    ``on_chunk(start, end)`` fires before each chunk (probes/faults hook).
    Returns ``(kept_ii, kept_jj, kept_vals)``.
    """
    if chunk < 1:
        raise ConfigurationError("verify chunk must be positive")
    ii = np.asarray(ii, dtype=np.int64).ravel()
    jj = np.asarray(jj, dtype=np.int64).ravel()
    if ii.size != jj.size:
        raise ConfigurationError("candidate pair arrays must have equal length")
    kept_i: List[np.ndarray] = []
    kept_j: List[np.ndarray] = []
    kept_v: List[np.ndarray] = []
    for start in range(0, ii.size, chunk):
        end = min(start + chunk, ii.size)
        if on_chunk is not None:
            on_chunk(start, end)
        ci = ii[start:end]
        cj = jj[start:end]
        s = np.einsum("ij,ij->i", unit[ci], unit[cj])
        keep = s >= tau
        kept_i.append(ci[keep])
        kept_j.append(cj[keep])
        kept_v.append(np.minimum(1.0, s[keep]))
    if not kept_i:
        empty_idx = np.zeros(0, dtype=np.int64)
        return empty_idx, empty_idx.copy(), np.zeros(0, dtype=np.float64)
    return (
        np.concatenate(kept_i),
        np.concatenate(kept_j),
        np.concatenate(kept_v),
    )


def lsh_similar_pairs(
    vectors: np.ndarray,
    tau: float,
    *,
    n_bits: int = 64,
    target_recall: float = 0.95,
    rng: Optional[np.random.Generator] = None,
) -> "LshResult":
    """Find (almost) all pairs of cosine similarity ≥ τ via SimHash.

    Candidates from banded signatures are verified with the exact cosine
    similarity, so the output has perfect precision; recall is governed by
    the LSH S-curve at the tuned ``(bands, rows)``.  Pairs are returned in
    ascending ``(i, j)`` order and verified through the same
    :func:`verify_candidate_pairs` kernel the fused builder uses, making
    this the bit-exact unfused reference for `repro.scale`.
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    n = vectors.shape[0]
    bands, rows = tune_bands(tau, n_bits, target_recall)
    hasher = SimHasher(vectors.shape[1], n_bits, rng)
    sigs = hasher.signatures(vectors)
    candidates = candidate_pairs(sigs, bands, rows)

    if candidates:
        cand = np.array(sorted(candidates), dtype=np.int64)
        ci, cj = cand[:, 0], cand[:, 1]
    else:
        ci = cj = np.zeros(0, dtype=np.int64)
    unit = unit_normalize(vectors)
    ki, kj, vals = verify_candidate_pairs(unit, ci, cj, tau)
    return LshResult(
        pairs=list(zip(ki.tolist(), kj.tolist())),
        similarities=vals,
        candidates_checked=len(candidates),
        bands=bands,
        rows=rows,
        n_vectors=n,
    )


@dataclass
class LshResult:
    """Verified similar pairs plus LSH diagnostics."""

    pairs: List[Tuple[int, int]]
    similarities: np.ndarray
    candidates_checked: int
    bands: int
    rows: int
    n_vectors: int

    @property
    def candidate_fraction(self) -> float:
        """Candidates checked over all possible pairs (the LSH saving)."""
        total = self.n_vectors * (self.n_vectors - 1) // 2
        return self.candidates_checked / total if total else 0.0
