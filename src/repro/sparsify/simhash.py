"""SimHash locality-sensitive hashing for cosine similarity (Charikar [6]).

The paper sparsifies large instances without computing all pairwise
similarities: each embedding is hashed a constant number of times with
random-hyperplane signatures, and only pairs colliding in some band are
considered similar-pair candidates.  With properly tuned parameters this
finds, with probability arbitrarily close to 1, (almost) all pairs of
cosine similarity at least τ in roughly linear time.

Maths used for tuning:

* a single random hyperplane separates two vectors at angle θ with
  probability ``θ / π``, so one signature *bit* agrees with probability
  ``p(s) = 1 − arccos(s) / π`` for cosine similarity ``s``;
* with ``b`` bands of ``r`` rows each, a pair becomes a candidate with
  probability ``1 − (1 − p^r)^b`` — the classic LSH S-curve.

:func:`tune_bands` inverts the S-curve to pick ``(b, r)`` achieving a
target recall at τ while keeping ``r`` as large as possible (fewer spurious
candidates).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "bit_agreement_probability",
    "candidate_probability",
    "tune_bands",
    "SimHasher",
    "candidate_pairs",
    "lsh_similar_pairs",
]


def bit_agreement_probability(cosine_sim: float) -> float:
    """Probability one random-hyperplane bit agrees for a pair at ``s``.

    ``p(s) = 1 − arccos(s) / π``; clipped to the valid cosine range.
    """
    s = min(1.0, max(-1.0, float(cosine_sim)))
    return 1.0 - np.arccos(s) / np.pi


def candidate_probability(cosine_sim: float, bands: int, rows: int) -> float:
    """Probability a pair at similarity ``s`` collides in at least one band."""
    p = bit_agreement_probability(cosine_sim)
    return 1.0 - (1.0 - p**rows) ** bands


def tune_bands(
    tau: float,
    n_bits: int,
    target_recall: float = 0.95,
) -> Tuple[int, int]:
    """Choose ``(bands, rows)`` with ``bands · rows ≤ n_bits``.

    Picks the largest ``rows`` (sharpest S-curve, fewest false candidates)
    whose full-width banding still reaches ``target_recall`` at similarity
    ``τ``.  Falls back to ``rows = 1`` when even that cannot reach the
    target with the given number of bits.
    """
    if not (0.0 < tau <= 1.0):
        raise ConfigurationError(f"tau must lie in (0, 1], got {tau}")
    if not (0.0 < target_recall < 1.0):
        raise ConfigurationError("target_recall must lie in (0, 1)")
    if n_bits < 1:
        raise ConfigurationError("n_bits must be at least 1")
    for rows in range(n_bits, 0, -1):
        bands = n_bits // rows
        if candidate_probability(tau, bands, rows) >= target_recall:
            return bands, rows
    return n_bits, 1


class SimHasher:
    """Random-hyperplane signature generator.

    Parameters
    ----------
    dim:
        Embedding dimensionality.
    n_bits:
        Signature length (``bands · rows`` bits are used by banding).
    rng:
        Randomness source; pass a seeded generator for reproducibility.
    """

    def __init__(
        self,
        dim: int,
        n_bits: int = 64,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if dim < 1 or n_bits < 1:
            raise ConfigurationError("dim and n_bits must be positive")
        rng = rng or np.random.default_rng()
        self.dim = dim
        self.n_bits = n_bits
        # Hyperplane normals; rows are independent standard Gaussians, which
        # makes the sign pattern uniform over directions.
        self.planes = rng.standard_normal((n_bits, dim))

    def signatures(self, vectors: np.ndarray) -> np.ndarray:
        """Boolean signature matrix of shape ``(n_vectors, n_bits)``."""
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[1] != self.dim:
            raise ConfigurationError(
                f"expected vectors of shape (n, {self.dim}), got {vectors.shape}"
            )
        return (vectors @ self.planes.T) >= 0.0


def candidate_pairs(
    signatures: np.ndarray,
    bands: int,
    rows: int,
) -> Set[Tuple[int, int]]:
    """Banded LSH candidate pairs from boolean signatures.

    Vectors whose signature agrees on every bit of at least one band are
    returned as candidate pairs ``(i, j)`` with ``i < j``.
    """
    n, n_bits = signatures.shape
    if bands * rows > n_bits:
        raise ConfigurationError(
            f"bands*rows = {bands * rows} exceeds signature width {n_bits}"
        )
    pairs: Set[Tuple[int, int]] = set()
    for b in range(bands):
        band = signatures[:, b * rows : (b + 1) * rows]
        buckets: Dict[bytes, List[int]] = defaultdict(list)
        packed = np.packbits(band, axis=1)
        for i in range(n):
            buckets[packed[i].tobytes()].append(i)
        for members in buckets.values():
            if len(members) < 2:
                continue
            for a in range(len(members)):
                for c in range(a + 1, len(members)):
                    pairs.add((members[a], members[c]))
    return pairs


def lsh_similar_pairs(
    vectors: np.ndarray,
    tau: float,
    *,
    n_bits: int = 64,
    target_recall: float = 0.95,
    rng: Optional[np.random.Generator] = None,
) -> "LshResult":
    """Find (almost) all pairs of cosine similarity ≥ τ via SimHash.

    Candidates from banded signatures are verified with the exact cosine
    similarity, so the output has perfect precision; recall is governed by
    the LSH S-curve at the tuned ``(bands, rows)``.
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    n = vectors.shape[0]
    bands, rows = tune_bands(tau, n_bits, target_recall)
    hasher = SimHasher(vectors.shape[1], n_bits, rng)
    sigs = hasher.signatures(vectors)
    candidates = candidate_pairs(sigs, bands, rows)

    norms = np.linalg.norm(vectors, axis=1)
    norms[norms == 0] = 1.0
    unit = vectors / norms[:, None]

    pairs: List[Tuple[int, int]] = []
    sims: List[float] = []
    for i, j in candidates:
        s = float(unit[i] @ unit[j])
        if s >= tau:
            pairs.append((i, j))
            sims.append(min(1.0, s))
    return LshResult(
        pairs=pairs,
        similarities=np.asarray(sims, dtype=np.float64),
        candidates_checked=len(candidates),
        bands=bands,
        rows=rows,
        n_vectors=n,
    )


@dataclass
class LshResult:
    """Verified similar pairs plus LSH diagnostics."""

    pairs: List[Tuple[int, int]]
    similarities: np.ndarray
    candidates_checked: int
    bands: int
    rows: int
    n_vectors: int

    @property
    def candidate_fraction(self) -> float:
        """Candidates checked over all possible pairs (the LSH saving)."""
        total = self.n_vectors * (self.n_vectors - 1) // 2
        return self.candidates_checked / total if total else 0.0
