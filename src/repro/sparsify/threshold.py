"""τ-sparsification of contextual similarities (Section 4.3).

Sparsification rounds every similarity strictly below a threshold ``τ``
down to zero, shrinking the neighbour lists the nearest-neighbour
evaluations traverse.  The self-similarity of 1 is always kept, so a
selected photo continues to cover itself perfectly.

The error this incurs is controlled by Theorem 4.8 (see
:func:`repro.core.bounds.sparsification_bound`), and the paper's
experiments (Figures 5e/5f) show the practical loss is ≤ 5% while runtime
drops from hours to tens of minutes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.instance import (
    DenseSimilarity,
    PARInstance,
    PredefinedSubset,
    SparseSimilarity,
)

__all__ = ["SparsifyStats", "sparsify_subset", "threshold_sparsify"]


@dataclass
class SparsifyStats:
    """Before/after accounting of a sparsification pass."""

    tau: float
    nnz_before: int
    nnz_after: int
    method: str = "exact-threshold"

    @property
    def kept_fraction(self) -> float:
        """Fraction of stored similarity entries that survived."""
        if self.nnz_before == 0:
            return 1.0
        return self.nnz_after / self.nnz_before


def sparsify_subset(subset: PredefinedSubset, tau: float) -> PredefinedSubset:
    """Return a copy of a subset whose SIM is τ-thresholded and sparse."""
    if not (0.0 <= tau <= 1.0):
        raise ValueError(f"tau must lie in [0, 1], got {tau}")
    sim = subset.similarity
    if isinstance(sim, DenseSimilarity):
        return subset.with_similarity(sim.sparsified(tau))
    # Already sparse: re-threshold the stored entries.
    m = len(sim)
    indices: List[np.ndarray] = []
    values: List[np.ndarray] = []
    for i in range(m):
        idx, val = sim.neighbors(i)
        keep = val >= tau
        keep |= idx == i  # never drop the self entry
        indices.append(idx[keep])
        values.append(val[keep])
    return subset.with_similarity(SparseSimilarity(m, indices, values, validate=False))


def threshold_sparsify(instance: PARInstance, tau: float) -> "tuple[PARInstance, SparsifyStats]":
    """τ-sparsify every subset of an instance via exact thresholding.

    Returns the sparsified instance plus entry-count statistics.  This is
    the "compute all pairwise similarities, then round down" variant; for
    large subsets prefer the LSH pipeline in
    :mod:`repro.sparsify.pipeline`, which avoids materialising all pairs.
    """
    nnz_before = instance.similarity_nnz()
    new_subsets = [sparsify_subset(q, tau) for q in instance.subsets]
    sparse_instance = instance.with_subsets(new_subsets)
    stats = SparsifyStats(
        tau=tau,
        nnz_before=nnz_before,
        nnz_after=sparse_instance.similarity_nnz(),
    )
    return sparse_instance, stats
