"""End-to-end instance sparsification (exact thresholding or LSH).

This is the preprocessing step the full PHOcus algorithm runs before the
lazy greedy (Section 4.3): replace every subset's similarity with its
τ-sparsified version, either

* ``method="exact"`` — materialise/threshold all pairwise similarities, or
* ``method="lsh"`` — SimHash the member embeddings, verify only colliding
  pairs, and keep those at or above τ; roughly linear-time per subset and
  the preferred mode "when there are many large predefined subsets".

The LSH mode reads pair similarities from the subset's own (contextual)
similarity backend, so the surviving values are identical to exact
thresholding; LSH only decides *which pairs get looked at*, i.e. it can
miss a few τ-similar pairs (bounded by the tuned recall) but never invents
similarity.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.instance import (
    PARInstance,
    PredefinedSubset,
    SparseSimilarity,
)
from repro.errors import ConfigurationError
from repro.sparsify.simhash import SimHasher, candidate_pairs, tune_bands
from repro.sparsify.threshold import sparsify_subset

__all__ = ["SparsifyReport", "sparsify_instance"]

logger = logging.getLogger(__name__)


@dataclass
class SparsifyReport:
    """Instance-level outcome of a sparsification pass."""

    tau: float
    method: str
    nnz_before: int
    nnz_after: int
    pairs_checked: int
    pairs_possible: int

    @property
    def kept_fraction(self) -> float:
        if self.nnz_before == 0:
            return 1.0
        return self.nnz_after / self.nnz_before

    @property
    def checked_fraction(self) -> float:
        """Pair comparisons actually performed over all possible pairs."""
        if self.pairs_possible == 0:
            return 0.0
        return self.pairs_checked / self.pairs_possible


def _lsh_sparsify_subset(
    subset: PredefinedSubset,
    member_vectors: np.ndarray,
    tau: float,
    n_bits: int,
    target_recall: float,
    rng: np.random.Generator,
) -> Tuple[PredefinedSubset, int]:
    """Sparsify one subset via SimHash candidates; returns pairs checked."""
    m = len(subset)
    bands, rows = tune_bands(tau, n_bits, target_recall)
    hasher = SimHasher(member_vectors.shape[1], n_bits, rng)
    sigs = hasher.signatures(member_vectors)
    candidates = candidate_pairs(sigs, bands, rows)

    # Iterate candidates in sorted order so the surviving-pair arrays (and
    # therefore the CSR layout and every downstream float accumulation) are
    # deterministic rather than set-iteration-order dependent.
    kept: List[Tuple[int, int, float]] = []
    for i, j in sorted(candidates):
        s = subset.similarity.pair(i, j)
        if s >= tau:
            kept.append((i, j, s))
    ii = np.fromiter((k[0] for k in kept), dtype=np.int64, count=len(kept))
    jj = np.fromiter((k[1] for k in kept), dtype=np.int64, count=len(kept))
    vv = np.fromiter((k[2] for k in kept), dtype=np.float64, count=len(kept))
    sparse = SparseSimilarity.from_pairs(m, ii, jj, vv, validate=False)
    return subset.with_similarity(sparse), len(candidates)


def sparsify_instance(
    instance: PARInstance,
    tau: float,
    *,
    method: str = "exact",
    n_bits: int = 64,
    target_recall: float = 0.95,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[PARInstance, SparsifyReport]:
    """τ-sparsify an instance; returns the new instance and a report.

    Parameters
    ----------
    instance:
        The dense (or already sparse) instance.
    tau:
        Similarity threshold; entries below τ become 0.
    method:
        ``"exact"`` or ``"lsh"``.  The LSH mode requires
        ``instance.embeddings`` (the per-photo vectors SimHash hashes).
    n_bits, target_recall:
        LSH signature width and the recall the banding is tuned for at τ.
    rng:
        Randomness for the hyperplanes (seed it for reproducible runs).
    """
    if not (0.0 <= tau <= 1.0):
        raise ConfigurationError(f"tau must lie in [0, 1], got {tau}")
    if method not in ("exact", "lsh"):
        raise ConfigurationError(f"unknown sparsification method {method!r}")

    nnz_before = instance.similarity_nnz()
    pairs_possible = sum(len(q) * (len(q) - 1) // 2 for q in instance.subsets)

    if method == "exact":
        new_subsets = [sparsify_subset(q, tau) for q in instance.subsets]
        pairs_checked = pairs_possible
    else:
        if instance.embeddings is None:
            raise ConfigurationError(
                "LSH sparsification requires instance embeddings"
            )
        rng = rng or np.random.default_rng()
        new_subsets = []
        pairs_checked = 0
        for q in instance.subsets:
            vectors = instance.embeddings[q.members]
            sparse_q, checked = _lsh_sparsify_subset(
                q, vectors, tau, n_bits, target_recall, rng
            )
            new_subsets.append(sparse_q)
            pairs_checked += checked

    sparse_instance = instance.with_subsets(new_subsets)
    logger.info(
        "sparsified tau=%.2f method=%s: entries %d -> %d, pairs checked %d/%d",
        tau, method, nnz_before, sparse_instance.similarity_nnz(),
        pairs_checked, pairs_possible,
    )
    report = SparsifyReport(
        tau=tau,
        method=method,
        nnz_before=nnz_before,
        nnz_after=sparse_instance.similarity_nnz(),
        pairs_checked=pairs_checked,
        pairs_possible=pairs_possible,
    )
    return sparse_instance, report
