"""Input sparsification (Section 4.3): τ-thresholding and SimHash LSH."""

from repro.sparsify.pipeline import SparsifyReport, sparsify_instance
from repro.sparsify.simhash import (
    SimHasher,
    bit_agreement_probability,
    candidate_pairs,
    candidate_probability,
    lsh_similar_pairs,
    tune_bands,
)
from repro.sparsify.threshold import SparsifyStats, sparsify_subset, threshold_sparsify

__all__ = [
    "sparsify_instance",
    "SparsifyReport",
    "sparsify_subset",
    "threshold_sparsify",
    "SparsifyStats",
    "SimHasher",
    "bit_agreement_probability",
    "candidate_probability",
    "candidate_pairs",
    "lsh_similar_pairs",
    "tune_bands",
]
