"""The fault plan: deterministic, seedable fault rules over named sites.

A :class:`FaultPlan` is a collection of :class:`FaultRule` entries, each
bound to a named *injection site* (``"journal.fsync"``,
``"solver.iteration"``, ...).  Code under test probes sites through the
module-level helpers in :mod:`repro.faults`; an armed plan counts every
probe and fires its rules deterministically on the configured hit
numbers, so a chaos test can say "kill the worker on the 4th solver
iteration" and get exactly that, every run.

Four actions cover the crash-safety failure modes:

``raise``
    Raise an exception (default :class:`OSError`) at the probe.
``kill``
    Raise :class:`ProcessKilled` — a ``BaseException`` that deliberately
    escapes ``except Exception`` handlers, emulating hard process death
    (SIGKILL / power loss).  The worker pool lets it tear the worker
    thread down without journalling a terminal state, exactly like a
    real crash.
``drop``
    Make :func:`repro.faults.should_drop` return ``True`` — used to skip
    a durability side effect such as an ``fsync``.
``corrupt``
    Make :func:`repro.faults.mangle` flip one seeded bit of the payload
    — used to simulate on-disk corruption.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

__all__ = ["FaultPlan", "FaultRule", "ProcessKilled", "KNOWN_SITES"]


class ProcessKilled(BaseException):
    """Simulated hard process death at an injection point.

    Derives from ``BaseException`` (like ``KeyboardInterrupt``) so generic
    ``except Exception`` recovery code cannot swallow it: the thread that
    hits it dies, leaving journals and checkpoints exactly as a real
    ``kill -9`` would.
    """


# The standing injection sites wired through the library.  ``check`` sites
# may raise/kill, ``drop`` sites may skip a side effect, ``corrupt`` sites
# may mangle bytes.  Free-form site names are also allowed — this table is
# the documented contract, not an enforcement list.
KNOWN_SITES: Dict[str, str] = {
    "solver.iteration": "top of every lazy-greedy loop iteration (check)",
    "checkpoint.write": "before a checkpoint file write (check/corrupt)",
    "checkpoint.fsync": "fsync of a checkpoint file (drop)",
    "checkpoint.replace": "atomic rename publishing a checkpoint (check)",
    "journal.write": "before a job-journal line append (check/corrupt)",
    "journal.fsync": "fsync after a job-journal append (drop)",
    "journal.compact": "before the journal compaction rename (check)",
    "dataset.write": "before a dataset file write (check/corrupt)",
    "dataset.fsync": "fsync of a dataset temp file (drop)",
    "dataset.replace": "atomic rename publishing a dataset (check)",
    "tenantstore.write": "before a tenant instance blob write (check/corrupt)",
    "tenantstore.fsync": "fsync of a tenant instance temp file (drop)",
    "tenantstore.replace": "atomic rename publishing a tenant instance (check)",
    "tenantstore.load": "read of a stored tenant instance blob (check)",
    "tenantcache.evict": "warm-cache segment reclaim during eviction (check)",
    "scalebuild.chunk": "before each candidate-verification chunk of a "
    "streamed instance build (check)",
    "scalebuild.flush": "before a streamed build serialises its instance "
    "to disk (check)",
    "scalebuild.write": "before the streamed-build instance file write "
    "(check/corrupt)",
    "scalebuild.fsync": "fsync of the streamed-build temp file (drop)",
    "scalebuild.replace": "atomic rename publishing a streamed-build "
    "instance (check)",
    "live.append": "start of a live delta ingestion, before any state "
    "mutates (check)",
    "live.resolve": "before a live re-curation solve, warm or full (check)",
    "live.sweep": "top of every re-curation scheduler sweep (check)",
    "fidelity.catalog": "variant catalog construction and validation "
    "(check)",
    "fidelity.swap": "before an upgrade move is considered in the "
    "exclusive drain (check)",
    "fidelity.frontier": "top of every frontier budget sweep point "
    "(check)",
    "resilience.clock_skew": "deadline expiry check — drop rule forces the "
    "clock to have jumped past the deadline (drop)",
    "resilience.slow_solve": "start of a solve payload — drop rule injects "
    "an artificial stall for overload tests (drop)",
}

# Which probe kinds a rule action responds to.
_CHECK_ACTIONS = ("raise", "kill")


@dataclass
class FaultRule:
    """One deterministic rule: fire ``action`` on hits [nth, nth+times)."""

    site: str
    action: str  # "raise" | "kill" | "drop" | "corrupt"
    nth: int = 1  # first 1-based hit that fires
    times: Optional[int] = 1  # consecutive firing hits; None = forever
    exc: Union[BaseException, Callable[[], BaseException], None] = None
    fired: int = 0

    def wants(self, hit: int) -> bool:
        if hit < self.nth:
            return False
        if self.times is not None and self.fired >= self.times:
            return False
        return True

    def make_exception(self) -> BaseException:
        if self.exc is None:
            return OSError(f"injected fault at {self.site!r} (hit {self.nth})")
        if isinstance(self.exc, BaseException):
            return self.exc
        if isinstance(self.exc, type) and issubclass(self.exc, BaseException):
            return self.exc(f"injected fault at {self.site!r}")
        return self.exc()  # factory


class FaultPlan:
    """A deterministic set of fault rules plus per-site hit counters.

    Build with chained :meth:`on` calls, then arm process-wide via
    :func:`repro.faults.arm` (or the :func:`repro.faults.armed` context
    manager)::

        plan = FaultPlan(seed=7).on("solver.iteration", "kill", nth=4)
        with faults.armed(plan):
            ...  # the 4th solver iteration dies

    ``seed`` drives the corrupt action's bit choice (and any future
    randomised behaviour), so a chaos run is reproducible from its seed.
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self._rules: Dict[str, List[FaultRule]] = {}
        self._hits: Dict[str, int] = {}
        self._lock = threading.Lock()
        #: chronological (site, action, hit) log of every fired rule
        self.log: List[Tuple[str, str, int]] = []

    # ------------------------------------------------------------ building

    def on(
        self,
        site: str,
        action: str = "raise",
        *,
        nth: int = 1,
        times: Optional[int] = 1,
        exc: Union[BaseException, Callable[[], BaseException], None] = None,
    ) -> "FaultPlan":
        """Add a rule; returns ``self`` for chaining."""
        if action not in ("raise", "kill", "drop", "corrupt"):
            raise ValueError(f"unknown fault action {action!r}")
        if nth < 1:
            raise ValueError("nth is 1-based and must be >= 1")
        if times is not None and times < 1:
            raise ValueError("times must be >= 1 (or None for unlimited)")
        self._rules.setdefault(site, []).append(
            FaultRule(site=site, action=action, nth=nth, times=times, exc=exc)
        )
        return self

    # ----------------------------------------------------------- inspecting

    def hits(self, site: str) -> int:
        """How many times ``site`` has been probed under this plan."""
        with self._lock:
            return self._hits.get(site, 0)

    def fired(self, site: str) -> int:
        """How many rules firings ``site`` has seen."""
        return sum(1 for s, _, _ in self.log if s == site)

    # ------------------------------------------------------------- probing

    def _hit(self, site: str) -> int:
        self._hits[site] = self._hits.get(site, 0) + 1
        return self._hits[site]

    def _match(self, site: str, hit: int, actions) -> Optional[FaultRule]:
        for rule in self._rules.get(site, ()):
            if rule.action in actions and rule.wants(hit):
                rule.fired += 1
                self.log.append((site, rule.action, hit))
                return rule
        return None

    def probe_check(self, site: str) -> None:
        """May raise (``raise``/``kill`` rules).  Called by ``faults.check``."""
        with self._lock:
            rule = self._match(site, self._hit(site), _CHECK_ACTIONS)
        if rule is None:
            return
        if rule.action == "kill":
            raise ProcessKilled(f"simulated process death at {site!r}")
        raise rule.make_exception()

    def probe_drop(self, site: str) -> bool:
        """True when a ``drop`` rule fires.  Called by ``faults.should_drop``."""
        with self._lock:
            return self._match(site, self._hit(site), ("drop",)) is not None

    def probe_mangle(self, site: str, data: bytes) -> bytes:
        """Flip one seeded bit when a ``corrupt`` rule fires."""
        with self._lock:
            rule = self._match(site, self._hit(site), ("corrupt",))
            if rule is None or not data:
                return data
            pos = self._rng.randrange(len(data))
            bit = 1 << self._rng.randrange(8)
        mangled = bytearray(data)
        mangled[pos] ^= bit
        return bytes(mangled)
