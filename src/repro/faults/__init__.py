"""Deterministic fault injection for crash-safety testing.

Production photo archives treat recomputation as the expensive resource:
long solves must survive process death, torn writes, and dropped fsyncs,
and those failure paths must be *testable on demand*, not whenever CI
happens to crash.  This package is that standing harness.  Library code
marks its failure points with named probes:

    from repro import faults

    faults.check("journal.write")            # may raise / kill here
    if not faults.should_drop("journal.fsync"):
        os.fsync(fd)                         # fsync may be "lost"
    data = faults.mangle("dataset.write", data)  # bytes may be corrupted

With no plan armed every probe is a near-zero-cost no-op (one global
``None`` test), so the probes stay in production code.  A chaos test
arms a seeded :class:`FaultPlan` describing exactly which hit of which
site fails and how::

    plan = faults.FaultPlan(seed=7).on("solver.iteration", "kill", nth=5)
    with faults.armed(plan):
        run_job()          # the 5th solver iteration dies like SIGKILL

See :data:`repro.faults.plan.KNOWN_SITES` for the standing site names
and ``docs/fault_injection.md`` for usage recipes.  Arming is
process-wide (the point is to reach probes deep inside the stack), so
tests must disarm afterwards — use the :func:`armed` context manager.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.faults.plan import KNOWN_SITES, FaultPlan, FaultRule, ProcessKilled

__all__ = [
    "FaultPlan",
    "FaultRule",
    "ProcessKilled",
    "KNOWN_SITES",
    "arm",
    "disarm",
    "armed",
    "active",
    "is_armed",
    "check",
    "should_drop",
    "mangle",
]

_plan: Optional[FaultPlan] = None
_arm_lock = threading.Lock()


def arm(plan: FaultPlan) -> FaultPlan:
    """Arm ``plan`` process-wide; returns it.  Replaces any armed plan."""
    global _plan
    with _arm_lock:
        _plan = plan
    return plan


def disarm() -> None:
    """Remove the armed plan; every probe becomes a no-op again."""
    global _plan
    with _arm_lock:
        _plan = None


@contextmanager
def armed(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Context manager: arm ``plan`` for the block, always disarm after."""
    arm(plan)
    try:
        yield plan
    finally:
        disarm()


def active() -> Optional[FaultPlan]:
    """The armed plan, or ``None``."""
    return _plan


def is_armed() -> bool:
    return _plan is not None


def check(site: str) -> None:
    """Probe ``site``; an armed plan may raise or kill here.

    The disarmed path is a single global load and ``None`` test — cheap
    enough for solver inner loops (see ``benchmarks/bench_fault_overhead``).
    """
    plan = _plan
    if plan is None:
        return
    plan.probe_check(site)


def should_drop(site: str) -> bool:
    """True when an armed plan wants the side effect at ``site`` skipped."""
    plan = _plan
    if plan is None:
        return False
    return plan.probe_drop(site)


def mangle(site: str, data: bytes) -> bytes:
    """Return ``data``, possibly with one seeded bit flipped by the plan."""
    plan = _plan
    if plan is None:
        return data
    return plan.probe_mangle(site, data)
