"""Internal search engine: queries → subsets + relevance (Section 5.1)."""

from repro.search.engine import QuerySubsetResult, SearchEngine
from repro.search.index import InvertedIndex, SearchHit
from repro.search.tokenizer import STOP_WORDS, tokenize

__all__ = [
    "SearchEngine",
    "QuerySubsetResult",
    "InvertedIndex",
    "SearchHit",
    "tokenize",
    "STOP_WORDS",
]
