"""The PHOcus search engine: queries → pre-defined subsets + relevance.

This is input mode 2 of Section 5.1: "users provide queries such as
('Paris vacation'), and the subsets are computed via the PHOcus search
engine.  The confidence scores of the engine are then converted into the
relevance scores."  The engine wraps the BM25 index with photo-corpus
bookkeeping and emits :class:`repro.core.instance.SubsetSpec` objects the
instance builder consumes directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.instance import SubsetSpec
from repro.errors import ValidationError
from repro.search.index import InvertedIndex, SearchHit

__all__ = ["QuerySubsetResult", "SearchEngine"]


@dataclass
class QuerySubsetResult:
    """A query together with the subset and scores it induced."""

    query: str
    photo_ids: List[int]
    relevance: List[float]

    def to_spec(self, weight: float) -> SubsetSpec:
        """Render as a SubsetSpec (relevance normalised at build time)."""
        return SubsetSpec(
            subset_id=self.query,
            weight=weight,
            members=list(self.photo_ids),
            relevance=list(self.relevance),
        )


class SearchEngine:
    """Photo search engine over textual photo descriptions.

    Photos are registered with their descriptive text (product title,
    caption, label names).  :meth:`subset_for_query` retrieves the photos
    matching a query and converts BM25 scores into raw relevance; the
    caller normalises them through the instance builder.
    """

    def __init__(self, k1: float = 1.2, b: float = 0.75) -> None:
        self._index = InvertedIndex(k1=k1, b=b)
        self._texts: Dict[int, str] = {}

    def __len__(self) -> int:
        return len(self._texts)

    def add_photo(self, photo_id: int, text: str) -> None:
        """Register (or re-register) a photo's descriptive text."""
        if not text or not text.strip():
            raise ValidationError(f"photo {photo_id}: empty descriptive text")
        self._texts[int(photo_id)] = text
        self._index.add(int(photo_id), text)

    def text_of(self, photo_id: int) -> str:
        """The registered description of a photo."""
        try:
            return self._texts[int(photo_id)]
        except KeyError:
            raise ValidationError(f"photo {photo_id} was never registered") from None

    def search(self, query: str, top_k: Optional[int] = None) -> List[SearchHit]:
        """Raw BM25 hits for a query."""
        return self._index.search(query, top_k=top_k)

    def subset_for_query(
        self,
        query: str,
        *,
        top_k: Optional[int] = None,
        min_score: float = 0.0,
    ) -> QuerySubsetResult:
        """The pre-defined subset a query induces, with raw relevance.

        Returns an empty result when nothing matches; callers typically
        skip such queries (a landing page with no matching photos is not
        generated).
        """
        hits = [h for h in self.search(query, top_k=top_k) if h.score > min_score]
        return QuerySubsetResult(
            query=query,
            photo_ids=[h.doc_id for h in hits],
            relevance=[h.score for h in hits],
        )

    def subsets_for_queries(
        self,
        weighted_queries: Sequence[Tuple[str, float]],
        *,
        top_k: Optional[int] = None,
    ) -> List[SubsetSpec]:
        """SubsetSpecs for a weighted query log (empty results dropped)."""
        specs: List[SubsetSpec] = []
        for query, weight in weighted_queries:
            result = self.subset_for_query(query, top_k=top_k)
            if result.photo_ids:
                specs.append(result.to_spec(weight))
        return specs
