"""Tokenisation for the internal search engine.

PHOcus derives pre-defined subsets from natural-language queries through a
search engine (input mode 2 of Section 5.1).  The engine needs nothing
fancier than classic lexical retrieval, so the tokenizer is deliberately
simple and deterministic: lower-casing, alphanumeric word extraction, a
small stop list, and a light plural-stripping stemmer so "shirts" matches
"shirt".
"""

from __future__ import annotations

import re
from typing import List

__all__ = ["tokenize", "STOP_WORDS"]

STOP_WORDS = frozenset(
    """a an and are as at be by for from has in is it its of on or that the to
    was were will with""".split()
)

_WORD_RE = re.compile(r"[a-z0-9]+")


def _stem(token: str) -> str:
    """Strip simple plural/verbal suffixes (shirts→shirt, running→run)."""
    if len(token) > 4 and token.endswith("ies"):
        return token[:-3] + "y"
    if len(token) > 4 and token.endswith("ing") and token[-4] == token[-5]:
        return token[:-4]  # running -> run
    if len(token) > 4 and token.endswith("ing"):
        return token[:-3]
    if len(token) > 3 and token.endswith("es") and token[-3] in "sxz":
        return token[:-2]
    if len(token) > 2 and token.endswith("s") and not token.endswith("ss"):
        return token[:-1]
    return token


def tokenize(text: str) -> List[str]:
    """Lower-cased, stop-word-filtered, lightly stemmed tokens of a text."""
    tokens = _WORD_RE.findall(text.lower())
    return [_stem(t) for t in tokens if t not in STOP_WORDS]
