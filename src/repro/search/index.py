"""Inverted index with BM25 ranking.

The lexical core of the PHOcus search engine: documents (product titles,
photo captions) are posted into an inverted index, and queries are ranked
with Okapi BM25 — the standard probabilistic retrieval function.  The
returned scores become PAR relevance scores after per-subset normalisation
(Section 5.1: "The confidence scores of the engine are then converted into
the relevance scores").
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ValidationError
from repro.search.tokenizer import tokenize

__all__ = ["SearchHit", "InvertedIndex"]


@dataclass(frozen=True)
class SearchHit:
    """One ranked retrieval result."""

    doc_id: int
    score: float


class InvertedIndex:
    """A BM25-scored inverted index over integer-keyed documents.

    Parameters
    ----------
    k1, b:
        Okapi BM25 parameters — term-frequency saturation and length
        normalisation; the defaults are the standard (1.2, 0.75).
    """

    def __init__(self, k1: float = 1.2, b: float = 0.75) -> None:
        if k1 < 0 or not (0.0 <= b <= 1.0):
            raise ValidationError("require k1 >= 0 and 0 <= b <= 1")
        self.k1 = k1
        self.b = b
        self._postings: Dict[str, Dict[int, int]] = defaultdict(dict)
        self._doc_len: Dict[int, int] = {}
        self._total_len = 0

    def __len__(self) -> int:
        return len(self._doc_len)

    def add(self, doc_id: int, text: str) -> None:
        """Index a document; re-adding an id replaces its old content."""
        doc_id = int(doc_id)
        if doc_id in self._doc_len:
            self.remove(doc_id)
        tokens = tokenize(text)
        counts = Counter(tokens)
        for term, tf in counts.items():
            self._postings[term][doc_id] = tf
        self._doc_len[doc_id] = len(tokens)
        self._total_len += len(tokens)

    def remove(self, doc_id: int) -> None:
        """Drop a document from the index (no-op if absent)."""
        doc_id = int(doc_id)
        if doc_id not in self._doc_len:
            return
        empty_terms = []
        for term, plist in self._postings.items():
            plist.pop(doc_id, None)
            if not plist:
                empty_terms.append(term)
        for term in empty_terms:
            del self._postings[term]
        self._total_len -= self._doc_len.pop(doc_id)

    def _idf(self, term: str) -> float:
        n = len(self._doc_len)
        df = len(self._postings.get(term, ()))
        if df == 0:
            return 0.0
        # BM25+ style floor keeps very common terms from going negative.
        return max(0.0, math.log((n - df + 0.5) / (df + 0.5) + 1.0))

    def search(self, query: str, top_k: Optional[int] = None) -> List[SearchHit]:
        """BM25-ranked documents matching a query (highest score first).

        Ties are broken by ascending document id so results are fully
        deterministic.
        """
        if not self._doc_len:
            return []
        terms = tokenize(query)
        if not terms:
            return []
        avg_len = self._total_len / len(self._doc_len)
        scores: Dict[int, float] = defaultdict(float)
        for term in terms:
            idf = self._idf(term)
            if idf == 0.0:
                continue
            for doc_id, tf in self._postings.get(term, {}).items():
                dl = self._doc_len[doc_id]
                denom = tf + self.k1 * (1.0 - self.b + self.b * dl / avg_len)
                scores[doc_id] += idf * tf * (self.k1 + 1.0) / denom
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
        if top_k is not None:
            ranked = ranked[:top_k]
        return [SearchHit(doc_id=d, score=s) for d, s in ranked if s > 0.0]
