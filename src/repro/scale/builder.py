"""Fused streamed instance builder: embeddings → LSH → CSR, no dense SIM.

The build runs four bounded-memory phases, each traced and counted when
observability is armed (``phocus_scalebuild_*`` families):

``signatures``
    Seeded random hyperplanes (one :class:`SimHasher`, consuming the rng
    exactly like the unfused pipeline) and the ``(bands, rows)`` tuning;
    with ``n_bits="auto"`` the width scales so candidate counts stay
    sub-quadratic (:func:`repro.sparsify.simhash.recommended_bits`).
``candidates``
    Per LSH band, that band's signature bits are computed in photo chunks
    and collapsed to one integer bucket key per photo (a single ``uint64``
    for ``rows ≤ 64``, packed bytes above) — the full ``(n, n_bits)``
    signature matrix is never held.  Photos sharing a key become candidate
    pairs, generated vectorised in batches of at most ``chunk_pairs``
    pairs, deduplicated across bands with sorted-unique merges.  The
    resulting candidate set provably equals
    :func:`repro.sparsify.simhash.candidate_pairs` on the same signatures.
``verify``
    Exact cosines for the sorted candidate pairs via the shared
    :func:`repro.sparsify.simhash.verify_candidate_pairs` kernel in
    ``chunk_pairs``-sized chunks (``scalebuild.chunk`` fault site fires
    before each chunk).  Per-pair values are chunk-independent, so the
    fused build matches the unfused pipeline bit for bit.
``assemble``
    Surviving pairs become a canonical-layout CSR
    :class:`SparseSimilarity` (``from_pairs``) wrapped in a single
    archive-wide :class:`PredefinedSubset` and validated
    :class:`PARInstance`.

Peak memory is ``O(n·dim + n·n_bits + candidates + nnz + chunk_pairs)`` —
never O(n²).  See ``docs/million_scale.md`` for the full memory model and
chunk tuning guidance.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro import faults
from repro.core.instance import (
    PARInstance,
    Photo,
    PredefinedSubset,
    SparseSimilarity,
    normalize_relevance,
)
from repro.errors import ConfigurationError
from repro.obs import probes
from repro.obs import trace as _trace
from repro.sparsify.simhash import (
    DEFAULT_VERIFY_CHUNK,
    SimHasher,
    recommended_bits,
    tune_bands,
    unit_normalize,
    verify_candidate_pairs,
)

__all__ = ["ScaleBuildReport", "build_streamed_instance", "save_streamed_instance"]

#: Photos whose signatures are computed per chunk (bounds the matmul
#: temporary to O(signature_chunk · n_bits)).
DEFAULT_SIGNATURE_CHUNK = 1 << 16


@dataclass
class ScaleBuildReport:
    """Diagnostics of one fused streamed build."""

    n_photos: int
    dim: int
    tau: float
    n_bits: int
    bands: int
    rows: int
    target_recall: float
    dtype: str
    chunk_pairs: int
    signature_chunk: int
    candidate_pairs: int
    verified_pairs: int
    kept_pairs: int
    nnz: int
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def build_seconds(self) -> float:
        return float(sum(self.phase_seconds.values()))

    @property
    def candidate_fraction(self) -> float:
        """Candidates over all possible pairs (the LSH saving)."""
        total = self.n_photos * (self.n_photos - 1) // 2
        return self.candidate_pairs / total if total else 0.0

    @property
    def kept_fraction(self) -> float:
        """Verified pairs that survived τ."""
        if self.verified_pairs == 0:
            return 0.0
        return self.kept_pairs / self.verified_pairs

    def to_dict(self) -> Dict[str, object]:
        return {
            "n_photos": self.n_photos,
            "dim": self.dim,
            "tau": self.tau,
            "n_bits": self.n_bits,
            "bands": self.bands,
            "rows": self.rows,
            "target_recall": self.target_recall,
            "dtype": self.dtype,
            "chunk_pairs": self.chunk_pairs,
            "signature_chunk": self.signature_chunk,
            "candidate_pairs": self.candidate_pairs,
            "verified_pairs": self.verified_pairs,
            "kept_pairs": self.kept_pairs,
            "nnz": self.nnz,
            "candidate_fraction": self.candidate_fraction,
            "kept_fraction": self.kept_fraction,
            "phase_seconds": dict(self.phase_seconds),
            "build_seconds": self.build_seconds,
        }


def _band_keys(band: np.ndarray) -> np.ndarray:
    """Collapse one band's signature bits to one sortable key per photo.

    For ``rows ≤ 64`` the bits pack into a single ``uint64`` (equal key ⟺
    equal band bits, exactly the bucket equivalence of
    :func:`repro.sparsify.simhash.candidate_pairs`).  Wider bands pack to
    bytes and are relabelled with dense group ids via ``np.unique``.
    """
    rows = band.shape[1]
    if rows <= 64:
        powers = np.left_shift(np.uint64(1), np.arange(rows, dtype=np.uint64))
        return band.astype(np.uint64) @ powers
    packed = np.packbits(band, axis=1)
    _, inverse = np.unique(packed, axis=0, return_inverse=True)
    return inverse.astype(np.int64)


def _streamed_band_keys(
    embeddings: np.ndarray,
    planes_band: np.ndarray,
    signature_chunk: int,
    on_chunk: Optional[Callable[[], None]] = None,
) -> np.ndarray:
    """One band's bucket keys, signatures computed in photo chunks.

    Equivalent to slicing a full ``(n, n_bits)`` signature matrix — the
    sign of each bit is a single length-``dim`` dot product either way —
    but peak scratch is ``O(signature_chunk · rows)`` instead of
    ``O(n · n_bits)``, which matters once ``recommended_bits`` pushes the
    signature into the thousands of bits.
    """
    n = embeddings.shape[0]
    rows = planes_band.shape[0]
    if rows <= 64:
        powers = np.left_shift(np.uint64(1), np.arange(rows, dtype=np.uint64))
        keys = np.empty(n, dtype=np.uint64)
        for start in range(0, n, signature_chunk):
            end = min(start + signature_chunk, n)
            if on_chunk is not None:
                on_chunk()
            bits = (embeddings[start:end] @ planes_band.T) >= 0.0
            keys[start:end] = bits.astype(np.uint64) @ powers
        return keys
    # rows > 64 cannot pack into one machine word; fall back to holding
    # this one band's bits (still O(n · rows), never O(n · n_bits)).
    bits = np.empty((n, rows), dtype=bool)
    for start in range(0, n, signature_chunk):
        end = min(start + signature_chunk, n)
        if on_chunk is not None:
            on_chunk()
        bits[start:end] = (embeddings[start:end] @ planes_band.T) >= 0.0
    return _band_keys(bits)


def _sorted_dedup(arr: np.ndarray) -> np.ndarray:
    """In-place sort + adjacent-duplicate drop (``np.unique`` without the
    hash table — the sort path is several times faster on int64 keys)."""
    arr.sort()
    if arr.size < 2:
        return arr
    keep = np.empty(arr.size, dtype=bool)
    keep[0] = True
    np.not_equal(arr[1:], arr[:-1], out=keep[1:])
    return arr[keep]


def _emit_band_pairs(
    keys: np.ndarray,
    n: int,
    chunk_pairs: int,
    on_batch: Optional[Callable[[int], None]] = None,
) -> np.ndarray:
    """Pair keys ``i * n + j`` (i < j) for one band.

    Photos sharing a bucket key pair up all-vs-all.  Buckets partition the
    photos, so one band never repeats a pair — the returned keys are
    duplicate-free (cross-band dedup is the caller's job).  Pair
    generation is fully vectorised but batched so no temporary exceeds
    ~``chunk_pairs`` entries (a single bucket larger than the chunk still
    emits in one batch — its pair count is irreducible).
    """
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    m = keys.size
    # Per sorted position: how many within-bucket partners sit to its right.
    if m:
        boundary = np.nonzero(sorted_keys[1:] != sorted_keys[:-1])[0] + 1
        starts = np.concatenate([[0], boundary]).astype(np.int64)
        ends = np.concatenate([boundary, [m]]).astype(np.int64)
        sizes = ends - starts
        end_for_pos = np.repeat(ends, sizes)
        rep = end_for_pos - np.arange(m, dtype=np.int64) - 1
    else:
        rep = np.zeros(0, dtype=np.int64)
    total = int(rep.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)

    cum = np.cumsum(rep)
    n_batches = int((total + chunk_pairs - 1) // chunk_pairs)
    cut_targets = np.arange(1, n_batches, dtype=np.int64) * chunk_pairs
    cuts = np.searchsorted(cum, cut_targets, side="left") + 1
    edges = np.concatenate([[0], cuts, [m]])

    parts: List[np.ndarray] = []
    for b in range(len(edges) - 1):
        lo, hi = int(edges[b]), int(edges[b + 1])
        if lo >= hi:
            continue
        r = rep[lo:hi]
        t = int(r.sum())
        if t == 0:
            continue
        if on_batch is not None:
            on_batch(t)
        starts_flat = np.cumsum(r) - r
        within = np.arange(t, dtype=np.int64) - np.repeat(starts_flat, r)
        left_pos = np.repeat(np.arange(lo, hi, dtype=np.int64), r)
        right_pos = left_pos + 1 + within
        ii = order[left_pos]
        jj = order[right_pos]
        # Stable argsort keeps original order inside a bucket, so ii < jj.
        parts.append(ii * np.int64(n) + jj)
    return np.concatenate(parts)


def build_streamed_instance(
    costs: np.ndarray,
    embeddings: np.ndarray,
    budget: float,
    *,
    tau: float,
    subset_id: str = "archive",
    weight: float = 1.0,
    relevance: Optional[np.ndarray] = None,
    retained: Iterable[int] = (),
    n_bits: Union[int, str] = "auto",
    target_recall: float = 0.95,
    rng: Union[np.random.Generator, int, None] = None,
    dtype=np.float64,
    chunk_pairs: int = DEFAULT_VERIFY_CHUNK,
    signature_chunk: int = DEFAULT_SIGNATURE_CHUNK,
    keep_embeddings: bool = False,
    photos: Optional[List[Photo]] = None,
) -> Tuple[PARInstance, ScaleBuildReport]:
    """Build a sparse archive-wide PAR instance straight from embeddings.

    Parameters
    ----------
    costs, embeddings:
        Per-photo byte costs ``(n,)`` and embedding matrix ``(n, dim)``.
    budget:
        Byte budget ``B`` of the instance.
    tau:
        Sparsification threshold: pairs with cosine < τ are dropped.
    subset_id, weight, relevance, retained:
        The single archive-wide subset's identity, importance, per-photo
        relevance (uniform when omitted; normalised to sum to 1) and the
        mandatory-retention ids ``S0``.
    n_bits, target_recall, rng:
        SimHash signature width (the default ``"auto"`` resolves via
        :func:`repro.sparsify.simhash.recommended_bits`, which scales band
        width ~log₂(n) for sub-quadratic candidate counts), banding recall
        target at τ, and the hyperplane randomness (pass an int seed or a
        seeded Generator; matched seed *and* explicit ``n_bits`` reproduce
        the unfused pipeline bit for bit).
    dtype:
        Similarity value storage — ``float64`` (default, bit-exact vs the
        unfused pipeline) or ``float32`` (half the value bytes, ≤ 6e-8
        relative rounding per entry).
    chunk_pairs, signature_chunk:
        Bounded-memory knobs: candidate/verification pairs per chunk and
        photos per signature matmul.  Results are chunk-size independent.
    keep_embeddings:
        Attach the embeddings to the returned instance (off by default —
        at archive scale they are usually the largest array in play).
    photos:
        Pre-built :class:`Photo` records (labels/metadata preserved); when
        omitted, bare records are synthesised from ``costs``.  Their costs
        must match ``costs`` position for position.

    Returns ``(instance, report)``.  Never materialises an O(n²) object;
    peak memory is ``O(n·dim + n·n_bits + candidates + nnz + chunk)``.
    """
    costs = np.asarray(costs, dtype=np.float64).ravel()
    embeddings = np.asarray(embeddings, dtype=np.float64)
    if embeddings.ndim != 2:
        raise ConfigurationError("embeddings must be a 2-D (n, dim) array")
    n, dim = embeddings.shape
    if costs.size != n:
        raise ConfigurationError(
            f"costs length {costs.size} != embedding rows {n}"
        )
    if n < 1:
        raise ConfigurationError("instance must contain at least one photo")
    if chunk_pairs < 1 or signature_chunk < 1:
        raise ConfigurationError("chunk sizes must be positive")
    if not (0.0 < tau <= 1.0):
        raise ConfigurationError(f"tau must lie in (0, 1], got {tau}")
    if rng is None or isinstance(rng, (int, np.integer)):
        rng = np.random.default_rng(rng)

    obs = probes.active()
    phase_seconds: Dict[str, float] = {}

    # ------------------------------------------------------------ signatures
    t0 = time.perf_counter()
    with _trace.span("scalebuild.signatures"):
        if n_bits == "auto":
            n_bits = recommended_bits(n, tau, target_recall)
        bands, rows = tune_bands(tau, n_bits, target_recall)
        hasher = SimHasher(dim, n_bits, rng)
    phase_seconds["signatures"] = time.perf_counter() - t0

    # ------------------------------------------------------------ candidates
    t0 = time.perf_counter()
    with _trace.span("scalebuild.candidates"):

        def _count_chunk(stage: str) -> Callable[..., None]:
            def _inc(*_args) -> None:
                if obs is not None:
                    obs.scalebuild_chunks.labels(stage=stage).inc()

            return _inc

        # One band at a time: signatures for the band's bits only (chunked
        # over photos), then vectorised within-bucket pair generation.
        # Sorted-merge accumulation keeps peak scratch at ~2x the unique
        # candidate count instead of the bands-fold blow-up a
        # collect-then-unique would pay; a full (n, n_bits) signature
        # matrix is never held.
        sig_seconds = 0.0
        count_sig = _count_chunk("signatures")
        count_cand = _count_chunk("candidates")
        keys = np.zeros(0, dtype=np.int64)
        pending: List[np.ndarray] = []
        pending_count = 0
        for b in range(bands):
            ts = time.perf_counter()
            band_keys = _streamed_band_keys(
                embeddings,
                hasher.planes[b * rows : (b + 1) * rows],
                signature_chunk,
                count_sig,
            )
            sig_seconds += time.perf_counter() - ts
            band_pair_keys = _emit_band_pairs(band_keys, n, chunk_pairs, count_cand)
            if band_pair_keys.size:
                pending.append(band_pair_keys)
                pending_count += band_pair_keys.size
            # Geometric merge schedule: fold the pending band outputs into
            # the sorted accumulator only once they rival its size, so the
            # whole phase costs O(log bands) full sorts instead of one per
            # band, while scratch stays within ~2x the unique candidates
            # plus a bounded pending buffer.
            if pending and pending_count >= max(keys.size, 8 * chunk_pairs):
                keys = _sorted_dedup(np.concatenate([keys] + pending))
                pending, pending_count = [], 0
        if pending:
            keys = _sorted_dedup(np.concatenate([keys] + pending))
            del pending
        ii = keys // np.int64(n)
        jj = keys % np.int64(n)
        del keys
    phase_seconds["signatures"] += sig_seconds
    phase_seconds["candidates"] = time.perf_counter() - t0 - sig_seconds
    n_candidates = int(ii.size)
    if obs is not None:
        obs.scalebuild_candidates.inc(n_candidates)

    # ---------------------------------------------------------------- verify
    t0 = time.perf_counter()
    with _trace.span("scalebuild.verify"):

        def _on_chunk(start: int, end: int) -> None:
            faults.check("scalebuild.chunk")
            if obs is not None:
                obs.scalebuild_chunks.labels(stage="verify").inc()

        unit = unit_normalize(embeddings)
        ki, kj, vals = verify_candidate_pairs(
            unit, ii, jj, tau, chunk=chunk_pairs, on_chunk=_on_chunk
        )
        del unit, ii, jj
    phase_seconds["verify"] = time.perf_counter() - t0
    if obs is not None:
        obs.scalebuild_verified.inc(n_candidates)
        obs.scalebuild_kept.inc(int(ki.size))

    # -------------------------------------------------------------- assemble
    t0 = time.perf_counter()
    with _trace.span("scalebuild.assemble"):
        sparse = SparseSimilarity.from_pairs(
            n, ki, kj, vals, dtype=dtype, validate=False
        )
        if relevance is None:
            rel = np.full(n, 1.0 / n, dtype=np.float64)
        else:
            rel = normalize_relevance(relevance)
        subset = PredefinedSubset(
            subset_id, weight, np.arange(n, dtype=np.int64), rel, sparse,
            normalize=False,
        )
        if photos is None:
            photos = [Photo(photo_id=i, cost=float(c)) for i, c in enumerate(costs)]
        elif len(photos) != n:
            raise ConfigurationError(
                f"{len(photos)} photo records for {n} embedding rows"
            )
        instance = PARInstance(
            photos,
            [subset],
            budget,
            retained=retained,
            embeddings=embeddings if keep_embeddings else None,
        )
    phase_seconds["assemble"] = time.perf_counter() - t0

    if obs is not None:
        for phase, seconds in phase_seconds.items():
            obs.scalebuild_phase_seconds.labels(phase=phase).observe(seconds)

    report = ScaleBuildReport(
        n_photos=n,
        dim=dim,
        tau=float(tau),
        n_bits=n_bits,
        bands=bands,
        rows=rows,
        target_recall=float(target_recall),
        dtype=np.dtype(dtype).name,
        chunk_pairs=chunk_pairs,
        signature_chunk=signature_chunk,
        candidate_pairs=n_candidates,
        verified_pairs=n_candidates,
        kept_pairs=int(ki.size),
        nnz=sparse.nnz(),
        phase_seconds=phase_seconds,
    )
    return instance, report


def save_streamed_instance(instance: PARInstance, path) -> int:
    """Serialise a built instance to ``path`` atomically; returns byte size.

    The write goes through :func:`repro.ioutil.atomic_write_bytes` under
    the ``scalebuild`` fault-site family, with ``scalebuild.flush`` firing
    before serialisation — a build killed at any point leaves either the
    complete file or nothing (no partial instance, no stray temp file).
    """
    from repro.core.serialize import instance_to_json

    faults.check("scalebuild.flush")
    with _trace.span("scalebuild.flush"):
        data = instance_to_json(instance).encode("utf-8")
        from repro.ioutil import atomic_write_bytes

        atomic_write_bytes(path, data, site="scalebuild")
    return len(data)
