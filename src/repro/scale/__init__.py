"""Archive-scale streamed instance construction (millions of photos).

The classic pipeline materialises a dense ``n × n`` similarity matrix and
then throws most of it away (``PARInstance.build`` → ``sparsify_instance``)
— fine at 10^3 photos, fatal at 10^6.  This package fuses the three steps
into one bounded-memory stream::

    embeddings ──► banded SimHash candidates ──► τ-verified cosines ──► CSR

never holding an O(n²) object at any point.  The fused build is
*bit-identical* to the unfused LSH pipeline at matched seeds: both consume
the same seeded hyperplanes, produce provably equal candidate sets, verify
through the shared :func:`repro.sparsify.simhash.verify_candidate_pairs`
kernel (per-pair values independent of chunking), and assemble the same
canonical CSR layout via :meth:`SparseSimilarity.from_pairs` — so solve
picks match bit for bit.  See ``docs/million_scale.md``.
"""

from repro.scale.builder import (
    ScaleBuildReport,
    build_streamed_instance,
    save_streamed_instance,
)
from repro.scale.synthetic import synthetic_archive

__all__ = [
    "ScaleBuildReport",
    "build_streamed_instance",
    "save_streamed_instance",
    "synthetic_archive",
]
