"""Synthetic photo archives for scale benchmarking.

Real archives are bursty: most photos belong to a shoot/event whose frames
are near-duplicates (high mutual cosine), plus a background of singletons.
:func:`synthetic_archive` reproduces that structure — clustered unit-ish
embeddings and log-normal-ish byte costs — in O(n · dim) memory, generated
in fixed-size chunks so even the 10^6-photo bench never allocates a large
temporary beyond the output arrays themselves.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["synthetic_archive"]

#: Photos generated per chunk; bounds temporaries to O(chunk * dim).
GENERATION_CHUNK = 1 << 16


def synthetic_archive(
    n: int,
    *,
    dim: int = 16,
    clusters: Union[int, None] = None,
    noise: float = 0.25,
    seed: Union[int, np.random.Generator, None] = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate ``(costs, embeddings)`` for a clustered synthetic archive.

    Each photo is a cluster centroid plus Gaussian noise of scale
    ``noise`` — photos in one cluster are mutually similar (the burst),
    photos of different clusters rarely are.  ``clusters`` defaults to
    ``max(16, n // 64)`` so the *average burst size* (~64 frames) stays
    constant as ``n`` grows — similar-pair counts then scale linearly in
    ``n``, like a real archive, instead of quadratically.  Costs are
    drawn from a heavy-tailed distribution around ~2 MB, mimicking JPEG
    size spread.

    Deterministic for a given ``(seed, clusters)`` at any ``n`` (chunking
    does not alter the draw sequence: chunks consume the generator in
    photo order).
    """
    if n < 1:
        raise ConfigurationError("n must be positive")
    if clusters is None:
        clusters = max(16, n // 64)
    if dim < 1 or clusters < 1:
        raise ConfigurationError("dim and clusters must be positive")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)

    centroids = rng.standard_normal((clusters, dim))
    costs = np.empty(n, dtype=np.float64)
    embeddings = np.empty((n, dim), dtype=np.float64)
    for start in range(0, n, GENERATION_CHUNK):
        end = min(start + GENERATION_CHUNK, n)
        m = end - start
        assignment = rng.integers(0, clusters, size=m)
        embeddings[start:end] = (
            centroids[assignment] + noise * rng.standard_normal((m, dim))
        )
        # Log-normal byte costs: median ~2 MB, occasional 10 MB+ raws.
        costs[start:end] = 2e6 * np.exp(0.5 * rng.standard_normal(m))
    return costs, embeddings
