"""E-commerce dataset generator (the paper's EC-* datasets from XYZ).

Section 5.2 describes the private datasets: business analysts extracted
the top-250 most frequent queries per domain from a quarter's query log;
the queries' result sets define the pre-defined subsets, query frequency
gives the subset weight, the search engine's retrieval score gives the
relevance, and internal ML embeddings give the similarity.

The generator reproduces the whole causal chain:

1. a synthetic product catalogue per domain (category × brand × colour ×
   modifier titles), each product shooting 1–4 photos that share a
   product-level embedding cluster;
2. a Zipf-weighted query log sampled from templates over the catalogue's
   own vocabulary ("black shirt", "samsung smartphone", "office chair");
3. the library's own BM25 :class:`repro.search.SearchEngine` retrieves
   each query's result set — photos of matching products — exactly the
   input mode 2 pipeline of Section 5.1;
4. subset weight = query frequency, relevance = BM25 score × photo
   quality, similarity = contextual embedding similarity.

Legal "approved imagery" contracts (Section 1) are simulated by marking a
small fraction of brands as contract brands whose best photo per product
is placed in the retention set ``S0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.instance import Photo, SubsetSpec
from repro.datasets.base import Dataset
from repro.errors import ConfigurationError
from repro.search.engine import SearchEngine

__all__ = ["DOMAINS", "DomainSpec", "generate_ecommerce_dataset", "generate_query_log"]


@dataclass(frozen=True)
class DomainSpec:
    """Vocabulary of one e-commerce domain."""

    name: str
    categories: Tuple[str, ...]
    brands: Tuple[str, ...]
    colors: Tuple[str, ...]
    modifiers: Tuple[str, ...]


DOMAINS: Dict[str, DomainSpec] = {
    "Fashion": DomainSpec(
        name="Fashion",
        categories=(
            "shirt", "dress", "jeans", "jacket", "sneakers", "skirt",
            "sweater", "coat", "boots", "scarf", "polo shirt", "dress shirt",
        ),
        brands=("adidas", "nike", "zara", "levis", "gucci", "uniqlo", "puma"),
        colors=("black", "white", "red", "blue", "green", "beige"),
        modifiers=("slim", "casual", "sports", "buttoned", "womens", "mens", "kids"),
    ),
    "Electronics": DomainSpec(
        name="Electronics",
        categories=(
            "smartphone", "laptop", "headphones", "tablet", "camera",
            "monitor", "keyboard", "smartwatch", "speaker", "router",
        ),
        brands=("samsung", "apple", "sony", "lenovo", "dell", "bose", "asus"),
        colors=("black", "silver", "white", "gold", "gray"),
        modifiers=("pro", "wireless", "gaming", "compact", "ultra", "budget"),
    ),
    "Home & Garden": DomainSpec(
        name="Home & Garden",
        categories=(
            "office chair", "sofa", "dining table", "lamp", "bookshelf",
            "rug", "curtains", "planter", "grill", "mattress",
        ),
        brands=("ikea", "wayfair", "ashley", "herman miller", "weber", "keter"),
        colors=("white", "oak", "walnut", "gray", "black", "green"),
        modifiers=("modern", "outdoor", "folding", "ergonomic", "vintage", "large"),
    ),
}


@dataclass
class _Product:
    product_id: int
    title: str
    brand: str
    category: str
    color: str
    modifier: str
    photo_ids: List[int]


def generate_query_log(
    domain: DomainSpec,
    n_queries: int,
    n_events: int,
    rng: np.random.Generator,
) -> List[Tuple[str, int]]:
    """A Zipf-frequency query log: distinct queries with event counts.

    Query strings follow the shapes real logs show: bare category
    ("shirt"), attribute + category ("black shirt"), brand + category
    ("adidas sneakers"), and attribute + brand + category.  Frequencies
    follow a Zipf law over the distinct queries (rank 1 is the head query).
    """
    patterns = []
    seen = set()
    attempts = 0
    while len(patterns) < n_queries and attempts < n_queries * 50:
        attempts += 1
        shape = rng.random()
        category = str(rng.choice(domain.categories))
        if shape < 0.25:
            query = category
        elif shape < 0.55:
            query = f"{rng.choice(domain.colors)} {category}"
        elif shape < 0.8:
            query = f"{rng.choice(domain.brands)} {category}"
        else:
            query = f"{rng.choice(domain.colors)} {rng.choice(domain.brands)} {category}"
        if query not in seen:
            seen.add(query)
            patterns.append(query)
    if len(patterns) < n_queries:
        raise ConfigurationError(
            f"domain {domain.name!r} vocabulary too small for {n_queries} distinct queries"
        )
    ranks = np.arange(1, len(patterns) + 1, dtype=np.float64)
    probs = ranks**-1.05
    probs /= probs.sum()
    counts = rng.multinomial(n_events, probs)
    log = [(q, int(c)) for q, c in zip(patterns, counts) if c > 0]
    log.sort(key=lambda qc: -qc[1])
    return log


def generate_ecommerce_dataset(
    domain_name: str,
    n_products: int,
    n_queries: int = 250,
    *,
    name: Optional[str] = None,
    seed: int = 0,
    photos_per_product: Tuple[int, int] = (1, 4),
    embedding_dim: int = 64,
    results_per_query: int = 80,
    query_log_events: int = 200_000,
    contract_brand_fraction: float = 0.15,
    cluster_tightness: float = 0.18,
) -> Dataset:
    """Generate an EC-style dataset for one domain.

    Parameters mirror Section 5.2: ``n_queries`` pre-defined subsets from
    the top-``n_queries`` most frequent log queries; photo counts follow
    from ``n_products`` × shots per product.  ``results_per_query`` caps
    each retrieved result set (landing pages show a bounded product list).
    """
    if domain_name not in DOMAINS:
        raise ConfigurationError(
            f"unknown domain {domain_name!r}; choose from {sorted(DOMAINS)}"
        )
    domain = DOMAINS[domain_name]
    rng = np.random.default_rng(seed)
    name = name or f"EC-{domain_name.replace(' & ', '')}"

    # --- catalogue -------------------------------------------------------
    products: List[_Product] = []
    photo_texts: List[str] = []
    photo_product: List[int] = []
    for pid in range(n_products):
        brand = str(rng.choice(domain.brands))
        category = str(rng.choice(domain.categories))
        color = str(rng.choice(domain.colors))
        modifier = str(rng.choice(domain.modifiers))
        title = f"{brand} {color} {modifier} {category}"
        n_shots = int(rng.integers(photos_per_product[0], photos_per_product[1] + 1))
        ids = []
        for _ in range(n_shots):
            ids.append(len(photo_texts))
            photo_texts.append(title)
            photo_product.append(pid)
        products.append(_Product(pid, title, brand, category, color, modifier, ids))
    n_photos = len(photo_texts)

    # --- embeddings: attribute-block structure ----------------------------
    # The embedding space is partitioned into blocks, one per product
    # attribute (category, brand, colour, modifier) plus a product-
    # idiosyncratic block.  Photos of products sharing an attribute agree
    # on that block.  This is what makes the *contextual* similarity of
    # Section 5.1 meaningfully different from a single global similarity:
    # within a "black shirt" landing page the colour and category blocks
    # are constant (uninformative) and the brand/modifier/product blocks
    # discriminate, whereas the global cosine averages all blocks — the
    # exact failure mode of the Greedy-NCS baseline.
    block = max(4, embedding_dim // 5)
    dims = {
        "category": slice(0, block),
        "brand": slice(block, 2 * block),
        "color": slice(2 * block, 3 * block),
        "modifier": slice(3 * block, 4 * block),
        "product": slice(4 * block, embedding_dim),
    }

    def _attribute_vectors(values):
        return {v: rng.standard_normal(block) for v in values}

    cat_vec = _attribute_vectors(domain.categories)
    brand_vec = _attribute_vectors(domain.brands)
    color_vec = _attribute_vectors(domain.colors)
    modifier_vec = _attribute_vectors(domain.modifiers)
    product_block = embedding_dim - 4 * block
    embeddings = np.zeros((n_photos, embedding_dim))
    for product in products:
        base = np.zeros(embedding_dim)
        base[dims["category"]] = cat_vec[product.category]
        base[dims["brand"]] = brand_vec[product.brand]
        base[dims["color"]] = color_vec[product.color]
        base[dims["modifier"]] = modifier_vec[product.modifier]
        base[dims["product"]] = rng.standard_normal(product_block)
        for photo_id in product.photo_ids:
            vec = base + rng.normal(0.0, cluster_tightness, size=embedding_dim)
            embeddings[photo_id] = vec / np.linalg.norm(vec)

    qualities = np.clip(rng.beta(5, 2, size=n_photos), 0.05, 1.0)
    # Product shots: tighter size spread than personal photos (~0.3-1.5 MB).
    costs = rng.lognormal(mean=np.log(6.0e5), sigma=0.4, size=n_photos)

    photos = [
        Photo(
            photo_id=p,
            cost=float(costs[p]),
            label=photo_texts[p],
            metadata={
                "product_id": photo_product[p],
                "brand": products[photo_product[p]].brand,
                "category": products[photo_product[p]].category,
                "quality": float(qualities[p]),
                "domain": domain.name,
            },
        )
        for p in range(n_photos)
    ]

    # --- search-engine-derived subsets -----------------------------------
    engine = SearchEngine()
    for p in range(n_photos):
        engine.add_photo(p, photo_texts[p])

    log = generate_query_log(domain, max(n_queries * 2, n_queries + 20), query_log_events, rng)
    total_events = sum(c for _, c in log)

    specs: List[SubsetSpec] = []
    kept_queries: List[Tuple[str, int]] = []
    for query, count in log:
        if len(specs) >= n_queries:
            break
        result = engine.subset_for_query(query, top_k=results_per_query)
        if len(result.photo_ids) < 2:
            continue
        relevance = [
            score * (0.5 + 0.5 * qualities[p])
            for p, score in zip(result.photo_ids, result.relevance)
        ]
        specs.append(
            SubsetSpec(
                subset_id=query,
                weight=count / total_events,
                members=result.photo_ids,
                relevance=relevance,
            )
        )
        kept_queries.append((query, count))

    if not specs:
        raise ConfigurationError(
            "query log produced no non-trivial subsets; increase n_products"
        )

    # --- contract (legal) retention --------------------------------------
    contract_brands = set(
        str(b)
        for b in rng.choice(
            domain.brands,
            size=max(1, int(round(contract_brand_fraction * len(domain.brands)))),
            replace=False,
        )
    )
    candidates: List[int] = []
    for product in products:
        if product.brand in contract_brands:
            # The contract pins the best shot of a contracted product.
            best = max(product.photo_ids, key=lambda p: qualities[p])
            candidates.append(best)
    # Contracts cover flagship products only — cap S0 at ~2% of the photos
    # so even small experiment budgets stay feasible.
    cap = max(1, n_photos // 50)
    if len(candidates) > cap:
        picked = rng.choice(len(candidates), size=cap, replace=False)
        retained = [candidates[i] for i in picked]
    else:
        retained = candidates

    return Dataset(
        name=name,
        photos=photos,
        specs=specs,
        embeddings=embeddings,
        retained=sorted(retained),
        source="ecommerce",
        extras={
            "domain": domain.name,
            "n_products": n_products,
            "query_log": kept_queries,
            "contract_brands": sorted(contract_brands),
            "seed": seed,
        },
    )
