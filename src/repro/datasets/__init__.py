"""Dataset generators for the paper's eight corpora (Table 2)."""

from repro.datasets.base import MB, Dataset
from repro.datasets.ecommerce import (
    DOMAINS,
    DomainSpec,
    generate_ecommerce_dataset,
    generate_query_log,
)
from repro.datasets.io import load_dataset, save_dataset
from repro.datasets.personal import EVENT_NAMES, generate_personal_dataset
from repro.datasets.public import LABEL_VOCABULARY, generate_public_dataset
from repro.datasets.registry import TABLE2, DatasetConfig, dataset_names, load

__all__ = [
    "Dataset",
    "MB",
    "generate_public_dataset",
    "LABEL_VOCABULARY",
    "generate_personal_dataset",
    "EVENT_NAMES",
    "generate_ecommerce_dataset",
    "generate_query_log",
    "DOMAINS",
    "DomainSpec",
    "load",
    "TABLE2",
    "DatasetConfig",
    "dataset_names",
    "save_dataset",
    "load_dataset",
]
