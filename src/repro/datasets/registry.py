"""Named dataset configurations — the paper's Table 2, scalable.

The registry pre-registers the eight datasets of Table 2 with their exact
photo and subset counts:

====================  ========  ====================
Dataset               # photos  # predefined subsets
====================  ========  ====================
P-1K                      1000                   193
P-5K                      5000                  1409
P-10K                    10000                  3955
P-50K                    50000                 14326
P-100K                  100000                 33721
EC-Fashion               18745                   250
EC-Electronics           22783                   250
EC-Home & Garden         19235                   250
====================  ========  ====================

Because the paper ran on a 32-core/128 GB server and this reproduction
targets laptops, :func:`load` accepts a ``scale`` factor that shrinks the
counts proportionally (``scale=1.0`` generates the full paper-scale
dataset — the generators handle it, it just takes a while).  The
experiment harness records the scale used so EXPERIMENTS.md can report it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.datasets.base import Dataset
from repro.datasets.ecommerce import generate_ecommerce_dataset
from repro.datasets.public import generate_public_dataset
from repro.errors import ConfigurationError

__all__ = ["DatasetConfig", "TABLE2", "dataset_names", "load"]


@dataclass(frozen=True)
class DatasetConfig:
    """Registry entry: paper-scale counts plus generator routing."""

    name: str
    source: str  # "public" | "ecommerce"
    n_photos: int
    n_subsets: int
    domain: Optional[str] = None  # e-commerce domain name

    def scaled(self, scale: float) -> "DatasetConfig":
        """Proportionally shrunk copy (minimum sizes keep structure sane)."""
        if not (0.0 < scale <= 1.0):
            raise ConfigurationError("scale must lie in (0, 1]")
        return DatasetConfig(
            name=self.name,
            source=self.source,
            n_photos=max(40, int(round(self.n_photos * scale))),
            n_subsets=max(8, int(round(self.n_subsets * scale))),
            domain=self.domain,
        )


TABLE2: Dict[str, DatasetConfig] = {
    "P-1K": DatasetConfig("P-1K", "public", 1_000, 193),
    "P-5K": DatasetConfig("P-5K", "public", 5_000, 1_409),
    "P-10K": DatasetConfig("P-10K", "public", 10_000, 3_955),
    "P-50K": DatasetConfig("P-50K", "public", 50_000, 14_326),
    "P-100K": DatasetConfig("P-100K", "public", 100_000, 33_721),
    "EC-Fashion": DatasetConfig("EC-Fashion", "ecommerce", 18_745, 250, domain="Fashion"),
    "EC-Electronics": DatasetConfig(
        "EC-Electronics", "ecommerce", 22_783, 250, domain="Electronics"
    ),
    "EC-Home & Garden": DatasetConfig(
        "EC-Home & Garden", "ecommerce", 19_235, 250, domain="Home & Garden"
    ),
}


def dataset_names() -> list:
    """Registered dataset names, in Table 2 order."""
    return list(TABLE2)


def load(
    name: str,
    *,
    scale: float = 1.0,
    seed: int = 0,
    image_mode: str = "gaussian",
    **overrides,
) -> Dataset:
    """Generate a registered dataset, optionally scaled down.

    ``overrides`` are forwarded to the underlying generator (e.g.
    ``cluster_tightness`` for public datasets, ``results_per_query`` for
    e-commerce ones).
    """
    try:
        config = TABLE2[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown dataset {name!r}; registered: {dataset_names()}"
        ) from None
    config = config.scaled(scale)

    if config.source == "public":
        return generate_public_dataset(
            config.n_photos,
            config.n_subsets,
            name=config.name,
            seed=seed,
            image_mode=image_mode,
            **overrides,
        )
    # E-commerce photo counts emerge from products × shots/product
    # (mean 2.5 shots with the default (1, 4) range).
    n_products = max(16, int(round(config.n_photos / 2.5)))
    return generate_ecommerce_dataset(
        config.domain,
        n_products,
        n_queries=config.n_subsets,
        name=config.name,
        seed=seed,
        **overrides,
    )
