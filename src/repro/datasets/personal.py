"""Personal photo-collection generator (the paper's smartphone scenario).

Section 1's second motivating instance: "the need to delete photos
locally on your smartphone to meet some storage budget, relying on cloud
storage for your full set of photos.  You may have explicitly organized
subsets of the photos in albums, or implicitly organized them by ...
date, location and facial recognition.  You may require that some of your
photos remain in local storage."

This generator runs the full image substrate — every photo is *rendered*
(synthetic scene), embedded, quality-scored, priced by the file-size
model, and stamped with coherent event EXIF.  Subsets come from the
organisation signals the paper lists:

* one album per shooting event (the explicit organisation);
* day buckets from EXIF timestamps (automatic date tagging);
* coarse place buckets from EXIF GPS (automatic location tagging);
* a "favourites" album of the highest-quality recent shots.

Policy pins: document photos (passport-style) are flagged ``must_keep``.
"""

from __future__ import annotations

from datetime import datetime, timedelta, timezone
from typing import List, Tuple

import numpy as np

from repro.core.instance import Photo, SubsetSpec
from repro.datasets.base import Dataset
from repro.errors import ConfigurationError
from repro.images.embedder import PhotoEmbedder
from repro.images.exif import geo_bucket, synthesize_event_exif, time_bucket
from repro.images.filesize import file_size_bytes
from repro.images.quality import quality_score
from repro.images.synthetic import random_prototype, render_photo

__all__ = ["generate_personal_dataset", "EVENT_NAMES"]

EVENT_NAMES = (
    "paris-trip", "beach-weekend", "birthday-party", "hiking-day",
    "city-walk", "family-dinner", "concert-night", "museum-visit",
    "road-trip", "picnic",
)


def generate_personal_dataset(
    n_events: int = 6,
    photos_per_event: Tuple[int, int] = (6, 14),
    *,
    name: str = "Personal",
    seed: int = 0,
    n_documents: int = 2,
    embedding_dim: int = 48,
    image_size: int = 24,
    favourites_size: int = 8,
    blur_fraction: float = 0.2,
) -> Dataset:
    """Generate a rendered personal photo collection.

    Parameters
    ----------
    n_events:
        Number of shooting events (trips, parties, ...).
    photos_per_event:
        Inclusive range of shots per event.
    n_documents:
        Passport-style must-keep photos (flagged ``must_keep`` and placed
        in the retention set).
    favourites_size:
        Size of the quality-ranked "favourites" album.
    """
    if n_events < 1:
        raise ConfigurationError("need at least one event")
    rng = np.random.default_rng(seed)
    embedder = PhotoEmbedder(out_dim=embedding_dim, seed=seed + 1)

    photos: List[Photo] = []
    embeddings: List[np.ndarray] = []
    event_members: List[List[int]] = []
    event_names: List[str] = []

    base_time = datetime(2023, 1, 15, tzinfo=timezone.utc)
    for ei in range(n_events):
        event_name = EVENT_NAMES[ei % len(EVENT_NAMES)]
        if ei >= len(EVENT_NAMES):
            event_name = f"{event_name}-{ei // len(EVENT_NAMES) + 1}"
        prototype = random_prototype(event_name, rng)
        n_shots = int(rng.integers(photos_per_event[0], photos_per_event[1] + 1))
        exif = synthesize_event_exif(
            n_shots, rng,
            base_time=base_time + timedelta(days=int(rng.integers(0, 300))),
            spread_km=1.5,
        )
        members = []
        for record in exif:
            blur = rng.random() < blur_fraction
            image = render_photo(
                prototype, rng, height=image_size, width=image_size, blur=blur
            )
            photo_id = len(photos)
            photos.append(
                Photo(
                    photo_id=photo_id,
                    cost=file_size_bytes(image),
                    label=f"{event_name}-{photo_id}.jpg",
                    metadata={
                        "labels": [event_name],
                        "exif": record.as_dict(),
                        "exif_day": time_bucket(record),
                        "exif_place": geo_bucket(record),
                        "quality": quality_score(image),
                        "event": ei,
                    },
                )
            )
            embeddings.append(embedder.embed(image))
            members.append(photo_id)
        event_members.append(members)
        event_names.append(event_name)

    retained: List[int] = []
    for di in range(n_documents):
        prototype = random_prototype(f"document-{di}", rng)
        image = render_photo(prototype, rng, height=image_size, width=image_size)
        photo_id = len(photos)
        photos.append(
            Photo(
                photo_id=photo_id,
                cost=file_size_bytes(image),
                label=f"document-{di}.jpg",
                metadata={
                    "labels": ["documents"],
                    "must_keep": True,
                    "quality": quality_score(image),
                },
            )
        )
        embeddings.append(embedder.embed(image))
        retained.append(photo_id)

    # --- subsets ---------------------------------------------------------
    specs: List[SubsetSpec] = []
    for ei, members in enumerate(event_members):
        qualities = [photos[p].metadata["quality"] for p in members]
        specs.append(
            SubsetSpec(
                subset_id=f"album:{event_names[ei]}",
                weight=1.0 + 0.2 * len(members),
                members=members,
                relevance=[0.2 + q for q in qualities],
            )
        )
    # Automatic date and place tags (only multi-photo buckets are useful).
    for key, prefix in (("exif_day", "day:"), ("exif_place", "place:")):
        buckets = {}
        for photo in photos:
            value = photo.metadata.get(key)
            if value:
                buckets.setdefault(value, []).append(photo.photo_id)
        for value, members in sorted(buckets.items()):
            if len(members) >= 2:
                specs.append(
                    SubsetSpec(
                        subset_id=f"{prefix}{value}",
                        weight=0.5,
                        members=members,
                        relevance=[1.0] * len(members),
                    )
                )
    # Favourites: the best recent shots across the collection.
    ranked = sorted(
        (p for p in photos if not p.metadata.get("must_keep")),
        key=lambda p: -p.metadata["quality"],
    )
    favourites = [p.photo_id for p in ranked[:favourites_size]]
    if favourites:
        specs.append(
            SubsetSpec(
                subset_id="album:favourites",
                weight=3.0,
                members=favourites,
                relevance=[photos[p].metadata["quality"] for p in favourites],
            )
        )
    # Documents album (the pinned photos still contribute coverage value).
    if retained:
        specs.append(
            SubsetSpec(
                subset_id="album:documents",
                weight=2.0,
                members=list(retained),
                relevance=[1.0] * len(retained),
            )
        )

    return Dataset(
        name=name,
        photos=photos,
        specs=specs,
        embeddings=np.asarray(embeddings),
        retained=retained,
        source="personal",
        extras={
            "n_events": n_events,
            "events": event_names,
            "seed": seed,
        },
    )
