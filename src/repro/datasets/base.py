"""Shared dataset container for all generated corpora.

A :class:`Dataset` is everything the PHOcus pipeline needs *before* a
budget is chosen: the photos (with byte costs and metadata), the subset
specifications (members, raw relevance, importance weights), the photo
embeddings, and any mandatory-retention ids.  Calling :meth:`instance`
derives the contextual similarities and produces a solvable
:class:`repro.core.instance.PARInstance` for a given budget — so one
generated dataset serves a whole budget sweep, exactly how the paper's
experiments are structured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.core.instance import PARInstance, Photo, SubsetSpec
from repro.errors import ValidationError
from repro.similarity.contextual import ContextualSimilarity

__all__ = ["Dataset", "MB"]

MB = 1_000_000.0


@dataclass
class Dataset:
    """A budget-independent photo corpus with its pre-defined subsets.

    Attributes
    ----------
    name:
        Registry name ("P-1K", "EC-Fashion", ...).
    photos:
        Photo records; position equals photo id.
    specs:
        Raw subset specifications (weights and *un-normalised* relevance).
    embeddings:
        ``(n, dim)`` photo embedding matrix.
    retained:
        Photo ids that must be kept (``S0``).
    source:
        Generator family: ``"public"`` or ``"ecommerce"``.
    extras:
        Generator-specific metadata (label names, query log stats, ...).
    """

    name: str
    photos: List[Photo]
    specs: List[SubsetSpec]
    embeddings: np.ndarray
    retained: List[int] = field(default_factory=list)
    source: str = "public"
    extras: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.photos:
            raise ValidationError(f"dataset {self.name!r} has no photos")
        if not self.specs:
            raise ValidationError(f"dataset {self.name!r} has no subsets")
        self.embeddings = np.asarray(self.embeddings, dtype=np.float64)
        if self.embeddings.shape[0] != len(self.photos):
            raise ValidationError(
                f"dataset {self.name!r}: {self.embeddings.shape[0]} embeddings "
                f"for {len(self.photos)} photos"
            )

    @property
    def n_photos(self) -> int:
        return len(self.photos)

    @property
    def n_subsets(self) -> int:
        return len(self.specs)

    def total_cost(self) -> float:
        """Byte cost of keeping the full corpus."""
        return float(sum(p.cost for p in self.photos))

    def total_cost_mb(self) -> float:
        return self.total_cost() / MB

    def instance(
        self,
        budget: float,
        *,
        contextual_mode: str = "reweight+normalise",
        strength: float = 1.0,
        similarity_fn=None,
    ) -> PARInstance:
        """Materialise a PAR instance for a byte budget.

        Contextual similarities are derived per subset from the shared
        embeddings (see :mod:`repro.similarity.contextual`); pass
        ``contextual_mode="cosine"`` for a non-contextual instance, or a
        custom ``similarity_fn`` (e.g.
        :class:`repro.similarity.multimodal.MultimodalSimilarity`) to
        override the derivation entirely.
        """
        sim_fn = similarity_fn or ContextualSimilarity(contextual_mode, strength=strength)
        return PARInstance.build(
            self.photos,
            self.specs,
            budget,
            retained=self.retained,
            embeddings=self.embeddings,
            similarity_fn=sim_fn,
        )

    def streamed_instance(
        self,
        budget: float,
        *,
        tau: float,
        contextual_mode: str = "cosine",
        dtype=np.float64,
        n_bits="auto",
        target_recall: float = 0.95,
        rng=None,
        keep_embeddings: bool = False,
    ):
        """Fused streamed sparse instance (embeddings → LSH → CSR).

        The million-scale path of :mod:`repro.scale`: SimHash candidates
        over this dataset's embeddings, τ-verified cosines, and a CSR
        :class:`~repro.core.instance.SparseSimilarity` — no O(n²) dense
        SIM is ever materialised.  The whole corpus becomes one
        archive-wide subset with uniform relevance; the dataset's photo
        records and retained ids carry over unchanged.

        Cosine-only: contextual reweighting operates on a dense per-subset
        matrix, so any other ``contextual_mode`` raises
        :class:`~repro.errors.ValidationError`.

        Returns ``(instance, report)`` — see
        :func:`repro.scale.build_streamed_instance`.
        """
        if contextual_mode != "cosine":
            raise ValidationError(
                "streamed_instance supports contextual_mode='cosine' only "
                f"(contextual reweighting needs a dense similarity matrix); "
                f"got {contextual_mode!r}"
            )
        from repro.scale import build_streamed_instance

        costs = np.array([p.cost for p in self.photos], dtype=np.float64)
        return build_streamed_instance(
            costs,
            self.embeddings,
            budget,
            tau=tau,
            subset_id=f"{self.name}-archive",
            retained=self.retained,
            n_bits=n_bits,
            target_recall=target_recall,
            rng=rng,
            dtype=dtype,
            keep_embeddings=keep_embeddings,
            photos=self.photos,
        )

    def variant_catalog(self, levels=None, *, tiers=None):
        """Per-photo recompression menus for multi-fidelity solves.

        Builds a :class:`repro.fidelity.VariantCatalog` over this
        dataset's photo costs.  ``levels`` is a sequence of ``(fidelity,
        size_factor)`` pairs (``tiers`` the matching labels); omitted, the
        :data:`repro.fidelity.catalog.DEFAULT_TIERS` JPEG re-encode menu
        is used.  Attach the result to an instance via
        ``variant_instance`` or pass it to the solver directly.
        """
        from repro.fidelity.catalog import VariantCatalog

        costs = np.array([p.cost for p in self.photos], dtype=np.float64)
        if levels is None:
            return VariantCatalog.default(costs)
        return VariantCatalog.from_levels(costs, levels, tiers=tiers)

    def variant_instance(self, budget: float, *, levels=None, tiers=None, **kwargs):
        """A PAR instance carrying its variant catalog (see ``instance``).

        The returned instance solves multi-fidelity by default when a
        ``fidelity`` policy names no explicit catalog — the catalog rides
        through serialisation and the tenant store.
        """
        inst = self.instance(budget, **kwargs)
        inst.variants = self.variant_catalog(levels, tiers=tiers)
        return inst

    def instance_for_fraction(
        self,
        fraction: float,
        **kwargs,
    ) -> PARInstance:
        """Instance whose budget is a fraction of the full corpus cost.

        Section 5.3 stresses that real budgets sit far below the corpus
        cost (≈4% in the Electronics scenario); this helper expresses
        budgets that way.
        """
        if not (0.0 < fraction <= 1.0):
            raise ValidationError("fraction must lie in (0, 1]")
        return self.instance(self.total_cost() * fraction, **kwargs)

    def describe(self) -> Dict[str, object]:
        """Summary row (the Table 2 representation of this dataset)."""
        subset_sizes = [len(s.members) for s in self.specs]
        return {
            "name": self.name,
            "photos": self.n_photos,
            "predefined_subsets": self.n_subsets,
            "total_mb": round(self.total_cost_mb(), 2),
            "mean_subset_size": round(float(np.mean(subset_sizes)), 2),
            "max_subset_size": int(np.max(subset_sizes)),
            "source": self.source,
        }
