"""Open-Images-style public dataset generator (the paper's P-* datasets).

Section 5.2 builds the public datasets from the Open Images corpus [28]:
photos carry labels with confidence levels; each label defines a
pre-defined subset; label confidence becomes the relevance score; the
label's frequency in the full corpus becomes the subset weight; and
similarities come from ResNet-50 embeddings.

Our generator reproduces that structure synthetically:

1. a label vocabulary with Zipf-distributed popularity (Open Images has
   >6000 labels with a heavy-tailed frequency profile);
2. concept clusters — groups of near-duplicate photos sharing a prototype
   scene and one-to-three labels drawn by popularity;
3. per-photo label confidences (high for the cluster's labels, mild noise)
   that double as relevance;
4. photo embeddings either rendered through the full image pipeline
   (:mod:`repro.images`) or sampled directly around a cluster direction on
   the unit sphere (``image_mode="gaussian"`` — the fast path for large
   benches; both modes yield the same cluster geometry).

Every photo also gets a byte cost from the file-size model (render mode)
or a lognormal matching real JPEG size spreads (gaussian mode).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core.instance import Photo, SubsetSpec
from repro.datasets.base import Dataset
from repro.errors import ConfigurationError
from repro.images.embedder import PhotoEmbedder
from repro.images.filesize import file_size_bytes
from repro.images.quality import quality_score
from repro.images.synthetic import random_prototype, render_photo

__all__ = ["generate_public_dataset", "LABEL_VOCABULARY"]

# A compact Open-Images-flavoured vocabulary; the generator cycles with
# numeric suffixes when more labels are requested than base names exist.
LABEL_VOCABULARY = (
    "bicycle cat dog person tree car building flower bird food bridge "
    "mountain beach boat horse guitar chair table laptop phone book bottle "
    "cup shoe hat clock lamp couch bed plant train airplane bus truck "
    "motorcycle umbrella backpack handbag suitcase skateboard surfboard "
    "ball kite glove helmet scarf watch ring camera television keyboard"
).split()


def _label_names(n_labels: int) -> List[str]:
    names = []
    for i in range(n_labels):
        base = LABEL_VOCABULARY[i % len(LABEL_VOCABULARY)]
        suffix = i // len(LABEL_VOCABULARY)
        names.append(base if suffix == 0 else f"{base}-{suffix}")
    return names


def _zipf_weights(n: int, exponent: float, rng: np.random.Generator) -> np.ndarray:
    """Zipf popularity profile over ``n`` items, shuffled so label index
    does not encode popularity."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-exponent
    rng.shuffle(weights)
    return weights / weights.sum()


def generate_public_dataset(
    n_photos: int,
    n_subsets: int,
    *,
    name: str = "P",
    seed: int = 0,
    cluster_size: Tuple[int, int] = (3, 9),
    labels_per_cluster: Tuple[int, int] = (1, 3),
    zipf_exponent: float = 1.1,
    image_mode: str = "gaussian",
    embedding_dim: int = 64,
    image_size: int = 32,
    cluster_tightness: float = 0.25,
    retained_fraction: float = 0.0,
) -> Dataset:
    """Generate a P-style dataset with the paper's structure.

    Parameters
    ----------
    n_photos, n_subsets:
        Target photo and label (= subset) counts.  Table 2's pairs are
        pre-registered in :mod:`repro.datasets.registry`.
    image_mode:
        ``"render"`` — run the full synthetic-image pipeline (scenes →
        features → embedder → quality/file size); ``"gaussian"`` — sample
        embeddings directly around cluster directions (fast path; costs
        drawn lognormal).  Both produce the same downstream geometry.
    cluster_tightness:
        Standard deviation of within-cluster embedding noise (gaussian
        mode); smaller means more redundant near-duplicates.
    retained_fraction:
        Fraction of photos marked as must-keep (``S0``), sampled uniformly.
    """
    if n_photos < 2 or n_subsets < 1:
        raise ConfigurationError("need at least 2 photos and 1 subset")
    if image_mode not in ("render", "gaussian"):
        raise ConfigurationError(f"unknown image_mode {image_mode!r}")
    rng = np.random.default_rng(seed)

    labels = _label_names(n_subsets)
    label_popularity = _zipf_weights(n_subsets, zipf_exponent, rng)

    # --- carve photos into concept clusters -----------------------------
    cluster_of: List[int] = []
    cluster_id = 0
    while len(cluster_of) < n_photos:
        size = int(rng.integers(cluster_size[0], cluster_size[1] + 1))
        size = min(size, n_photos - len(cluster_of))
        cluster_of.extend([cluster_id] * size)
        cluster_id += 1
    n_clusters = cluster_id

    # --- assign labels to clusters (popular labels get more clusters) ---
    cluster_labels: List[List[int]] = []
    for c in range(n_clusters):
        k = int(rng.integers(labels_per_cluster[0], labels_per_cluster[1] + 1))
        k = min(k, n_subsets)
        chosen = rng.choice(n_subsets, size=k, replace=False, p=label_popularity)
        cluster_labels.append(sorted(int(l) for l in chosen))
    # Guarantee every label owns at least one cluster so all subsets exist.
    used = set(l for ls in cluster_labels for l in ls)
    missing = [l for l in range(n_subsets) if l not in used]
    for i, l in enumerate(missing):
        cluster_labels[i % n_clusters].append(l)

    # --- photos: embeddings, costs, quality ------------------------------
    embeddings = np.zeros((n_photos, embedding_dim))
    costs = np.zeros(n_photos)
    qualities = np.zeros(n_photos)

    if image_mode == "render":
        embedder = PhotoEmbedder(out_dim=embedding_dim, seed=seed + 1)
        prototypes = [random_prototype(f"cluster-{c}", rng) for c in range(n_clusters)]
        for p in range(n_photos):
            blur = rng.random() < 0.15
            image = render_photo(
                prototypes[cluster_of[p]], rng, height=image_size, width=image_size, blur=blur
            )
            embeddings[p] = embedder.embed(image)
            costs[p] = file_size_bytes(image)
            qualities[p] = quality_score(image)
    else:
        centers = rng.standard_normal((n_clusters, embedding_dim))
        centers /= np.linalg.norm(centers, axis=1, keepdims=True)
        for p in range(n_photos):
            vec = centers[cluster_of[p]] + rng.normal(
                0.0, cluster_tightness, size=embedding_dim
            )
            embeddings[p] = vec / np.linalg.norm(vec)
        # Lognormal around ~1 MB, matching Figure 1's 0.7-2.1 Mb spread.
        costs = rng.lognormal(mean=np.log(1.0e6), sigma=0.45, size=n_photos)
        qualities = np.clip(rng.beta(5, 2, size=n_photos), 0.05, 1.0)

    photos = [
        Photo(
            photo_id=p,
            cost=float(costs[p]),
            label=f"{name.lower()}-photo-{p}",
            metadata={
                "cluster": cluster_of[p],
                "quality": float(qualities[p]),
                "labels": [labels[l] for l in cluster_labels[cluster_of[p]]],
            },
        )
        for p in range(n_photos)
    ]

    # --- subsets: label membership with confidence-based relevance ------
    members_per_label: Dict[int, List[int]] = {l: [] for l in range(n_subsets)}
    confidence_per_label: Dict[int, List[float]] = {l: [] for l in range(n_subsets)}
    for p in range(n_photos):
        for l in cluster_labels[cluster_of[p]]:
            # Label confidence: detector-style score modulated by quality.
            conf = float(np.clip(rng.uniform(0.55, 1.0) * (0.5 + 0.5 * qualities[p]), 0.05, 1.0))
            members_per_label[l].append(p)
            confidence_per_label[l].append(conf)

    specs: List[SubsetSpec] = []
    for l in range(n_subsets):
        members = members_per_label[l]
        if not members:
            continue
        specs.append(
            SubsetSpec(
                subset_id=labels[l],
                weight=float(label_popularity[l] * n_subsets),
                members=members,
                relevance=confidence_per_label[l],
            )
        )

    retained: List[int] = []
    if retained_fraction > 0:
        k = int(round(retained_fraction * n_photos))
        retained = sorted(int(p) for p in rng.choice(n_photos, size=k, replace=False))

    return Dataset(
        name=name,
        photos=photos,
        specs=specs,
        embeddings=embeddings,
        retained=retained,
        source="public",
        extras={
            "n_clusters": n_clusters,
            "labels": labels,
            "image_mode": image_mode,
            "seed": seed,
        },
    )
