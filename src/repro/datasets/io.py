"""Dataset (de)serialisation.

Datasets persist as a single JSON document: photos (cost, label,
metadata), subset specs (members, raw relevance, weight), embeddings, the
retention set and generator extras.  Contextual similarities are *not*
stored — they are derived from the embeddings on :meth:`Dataset.instance`,
which keeps files compact and guarantees a round-tripped dataset produces
bit-identical instances.

Writes are crash-safe: the document goes through
:func:`repro.ioutil.atomic_write_bytes` (same-directory temp file, fsync,
atomic ``os.replace``), so a crash mid-save leaves either the previous
file or the new one — never a torn JSON.  Fault sites: ``dataset.write``
/ ``dataset.fsync`` / ``dataset.replace``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.instance import Photo, SubsetSpec
from repro.datasets.base import Dataset
from repro.errors import ValidationError
from repro.ioutil import atomic_write_bytes

__all__ = ["save_dataset", "load_dataset"]

_FORMAT_VERSION = 1


def save_dataset(dataset: Dataset, path: Union[str, Path]) -> None:
    """Write a dataset to a JSON file (creates parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = {
        "format_version": _FORMAT_VERSION,
        "name": dataset.name,
        "source": dataset.source,
        "retained": [int(p) for p in dataset.retained],
        "extras": _jsonable(dataset.extras),
        "photos": [
            {
                "photo_id": p.photo_id,
                "cost": p.cost,
                "label": p.label,
                "metadata": _jsonable(dict(p.metadata)),
            }
            for p in dataset.photos
        ],
        "specs": [
            {
                "subset_id": s.subset_id,
                "weight": float(s.weight),
                "members": [int(m) for m in s.members],
                "relevance": [float(r) for r in s.relevance],
            }
            for s in dataset.specs
        ],
        "embeddings": np.asarray(dataset.embeddings).tolist(),
    }
    atomic_write_bytes(path, json.dumps(doc).encode("utf-8"), site="dataset")


def load_dataset(path: Union[str, Path]) -> Dataset:
    """Read a dataset previously written by :func:`save_dataset`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        doc = json.load(handle)
    version = doc.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValidationError(
            f"unsupported dataset format version {version!r} in {path}"
        )
    photos = [
        Photo(
            photo_id=int(p["photo_id"]),
            cost=float(p["cost"]),
            label=p.get("label", ""),
            metadata=p.get("metadata", {}),
        )
        for p in doc["photos"]
    ]
    specs = [
        SubsetSpec(
            subset_id=s["subset_id"],
            weight=float(s["weight"]),
            members=s["members"],
            relevance=s["relevance"],
        )
        for s in doc["specs"]
    ]
    return Dataset(
        name=doc["name"],
        photos=photos,
        specs=specs,
        embeddings=np.asarray(doc["embeddings"], dtype=np.float64),
        retained=[int(p) for p in doc.get("retained", [])],
        source=doc.get("source", "public"),
        extras=doc.get("extras", {}),
    )


def _jsonable(value):
    """Best-effort conversion of numpy scalars/arrays inside metadata."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    return value
