"""Core PAR model and solvers (the paper's primary contribution).

Public surface:

* model — :class:`~repro.core.instance.PARInstance`,
  :class:`~repro.core.instance.Photo`,
  :class:`~repro.core.instance.PredefinedSubset`,
  :class:`~repro.core.instance.SubsetSpec`, similarity backends;
* objective — :func:`~repro.core.objective.score`,
  :class:`~repro.core.objective.CoverageState`;
* solvers — :func:`~repro.core.solver.solve` (facade),
  :func:`~repro.core.greedy.main_algorithm` (Algorithm 1),
  :func:`~repro.core.greedy.lazy_greedy` (Algorithm 2),
  :func:`~repro.core.sviridenko.sviridenko`,
  :func:`~repro.core.bruteforce.branch_and_bound`, the Section 5.2
  baselines in :mod:`repro.core.baselines`;
* certificates — :func:`~repro.core.bounds.online_bound`,
  :func:`~repro.core.bounds.sparsification_bound`.
"""

from repro.core.baselines import (
    greedy_no_redundancy,
    greedy_non_contextual,
    rand_add,
    rand_delete,
)
from repro.core.bounds import (
    online_bound,
    performance_certificate,
    sparsification_bound,
)
from repro.core.bruteforce import branch_and_bound, exhaustive
from repro.core.budgeted_coverage import (
    CoverageProblem,
    CoverageSolution,
    greedy_budgeted_coverage,
)
from repro.core.greedy import CB, UC, lazy_greedy, main_algorithm, naive_greedy
from repro.core.hardness import MaxCoverageInstance, mc_to_par
from repro.core.instance import (
    DenseSimilarity,
    IncidenceCSR,
    PARInstance,
    Photo,
    PredefinedSubset,
    SparseSimilarity,
    SubsetSpec,
    build_incidence,
    normalize_relevance,
)
from repro.core.checkpoint import (
    FileCheckpointSink,
    MemoryCheckpointSink,
    decode_record,
    encode_record,
    resume_from_checkpoint,
)
from repro.core.objective import CoverageState, max_score, score, score_breakdown
from repro.core.parallel import SharedInstance, SolveTask, default_workers
from repro.core.solver import (
    Solution,
    available_algorithms,
    checkpointable_algorithms,
    solve,
    solve_many,
)
from repro.core.sviridenko import sviridenko

__all__ = [
    "PARInstance",
    "Photo",
    "PredefinedSubset",
    "SubsetSpec",
    "DenseSimilarity",
    "SparseSimilarity",
    "IncidenceCSR",
    "build_incidence",
    "normalize_relevance",
    "CoverageState",
    "score",
    "score_breakdown",
    "max_score",
    "solve",
    "solve_many",
    "SolveTask",
    "SharedInstance",
    "default_workers",
    "Solution",
    "available_algorithms",
    "checkpointable_algorithms",
    "FileCheckpointSink",
    "MemoryCheckpointSink",
    "encode_record",
    "decode_record",
    "resume_from_checkpoint",
    "main_algorithm",
    "lazy_greedy",
    "naive_greedy",
    "UC",
    "CB",
    "sviridenko",
    "branch_and_bound",
    "exhaustive",
    "rand_add",
    "rand_delete",
    "greedy_no_redundancy",
    "greedy_non_contextual",
    "online_bound",
    "performance_certificate",
    "sparsification_bound",
    "CoverageProblem",
    "CoverageSolution",
    "greedy_budgeted_coverage",
    "MaxCoverageInstance",
    "mc_to_par",
]
