"""Exact PAR solvers for gold-standard comparisons (Figure 5d).

Two exact solvers are provided:

* :func:`exhaustive` — literal enumeration of every feasible subset.  Only
  usable on toy instances (``n`` around 20), but trivially correct; tests
  use it to certify the branch-and-bound solver.
* :func:`branch_and_bound` — depth-first include/exclude search with two
  prunes: budget infeasibility, and a submodular fractional-knapsack upper
  bound (the marginal gains of the remaining candidates, greedily packed by
  density into the remaining budget, bound every completion of the current
  partial solution).  This is the solver the Figure 5d bench runs against
  PHOcus on ~100-photo instances with small budgets.

Both respect the retention set ``S0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import List, Sequence

import numpy as np

from repro.core.instance import PARInstance
from repro.core.objective import CoverageState, score

__all__ = ["ExactResult", "exhaustive", "branch_and_bound"]


@dataclass
class ExactResult:
    """An optimal PAR solution together with search statistics."""

    selection: List[int]
    value: float
    cost: float
    nodes: int = 0


def exhaustive(instance: PARInstance, max_photos: int = 24) -> ExactResult:
    """Enumerate all feasible subsets and return the best one.

    Raises ``ValueError`` when the instance exceeds ``max_photos`` free
    photos, as enumeration would be astronomically slow.
    """
    free = [p for p in range(instance.n) if p not in instance.retained]
    if len(free) > max_photos:
        raise ValueError(
            f"exhaustive search limited to {max_photos} free photos; "
            f"instance has {len(free)} (use branch_and_bound instead)"
        )
    base = list(instance.retained)
    base_cost = instance.cost_of(base)
    best_sel: List[int] = list(base)
    best_val = score(instance, base)
    nodes = 0
    for r in range(len(free) + 1):
        for combo in combinations(free, r):
            nodes += 1
            cost = base_cost + float(instance.costs[list(combo)].sum()) if combo else base_cost
            if cost > instance.budget * (1 + 1e-12):
                continue
            val = score(instance, base + list(combo))
            if val > best_val + 1e-12:
                best_val = val
                best_sel = base + list(combo)
    return ExactResult(sorted(best_sel), best_val, instance.cost_of(best_sel), nodes)


def _fractional_upper_bound(
    state: CoverageState,
    candidates: Sequence[int],
    costs: np.ndarray,
    remaining_budget: float,
) -> float:
    """Submodular fractional-knapsack bound on the best completion value.

    For the current selection ``S`` with marginal gains ``δ_p`` over the
    remaining candidates, submodularity gives for any feasible completion
    ``T``: ``G(S ∪ T) ≤ G(S) + Σ_{p ∈ T} δ_p``, and the right-hand side is
    itself bounded by greedily packing gains by density into the remaining
    budget (allowing a fractional final item).
    """
    gains = []
    for p in candidates:
        if costs[p] <= remaining_budget + 1e-12:
            g = state.gain(p)
            if g > 0:
                gains.append((g / costs[p], g, float(costs[p])))
    gains.sort(reverse=True)
    bound = state.value
    budget = remaining_budget
    for _, g, c in gains:
        if budget <= 0:
            break
        if c <= budget:
            bound += g
            budget -= c
        else:
            bound += g * (budget / c)
            budget = 0.0
    return bound


def branch_and_bound(
    instance: PARInstance,
    *,
    node_limit: int = 5_000_000,
) -> ExactResult:
    """Exact PAR solver via include/exclude branch and bound.

    Photos are branched in decreasing initial density order (gain at the
    root divided by cost), which makes the greedy-like incumbent found
    early very strong and the fractional bound prune aggressively.

    Raises ``RuntimeError`` if ``node_limit`` nodes are expanded without
    closing the search — a guard against accidentally exact-solving a large
    instance.
    """
    base_state = CoverageState(instance, instance.retained)
    base_cost = instance.cost_of(instance.retained)
    costs = instance.costs

    free = [p for p in range(instance.n) if p not in instance.retained]
    root_density = {
        p: (base_state.gain(p) / costs[p] if costs[p] > 0 else 0.0) for p in free
    }
    order = sorted(free, key=lambda p: -root_density[p])

    best = {
        "value": base_state.value,
        "selection": list(instance.retained),
    }
    nodes = 0

    def recurse(idx: int, state: CoverageState, spent: float) -> None:
        nonlocal nodes
        nodes += 1
        if nodes > node_limit:
            raise RuntimeError(
                f"branch_and_bound expanded more than {node_limit} nodes; "
                "the instance is too large for exact solving"
            )
        if state.value > best["value"] + 1e-12:
            best["value"] = state.value
            best["selection"] = sorted(state.selected)
        if idx >= len(order):
            return
        remaining = order[idx:]
        ub = _fractional_upper_bound(state, remaining, costs, instance.budget - spent)
        if ub <= best["value"] + 1e-12:
            return
        p = order[idx]
        # Include branch first (depth-first towards good incumbents).
        if spent + costs[p] <= instance.budget * (1 + 1e-12):
            with_state = state.copy()
            with_state.add(p)
            recurse(idx + 1, with_state, spent + float(costs[p]))
        # Exclude branch.
        recurse(idx + 1, state, spent)

    recurse(0, base_state, base_cost)
    return ExactResult(
        selection=sorted(best["selection"]),
        value=float(best["value"]),
        cost=instance.cost_of(best["selection"]),
        nodes=nodes,
    )
