"""The paper's main solver: lazy greedy (CELF) under a knapsack constraint.

Implements Algorithms 1 and 2 of the paper, which adapt the cost-effective
lazy-forward scheme of Leskovec et al. [30]:

* :func:`lazy_greedy` — Algorithm 2.  Runs one greedy pass in either the
  unit-cost (``UC``) or cost-benefit (``CB``) mode, using lazy marginal-gain
  re-evaluation backed by a priority queue.  Submodularity guarantees that a
  cached gain is an upper bound on the true gain, so a candidate whose
  refreshed gain stays at the top of the queue can be selected without
  recomputing anybody else.
* :func:`main_algorithm` — Algorithm 1.  Runs both modes and returns the
  better solution, which carries the ``(1 − 1/e)/2`` worst-case guarantee.
* :func:`naive_greedy` — the same greedy rule *without* lazy evaluation,
  kept for the lazy-speed-up ablation (the paper reports a ~700× factor
  from laziness in [30]).

Every function starts from the retention set ``S0`` and never exceeds the
budget ``B``.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.instance import PARInstance
from repro.core.objective import CoverageState
from repro.errors import ConfigurationError

__all__ = [
    "GreedyMode",
    "GreedyRun",
    "TraceEvent",
    "lazy_greedy",
    "naive_greedy",
    "main_algorithm",
]


@dataclass(frozen=True)
class TraceEvent:
    """One observable step of the lazy greedy (the Figure 3 narrative).

    ``kind`` is ``"refresh"`` (a stale gain was recalculated and pushed
    back), ``"select"`` (the photo was added to the solution), or
    ``"drop"`` (the photo no longer fits the budget and left the queue).
    ``step`` counts solution additions so far, matching Figure 3's
    "Step k" panels (step 1 selects the first photo).
    """

    kind: str
    step: int
    photo_id: int
    gain: float

UC = "UC"
CB = "CB"
GreedyMode = str
_MODES = (UC, CB)


@dataclass
class GreedyRun:
    """Outcome of one greedy pass.

    Attributes
    ----------
    selection:
        Selected photo ids in pick order (retention set first).
    value:
        Objective value ``G(S)`` of the selection.
    cost:
        Total byte cost ``C(S)``.
    mode:
        ``"UC"``, ``"CB"``, or a label set by the caller.
    evaluations:
        Number of marginal-gain evaluations performed — the paper's measure
        of solver work (``O(B·n)`` for CELF vs ``Ω(B·n^4)`` for [45]).
    picks:
        ``(photo_id, realised_gain)`` per greedy pick (excludes ``S0``).
    trace:
        Step-by-step :class:`TraceEvent` log (populated when the run was
        invoked with ``trace=True``; empty otherwise).
    """

    selection: List[int]
    value: float
    cost: float
    mode: str
    evaluations: int = 0
    picks: List[Tuple[int, float]] = field(default_factory=list)
    trace: List[TraceEvent] = field(default_factory=list)


def lazy_greedy(
    instance: PARInstance,
    mode: GreedyMode = CB,
    *,
    state: Optional[CoverageState] = None,
    trace: bool = False,
) -> GreedyRun:
    """Algorithm 2 (``LazyGreedy(type)``) with CELF lazy evaluation.

    Parameters
    ----------
    instance:
        The PAR instance.
    mode:
        ``"UC"`` — each iteration picks the feasible photo with the largest
        marginal gain; ``"CB"`` — the largest gain-to-cost ratio.
    state:
        Optional pre-seeded coverage state.  When omitted, a fresh state
        initialised with ``S0`` is used.  When provided, its selection is
        treated as the starting solution (useful for warm restarts).
    trace:
        When true, record the Figure 3-style event log (every refresh,
        selection and budget-drop) in ``GreedyRun.trace``.
    """
    if mode not in _MODES:
        raise ConfigurationError(f"unknown greedy mode {mode!r}; expected UC or CB")

    if state is None:
        state = CoverageState(instance, instance.retained)
    costs = instance.costs
    spent = instance.cost_of(state.selected)
    budget = instance.budget

    run = GreedyRun(
        selection=list(state.selected),
        value=state.value,
        cost=spent,
        mode=mode,
        evaluations=0,
    )

    # Priority queue of (-key, tiebreak, photo_id, stamp).  ``stamp`` is the
    # selection size at which the cached gain was computed; an entry is
    # "current" (the paper's curr_p flag) iff its stamp equals the present
    # selection size.
    counter = itertools.count()
    heap: List[Tuple[float, int, int, int]] = []
    stamp = len(state.selected)
    for p in range(instance.n):
        if p in state.selected:
            continue
        if spent + costs[p] > budget * (1 + 1e-12):
            continue
        gain = state.gain(p)
        run.evaluations += 1
        key = gain / costs[p] if mode == CB else gain
        heapq.heappush(heap, (-key, next(counter), p, stamp))

    while heap:
        neg_key, _, p, gain_stamp = heapq.heappop(heap)
        if p in state.selected:
            continue
        if spent + costs[p] > budget * (1 + 1e-12):
            # Cannot afford p now; it can never become affordable again, so
            # drop it permanently.
            if trace:
                run.trace.append(
                    TraceEvent("drop", len(run.picks) + 1, p, -neg_key)
                )
            continue
        if gain_stamp == len(state.selected):
            realized = state.add(p)
            run.selection.append(p)
            run.picks.append((p, realized))
            spent += float(costs[p])
            run.value = state.value
            run.cost = spent
            if trace:
                run.trace.append(TraceEvent("select", len(run.picks), p, realized))
        else:
            gain = state.gain(p)
            run.evaluations += 1
            key = gain / costs[p] if mode == CB else gain
            heapq.heappush(heap, (-key, next(counter), p, len(state.selected)))
            if trace:
                run.trace.append(
                    TraceEvent("refresh", len(run.picks) + 1, p, gain)
                )

    return run


def naive_greedy(
    instance: PARInstance,
    mode: GreedyMode = CB,
) -> GreedyRun:
    """The greedy rule of Algorithm 2 without lazy evaluation.

    Re-evaluates every remaining candidate's marginal gain in every
    iteration.  Produces exactly the same selection as :func:`lazy_greedy`
    (up to ties) but performs far more gain evaluations; used by the
    laziness ablation bench.
    """
    if mode not in _MODES:
        raise ConfigurationError(f"unknown greedy mode {mode!r}; expected UC or CB")

    state = CoverageState(instance, instance.retained)
    costs = instance.costs
    spent = instance.cost_of(state.selected)
    budget = instance.budget
    run = GreedyRun(
        selection=list(state.selected),
        value=state.value,
        cost=spent,
        mode=mode,
        evaluations=0,
    )
    remaining = [p for p in range(instance.n) if p not in state.selected]

    while True:
        best_p = -1
        best_key = -1.0
        best_gain = 0.0
        for p in remaining:
            if spent + costs[p] > budget * (1 + 1e-12):
                continue
            gain = state.gain(p)
            run.evaluations += 1
            key = gain / costs[p] if mode == CB else gain
            if key > best_key:
                best_key = key
                best_p = p
                best_gain = gain
        if best_p < 0:
            break
        state.add(best_p)
        remaining.remove(best_p)
        run.selection.append(best_p)
        run.picks.append((best_p, best_gain))
        spent += float(costs[best_p])
        run.value = state.value
        run.cost = spent

    return run


def main_algorithm(
    instance: PARInstance,
    *,
    lazy: bool = True,
) -> GreedyRun:
    """Algorithm 1: run UC and CB greedy passes and keep the better result.

    The returned run's ``mode`` names the winning sub-algorithm, and its
    ``evaluations`` counter is the sum over both passes.  Taking the best of
    the two passes yields the ``(1 − 1/e)/2`` worst-case guarantee of [30]
    (and the exact ``1 − 1/e`` of [37] when all costs are equal, since the
    UC pass then *is* the classical greedy).
    """
    runner = lazy_greedy if lazy else naive_greedy
    res_uc = runner(instance, UC)
    res_cb = runner(instance, CB)
    winner = res_cb if res_cb.value >= res_uc.value else res_uc
    winner.evaluations = res_uc.evaluations + res_cb.evaluations
    return winner
