"""The paper's main solver: lazy greedy (CELF) under a knapsack constraint.

Implements Algorithms 1 and 2 of the paper, which adapt the cost-effective
lazy-forward scheme of Leskovec et al. [30]:

* :func:`lazy_greedy` — Algorithm 2.  Runs one greedy pass in either the
  unit-cost (``UC``) or cost-benefit (``CB``) mode, using lazy marginal-gain
  re-evaluation backed by a priority queue.  Submodularity guarantees that a
  cached gain is an upper bound on the true gain, so a candidate whose
  refreshed gain stays at the top of the queue can be selected without
  recomputing anybody else.
* :func:`main_algorithm` — Algorithm 1.  Runs both modes and returns the
  better solution, which carries the ``(1 − 1/e)/2`` worst-case guarantee.
* :func:`naive_greedy` — the same greedy rule *without* lazy evaluation,
  kept for the lazy-speed-up ablation (the paper reports a ~700× factor
  from laziness in [30]).

Every function starts from the retention set ``S0`` and never exceeds the
budget ``B``.

Crash safety: :func:`lazy_greedy` and :func:`main_algorithm` can emit
*checkpoints* — JSON-safe snapshots of their resumable state (selection
order, residual budget, the CELF heap of stale upper bounds, UC/CB phase
progress) — every ``checkpoint_every`` picks, and can be restarted from
such a snapshot via ``resume_from``.  A resumed run replays the recorded
insertion order through a fresh :class:`CoverageState` (bit-identical
float accumulation) and continues with the restored heap, so it provably
reaches the same selection as an uninterrupted run.  The wire encoding
(CRC32-protected records) lives in :mod:`repro.core.checkpoint`; this
module deals only in plain dicts.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from time import perf_counter as _perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.instance import PARInstance
from repro.core.objective import CoverageState
from repro.errors import CheckpointError, ConfigurationError, DeadlineExceeded
from repro.faults import check as _fault_check
from repro.obs import probes as _obs_probes
from repro.resilience import deadline as _deadline

__all__ = [
    "GreedyMode",
    "GreedyRun",
    "TraceEvent",
    "lazy_greedy",
    "naive_greedy",
    "main_algorithm",
]

CheckpointSink = Callable[[Dict[str, Any]], None]

_CKPT_FORMAT = 1


@dataclass(frozen=True)
class TraceEvent:
    """One observable step of the lazy greedy (the Figure 3 narrative).

    ``kind`` is ``"refresh"`` (a stale gain was recalculated and pushed
    back), ``"select"`` (the photo was added to the solution), or
    ``"drop"`` (the photo no longer fits the budget and left the queue).
    ``step`` counts solution additions so far, matching Figure 3's
    "Step k" panels (step 1 selects the first photo).
    """

    kind: str
    step: int
    photo_id: int
    gain: float

UC = "UC"
CB = "CB"
GreedyMode = str
_MODES = (UC, CB)


@dataclass
class GreedyRun:
    """Outcome of one greedy pass.

    Attributes
    ----------
    selection:
        Selected photo ids in pick order (retention set first).
    value:
        Objective value ``G(S)`` of the selection.
    cost:
        Total byte cost ``C(S)``.
    mode:
        ``"UC"``, ``"CB"``, or a label set by the caller.
    evaluations:
        Number of marginal-gain evaluations performed — the paper's measure
        of solver work (``O(B·n)`` for CELF vs ``Ω(B·n^4)`` for [45]).
    picks:
        ``(photo_id, realised_gain)`` per greedy pick (excludes ``S0``).
    trace:
        Step-by-step :class:`TraceEvent` log (populated when the run was
        invoked with ``trace=True``; empty otherwise).
    """

    selection: List[int]
    value: float
    cost: float
    mode: str
    evaluations: int = 0
    picks: List[Tuple[int, float]] = field(default_factory=list)
    trace: List[TraceEvent] = field(default_factory=list)
    #: number of picks already present in the checkpoint this run resumed
    #: from (``None`` for an uninterrupted run) — resumed work is
    #: ``len(picks) - resumed_at`` picks.
    resumed_at: Optional[int] = None


def lazy_greedy(
    instance: PARInstance,
    mode: GreedyMode = CB,
    *,
    state: Optional[CoverageState] = None,
    trace: bool = False,
    checkpoint_every: Optional[int] = None,
    checkpoint_sink: Optional[CheckpointSink] = None,
    resume_from: Optional[Dict[str, Any]] = None,
) -> GreedyRun:
    """Algorithm 2 (``LazyGreedy(type)``) with CELF lazy evaluation.

    Parameters
    ----------
    instance:
        The PAR instance.
    mode:
        ``"UC"`` — each iteration picks the feasible photo with the largest
        marginal gain; ``"CB"`` — the largest gain-to-cost ratio.
    state:
        Optional pre-seeded coverage state.  When omitted, a fresh state
        initialised with ``S0`` is used.  When provided, its selection is
        treated as the starting solution (useful for warm restarts).
    trace:
        When true, record the Figure 3-style event log (every refresh,
        selection and budget-drop) in ``GreedyRun.trace``.
    checkpoint_every:
        Emit a checkpoint document to ``checkpoint_sink`` after every
        this-many selections (requires a sink; ``None`` disables).
    checkpoint_sink:
        Callable receiving each checkpoint document (a JSON-safe dict;
        see :mod:`repro.core.checkpoint` for durable encodings).
    resume_from:
        A checkpoint document previously emitted by this function (same
        ``mode``, same instance).  The run restarts mid-solve and reaches
        exactly the selection an uninterrupted run would have.
    """
    if mode not in _MODES:
        raise ConfigurationError(f"unknown greedy mode {mode!r}; expected UC or CB")
    if checkpoint_every is not None and checkpoint_every < 1:
        raise ConfigurationError("checkpoint_every must be >= 1")
    if checkpoint_every is not None and checkpoint_sink is None:
        raise ConfigurationError("checkpoint_every needs a checkpoint_sink")

    # Observability: one armed-check per pass, everything else derived from
    # counters the run already keeps — the hot loop below carries no probes
    # beyond the standing fault check (see benchmarks/bench_obs_overhead).
    _obs = _obs_probes.active()
    _t0 = _perf_counter() if _obs is not None else 0.0

    costs = instance.costs
    budget = instance.budget

    if resume_from is not None:
        if state is not None:
            raise ConfigurationError("resume_from and state are mutually exclusive")
        if trace:
            raise ConfigurationError("cannot resume a traced run (trace is partial)")
        state, run, heap, counter, spent = _restore_greedy(
            instance, mode, resume_from
        )
    else:
        if state is None:
            state = CoverageState(instance, instance.retained)
        spent = instance.cost_of(state.selected)
        run = GreedyRun(
            selection=list(state.selected),
            value=state.value,
            cost=spent,
            mode=mode,
            evaluations=0,
        )
        # Priority queue of (-key, tiebreak, photo_id, stamp).  ``stamp`` is
        # the selection size at which the cached gain was computed; an entry
        # is "current" (the paper's curr_p flag) iff its stamp equals the
        # present selection size.
        counter = 0
        heap: List[Tuple[float, int, int, int]] = []
        stamp = state.size
        for p in range(instance.n):
            if p in state:
                continue
            if spent + costs[p] > budget * (1 + 1e-12):
                continue
            gain = state.gain(p)
            run.evaluations += 1
            key = gain / costs[p] if mode == CB else gain
            heapq.heappush(heap, (-key, counter, p, stamp))
            counter += 1

    if _obs is not None:
        # Work already credited to a previous (checkpointed) attempt, and
        # the seeding evaluations (one per heap entry on a fresh pass).
        _evals_prior = run.evaluations if resume_from is not None else 0
        _picks_prior = len(run.picks)
        _seeded = 0 if resume_from is not None else len(heap)
        _obs.solver_heap_size.labels(mode=mode).set(len(heap))

    # Hot-loop locals: the selection set is read directly (no frozenset
    # copies) and its size tracked inline — state.add is the only writer.
    selected = state._selected
    size = state.size
    budget_cap = budget * (1 + 1e-12)
    # Deadline: fetched once per pass; per-iteration cost without one is a
    # single ``is not None`` test (the faults probe pattern).  With one
    # armed, the clock is read on the first iteration and every 16th after
    # (a drain interrupt on this deadline is seen immediately).
    _dl = _deadline.current()
    _dl_tick = 0
    while heap:
        _fault_check("solver.iteration")
        if _dl is not None:
            if (_dl_tick & 15) == 0 or _dl._interrupt is not None:
                if _dl.expired():
                    raise _dl.to_exception(
                        _greedy_checkpoint_doc(run, state, heap, counter, spent)
                    )
            _dl_tick += 1
        neg_key, _, p, gain_stamp = heapq.heappop(heap)
        if p in selected:
            continue
        if spent + costs[p] > budget_cap:
            # Cannot afford p now; it can never become affordable again, so
            # drop it permanently.
            if trace:
                run.trace.append(
                    TraceEvent("drop", len(run.picks) + 1, p, -neg_key)
                )
            continue
        if gain_stamp == size:
            realized = state.add(p)
            size += 1
            run.selection.append(p)
            run.picks.append((p, realized))
            spent += float(costs[p])
            run.value = state.value
            run.cost = spent
            if trace:
                run.trace.append(TraceEvent("select", len(run.picks), p, realized))
            if checkpoint_every and len(run.picks) % checkpoint_every == 0:
                checkpoint_sink(_greedy_checkpoint_doc(run, state, heap, counter, spent))
        else:
            gain = state.gain(p)
            run.evaluations += 1
            key = gain / costs[p] if mode == CB else gain
            heapq.heappush(heap, (-key, counter, p, size))
            counter += 1
            if trace:
                run.trace.append(
                    TraceEvent("refresh", len(run.picks) + 1, p, gain)
                )

    if _obs is not None:
        _record_run_metrics(
            _obs, run, state, mode,
            elapsed=_perf_counter() - _t0,
            evals_prior=_evals_prior,
            picks_prior=_picks_prior,
            seeded=_seeded,
        )
    return run


def _record_run_metrics(
    obs, run: GreedyRun, state: CoverageState, mode: str, *,
    elapsed: float, evals_prior: int, picks_prior: int, seeded: int,
) -> None:
    """Flush one finished pass into the armed instruments.

    Evaluations this pass split into initial heap seeding (one per heap
    entry, ``seeded``) and CELF lazy *refreshes* — stale heap entries
    recomputed and pushed back.  The re-evaluation ratio is refreshes
    over productive heap pops (refreshes + selections): 0.0 means every
    pop was selected on its cached bound (ideal laziness), values near
    1.0 mean the cached bounds rarely survive a pick.
    """
    picks_done = len(run.picks) - picks_prior
    evals_done = run.evaluations - evals_prior
    refreshes = max(0, evals_done - seeded)
    pops = refreshes + picks_done
    obs.solver_runs.labels(mode=mode, backend=state.backend).inc()
    if evals_done:
        obs.solver_evaluations.labels(mode=mode).inc(evals_done)
    if picks_done:
        obs.solver_picks.labels(mode=mode).inc(picks_done)
    if refreshes:
        obs.solver_refreshes.labels(mode=mode).inc(refreshes)
    obs.solver_reeval_ratio.labels(mode=mode).set(refreshes / pops if pops else 0.0)
    obs.solver_picks_per_second.labels(mode=mode).set(
        picks_done / elapsed if elapsed > 0 else 0.0
    )
    obs.solver_seconds.labels(mode=mode).observe(elapsed)


def _greedy_checkpoint_doc(
    run: GreedyRun,
    state: CoverageState,
    heap: List[Tuple[float, int, int, int]],
    counter: int,
    spent: float,
) -> Dict[str, Any]:
    """Snapshot everything :func:`lazy_greedy` needs to continue (JSON-safe)."""
    return {
        "format": _CKPT_FORMAT,
        "kind": "lazy_greedy",
        "mode": run.mode,
        "n": state.instance.n,
        "added": [int(p) for p in state.order],
        "selection": [int(p) for p in run.selection],
        "picks": [[int(p), float(g)] for p, g in run.picks],
        "evaluations": int(run.evaluations),
        "spent": float(spent),
        "value": float(state.value),
        "heap": [[float(k), int(c), int(p), int(s)] for k, c, p, s in heap],
        "counter": int(counter),
        "progress": {"mode": run.mode, "picks": len(run.picks)},
    }


def _restore_greedy(
    instance: PARInstance, mode: GreedyMode, doc: Dict[str, Any]
):
    """Rebuild the loop state of :func:`lazy_greedy` from a checkpoint doc.

    The coverage state is reconstructed by replaying the recorded add
    order, which reproduces the incremental float accumulation exactly;
    a value mismatch therefore means the checkpoint belongs to a
    different instance (or was tampered with) and raises
    :class:`~repro.errors.CheckpointError`.
    """
    try:
        if doc.get("kind") != "lazy_greedy" or doc.get("format") != _CKPT_FORMAT:
            raise CheckpointError(
                f"not a lazy_greedy checkpoint: kind={doc.get('kind')!r} "
                f"format={doc.get('format')!r}"
            )
        if doc["mode"] != mode:
            raise CheckpointError(
                f"checkpoint is for mode {doc['mode']!r}, not {mode!r}"
            )
        if int(doc["n"]) != instance.n:
            raise CheckpointError(
                f"checkpoint is for an instance of {doc['n']} photos, "
                f"not {instance.n}"
            )
        state = CoverageState(instance, [int(p) for p in doc["added"]])
        if not math.isclose(state.value, float(doc["value"]), rel_tol=1e-9, abs_tol=1e-12):
            raise CheckpointError(
                f"replayed objective {state.value!r} does not match "
                f"checkpointed {doc['value']!r}; wrong instance?"
            )
        run = GreedyRun(
            selection=[int(p) for p in doc["selection"]],
            value=state.value,
            cost=float(doc["spent"]),
            mode=mode,
            evaluations=int(doc["evaluations"]),
            picks=[(int(p), float(g)) for p, g in doc["picks"]],
            resumed_at=len(doc["picks"]),
        )
        heap = [(float(k), int(c), int(p), int(s)) for k, c, p, s in doc["heap"]]
        counter = int(doc["counter"])
        spent = float(doc["spent"])
    except CheckpointError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"malformed checkpoint document: {exc!r}") from exc
    return state, run, heap, counter, spent


def naive_greedy(
    instance: PARInstance,
    mode: GreedyMode = CB,
) -> GreedyRun:
    """The greedy rule of Algorithm 2 without lazy evaluation.

    Re-evaluates every remaining candidate's marginal gain in every
    iteration.  Produces exactly the same selection as :func:`lazy_greedy`
    (up to ties) but performs far more gain evaluations; used by the
    laziness ablation bench.
    """
    if mode not in _MODES:
        raise ConfigurationError(f"unknown greedy mode {mode!r}; expected UC or CB")

    state = CoverageState(instance, instance.retained)
    costs = instance.costs
    spent = instance.cost_of(state.selected)
    budget = instance.budget
    run = GreedyRun(
        selection=list(state.selected),
        value=state.value,
        cost=spent,
        mode=mode,
        evaluations=0,
    )
    remaining = [p for p in range(instance.n) if p not in state.selected]

    while True:
        # Spent only ever grows, so a candidate that cannot fit the residual
        # budget now never fits later: drop it permanently instead of
        # re-checking (and re-considering) it every iteration.
        remaining = [p for p in remaining if spent + costs[p] <= budget * (1 + 1e-12)]
        best_p = -1
        best_key = -1.0
        best_gain = 0.0
        for p in remaining:
            gain = state.gain(p)
            run.evaluations += 1
            key = gain / costs[p] if mode == CB else gain
            if key > best_key:
                best_key = key
                best_p = p
                best_gain = gain
        if best_p < 0:
            break
        state.add(best_p)
        remaining.remove(best_p)
        run.selection.append(best_p)
        run.picks.append((best_p, best_gain))
        spent += float(costs[best_p])
        run.value = state.value
        run.cost = spent

    return run


def main_algorithm(
    instance: PARInstance,
    *,
    lazy: bool = True,
    checkpoint_every: Optional[int] = None,
    checkpoint_sink: Optional[CheckpointSink] = None,
    resume_from: Optional[Dict[str, Any]] = None,
) -> GreedyRun:
    """Algorithm 1: run UC and CB greedy passes and keep the better result.

    The returned run's ``mode`` names the winning sub-algorithm, and its
    ``evaluations`` counter is the sum over both passes.  Taking the best of
    the two passes yields the ``(1 − 1/e)/2`` worst-case guarantee of [30]
    (and the exact ``1 − 1/e`` of [37] when all costs are equal, since the
    UC pass then *is* the classical greedy).

    Checkpointing wraps both passes: each emitted document records which
    phase (UC or CB) is in flight, the finished UC summary once the CB
    pass starts, and the inner :func:`lazy_greedy` snapshot, so a resume
    lands mid-pass and still finishes both passes deterministically.
    """
    wants_checkpoint = (
        checkpoint_every is not None
        or checkpoint_sink is not None
        or resume_from is not None
    )
    if wants_checkpoint and not lazy:
        raise ConfigurationError("checkpointing requires the lazy solver")
    if not wants_checkpoint:
        runner = lazy_greedy if lazy else naive_greedy
        try:
            res_uc = runner(instance, UC)
        except DeadlineExceeded as exc:
            raise _rewrap_deadline(exc, UC, None)
        try:
            res_cb = runner(instance, CB)
        except DeadlineExceeded as exc:
            raise _rewrap_deadline(exc, CB, _summarize_run(res_uc))
        winner = res_cb if res_cb.value >= res_uc.value else res_uc
        winner.evaluations = res_uc.evaluations + res_cb.evaluations
        return winner

    uc_inner = cb_inner = None
    uc_summary: Optional[Dict[str, Any]] = None
    resumed_total: Optional[int] = None
    if resume_from is not None:
        try:
            if (
                resume_from.get("kind") != "main_algorithm"
                or resume_from.get("format") != _CKPT_FORMAT
            ):
                raise CheckpointError(
                    f"not a main_algorithm checkpoint: "
                    f"kind={resume_from.get('kind')!r}"
                )
            phase = resume_from["phase"]
            if phase == UC:
                uc_inner = resume_from["inner"]
            elif phase == CB:
                uc_summary = resume_from["uc"]
                cb_inner = resume_from["inner"]
            else:
                raise CheckpointError(f"unknown checkpoint phase {phase!r}")
            resumed_total = len(resume_from["inner"]["picks"]) + (
                len(uc_summary["picks"]) if uc_summary is not None else 0
            )
        except CheckpointError:
            raise
        except (KeyError, TypeError) as exc:
            raise CheckpointError(f"malformed checkpoint document: {exc!r}") from exc

    def _outer_sink(phase: str, uc_doc: Optional[Dict[str, Any]]):
        if checkpoint_sink is None:
            return None

        def sink(inner_doc: Dict[str, Any]) -> None:
            done_before = len(uc_doc["picks"]) if uc_doc is not None else 0
            checkpoint_sink(
                {
                    "format": _CKPT_FORMAT,
                    "kind": "main_algorithm",
                    "phase": phase,
                    "uc": uc_doc,
                    "inner": inner_doc,
                    "progress": {
                        "phase": phase,
                        "picks": done_before + inner_doc["progress"]["picks"],
                    },
                }
            )

        return sink

    if uc_summary is None:
        try:
            res_uc = lazy_greedy(
                instance,
                UC,
                checkpoint_every=checkpoint_every,
                checkpoint_sink=_outer_sink(UC, None),
                resume_from=uc_inner,
            )
        except DeadlineExceeded as exc:
            raise _rewrap_deadline(exc, UC, None)
        uc_summary = _summarize_run(res_uc)
    else:
        res_uc = _run_from_summary(uc_summary)
    try:
        res_cb = lazy_greedy(
            instance,
            CB,
            checkpoint_every=checkpoint_every,
            checkpoint_sink=_outer_sink(CB, uc_summary),
            resume_from=cb_inner,
        )
    except DeadlineExceeded as exc:
        raise _rewrap_deadline(exc, CB, uc_summary)
    winner = res_cb if res_cb.value >= res_uc.value else res_uc
    winner.evaluations = res_uc.evaluations + res_cb.evaluations
    winner.resumed_at = resumed_total
    return winner


def _rewrap_deadline(
    exc: DeadlineExceeded, phase: str, uc_doc: Optional[Dict[str, Any]]
) -> DeadlineExceeded:
    """Lift an inner-pass deadline checkpoint to the two-phase wrapper.

    :func:`lazy_greedy` raises with its own ``lazy_greedy`` checkpoint
    document; re-keying it as a ``main_algorithm`` doc (phase + finished
    UC summary) means the standard resume path continues the interrupted
    two-phase solve and still finishes both passes deterministically.
    """
    inner = exc.checkpoint
    if isinstance(inner, dict) and inner.get("kind") == "lazy_greedy":
        done_before = len(uc_doc["picks"]) if uc_doc is not None else 0
        exc.checkpoint = {
            "format": _CKPT_FORMAT,
            "kind": "main_algorithm",
            "phase": phase,
            "uc": uc_doc,
            "inner": inner,
            "progress": {
                "phase": phase,
                "picks": done_before + inner["progress"]["picks"],
            },
        }
    return exc


def _summarize_run(run: GreedyRun) -> Dict[str, Any]:
    """JSON-safe summary of a finished pass, embedded in phase checkpoints."""
    return {
        "mode": run.mode,
        "selection": [int(p) for p in run.selection],
        "picks": [[int(p), float(g)] for p, g in run.picks],
        "value": float(run.value),
        "cost": float(run.cost),
        "evaluations": int(run.evaluations),
    }


def _run_from_summary(doc: Dict[str, Any]) -> GreedyRun:
    try:
        return GreedyRun(
            selection=[int(p) for p in doc["selection"]],
            value=float(doc["value"]),
            cost=float(doc["cost"]),
            mode=doc["mode"],
            evaluations=int(doc["evaluations"]),
            picks=[(int(p), float(g)) for p, g in doc["picks"]],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"malformed pass summary in checkpoint: {exc!r}") from exc
