"""Durable wire format for solver checkpoints (CRC32-protected records).

:mod:`repro.core.greedy` emits and consumes checkpoint *documents* —
plain JSON-safe dicts.  This module turns them into tamper-evident byte
records and back:

.. code-block:: text

    ┌─────────┬──────────────┬────────────┬─────────────────┐
    │ magic 8 │ length (u32) │ crc32(u32) │ JSON payload    │
    └─────────┴──────────────┴────────────┴─────────────────┘

Both integers are big-endian; the CRC covers the payload bytes.  A bit
flip anywhere — magic, length, body — surfaces as
:class:`~repro.errors.CheckpointError`, never as a half-parsed resume.
JSON preserves floats exactly (``repr`` round-trip), so a decoded
checkpoint resumes bit-identically.

Sinks adapt the solver's ``checkpoint_sink`` callback to storage:
:class:`MemoryCheckpointSink` for tests, :class:`FileCheckpointSink` for
a crash-safe latest-checkpoint file (atomic replace via
:func:`repro.ioutil.atomic_write_bytes`, fault sites ``checkpoint.*``).
:func:`resume_from_checkpoint` is the one-call restart path: hand it the
instance and a record (bytes, path, or document) and it finishes the
solve.
"""

from __future__ import annotations

import base64
import json
import os
import struct
import zlib
from typing import Any, Dict, List, Optional, Union

from repro.core.greedy import GreedyRun, lazy_greedy, main_algorithm
from repro.core.instance import PARInstance
from repro.errors import CheckpointError
from repro.obs import probes as _obs_probes
from repro.obs import trace as _trace

__all__ = [
    "MAGIC",
    "encode_record",
    "decode_record",
    "encode_record_b64",
    "decode_record_b64",
    "checkpoint_progress",
    "MemoryCheckpointSink",
    "FileCheckpointSink",
    "resume_from_checkpoint",
]

MAGIC = b"PHCKPT1\x00"
_HEADER = struct.Struct(">II")  # payload length, crc32


def encode_record(doc: Dict[str, Any]) -> bytes:
    """Serialise a checkpoint document to a self-validating byte record."""
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":")).encode("utf-8")
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return MAGIC + _HEADER.pack(len(payload), crc) + payload


def decode_record(data: bytes) -> Dict[str, Any]:
    """Parse and verify a record; :class:`CheckpointError` on any defect."""
    head = len(MAGIC) + _HEADER.size
    if len(data) < head:
        raise CheckpointError(f"checkpoint record truncated ({len(data)} bytes)")
    if data[: len(MAGIC)] != MAGIC:
        raise CheckpointError("bad checkpoint magic; not a checkpoint record")
    length, crc = _HEADER.unpack(data[len(MAGIC) : head])
    payload = data[head : head + length]
    if len(payload) != length:
        raise CheckpointError(
            f"checkpoint payload truncated: expected {length} bytes, "
            f"got {len(payload)}"
        )
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise CheckpointError("checkpoint CRC32 mismatch (corrupt record)")
    try:
        doc = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"checkpoint payload is not JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise CheckpointError("checkpoint payload must be a JSON object")
    return doc


def encode_record_b64(doc: Dict[str, Any]) -> str:
    """ASCII-safe record encoding (for embedding in JSON job journals)."""
    return base64.b64encode(encode_record(doc)).decode("ascii")


def decode_record_b64(text: str) -> Dict[str, Any]:
    try:
        raw = base64.b64decode(text.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError) as exc:
        raise CheckpointError(f"invalid base64 checkpoint record: {exc}") from exc
    return decode_record(raw)


def checkpoint_progress(doc: Dict[str, Any]) -> Dict[str, Any]:
    """The small ``{"phase": ..., "picks": ...}`` progress view of a doc."""
    progress = doc.get("progress")
    if isinstance(progress, dict):
        return dict(progress)
    return {}


class MemoryCheckpointSink:
    """Keeps every emitted checkpoint document in memory (test workhorse)."""

    def __init__(self) -> None:
        self.docs: List[Dict[str, Any]] = []

    def __call__(self, doc: Dict[str, Any]) -> None:
        self.docs.append(doc)

    @property
    def last(self) -> Optional[Dict[str, Any]]:
        return self.docs[-1] if self.docs else None


class FileCheckpointSink:
    """Persists the latest checkpoint to one file, crash-safely.

    Every emission rewrites ``path`` through the atomic temp-file +
    fsync + rename protocol, so a crash mid-checkpoint leaves the
    previous (valid) checkpoint in place.  Fault sites:
    ``checkpoint.write`` / ``checkpoint.fsync`` / ``checkpoint.replace``.
    """

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = os.fspath(path)

    def __call__(self, doc: Dict[str, Any]) -> None:
        from repro.ioutil import atomic_write_bytes

        record = encode_record(doc)
        _obs = _obs_probes.active()
        if _obs is None:
            atomic_write_bytes(self.path, record, site="checkpoint")
            return
        from time import perf_counter

        with _trace.span("checkpoint.write") as sp:
            start = perf_counter()
            atomic_write_bytes(self.path, record, site="checkpoint")
            elapsed = perf_counter() - start
            sp.annotate(bytes=len(record))
        _obs.checkpoint_writes.inc()
        _obs.checkpoint_bytes.inc(len(record))
        _obs.checkpoint_write_seconds.observe(elapsed)

    def load(self) -> Optional[Dict[str, Any]]:
        """The stored document, or ``None`` when no checkpoint exists yet."""
        if not os.path.exists(self.path):
            return None
        with open(self.path, "rb") as fh:
            return decode_record(fh.read())


def resume_from_checkpoint(
    instance: PARInstance,
    source: Union[bytes, str, os.PathLike, Dict[str, Any]],
    *,
    checkpoint_every: Optional[int] = None,
    checkpoint_sink=None,
) -> GreedyRun:
    """Restart an interrupted solve and run it to completion.

    ``source`` may be a checkpoint document, an encoded record
    (``bytes``), or a path to a file written by
    :class:`FileCheckpointSink`.  Dispatches on the record's ``kind`` to
    :func:`~repro.core.greedy.lazy_greedy` or
    :func:`~repro.core.greedy.main_algorithm`; the finished run is
    guaranteed to match an uninterrupted solve of the same instance.
    Fresh ``checkpoint_every`` / ``checkpoint_sink`` values let the
    resumed run keep checkpointing.
    """
    if isinstance(source, dict):
        doc = source
    elif isinstance(source, bytes):
        doc = decode_record(source)
    else:
        path = os.fspath(source)
        with open(path, "rb") as fh:
            doc = decode_record(fh.read())

    kind = doc.get("kind")
    if kind == "lazy_greedy":
        return lazy_greedy(
            instance,
            doc.get("mode", ""),
            checkpoint_every=checkpoint_every,
            checkpoint_sink=checkpoint_sink,
            resume_from=doc,
        )
    if kind == "main_algorithm":
        return main_algorithm(
            instance,
            checkpoint_every=checkpoint_every,
            checkpoint_sink=checkpoint_sink,
            resume_from=doc,
        )
    raise CheckpointError(f"unknown checkpoint kind {kind!r}")
