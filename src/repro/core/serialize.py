"""JSON (de)serialisation of PAR instances and solutions.

The PHOcus service (see :mod:`repro.system.service`) speaks JSON over
HTTP, mirroring the paper's Flask-based Solver deployment.  This module
defines the wire format:

* instances serialise with their full similarity backends (dense matrices
  as nested lists, sparse backends as neighbour lists), so a solve request
  is self-contained;
* solutions serialise flat, with the diagnostics a UI needs.

Round-tripping is exact up to float representation: tests assert that a
round-tripped instance produces identical solver output.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Union

import numpy as np

from repro.core.instance import (
    DenseSimilarity,
    PARInstance,
    Photo,
    PredefinedSubset,
    SparseSimilarity,
)
from repro.core.solver import Solution
from repro.errors import ValidationError

__all__ = [
    "instance_to_dict",
    "instance_from_dict",
    "instance_to_json",
    "instance_from_json",
    "solution_to_dict",
]

_FORMAT = 1


def _similarity_to_dict(sim: Union[DenseSimilarity, SparseSimilarity]) -> Dict[str, Any]:
    if isinstance(sim, DenseSimilarity):
        return {"kind": "dense", "matrix": sim.matrix.tolist()}
    rows = []
    for i in range(len(sim)):
        idx, val = sim.neighbors(i)
        rows.append({"indices": idx.tolist(), "values": val.tolist()})
    out: Dict[str, Any] = {"kind": "sparse", "size": len(sim), "rows": rows}
    # float64 is the implied default so format-1 documents written before
    # dtype support parse unchanged; float32 backends record their dtype
    # and round-trip exactly (float32 -> decimal text -> float64 -> float32
    # is the identity on every representable float32).
    if sim.dtype != np.float64:
        out["dtype"] = sim.dtype.name
    return out


def _similarity_from_dict(doc: Dict[str, Any]):
    kind = doc.get("kind")
    if kind == "dense":
        return DenseSimilarity(np.asarray(doc["matrix"], dtype=np.float64))
    if kind == "sparse":
        dtype_name = doc.get("dtype", "float64")
        if dtype_name not in ("float64", "float32"):
            raise ValidationError(f"unsupported sparse dtype {dtype_name!r}")
        rows = doc["rows"]
        return SparseSimilarity(
            int(doc["size"]),
            [np.asarray(r["indices"], dtype=np.int64) for r in rows],
            [np.asarray(r["values"], dtype=np.float64) for r in rows],
            dtype=np.dtype(dtype_name),
        )
    raise ValidationError(f"unknown similarity kind {kind!r}")


def instance_to_dict(instance: PARInstance) -> Dict[str, Any]:
    """Render an instance as a JSON-compatible dict.

    The optional ``variants`` key (a VariantCatalog document) is written
    only when the instance carries one, so pre-fidelity readers and
    blobs stay byte-compatible in both directions.
    """
    doc = {
        "format": _FORMAT,
        "budget": instance.budget,
        "retained": sorted(instance.retained),
        "photos": [
            {
                "photo_id": p.photo_id,
                "cost": p.cost,
                "label": p.label,
                "metadata": _jsonable(dict(p.metadata)),
            }
            for p in instance.photos
        ],
        "subsets": [
            {
                "subset_id": q.subset_id,
                "weight": q.weight,
                "members": q.members.tolist(),
                "relevance": q.relevance.tolist(),
                "similarity": _similarity_to_dict(q.similarity),
            }
            for q in instance.subsets
        ],
        "embeddings": (
            instance.embeddings.tolist() if instance.embeddings is not None else None
        ),
    }
    variants = getattr(instance, "variants", None)
    if variants is not None:
        doc["variants"] = variants.to_dict()
    return doc


def instance_from_dict(doc: Dict[str, Any]) -> PARInstance:
    """Rebuild an instance from :func:`instance_to_dict` output.

    Any structural defect in the document (missing keys, wrong types,
    malformed arrays) surfaces as :class:`ValidationError` so service
    callers get a 4xx, never a crash.
    """
    if not isinstance(doc, dict):
        raise ValidationError("instance document must be an object")
    if doc.get("format") != _FORMAT:
        raise ValidationError(f"unsupported instance format {doc.get('format')!r}")
    try:
        return _instance_from_dict_unchecked(doc)
    except ValidationError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError, IndexError) as exc:
        raise ValidationError(f"malformed instance document: {exc!r}") from exc


def _instance_from_dict_unchecked(doc: Dict[str, Any]) -> PARInstance:
    photos = [
        Photo(
            photo_id=int(p["photo_id"]),
            cost=float(p["cost"]),
            label=p.get("label", ""),
            metadata=p.get("metadata", {}),
        )
        for p in doc["photos"]
    ]
    subsets = [
        PredefinedSubset(
            q["subset_id"],
            float(q["weight"]),
            q["members"],
            q["relevance"],
            _similarity_from_dict(q["similarity"]),
            normalize=False,
        )
        for q in doc["subsets"]
    ]
    embeddings = doc.get("embeddings")
    variants = doc.get("variants")
    if variants is not None:
        # Lazy import: core must not depend on repro.fidelity at load time.
        from repro.fidelity.catalog import VariantCatalog

        variants = VariantCatalog.from_dict(variants)
    return PARInstance(
        photos,
        subsets,
        float(doc["budget"]),
        retained=doc.get("retained", ()),
        embeddings=np.asarray(embeddings, dtype=np.float64)
        if embeddings is not None
        else None,
        variants=variants,
    )


def instance_to_json(instance: PARInstance) -> str:
    """Serialise an instance to a JSON string."""
    return json.dumps(instance_to_dict(instance))


def instance_from_json(text: str) -> PARInstance:
    """Parse an instance from a JSON string."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValidationError(f"invalid instance JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise ValidationError("instance JSON must be an object")
    return instance_from_dict(doc)


def solution_to_dict(solution: Solution) -> Dict[str, Any]:
    """Render a solver result for the wire."""
    return {
        "algorithm": solution.algorithm,
        "selection": list(solution.selection),
        "value": solution.value,
        "cost": solution.cost,
        "budget": solution.budget,
        "budget_utilisation": solution.budget_utilisation,
        "elapsed_seconds": solution.elapsed_seconds,
        "ratio_certificate": solution.ratio_certificate,
        "extras": _jsonable(solution.extras),
    }


def _jsonable(value):
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    return value
